//! Cross-crate integration tests: full pipelines over the paper's workloads
//! at reduced scale, checked against ground truth.

use mswj::prelude::*;

fn run(dataset: &Dataset, policy: BufferPolicy) -> RunReport {
    let mut pipeline = Pipeline::new(dataset.query.clone(), policy).unwrap();
    for event in dataset.log.iter() {
        pipeline.push(event.clone());
    }
    pipeline.finish()
}

fn d3(duration_secs: u64, seed: u64) -> Dataset {
    SyntheticDataset::generate(
        &SyntheticConfig::three_way().duration_secs(duration_secs),
        seed,
    )
    .into_dataset()
}

fn d2(duration_secs: u64, seed: u64) -> Dataset {
    SoccerDataset::generate(&SoccerConfig::default().duration_secs(duration_secs), seed)
        .into_dataset()
}

#[test]
fn complete_disorder_handling_reproduces_ground_truth() {
    // A fixed K larger than the maximum possible delay sorts every stream
    // perfectly, so the pipeline must produce exactly the true result count.
    let cfg = SyntheticConfig::three_way()
        .duration_secs(30)
        .max_delay(2_000);
    let dataset = SyntheticDataset::generate(&cfg, 17).into_dataset();
    let truth = ground_truth_counts(&dataset.query, &dataset.log);
    let report = run(&dataset, BufferPolicy::FixedK(2_500));
    assert_eq!(
        report.total_produced,
        truth.total(),
        "a buffer covering every delay must recover every result"
    );
}

#[test]
fn no_k_slack_loses_results_on_disordered_input() {
    let dataset = d3(40, 3);
    let truth = ground_truth_counts(&dataset.query, &dataset.log);
    let report = run(&dataset, BufferPolicy::NoKSlack);
    assert!(truth.total() > 0);
    assert!(
        report.total_produced < truth.total(),
        "without intra-stream disorder handling some results must be missed"
    );
}

#[test]
fn quality_driven_meets_requirement_with_smaller_buffers_than_max_k() {
    let dataset = d3(60, 42);
    let truth = ground_truth_counts(&dataset.query, &dataset.log);
    let gamma = 0.9;
    let config = DisorderConfig::with_gamma(gamma).period(20_000);

    let qd = run(&dataset, BufferPolicy::QualityDriven(config));
    let maxk = run(&dataset, BufferPolicy::MaxKSlack);

    let qd_eval = evaluate_recall(&qd, &truth, config.period_p);
    // The shape result of the paper: the quality-driven buffers are no larger
    // than Max-K-slack's, and the recall requirement is (almost always) met.
    assert!(qd.avg_k_ms <= maxk.avg_k_ms + 1.0);
    assert!(
        qd_eval.fulfilment_pct_relaxed(gamma) >= 90.0,
        "Φ(.99Γ) = {:.1}%",
        qd_eval.fulfilment_pct_relaxed(gamma)
    );
}

#[test]
fn higher_gamma_costs_more_latency() {
    let dataset = d3(60, 5);
    let truth = ground_truth_counts(&dataset.query, &dataset.log);
    let low = run(
        &dataset,
        BufferPolicy::QualityDriven(DisorderConfig::with_gamma(0.9).period(20_000)),
    );
    let high = run(
        &dataset,
        BufferPolicy::QualityDriven(DisorderConfig::with_gamma(0.999).period(20_000)),
    );
    let _ = truth;
    assert!(
        high.avg_k_ms >= low.avg_k_ms,
        "Γ=0.999 ({:.0} ms) should need at least as much buffer as Γ=0.9 ({:.0} ms)",
        high.avg_k_ms,
        low.avg_k_ms
    );
}

#[test]
fn soccer_workload_end_to_end() {
    let dataset = d2(45, 9);
    let truth = ground_truth_counts(&dataset.query, &dataset.log);
    assert!(truth.total() > 0, "Q×2 must find proximity events");
    let config = DisorderConfig::with_gamma(0.95).period(20_000);
    let report = run(&dataset, BufferPolicy::QualityDriven(config));
    let eval = evaluate_recall(&report, &truth, config.period_p);
    assert!(eval.overall_recall > 0.5);
    assert!(!report.checkpoints.is_empty());
}

#[test]
fn four_way_star_join_end_to_end() {
    let cfg = SyntheticConfig::four_way().duration_secs(30);
    let dataset = SyntheticDataset::generate(&cfg, 8).into_dataset();
    let truth = ground_truth_counts(&dataset.query, &dataset.log);
    assert!(truth.total() > 0);
    let report = run(
        &dataset,
        BufferPolicy::QualityDriven(DisorderConfig::with_gamma(0.95).period(15_000)),
    );
    let eval = evaluate_recall(&report, &truth, 15_000);
    assert!(eval.overall_recall > 0.5);
}

#[test]
fn enumerating_and_counting_pipelines_agree() {
    let cfg = SyntheticConfig::three_way()
        .duration_secs(10)
        .max_delay(1_000);
    let dataset = SyntheticDataset::generate(&cfg, 23).into_dataset();
    let counting = run(&dataset, BufferPolicy::MaxKSlack);

    let mut enumerating =
        Pipeline::enumerating(dataset.query.clone(), BufferPolicy::MaxKSlack).unwrap();
    let mut materialized = 0u64;
    for event in dataset.log.iter() {
        materialized += enumerating.push(event.clone()).len() as u64;
    }
    let report = enumerating.finish();
    assert_eq!(report.total_produced, counting.total_produced);
    // `finish()` flushes the remaining buffered tuples; the results derived
    // during that final flush are counted in the report but are not returned
    // by any `push` call, so the materialized count is a lower bound.
    assert!(materialized <= report.total_produced);
    assert!(
        materialized as f64 >= 0.8 * report.total_produced as f64,
        "materialized {materialized} vs total {}",
        report.total_produced
    );
}

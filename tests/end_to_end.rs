//! Cross-crate integration tests: full pipelines over the paper's workloads
//! at reduced scale, checked against ground truth.

use mswj::prelude::*;

fn run(dataset: &Dataset, policy: BufferPolicy) -> RunReport {
    let mut pipeline = Pipeline::new(dataset.query.clone(), policy).unwrap();
    for event in dataset.log.iter() {
        pipeline.push(event.clone());
    }
    pipeline.finish()
}

fn d3(duration_secs: u64, seed: u64) -> Dataset {
    SyntheticDataset::generate(
        &SyntheticConfig::three_way().duration_secs(duration_secs),
        seed,
    )
    .into_dataset()
}

fn d2(duration_secs: u64, seed: u64) -> Dataset {
    SoccerDataset::generate(&SoccerConfig::default().duration_secs(duration_secs), seed)
        .into_dataset()
}

#[test]
fn complete_disorder_handling_reproduces_ground_truth() {
    // A fixed K larger than the maximum possible delay sorts every stream
    // perfectly, so the pipeline must produce exactly the true result count.
    let cfg = SyntheticConfig::three_way()
        .duration_secs(30)
        .max_delay(2_000);
    let dataset = SyntheticDataset::generate(&cfg, 17).into_dataset();
    let truth = ground_truth_counts(&dataset.query, &dataset.log);
    let report = run(&dataset, BufferPolicy::FixedK(2_500));
    assert_eq!(
        report.total_produced,
        truth.total(),
        "a buffer covering every delay must recover every result"
    );
}

#[test]
fn no_k_slack_loses_results_on_disordered_input() {
    let dataset = d3(40, 3);
    let truth = ground_truth_counts(&dataset.query, &dataset.log);
    let report = run(&dataset, BufferPolicy::NoKSlack);
    assert!(truth.total() > 0);
    assert!(
        report.total_produced < truth.total(),
        "without intra-stream disorder handling some results must be missed"
    );
}

#[test]
fn quality_driven_meets_requirement_with_smaller_buffers_than_max_k() {
    let dataset = d3(60, 42);
    let truth = ground_truth_counts(&dataset.query, &dataset.log);
    let gamma = 0.9;
    let config = DisorderConfig::with_gamma(gamma).period(20_000);

    let qd = run(&dataset, BufferPolicy::QualityDriven(config));
    let maxk = run(&dataset, BufferPolicy::MaxKSlack);

    let qd_eval = evaluate_recall(&qd, &truth, config.period_p);
    // The shape result of the paper: the quality-driven buffers are no larger
    // than Max-K-slack's, and the recall requirement is (almost always) met.
    assert!(qd.avg_k_ms <= maxk.avg_k_ms + 1.0);
    assert!(
        qd_eval.fulfilment_pct_relaxed(gamma) >= 90.0,
        "Φ(.99Γ) = {:.1}%",
        qd_eval.fulfilment_pct_relaxed(gamma)
    );
}

#[test]
fn higher_gamma_costs_more_latency() {
    let dataset = d3(60, 5);
    let truth = ground_truth_counts(&dataset.query, &dataset.log);
    let low = run(
        &dataset,
        BufferPolicy::QualityDriven(DisorderConfig::with_gamma(0.9).period(20_000)),
    );
    let high = run(
        &dataset,
        BufferPolicy::QualityDriven(DisorderConfig::with_gamma(0.999).period(20_000)),
    );
    let _ = truth;
    assert!(
        high.avg_k_ms >= low.avg_k_ms,
        "Γ=0.999 ({:.0} ms) should need at least as much buffer as Γ=0.9 ({:.0} ms)",
        high.avg_k_ms,
        low.avg_k_ms
    );
}

#[test]
fn soccer_workload_end_to_end() {
    let dataset = d2(45, 9);
    let truth = ground_truth_counts(&dataset.query, &dataset.log);
    assert!(truth.total() > 0, "Q×2 must find proximity events");
    let config = DisorderConfig::with_gamma(0.95).period(20_000);
    let report = run(&dataset, BufferPolicy::QualityDriven(config));
    let eval = evaluate_recall(&report, &truth, config.period_p);
    assert!(eval.overall_recall > 0.5);
    assert!(!report.checkpoints.is_empty());
}

#[test]
fn four_way_star_join_end_to_end() {
    let cfg = SyntheticConfig::four_way().duration_secs(30);
    let dataset = SyntheticDataset::generate(&cfg, 8).into_dataset();
    let truth = ground_truth_counts(&dataset.query, &dataset.log);
    assert!(truth.total() > 0);
    let report = run(
        &dataset,
        BufferPolicy::QualityDriven(DisorderConfig::with_gamma(0.95).period(15_000)),
    );
    let eval = evaluate_recall(&report, &truth, 15_000);
    assert!(eval.overall_recall > 0.5);
}

#[test]
fn materializing_and_counting_pipelines_agree_exactly() {
    let cfg = SyntheticConfig::three_way()
        .duration_secs(10)
        .max_delay(1_000);
    let dataset = SyntheticDataset::generate(&cfg, 23).into_dataset();
    let counting = run(&dataset, BufferPolicy::MaxKSlack);

    let mut materializing = mswj::session()
        .query(dataset.query.clone())
        .max_k_slack()
        .materialize_results()
        .build()
        .unwrap();
    let mut sink = CollectSink::default();
    for event in dataset.log.iter() {
        materializing.push_into(event.clone(), &mut sink);
    }
    let report = materializing.finish_into(&mut sink);
    assert_eq!(report.total_produced, counting.total_produced);
    // The sink sees *every* result the report counts: results derived while
    // pushing and results derived by the final flush alike.  (The former
    // push-Vec surface silently dropped the flush-derived ones.)
    assert_eq!(sink.results.len() as u64, report.total_produced);
    assert!(sink.results.iter().all(|r| r.arity() == 3));
}

/// Regression test for the `pending_results` drain hazard of the old
/// push-Vec surface: a materializing run whose *last* adaptation shrinks K
/// (releasing buffered tuples, deriving results outside any further push)
/// must still deliver every result to the sink by the time `finish_into`
/// returns.
#[test]
fn k_shrink_at_last_adaptation_still_reports_every_result() {
    let build = || {
        mswj::session()
            .name("shrink-regression")
            .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 500)
            .on_common_key("a1")
            .quality_driven(0.9)
            .period(4_000)
            .interval(500)
            .granularity(50)
            .materialize_results()
            .build()
            .unwrap()
    };
    // Phase 1 (0–2 s): every other stream-0 tuple is 400 ms late, so the
    // quality-driven manager grows K.  Phase 2 (2 s+): perfectly ordered
    // input, so the manager eventually shrinks K back down.
    let workload = |until_arrival: u64| {
        let mut events = Vec::new();
        for i in 1..=1_200u64 {
            let t = i * 10;
            if t > until_arrival {
                break;
            }
            let ts0 = if t <= 2_000 && i % 2 == 0 {
                t.saturating_sub(400)
            } else {
                t
            };
            events.push(ArrivalEvent::new(
                Timestamp::from_millis(t),
                Tuple::new(
                    0.into(),
                    i,
                    Timestamp::from_millis(ts0),
                    vec![Value::Int(1)],
                ),
            ));
            events.push(ArrivalEvent::new(
                Timestamp::from_millis(t),
                Tuple::new(1.into(), i, Timestamp::from_millis(t), vec![Value::Int(1)]),
            ));
        }
        events
    };

    // Pass 1: find the first checkpoint that shrinks K.
    let mut probe = build();
    for event in workload(u64::MAX) {
        probe.push(event);
    }
    let full = probe.finish();
    let shrink_at = full
        .checkpoints
        .windows(2)
        .find(|w| w[1].k < w[0].k)
        .map(|w| w[1].at)
        .expect("workload must trigger a K shrink");

    // Pass 2: stop pushing right at the arrival that triggers that shrink,
    // so the shrinking adaptation is the run's last one.
    let mut p = build();
    let mut sink = CollectSink::default();
    for event in workload(shrink_at.as_millis()) {
        p.push_into(event, &mut sink);
    }
    let report = p.finish_into(&mut sink);
    let last = *report.checkpoints.last().expect("checkpoints exist");
    let peak_k = report.checkpoints.iter().map(|c| c.k).max().unwrap();
    assert!(
        last.k < peak_k,
        "last adaptation (K = {}) must be a shrink from the peak {}",
        last.k,
        peak_k
    );
    assert!(report.total_produced > 0);
    assert_eq!(
        sink.results.len() as u64,
        report.total_produced,
        "results released by the final K shrink must reach the sink"
    );
}

//! Property tests for the segmented columnar window storage.
//!
//! The segment capacity (when a tail arena seals) is an access-path choice
//! only: after **any** interleaving of in-order/out-of-order inserts,
//! expirations and state surgery — over every value class — a window built
//! with a tiny capacity holds exactly the content, index answers and
//! candidate scans of a from-scratch rebuild into one effectively unsealed
//! segment.  This mirrors the PR 3 index property one structural level
//! down: there the index had to equal a rebuild, here the whole segmented
//! layout does.

use mswj::prelude::*;
use proptest::prelude::*;

/// One generated operation against the window under test.
#[derive(Debug, Clone)]
enum Op {
    Insert { ts: u64, value: Option<Value> },
    Expire { bound: u64 },
    RetainMod { keep_residue: u64 },
}

/// Strategy producing a mixed-value operation stream: mostly integer-keyed
/// inserts (many of them out of order), with floats, strings, booleans,
/// nulls and missing columns mixed in, plus expirations and occasional
/// surgical removals.
fn ops(len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u64..2_000, 0i64..6, 0usize..16), 1..len).prop_map(|items| {
        items
            .into_iter()
            .map(|(ts, key, kind)| match kind {
                0..=8 => Op::Insert {
                    ts,
                    value: Some(Value::Int(key)),
                },
                9 => Op::Insert {
                    ts,
                    value: Some(Value::Float(key as f64 + 0.5)),
                },
                10 => Op::Insert {
                    ts,
                    value: Some(Value::Float(key as f64)),
                },
                11 => Op::Insert {
                    ts,
                    value: Some(Value::Str(format!("s{key}"))),
                },
                12 => Op::Insert {
                    ts,
                    value: Some(Value::Bool(key % 2 == 0)),
                },
                13 => Op::Insert {
                    ts,
                    value: Some(Value::Null),
                },
                14 => Op::Expire { bound: ts },
                _ => Op::RetainMod {
                    keep_residue: (key as u64) % 3 + 2,
                },
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A window sealed every `capacity` rows is indistinguishable — content,
    /// counts, buckets, scans, candidate sets, bounds — from a from-scratch
    /// rebuild of its live tuples into a window that never seals.
    #[test]
    fn segmented_storage_mirrors_from_scratch_rebuild(
        ops in ops(250),
        capacity in 2usize..16,
    ) {
        let mut w = Window::with_segment_capacity(10_000, &[0], capacity);
        let mut seq = 0u64;
        for op in ops {
            match op {
                Op::Insert { ts, value } => {
                    let values = value.map(|v| vec![v]).unwrap_or_default();
                    w.insert(Tuple::new(0.into(), seq, Timestamp::from_millis(ts), values));
                    seq += 1;
                }
                Op::Expire { bound } => {
                    w.expire_before(Timestamp::from_millis(bound));
                }
                Op::RetainMod { keep_residue } => {
                    w.retain_where(|t| t.seq % keep_residue != 0);
                }
            }
        }

        // Rebuild the live content into one effectively unsealed segment.
        let mut rebuilt = Window::with_segment_capacity(10_000, &[0], 1 << 20);
        for t in w.iter() {
            rebuilt.insert(t.clone());
        }

        prop_assert_eq!(w.len(), rebuilt.len());
        prop_assert_eq!(w.min_ts(), rebuilt.min_ts());
        prop_assert_eq!(w.max_ts(), rebuilt.max_ts());
        prop_assert_eq!(w.unindexable_count(0), rebuilt.unindexable_count(0));
        prop_assert_eq!(w.index_usable(0), rebuilt.index_usable(0));
        let live: Vec<(u64, u64)> = w.iter().map(|t| (t.seq, t.ts.as_millis())).collect();
        let fresh: Vec<(u64, u64)> = rebuilt.iter().map(|t| (t.seq, t.ts.as_millis())).collect();
        prop_assert_eq!(live, fresh, "iteration order diverged");

        for key in -1i64..=6 {
            prop_assert_eq!(w.count_key(0, key), rebuilt.count_key(0, key));
            let a: Vec<u64> = w.matching(0, key).map(|t| t.seq).collect();
            let b: Vec<u64> = rebuilt.matching(0, key).map(|t| t.seq).collect();
            prop_assert_eq!(a, b, "bucket for key {} diverged", key);
        }

        // Zone-map pruning must never lose a joinable candidate: for every
        // probe key class, the pruned candidate set filtered by join_eq
        // equals the full scan filtered by join_eq.
        let probes = [
            Value::Int(3),
            Value::Float(3.0),
            Value::Float(3.5),
            Value::Float(f64::NAN),
            Value::Str("s3".into()),
            Value::Bool(true),
        ];
        for probe in &probes {
            let pruned: Vec<u64> = w
                .scan_candidates(0, probe)
                .filter(|t| t.value(0).map(|v| v.join_eq(probe)).unwrap_or(false))
                .map(|t| t.seq)
                .collect();
            let full: Vec<u64> = w
                .iter()
                .filter(|t| t.value(0).map(|v| v.join_eq(probe)).unwrap_or(false))
                .map(|t| t.seq)
                .collect();
            prop_assert_eq!(pruned, full, "pruning lost a candidate for {:?}", probe);
        }
    }

    /// Storage-shape invariants hold under arbitrary operation streams: the
    /// live-byte estimate, the segment counts and the lifetime counters all
    /// stay consistent with the observable content.
    #[test]
    fn storage_shape_stats_stay_consistent(
        ops in ops(200),
        capacity in 2usize..12,
    ) {
        let mut w = Window::with_segment_capacity(10_000, &[0], capacity);
        let mut seq = 0u64;
        let mut inserted = 0u64;
        for op in ops {
            match op {
                Op::Insert { ts, value } => {
                    let values = value.map(|v| vec![v]).unwrap_or_default();
                    w.insert(Tuple::new(0.into(), seq, Timestamp::from_millis(ts), values));
                    seq += 1;
                    inserted += 1;
                }
                Op::Expire { bound } => {
                    w.expire_before(Timestamp::from_millis(bound));
                }
                Op::RetainMod { keep_residue } => {
                    w.retain_where(|t| t.seq % keep_residue != 0);
                }
            }
            let s = w.stats();
            prop_assert_eq!(s.sealed_segments, s.segments.saturating_sub(1));
            prop_assert_eq!(s.segments == 0, w.is_empty());
            prop_assert_eq!(s.live_bytes_est == 0, w.is_empty());
            prop_assert!(w.len() <= s.peak_len);
        }
        let s = w.stats();
        prop_assert_eq!(s.inserted, inserted);
        prop_assert!(s.expired <= inserted, "cannot expire more than inserted");
        // Every tuple sits in the window exactly once: our rebuild clone
        // below plus the window's row makes two payload references.
        let rebuilt: Vec<Tuple> = w.iter().cloned().collect();
        for t in &rebuilt {
            prop_assert_eq!(t.payload_refs(), 2, "a tuple is stored more than once");
        }
    }
}

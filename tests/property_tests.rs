//! Property-based tests (proptest) over the framework's core invariants.

use mswj::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn query(window: u64) -> JoinQuery {
    let streams =
        StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), window).unwrap();
    let condition = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
    JoinQuery::new("prop", streams, condition).unwrap()
}

/// Strategy producing an arrival sequence for one stream: increasing
/// generation instants with bounded random delays.
fn stream_events(
    stream: usize,
    len: usize,
    max_delay: u64,
) -> impl Strategy<Value = Vec<ArrivalEvent>> {
    proptest::collection::vec((0u64..=max_delay, 1i64..=8), len).prop_map(move |items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (delay, key))| {
                let arrival = (i as u64 + 1) * 10;
                let ts = arrival.saturating_sub(delay);
                ArrivalEvent::new(
                    Timestamp::from_millis(arrival),
                    Tuple::new(
                        stream.into(),
                        i as u64,
                        Timestamp::from_millis(ts),
                        vec![Value::Int(key)],
                    ),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// K-slack with a buffer of at least the maximum delay always emits a
    /// fully sorted stream.
    #[test]
    fn kslack_with_sufficient_buffer_sorts(delays in proptest::collection::vec(0u64..300, 1..200)) {
        let mut ks = mswj::core::KSlack::new(300);
        let mut out = Vec::new();
        for (i, d) in delays.iter().enumerate() {
            let arrival = (i as u64 + 1) * 5;
            let ts = arrival.saturating_sub(*d);
            out.extend(ks.push(Tuple::marker(0.into(), i as u64, Timestamp::from_millis(ts))));
        }
        out.extend(ks.flush());
        let ts: Vec<u64> = out.iter().map(|t| t.ts.as_millis()).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        prop_assert_eq!(ts, sorted);
        prop_assert_eq!(out.len(), delays.len());
    }

    /// The synchronizer never loses or duplicates tuples, and its output is
    /// globally ordered whenever its inputs are ordered per stream.
    #[test]
    fn synchronizer_preserves_tuples(
        s0 in proptest::collection::vec(1u64..500, 1..80),
        s1 in proptest::collection::vec(1u64..500, 1..80),
    ) {
        let mut a = s0.clone(); a.sort_unstable();
        let mut b = s1.clone(); b.sort_unstable();
        let mut sync = mswj::core::Synchronizer::new(2);
        let mut out = Vec::new();
        let mut ia = 0; let mut ib = 0;
        let mut seq = 0u64;
        while ia < a.len() || ib < b.len() {
            let take_a = ib >= b.len() || (ia < a.len() && a[ia] <= b[ib]);
            let (stream, ts) = if take_a { let v=(0usize, a[ia]); ia+=1; v } else { let v=(1usize, b[ib]); ib+=1; v };
            out.extend(sync.push(Tuple::marker(stream.into(), seq, Timestamp::from_millis(ts))));
            seq += 1;
        }
        out.extend(sync.flush());
        prop_assert_eq!(out.len(), a.len() + b.len());
        let ts: Vec<u64> = out.iter().map(|t| t.ts.as_millis()).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        prop_assert_eq!(ts, sorted);
    }

    /// `ArrivalLog::from_events` is a pure function of the event *set*:
    /// equal-arrival-time events keep a stable, stream-index (then seq)
    /// tie-broken order no matter how the input is shuffled, and the
    /// heap-based `Interleaver` produces the identical global order from
    /// the per-stream sequences.
    #[test]
    fn arrival_order_is_deterministic_under_shuffling(
        s0 in stream_events(0, 50, 40),
        s1 in stream_events(1, 50, 40),
        seed in 0u64..1_000_000,
    ) {
        let per_stream = vec![s0.clone(), s1.clone()];
        let mut events: Vec<ArrivalEvent> = s0.into_iter().chain(s1).collect();
        let baseline = ArrivalLog::from_events(events.clone());

        // Deterministic Fisher–Yates shuffle driven by an xorshift state.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            state
        };
        for i in (1..events.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            events.swap(i, j);
        }
        let shuffled = ArrivalLog::from_events(events);
        prop_assert_eq!(&shuffled, &baseline);

        // Adjacent equal-arrival events are ordered by (stream, seq).
        for w in baseline.events().windows(2) {
            prop_assert!(w[0].arrival <= w[1].arrival);
            if w[0].arrival == w[1].arrival {
                prop_assert!(
                    (w[0].stream(), w[0].tuple.seq) < (w[1].stream(), w[1].tuple.seq),
                    "tie at {:?} not stream/seq-ordered", w[0].arrival
                );
            }
        }

        // The Interleaver agrees with from_events on the same inputs.
        let mut il = Interleaver::new();
        for stream in per_stream {
            il.add_stream(stream);
        }
        prop_assert_eq!(il.merge(), baseline);
    }

    /// The join operator never produces more results than the corresponding
    /// cross join, and its windows never retain expired tuples.
    #[test]
    fn operator_results_bounded_by_cross_join(events in stream_events(0, 60, 200), other in stream_events(1, 60, 200)) {
        let mut op = MswjOperator::new(query(500));
        let mut all: Vec<ArrivalEvent> = events.into_iter().chain(other).collect();
        all.sort_by_key(|e| e.arrival);
        for e in all {
            let outcome = op.push(e.tuple);
            prop_assert!(outcome.n_join <= outcome.n_cross.max(1) || outcome.n_cross == 0);
            if outcome.in_order {
                prop_assert!(outcome.n_join <= outcome.n_cross);
            } else {
                prop_assert_eq!(outcome.n_join, 0);
            }
        }
        // Window invariant: all retained tuples are within scope of onT.
        for s in 0..2usize {
            let w = op.window(StreamIndex(s));
            for t in w.iter() {
                prop_assert!(t.ts + 500 >= op.on_t() || w.size() >= 500);
            }
        }
    }

    /// The produced result count never exceeds the ground truth, and with a
    /// buffer covering every delay it matches it exactly.
    #[test]
    fn pipeline_never_exceeds_ground_truth(
        s0 in stream_events(0, 80, 150),
        s1 in stream_events(1, 80, 150),
    ) {
        let mut log_events: Vec<ArrivalEvent> = s0.into_iter().chain(s1).collect();
        log_events.sort_by_key(|e| e.arrival);
        let log = ArrivalLog::from_events(log_events.clone());
        let q = query(400);
        let truth = ground_truth_counts(&q, &log);

        for policy in [BufferPolicy::NoKSlack, BufferPolicy::FixedK(200), BufferPolicy::FixedK(2_000)] {
            let is_complete = matches!(policy, BufferPolicy::FixedK(2_000));
            let mut p = Pipeline::new(q.clone(), policy).unwrap();
            for e in &log_events {
                p.push(e.clone());
            }
            let report = p.finish();
            prop_assert!(report.total_produced <= truth.total());
            if is_complete {
                prop_assert_eq!(report.total_produced, truth.total());
            }
        }
    }

    /// The analytical recall model always yields values in [0, 1] and is
    /// monotone in K for a fixed selectivity ratio.
    #[test]
    fn recall_model_bounded_and_monotone(delays in proptest::collection::vec(0u64..2_000, 10..500)) {
        let inputs = mswj::core::ModelInputs {
            windows: vec![3_000, 3_000],
            histograms: vec![
                mswj::core::DelayHistogram::from_delays(10, delays.clone()),
                mswj::core::DelayHistogram::from_delays(10, delays),
            ],
            k_sync: vec![0, 0],
            basic_window: 10,
            granularity: 10,
        };
        let model = mswj::core::RecallModel::new(inputs);
        let mut last = 0.0f64;
        for k in (0..2_200).step_by(200) {
            let r = model.estimate_recall(k, 1.0);
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!(r + 1e-9 >= last);
            last = r;
        }
        prop_assert!(model.estimate_recall(2_200, 1.0) > 0.999);
    }
}

//! Lifecycle tests for the resident worker pool
//! (`ExecutionBackend::Pool`) and the remote backend: workers must join
//! cleanly when a session is dropped mid-stream (even with a pipelined
//! epoch still in flight), a panicking worker must surface as a panic on
//! the caller thread instead of a hang, repeated build/finish cycles must
//! not leak threads, and killing a shard-server process mid-epoch must
//! surface a typed [`EngineError::ShardLost`] within the read timeout.
//!
//! Thread-count assertions read `/proc/self/status` and therefore only run
//! on Linux; everywhere else the tests still assert the behavioural part
//! (no hang, clean drop, surfaced panic).  The counting tests serialize on
//! a file-local lock — integration tests share one process, and a pool
//! spawned by a concurrently running test would skew the count.

use mswj::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

static THREAD_COUNT_LOCK: Mutex<()> = Mutex::new(());

/// Live thread count of this process, if the platform exposes it.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Polls until the process thread count drops back to `baseline` — worker
/// exit and `pthread_join` are synchronous, but give the kernel a moment to
/// reap under load.
fn assert_threads_return_to(baseline: usize) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let Some(now) = thread_count() else { return };
        if now <= baseline {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "thread count stuck at {now} (baseline {baseline}) — leaked pool workers"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

fn pool_session(workers: usize) -> Pipeline {
    mswj::session()
        .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 500)
        .on_common_key("a1")
        .no_k_slack()
        .parallelism(ExecutionBackend::Pool { workers })
        .build()
        .unwrap()
}

fn events(n: u64) -> Vec<ArrivalEvent> {
    (1..=n)
        .map(|i| {
            let ts = Timestamp::from_millis(i * 2);
            ArrivalEvent::new(
                ts,
                Tuple::new(
                    ((i % 2) as usize).into(),
                    i,
                    ts,
                    vec![Value::Int(((i / 2) % 8) as i64)],
                ),
            )
        })
        .collect()
}

#[test]
fn workers_join_cleanly_on_drop_mid_stream() {
    let _guard = THREAD_COUNT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let baseline = thread_count();
    {
        let mut pipeline = pool_session(4);
        // One large batch, short enough (800 ms of arrival axis, below the
        // default 1 s checkpoint interval) that no checkpoint barrier runs:
        // the epoch MUST still be outstanding when the session drops.
        pipeline.push_batch_into(events(400), &mut NullSink);
        assert!(
            pipeline.engine().has_outstanding(),
            "the batch must leave a pipelined epoch in flight at drop time"
        );
    }
    if let Some(base) = baseline {
        assert_threads_return_to(base);
    }
}

#[test]
fn repeated_finish_and_rebuild_cycles_leak_no_threads() {
    let _guard = THREAD_COUNT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let baseline = thread_count();
    for round in 0..16 {
        let mut pipeline = pool_session(1 + round % 4);
        let mut sink = CountingSink::default();
        for chunk in events(200).chunks(64) {
            pipeline.push_batch_into(chunk.iter().cloned(), &mut sink);
        }
        let report = pipeline.finish_into(&mut sink);
        assert!(report.total_produced > 0, "round {round} produced results");
    }
    if let Some(base) = baseline {
        assert_threads_return_to(base);
    }
}

#[test]
fn panicking_worker_surfaces_as_error_not_hang() {
    let _guard = THREAD_COUNT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let baseline = thread_count();
    {
        // A predicate condition is unpartitionable (one broadcast shard),
        // so the poisoned tuple reliably reaches the pool's single resident
        // worker once the batch crosses the inline threshold.
        let pipeline = mswj::session()
            .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 500)
            .on_predicate("explodes-on-13", |tuples| {
                if tuples.iter().any(|t| t.value(0) == Some(&Value::Int(13))) {
                    panic!("synthetic shard-worker failure");
                }
                true
            })
            .no_k_slack()
            .parallelism(ExecutionBackend::Pool { workers: 2 })
            .build()
            .unwrap();
        let poisoned: Vec<ArrivalEvent> = (1..=256u64)
            .map(|i| {
                let ts = Timestamp::from_millis(i * 2);
                let key = if i == 200 { 13 } else { (i % 5) as i64 };
                ArrivalEvent::new(
                    ts,
                    Tuple::new(((i % 2) as usize).into(), i, ts, vec![Value::Int(key)]),
                )
            })
            .collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut pipeline = pipeline;
            pipeline.push_batch_into(poisoned, &mut NullSink);
            // The epoch may be deferred; the end-of-stream barrier must
            // re-raise the worker's panic on this thread.
            let _ = pipeline.finish_into(&mut NullSink);
        }));
        let payload = result.expect_err("the worker panic must surface to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("synthetic shard-worker failure"),
            "the original panic payload must be preserved, got: {msg:?}"
        );
    }
    // The pool (dropped during the unwind) must still have joined its
    // workers — a panicked worker, and its healthy siblings, all exit.
    if let Some(base) = baseline {
        assert_threads_return_to(base);
    }
}

#[test]
fn killed_shard_server_surfaces_shard_lost_not_a_hang() {
    let _guard = THREAD_COUNT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let baseline = thread_count();
    let elapsed;
    {
        // A real shard-server process over a Unix-domain socket.
        let sock = std::env::temp_dir().join(format!("mswj-lifecycle-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_mswj-shardd"))
            .arg("--uds")
            .arg(&sock)
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawning mswj-shardd");
        let mut pipeline = mswj::session()
            .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 500)
            .on_common_key("a1")
            .no_k_slack()
            .parallelism(ExecutionBackend::Remote {
                endpoints: vec![Endpoint::Uds(sock.clone()); 2],
            })
            .build()
            .unwrap();
        // Leave an epoch in flight (800 ms of arrival axis, below the 1 s
        // checkpoint interval, so no barrier has collected it yet)...
        pipeline.push_batch_into(events(400), &mut NullSink);
        assert!(
            pipeline.engine().has_outstanding(),
            "the batch must leave a remote epoch in flight"
        );
        // ...then kill the daemon under it.
        child.kill().expect("killing mswj-shardd");
        child.wait().expect("reaping mswj-shardd");
        let _ = std::fs::remove_file(&sock);
        let start = std::time::Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut pipeline = pipeline;
            pipeline.push_batch_into(events(400), &mut NullSink);
            let _ = pipeline.finish_into(&mut NullSink);
        }));
        elapsed = start.elapsed();
        let payload = result.expect_err("a dead shard server must surface as a panic");
        match payload.downcast_ref::<EngineError>() {
            Some(EngineError::ShardLost { shard, detail }) => {
                assert!(*shard < 2, "shard index in range, got {shard}");
                assert!(
                    detail.contains("uds:"),
                    "detail names the endpoint: {detail}"
                );
            }
            Some(other) => panic!("expected ShardLost, got {other}"),
            None => panic!("the panic payload must be a typed EngineError"),
        }
    }
    // A killed peer fails fast (EOF/EPIPE), far inside the 10 s read
    // timeout that bounds even a silent-but-alive peer.
    assert!(
        elapsed < std::time::Duration::from_secs(10),
        "ShardLost must surface within the read timeout, took {elapsed:?}"
    );
    // The session (dropped during the unwind, with a dead peer and a
    // best-effort shutdown handshake that cannot complete) must still
    // release every local thread.
    if let Some(base) = baseline {
        assert_threads_return_to(base);
    }
}

#[test]
fn sync_after_drop_boundary_is_idempotent() {
    // `finish_into` after heavy pipelined traffic: every deferred epoch is
    // collected exactly once, the report's counters reconcile, and a fresh
    // session can be built immediately after.
    for _ in 0..3 {
        let mut pipeline = pool_session(3);
        let mut sink = CountingSink::default();
        for chunk in events(600).chunks(150) {
            pipeline.push_batch_into(chunk.iter().cloned(), &mut sink);
        }
        let report = pipeline.finish_into(&mut sink);
        let shard_results: u64 = report.shard_stats.iter().map(|s| s.operator.results).sum();
        assert_eq!(shard_results, report.total_produced);
        let enqueued: u64 = report
            .shard_stats
            .iter()
            .map(|s| s.runtime.epochs_enqueued)
            .sum();
        let executed: u64 = report
            .shard_stats
            .iter()
            .map(|s| s.runtime.epochs_executed)
            .sum();
        assert_eq!(enqueued, executed, "every submitted epoch was collected");
        assert!(executed > 0, "150-event batches run through the pool");
    }
}

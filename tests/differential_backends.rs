//! Differential harness for the sharded execution backends.
//!
//! Every randomized m-way workload is run through sessions that differ
//! **only** in the execution backend of the join stage:
//! [`ExecutionBackend::Sequential`] (one shard, byte-identical to the
//! pre-engine pipeline), `Threads(1)` (the sharded machinery on one shard),
//! `Threads(4)` (key-partitioned across four shards, executed by four
//! scoped workers per batch, merged in deterministic shard order) and
//! `Pool { workers: 4 }` (the same four shards on **resident** workers with
//! pipelined, epoch-deferred ingestion — both batched, where epochs
//! actually defer, and single-event, where the sub-threshold inline
//! fallback runs).  The sessions must emit byte-identical multisets of
//! [`JoinResult`]s, the same per-probe result trajectory and — because the
//! engine computes `n_x(e)` and expiry globally, and the pipeline places an
//! epoch barrier at every checkpoint and buffer-size change — the very same
//! adaptation (checkpoint-K) sequence, under out-of-order arrivals, K-slack
//! shrinks and expansions, checkpoint-forced intermediate flushes,
//! common-key and star shapes, adversarial mixed-type keys and
//! unpartitionable conditions.
//!
//! Well over 60 randomized workloads run across the tests below
//! (30 common-key + 15 star + 15 mixed-type + 6 unpartitionable), each
//! compared across the backend/batching matrix above — which also includes
//! `Remote` with in-process shard servers, so every workload additionally
//! round-trips all of its epochs, barriers and skew migrations through the
//! versioned wire codec.  A separate test drives the `Remote` backend
//! against real `mswj-shardd` processes over Unix-domain sockets.

use mswj::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A running `mswj-shardd` child serving a Unix-domain socket, killed (and
/// its socket file removed) on drop.
struct Shardd {
    child: std::process::Child,
    path: std::path::PathBuf,
}

impl Shardd {
    /// Spawns the daemon on a fresh socket path; `Socket::connect`'s retry
    /// loop absorbs the bind race.
    fn spawn(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("mswj-{}-{tag}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let child = std::process::Command::new(env!("CARGO_BIN_EXE_mswj-shardd"))
            .arg("--uds")
            .arg(&path)
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawning mswj-shardd");
        Shardd { child, path }
    }

    /// A remote backend with `shards` connections to this daemon (each
    /// connection gets its own shard operator server-side).
    fn backend(&self, shards: usize) -> ExecutionBackend {
        ExecutionBackend::Remote {
            endpoints: vec![Endpoint::Uds(self.path.clone()); shards],
        }
    }
}

impl Drop for Shardd {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Canonical multiset encoding of materialized results.
fn canon(results: &[JoinResult]) -> Vec<String> {
    let mut v: Vec<String> = results.iter().map(|r| r.to_string()).collect();
    v.sort();
    v
}

/// Runs one materializing session over `events` on the given backend.
/// `batch` > 1 drives it through `push_batch_into` in chunks of that size.
fn run(
    query: &JoinQuery,
    policy: &BufferPolicy,
    backend: ExecutionBackend,
    batch: usize,
    events: &[ArrivalEvent],
) -> (Vec<String>, RunReport) {
    run_with_skew(query, policy, backend, batch, events, None)
}

/// Like [`run`], optionally arming adaptive hot-key splitting.
fn run_with_skew(
    query: &JoinQuery,
    policy: &BufferPolicy,
    backend: ExecutionBackend,
    batch: usize,
    events: &[ArrivalEvent],
    skew: Option<SkewConfig>,
) -> (Vec<String>, RunReport) {
    run_session(query, policy, backend, batch, events, skew, None)
}

/// Like [`run`], optionally arming runtime probe re-planning.
fn run_with_replan(
    query: &JoinQuery,
    policy: &BufferPolicy,
    backend: ExecutionBackend,
    batch: usize,
    events: &[ArrivalEvent],
    replan: ReplanConfig,
) -> (Vec<String>, RunReport) {
    run_session(query, policy, backend, batch, events, None, Some(replan))
}

#[allow(clippy::too_many_arguments)]
fn run_session(
    query: &JoinQuery,
    policy: &BufferPolicy,
    backend: ExecutionBackend,
    batch: usize,
    events: &[ArrivalEvent],
    skew: Option<SkewConfig>,
    replan: Option<ReplanConfig>,
) -> (Vec<String>, RunReport) {
    let mut builder = Pipeline::builder()
        .query(query.clone())
        .policy(policy.clone())
        .parallelism(backend)
        .materialize_results();
    if let Some(config) = skew {
        builder = builder.skew_splitting_with(config);
    }
    if let Some(config) = replan {
        builder = builder.runtime_replanning_with(config);
    }
    let mut pipeline = builder.build().unwrap();
    let mut sink = CollectSink::default();
    if batch <= 1 {
        for e in events {
            pipeline.push_into(e.clone(), &mut sink);
        }
    } else {
        for chunk in events.chunks(batch) {
            pipeline.push_batch_into(chunk.iter().cloned(), &mut sink);
        }
    }
    let report = pipeline.finish_into(&mut sink);
    assert_eq!(
        sink.results.len() as u64,
        report.total_produced,
        "sink must see exactly the results the report counts"
    );
    let shard_results: u64 = report.shard_stats.iter().map(|s| s.operator.results).sum();
    assert_eq!(
        shard_results, report.total_produced,
        "per-shard result counters must sum to the total"
    );
    (canon(&sink.results), report)
}

/// Asserts that the scoped-thread and resident-pool backends agree with the
/// `Sequential` reference on results, per-probe trajectory, ordering
/// statistics and the adaptation (checkpoint-K) sequence — batched (where
/// `Pool` epochs defer across flush boundaries) as well as single-event
/// (where the sub-threshold inline fallback runs); returns the sequential
/// report.
fn assert_backends_agree(
    query: &JoinQuery,
    policy: &BufferPolicy,
    events: &[ArrivalEvent],
    label: &str,
) -> RunReport {
    let (seq_results, seq_report) = run(query, policy, ExecutionBackend::Sequential, 1, events);
    for (backend, batch) in [
        (ExecutionBackend::Threads(1), 1),
        (ExecutionBackend::Threads(4), 64),
        (ExecutionBackend::Pool { workers: 4 }, 64),
        (ExecutionBackend::Pool { workers: 4 }, 1),
        // In-process shard servers: every epoch and barrier crosses the
        // wire codec; the workload must survive serialization unchanged.
        (ExecutionBackend::remote_inproc(4), 64),
    ] {
        let (results, report) = run(query, policy, backend.clone(), batch, events);
        assert_eq!(
            seq_results, results,
            "[{label}] {backend} must produce a byte-identical result multiset"
        );
        assert_eq!(seq_report.total_produced, report.total_produced);
        assert_eq!(
            seq_report.produced, report.produced,
            "[{label}] {backend} per-probe result trajectory diverged"
        );
        let ks = |r: &RunReport| r.checkpoints.iter().map(|c| c.k).collect::<Vec<_>>();
        assert_eq!(
            ks(&seq_report),
            ks(&report),
            "[{label}] {backend} adaptation trajectory diverged"
        );
        let s = (seq_report.operator_stats, report.operator_stats);
        assert_eq!(s.0.in_order, s.1.in_order, "[{label}] {backend}");
        assert_eq!(s.0.out_of_order, s.1.out_of_order, "[{label}] {backend}");
        assert_eq!(s.0.dropped, s.1.dropped, "[{label}] {backend}");
        assert_eq!(s.0.expired, s.1.expired, "[{label}] {backend}");
        assert_eq!(s.0.cross_results, s.1.cross_results, "[{label}] {backend}");
    }
    seq_report
}

/// Rotates through every buffer-size policy, biased towards quality-driven
/// sessions whose adaptation both shrinks and expands K mid-run.
fn policy_for(case: usize, rng: &mut StdRng) -> BufferPolicy {
    match case % 5 {
        0 => BufferPolicy::NoKSlack,
        1 => BufferPolicy::MaxKSlack,
        2 => BufferPolicy::FixedK(rng.gen_range(40u64..400)),
        _ => BufferPolicy::QualityDriven(
            DisorderConfig::with_gamma(rng.gen_range(0.7f64..0.99))
                .period(1_000)
                .interval(250)
                .granularity(20)
                .basic_window(20),
        ),
    }
}

/// One tuple every 10 ms per stream, with bursty delays (alternating calm
/// and chaotic phases) so adaptive policies shrink *and* expand K.
fn gen_events(
    rng: &mut StdRng,
    m: usize,
    per_stream: usize,
    max_delay: u64,
    mut value_of: impl FnMut(&mut StdRng, usize, i64) -> Vec<Value>,
    domain: i64,
) -> Vec<ArrivalEvent> {
    let mut events = Vec::with_capacity(m * per_stream);
    for stream in 0..m {
        for j in 0..per_stream {
            let arrival = (j as u64 + 1) * 10 + rng.gen_range(0u64..5);
            let calm = (j / 15) % 2 == 0;
            let delay = if calm {
                rng.gen_range(0u64..=max_delay / 8 + 1)
            } else {
                rng.gen_range(0u64..=max_delay)
            };
            let ts = arrival.saturating_sub(delay);
            let key = rng.gen_range(0i64..domain);
            events.push(ArrivalEvent::new(
                Timestamp::from_millis(arrival),
                Tuple::new(
                    stream.into(),
                    j as u64,
                    Timestamp::from_millis(ts),
                    value_of(rng, stream, key),
                ),
            ));
        }
    }
    ArrivalLog::from_events(events).events().to_vec()
}

fn common_key_query(m: usize, window: u64) -> JoinQuery {
    let streams =
        StreamSet::homogeneous(m, Schema::new(vec![("a1", FieldType::Int)]), window).unwrap();
    let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
    JoinQuery::new("diff-backend-common", streams, cond).unwrap()
}

/// 3-way star: anchor S1(a1, a2) joined with S2(a1) and S3(a2) — S3 is
/// outside the partition pair and exercises the broadcast path.
fn star_query(window: u64) -> JoinQuery {
    let streams = StreamSet::new(vec![
        StreamSpec::new(
            "S1",
            Schema::new(vec![("a1", FieldType::Int), ("a2", FieldType::Int)]),
            window,
        ),
        StreamSpec::new("S2", Schema::new(vec![("a1", FieldType::Int)]), window),
        StreamSpec::new("S3", Schema::new(vec![("a2", FieldType::Int)]), window),
    ])
    .unwrap();
    let cond =
        Arc::new(StarEquiJoin::new(&streams, 0, &[(1, "a1", "a1"), (2, "a2", "a2")]).unwrap());
    JoinQuery::new("diff-backend-star", streams, cond).unwrap()
}

#[test]
fn common_key_workloads_agree_across_backends() {
    let mut k_shrunk = false;
    let mut k_expanded = false;
    let mut any_results = 0u64;
    for case in 0..30usize {
        let mut rng = StdRng::seed_from_u64(0x0BAC_CE4D + case as u64);
        let m = 2 + case % 2;
        let window = if m == 2 {
            rng.gen_range(300u64..1_200)
        } else {
            rng.gen_range(200u64..500)
        };
        let domain = if m == 2 { 6 } else { 8 };
        let query = common_key_query(m, window);
        let policy = policy_for(case, &mut rng);
        let events = gen_events(
            &mut rng,
            m,
            if m == 2 { 90 } else { 70 },
            300,
            |_, _, key| vec![Value::Int(key)],
            domain,
        );
        let report = assert_backends_agree(&query, &policy, &events, &format!("common #{case}"));
        any_results += report.total_produced;
        for w in report.checkpoints.windows(2) {
            k_shrunk |= w[1].k < w[0].k;
            k_expanded |= w[1].k > w[0].k;
        }
    }
    assert!(any_results > 0, "workloads must derive join results");
    assert!(
        k_shrunk && k_expanded,
        "adaptive sessions must both shrink and expand K across the workloads \
         (shrunk: {k_shrunk}, expanded: {k_expanded})"
    );
}

#[test]
fn star_workloads_agree_across_backends() {
    let mut any_results = 0u64;
    for case in 0..15usize {
        let mut rng = StdRng::seed_from_u64(0x57A2_BACC + case as u64);
        let window = rng.gen_range(200u64..500);
        let query = star_query(window);
        let policy = policy_for(case, &mut rng);
        let events = gen_events(
            &mut rng,
            3,
            70,
            250,
            |rng, stream, key| {
                if stream == 0 {
                    vec![Value::Int(key), Value::Int(rng.gen_range(0i64..5))]
                } else {
                    vec![Value::Int(key)]
                }
            },
            5,
        );
        let report = assert_backends_agree(&query, &policy, &events, &format!("star #{case}"));
        any_results += report.total_produced;
    }
    assert!(any_results > 0, "star workloads must derive join results");
}

#[test]
fn mixed_type_keys_agree_across_backends() {
    // Adversarial key columns: floats that join integers numerically
    // (join_eq coercion — the partitioner must route them with the
    // integer's hash), floats that join nothing, Nulls and strings.
    let mut any_results = 0u64;
    for case in 0..15usize {
        let mut rng = StdRng::seed_from_u64(0xF10A_7BAC + case as u64);
        let m = 2 + case % 2;
        let window = if m == 2 { 600 } else { 350 };
        let query = common_key_query(m, window);
        let policy = policy_for(case + 3, &mut rng);
        let events = gen_events(
            &mut rng,
            m,
            60,
            200,
            |rng, _, key| {
                let roll = rng.gen_range(0u64..20);
                vec![match roll {
                    0 => Value::Float(key as f64),       // numerically joins Int(key)
                    1 => Value::Float(key as f64 + 0.5), // joins nothing
                    2 => Value::Null,
                    3 => Value::Str(format!("s{key}")),
                    _ => Value::Int(key),
                }]
            },
            4,
        );
        let report = assert_backends_agree(&query, &policy, &events, &format!("mixed #{case}"));
        any_results += report.total_produced;
    }
    assert!(any_results > 0, "mixed workloads must derive join results");
}

#[test]
fn unpartitionable_conditions_fall_back_to_one_shard() {
    // Cross joins, band joins and forced nested-loop probes expose no key
    // to partition on: the parallel backends must transparently degrade to
    // a single broadcast shard and still match the sequential reference.
    for case in 0..6usize {
        let mut rng = StdRng::seed_from_u64(0x0B0A_DCA5 + case as u64);
        let policy = policy_for(case, &mut rng);
        let events = gen_events(&mut rng, 2, 50, 150, |_, _, key| vec![Value::Int(key)], 3);
        let streams =
            StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), 300).unwrap();
        let query = match case % 2 {
            0 => JoinQuery::new("diff-cross", streams, Arc::new(CrossJoin::new(2))).unwrap(),
            _ => JoinQuery::new(
                "diff-band",
                streams.clone(),
                Arc::new(BandJoin::new(&streams, "a1", 1.0).unwrap()),
            )
            .unwrap(),
        };
        let label = format!("unpartitionable #{case}");
        let _ = assert_backends_agree(&query, &policy, &events, &label);
        // The engine must have collapsed to one shard on both backends.
        for backend in [
            ExecutionBackend::Threads(4),
            ExecutionBackend::Pool { workers: 4 },
            ExecutionBackend::remote_inproc(4),
        ] {
            let p = Pipeline::builder()
                .query(query.clone())
                .policy(policy.clone())
                .parallelism(backend.clone())
                .build()
                .unwrap();
            assert_eq!(p.engine().shard_count(), 1, "[{label}] {backend}");
        }
    }
}

#[test]
fn skewed_workloads_with_splitting_match_the_unsplit_reference() {
    // Zipf-hot workloads with adaptive hot-key splitting forced on
    // (aggressive thresholds so the small workloads actually transition):
    // every split backend must still be byte-identical to the *unsplit*
    // sequential reference — same result multiset, per-probe trajectory,
    // adaptation (checkpoint-K) sequence and ordering statistics — through
    // K shrinks/expands, checkpoints and expiry.
    let skew = SkewConfig {
        split_share: 0.3,
        unsplit_share: 0.1,
        min_routed: 48,
    };
    let mut any_split = false;
    let mut any_unsplit = false;
    let mut k_shrunk = false;
    let mut k_expanded = false;
    for case in 0..10usize {
        let mut rng = StdRng::seed_from_u64(0x5917_BA1A + case as u64);
        let window = rng.gen_range(300u64..900);
        let query = common_key_query(2, window);
        let policy = policy_for(case, &mut rng);
        // 60% of each stream's traffic on one hot key; the rest uniform.
        // Odd cases move the hot key to another class halfway through each
        // stream, so the first split also reverts mid-run.
        let shift = case % 2 == 1;
        let mut sent = [0usize; 2];
        let events = gen_events(
            &mut rng,
            2,
            120,
            300,
            |rng, stream, key| {
                let j = sent[stream];
                sent[stream] += 1;
                let hot = if shift && j >= 60 { 13 } else { 7 };
                vec![Value::Int(if rng.gen_bool(0.6) { hot } else { 100 + key })]
            },
            8,
        );
        let label = format!("skewed #{case}");
        let (want, want_report) = run(&query, &policy, ExecutionBackend::Sequential, 1, &events);
        for (backend, batch) in [
            (ExecutionBackend::Threads(4), 64),
            (ExecutionBackend::Pool { workers: 4 }, 64),
            (ExecutionBackend::Pool { workers: 4 }, 1),
            // Split/unsplit transitions migrate build state through
            // fetch-class/adopt/purge frames on this one.
            (ExecutionBackend::remote_inproc(4), 64),
        ] {
            let (results, report) =
                run_with_skew(&query, &policy, backend.clone(), batch, &events, Some(skew));
            assert_eq!(
                want, results,
                "[{label}] {backend} with splitting must match the unsplit reference"
            );
            assert_eq!(want_report.produced, report.produced, "[{label}] {backend}");
            let ks = |r: &RunReport| r.checkpoints.iter().map(|c| c.k).collect::<Vec<_>>();
            assert_eq!(ks(&want_report), ks(&report), "[{label}] {backend}");
            let s = (want_report.operator_stats, report.operator_stats);
            assert_eq!(s.0.in_order, s.1.in_order, "[{label}] {backend}");
            assert_eq!(s.0.out_of_order, s.1.out_of_order, "[{label}] {backend}");
            assert_eq!(s.0.dropped, s.1.dropped, "[{label}] {backend}");
            assert_eq!(s.0.expired, s.1.expired, "[{label}] {backend}");
            any_split |= report.skew_transitions.iter().any(|t| t.split);
            any_unsplit |= report.skew_transitions.iter().any(|t| !t.split);
        }
        for w in want_report.checkpoints.windows(2) {
            k_shrunk |= w[1].k < w[0].k;
            k_expanded |= w[1].k > w[0].k;
        }
    }
    assert!(any_split, "at least one workload must actually split");
    assert!(any_unsplit, "at least one split must revert mid-run");
    assert!(
        k_shrunk && k_expanded,
        "the skewed suite must cover K shrinks and expansions"
    );
}

/// One arrival with a bounded random delay — the hand-rolled workloads
/// below need per-stream rate asymmetry `gen_events` cannot express.
fn event(stream: usize, seq: u64, arrival: u64, delay: u64, values: Vec<Value>) -> ArrivalEvent {
    ArrivalEvent::new(
        Timestamp::from_millis(arrival),
        Tuple::new(
            stream.into(),
            seq,
            Timestamp::from_millis(arrival.saturating_sub(delay)),
            values,
        ),
    )
}

#[test]
fn replanned_workloads_match_the_static_reference() {
    // Runtime re-planning forced on with aggressive thresholds: every
    // revision the engine can take — re-selecting the star partition pair
    // (with cross-shard state migration), reordering the m-way probe chain
    // and demoting the hash index — must leave the result multiset, the
    // per-probe trajectory and the adaptation sequence byte-identical to
    // the *static* sequential reference, on every backend.
    let replan = ReplanConfig {
        min_probes: 64,
        switch_ratio: 1.5,
        demote_fallback_share: 0.5,
        reorder_margin: 1.2,
    };
    let policy = BufferPolicy::QualityDriven(
        DisorderConfig::with_gamma(0.9)
            .period(1_000)
            .interval(250)
            .granularity(20)
            .basic_window(20),
    );

    // Scenario "switch": the star default partitions (S1, S2), but S3
    // floods while S2 trickles — broadcasting the flood replicates it to
    // every shard, so the pair must move to S3, re-keying the anchor and
    // migrating all three windows between shards.
    let mut rng = StdRng::seed_from_u64(0x9E9A_A417);
    let mut switch_events = Vec::new();
    let mut seqs = [0u64; 3];
    for round in 0..120u64 {
        let arrival = (round + 1) * 10;
        let a1 = (round % 8) as i64;
        let a2 = (round % 6) as i64;
        switch_events.push(event(
            0,
            seqs[0],
            arrival,
            rng.gen_range(0u64..40),
            vec![Value::Int(a1), Value::Int(a2)],
        ));
        seqs[0] += 1;
        if round % 4 == 0 {
            switch_events.push(event(
                1,
                seqs[1],
                arrival,
                rng.gen_range(0u64..40),
                vec![Value::Int(a1)],
            ));
            seqs[1] += 1;
        }
        for burst in 0..4u64 {
            switch_events.push(event(
                2,
                seqs[2],
                arrival,
                rng.gen_range(0u64..40),
                vec![Value::Int(((round + burst) % 6) as i64)],
            ));
            seqs[2] += 1;
        }
    }
    let switch_events = ArrivalLog::from_events(switch_events).events().to_vec();

    // Scenario "reorder": 3-way common key with inverted per-stream match
    // rates (stream 1 floods, stream 0 trickles) — the probe chain must
    // re-order ascending by observed productivity.
    let mut reorder_events = Vec::new();
    let mut seqs = [0u64; 3];
    for round in 0..120u64 {
        let arrival = (round + 1) * 10;
        let key = (round % 2) as i64;
        for _ in 0..3u64 {
            reorder_events.push(event(
                1,
                seqs[1],
                arrival,
                rng.gen_range(0u64..40),
                vec![Value::Int(key)],
            ));
            seqs[1] += 1;
        }
        reorder_events.push(event(
            2,
            seqs[2],
            arrival,
            rng.gen_range(0u64..40),
            vec![Value::Int(key)],
        ));
        seqs[2] += 1;
        if round % 4 == 0 {
            reorder_events.push(event(
                0,
                seqs[0],
                arrival,
                rng.gen_range(0u64..40),
                vec![Value::Int(key)],
            ));
            seqs[0] += 1;
        }
    }
    let reorder_events = ArrivalLog::from_events(reorder_events).events().to_vec();

    // Scenario "demote": float keys join numerically but defeat the hash
    // index on every probe — maintenance stopped paying, the index goes.
    let demote_events = gen_events(
        &mut rng,
        2,
        80,
        200,
        |_, _, key| vec![Value::Float(key as f64 + 0.5)],
        4,
    );

    let scenarios: [(&str, JoinQuery, &[ArrivalEvent]); 3] = [
        ("switch", star_query(240), &switch_events),
        ("reorder", common_key_query(3, 400), &reorder_events),
        ("demote", common_key_query(2, 600), &demote_events),
    ];
    let mut any_switch = false;
    let mut any_reorder = false;
    let mut any_demote = false;
    for (name, query, events) in &scenarios {
        let (want, want_report) = run(query, &policy, ExecutionBackend::Sequential, 1, events);
        for (backend, batch) in [
            // Single-shard: pair switches are impossible, reorders and
            // demotions still fire — and must change nothing.
            (ExecutionBackend::Sequential, 1),
            (ExecutionBackend::Threads(4), 64),
            (ExecutionBackend::Pool { workers: 4 }, 64),
            (ExecutionBackend::Pool { workers: 4 }, 1),
            // Revisions and pair-switch migrations cross the wire codec.
            (ExecutionBackend::remote_inproc(4), 64),
        ] {
            let label = format!("replan {name}");
            let (results, report) =
                run_with_replan(query, &policy, backend.clone(), batch, events, replan);
            assert_eq!(
                want, results,
                "[{label}] {backend} re-planned run must match the static reference"
            );
            assert_eq!(want_report.produced, report.produced, "[{label}] {backend}");
            let ks = |r: &RunReport| r.checkpoints.iter().map(|c| c.k).collect::<Vec<_>>();
            assert_eq!(ks(&want_report), ks(&report), "[{label}] {backend}");
            let s = (want_report.operator_stats, report.operator_stats);
            assert_eq!(s.0.in_order, s.1.in_order, "[{label}] {backend}");
            assert_eq!(s.0.out_of_order, s.1.out_of_order, "[{label}] {backend}");
            assert_eq!(s.0.dropped, s.1.dropped, "[{label}] {backend}");
            assert_eq!(s.0.expired, s.1.expired, "[{label}] {backend}");
            assert_eq!(s.0.cross_results, s.1.cross_results, "[{label}] {backend}");
            for t in &report.plan_transitions {
                match t.action {
                    PlanAction::PairSwitch { from, to } => {
                        assert_eq!((from, to), (1, 2), "[{label}] {backend}");
                        any_switch = true;
                        let migrated: u64 = report
                            .shard_stats
                            .iter()
                            .map(|s| s.runtime.migrated_tuples)
                            .sum();
                        assert!(migrated > 0, "[{label}] {backend} must move state");
                    }
                    PlanAction::Reorder { .. } => any_reorder = true,
                    PlanAction::DemoteIndex => any_demote = true,
                }
            }
            let revisions: u64 = report
                .shard_stats
                .iter()
                .map(|s| s.runtime.plan_revisions)
                .sum();
            assert_eq!(
                revisions > 0,
                !report.plan_transitions.is_empty(),
                "[{label}] {backend} revision counters must track transitions"
            );
        }
    }
    assert!(any_switch, "the star workload must re-select its pair");
    assert!(any_reorder, "the inverted rates must reorder the chain");
    assert!(any_demote, "the float keys must demote the index");
}

#[test]
fn zero_worker_backends_are_rejected_at_build() {
    for backend in [
        ExecutionBackend::Threads(0),
        ExecutionBackend::Pool { workers: 0 },
        ExecutionBackend::Remote {
            endpoints: Vec::new(),
        },
    ] {
        let r = Pipeline::builder()
            .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 500)
            .on_common_key("a1")
            .no_k_slack()
            .parallelism(backend.clone())
            .build();
        assert!(r.is_err(), "{backend} must be rejected");
    }
}

#[test]
fn remote_uds_backend_agrees_with_sequential() {
    // Real process separation: four connections to one `mswj-shardd`
    // daemon over a Unix-domain socket, each backing one shard.  A subset
    // of the randomized common-key workloads (plus a skewed one below)
    // keeps the socket suite fast while still covering checkpoints,
    // K-changes and out-of-order arrivals end to end.
    let daemon = Shardd::spawn("diff");
    for case in 0..4usize {
        let mut rng = StdRng::seed_from_u64(0x0BAC_CE4D + case as u64);
        let m = 2 + case % 2;
        let window = if m == 2 {
            rng.gen_range(300u64..1_200)
        } else {
            rng.gen_range(200u64..500)
        };
        let query = common_key_query(m, window);
        let policy = policy_for(case, &mut rng);
        let events = gen_events(
            &mut rng,
            m,
            if m == 2 { 90 } else { 70 },
            300,
            |_, _, key| vec![Value::Int(key)],
            if m == 2 { 6 } else { 8 },
        );
        let label = format!("uds common #{case}");
        let (want, want_report) = run(&query, &policy, ExecutionBackend::Sequential, 1, &events);
        let (got, report) = run(&query, &policy, daemon.backend(4), 64, &events);
        assert_eq!(want, got, "[{label}] result multiset diverged");
        assert_eq!(want_report.produced, report.produced, "[{label}]");
        let ks = |r: &RunReport| r.checkpoints.iter().map(|c| c.k).collect::<Vec<_>>();
        assert_eq!(ks(&want_report), ks(&report), "[{label}]");
        let frames: u64 = report
            .shard_stats
            .iter()
            .map(|s| s.runtime.frames_sent)
            .sum();
        assert!(frames > 0, "[{label}] traffic must cross the socket");
    }
}

#[test]
fn remote_uds_backend_handles_skew_splitting() {
    // Hot-key splitting against real shard-server processes: the build
    // state of the hot class migrates over the socket (fetch-class, adopt,
    // purge frames at barriers) and results stay byte-identical to the
    // unsplit sequential reference.
    let daemon = Shardd::spawn("skew");
    let skew = SkewConfig {
        split_share: 0.3,
        unsplit_share: 0.1,
        min_routed: 48,
    };
    let mut any_split = false;
    for case in 0..2usize {
        let mut rng = StdRng::seed_from_u64(0x5917_BA1A + case as u64);
        let window = rng.gen_range(300u64..900);
        let query = common_key_query(2, window);
        let policy = policy_for(case, &mut rng);
        let shift = case % 2 == 1;
        let mut sent = [0usize; 2];
        let events = gen_events(
            &mut rng,
            2,
            120,
            300,
            |rng, stream, key| {
                let j = sent[stream];
                sent[stream] += 1;
                let hot = if shift && j >= 60 { 13 } else { 7 };
                vec![Value::Int(if rng.gen_bool(0.6) { hot } else { 100 + key })]
            },
            8,
        );
        let label = format!("uds skewed #{case}");
        let (want, want_report) = run(&query, &policy, ExecutionBackend::Sequential, 1, &events);
        let (got, report) =
            run_with_skew(&query, &policy, daemon.backend(4), 64, &events, Some(skew));
        assert_eq!(want, got, "[{label}] result multiset diverged");
        assert_eq!(want_report.produced, report.produced, "[{label}]");
        any_split |= report.skew_transitions.iter().any(|t| t.split);
    }
    assert!(any_split, "the hot key must split over the socket backend");
}

//! Differential suite with the segment capacity forced to 4.
//!
//! The segmented window seals its tail every few rows here, so ordinary
//! workloads constantly cross seal/drop boundaries: multi-segment buckets,
//! whole-segment expiry, boundary-segment prefix expiry, zone-map pruning
//! over many small segments and segment rebuilds under skew surgery.  Every
//! backend must still be byte-identical to the sequential reference — the
//! storage layout is an access-path choice, never an output choice.
//!
//! This file is its own test binary on purpose:
//! [`set_default_segment_capacity`] is process-wide, so the tiny capacity
//! must not leak into the other suites.  Every test sets it first (they all
//! agree on the value, so concurrent test threads are fine).

use mswj::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const TINY_CAPACITY: usize = 4;

/// Canonical multiset encoding of materialized results.
fn canon(results: &[JoinResult]) -> Vec<String> {
    let mut v: Vec<String> = results.iter().map(|r| r.to_string()).collect();
    v.sort();
    v
}

/// Runs one materializing session over `events` on the given backend,
/// optionally arming hot-key splitting.
fn run(
    query: &JoinQuery,
    policy: &BufferPolicy,
    backend: ExecutionBackend,
    batch: usize,
    events: &[ArrivalEvent],
    skew: Option<SkewConfig>,
) -> (Vec<String>, RunReport) {
    let mut builder = Pipeline::builder()
        .query(query.clone())
        .policy(policy.clone())
        .parallelism(backend)
        .materialize_results();
    if let Some(config) = skew {
        builder = builder.skew_splitting_with(config);
    }
    let mut pipeline = builder.build().unwrap();
    let mut sink = CollectSink::default();
    if batch <= 1 {
        for e in events {
            pipeline.push_into(e.clone(), &mut sink);
        }
    } else {
        for chunk in events.chunks(batch) {
            pipeline.push_batch_into(chunk.iter().cloned(), &mut sink);
        }
    }
    let report = pipeline.finish_into(&mut sink);
    assert_eq!(sink.results.len() as u64, report.total_produced);
    (canon(&sink.results), report)
}

/// Asserts every backend matches the sequential reference on results,
/// per-probe trajectory, adaptation sequence and ordering statistics.
fn assert_backends_agree(
    query: &JoinQuery,
    policy: &BufferPolicy,
    events: &[ArrivalEvent],
    label: &str,
) -> RunReport {
    let (seq_results, seq_report) =
        run(query, policy, ExecutionBackend::Sequential, 1, events, None);
    for (backend, batch) in [
        (ExecutionBackend::Threads(1), 1),
        (ExecutionBackend::Threads(4), 64),
        (ExecutionBackend::Pool { workers: 4 }, 64),
        (ExecutionBackend::Pool { workers: 4 }, 1),
        (ExecutionBackend::remote_inproc(4), 64),
    ] {
        let (results, report) = run(query, policy, backend.clone(), batch, events, None);
        assert_eq!(
            seq_results, results,
            "[{label}] {backend} must produce a byte-identical result multiset \
             with segment capacity {TINY_CAPACITY}"
        );
        assert_eq!(seq_report.produced, report.produced, "[{label}] {backend}");
        let ks = |r: &RunReport| r.checkpoints.iter().map(|c| c.k).collect::<Vec<_>>();
        assert_eq!(ks(&seq_report), ks(&report), "[{label}] {backend}");
        let s = (seq_report.operator_stats, report.operator_stats);
        assert_eq!(s.0.in_order, s.1.in_order, "[{label}] {backend}");
        assert_eq!(s.0.out_of_order, s.1.out_of_order, "[{label}] {backend}");
        assert_eq!(s.0.dropped, s.1.dropped, "[{label}] {backend}");
        assert_eq!(s.0.expired, s.1.expired, "[{label}] {backend}");
        assert_eq!(s.0.cross_results, s.1.cross_results, "[{label}] {backend}");
    }
    seq_report
}

/// Rotates through the buffer-size policies.
fn policy_for(case: usize, rng: &mut StdRng) -> BufferPolicy {
    match case % 5 {
        0 => BufferPolicy::NoKSlack,
        1 => BufferPolicy::MaxKSlack,
        2 => BufferPolicy::FixedK(rng.gen_range(40u64..400)),
        _ => BufferPolicy::QualityDriven(
            DisorderConfig::with_gamma(rng.gen_range(0.7f64..0.99))
                .period(1_000)
                .interval(250)
                .granularity(20)
                .basic_window(20),
        ),
    }
}

/// One tuple every 10 ms per stream with bursty delays (see the main
/// differential harness; this is the same generator at reduced scale).
fn gen_events(
    rng: &mut StdRng,
    m: usize,
    per_stream: usize,
    max_delay: u64,
    mut value_of: impl FnMut(&mut StdRng, usize, i64) -> Vec<Value>,
    domain: i64,
) -> Vec<ArrivalEvent> {
    let mut events = Vec::with_capacity(m * per_stream);
    for stream in 0..m {
        for j in 0..per_stream {
            let arrival = (j as u64 + 1) * 10 + rng.gen_range(0u64..5);
            let calm = (j / 15) % 2 == 0;
            let delay = if calm {
                rng.gen_range(0u64..=max_delay / 8 + 1)
            } else {
                rng.gen_range(0u64..=max_delay)
            };
            let ts = arrival.saturating_sub(delay);
            let key = rng.gen_range(0i64..domain);
            events.push(ArrivalEvent::new(
                Timestamp::from_millis(arrival),
                Tuple::new(
                    stream.into(),
                    j as u64,
                    Timestamp::from_millis(ts),
                    value_of(rng, stream, key),
                ),
            ));
        }
    }
    ArrivalLog::from_events(events).events().to_vec()
}

fn common_key_query(m: usize, window: u64) -> JoinQuery {
    let streams =
        StreamSet::homogeneous(m, Schema::new(vec![("a1", FieldType::Int)]), window).unwrap();
    let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
    JoinQuery::new("segment-boundary-common", streams, cond).unwrap()
}

fn star_query(window: u64) -> JoinQuery {
    let streams = StreamSet::new(vec![
        StreamSpec::new(
            "S1",
            Schema::new(vec![("a1", FieldType::Int), ("a2", FieldType::Int)]),
            window,
        ),
        StreamSpec::new("S2", Schema::new(vec![("a1", FieldType::Int)]), window),
        StreamSpec::new("S3", Schema::new(vec![("a2", FieldType::Int)]), window),
    ])
    .unwrap();
    let cond =
        Arc::new(StarEquiJoin::new(&streams, 0, &[(1, "a1", "a1"), (2, "a2", "a2")]).unwrap());
    JoinQuery::new("segment-boundary-star", streams, cond).unwrap()
}

#[test]
fn tiny_capacity_takes_effect_in_this_process() {
    set_default_segment_capacity(TINY_CAPACITY);
    // Windows built after the override must seal every 4 rows — otherwise
    // the suite below would silently run at the production capacity and
    // exercise no boundaries at all.
    let mut w = Window::with_indexed_columns(100_000, &[0]);
    for i in 0..20u64 {
        w.insert(Tuple::new(
            0.into(),
            i,
            Timestamp::from_millis(10 * (i + 1)),
            vec![Value::Int((i % 3) as i64)],
        ));
    }
    let s = w.stats();
    assert_eq!(s.segments, 5, "20 rows at capacity 4 must span 5 segments");
    assert_eq!(s.sealed_segments, 4);
}

#[test]
fn common_key_workloads_agree_at_segment_boundaries() {
    set_default_segment_capacity(TINY_CAPACITY);
    let mut any_results = 0u64;
    for case in 0..6usize {
        let mut rng = StdRng::seed_from_u64(0x5E61_0BAC + case as u64);
        let m = 2 + case % 2;
        let window = if m == 2 {
            rng.gen_range(300u64..1_200)
        } else {
            rng.gen_range(200u64..500)
        };
        let query = common_key_query(m, window);
        let policy = policy_for(case, &mut rng);
        let events = gen_events(
            &mut rng,
            m,
            if m == 2 { 90 } else { 70 },
            300,
            |_, _, key| vec![Value::Int(key)],
            if m == 2 { 6 } else { 8 },
        );
        let report =
            assert_backends_agree(&query, &policy, &events, &format!("seg common #{case}"));
        any_results += report.total_produced;
    }
    assert!(any_results > 0, "workloads must derive join results");
}

#[test]
fn star_workloads_agree_at_segment_boundaries() {
    set_default_segment_capacity(TINY_CAPACITY);
    let mut any_results = 0u64;
    for case in 0..4usize {
        let mut rng = StdRng::seed_from_u64(0x5E61_57A2 + case as u64);
        let window = rng.gen_range(200u64..500);
        let query = star_query(window);
        let policy = policy_for(case, &mut rng);
        let events = gen_events(
            &mut rng,
            3,
            70,
            250,
            |rng, stream, key| {
                if stream == 0 {
                    vec![Value::Int(key), Value::Int(rng.gen_range(0i64..5))]
                } else {
                    vec![Value::Int(key)]
                }
            },
            5,
        );
        let report = assert_backends_agree(&query, &policy, &events, &format!("seg star #{case}"));
        any_results += report.total_produced;
    }
    assert!(any_results > 0, "star workloads must derive join results");
}

#[test]
fn mixed_type_keys_agree_at_segment_boundaries() {
    // Floats, strings and Nulls land in tiny segments: the zone maps must
    // track string/bool residency per segment and the fallback scans must
    // prune without losing a single numeric coercion match.
    set_default_segment_capacity(TINY_CAPACITY);
    let mut any_results = 0u64;
    for case in 0..4usize {
        let mut rng = StdRng::seed_from_u64(0x5E61_F10A + case as u64);
        let m = 2 + case % 2;
        let window = if m == 2 { 600 } else { 350 };
        let query = common_key_query(m, window);
        let policy = policy_for(case + 3, &mut rng);
        let events = gen_events(
            &mut rng,
            m,
            60,
            200,
            |rng, _, key| {
                let roll = rng.gen_range(0u64..20);
                vec![match roll {
                    0 => Value::Float(key as f64),       // numerically joins Int(key)
                    1 => Value::Float(key as f64 + 0.5), // joins nothing
                    2 => Value::Null,
                    3 => Value::Str(format!("s{key}")),
                    _ => Value::Int(key),
                }]
            },
            4,
        );
        let report = assert_backends_agree(&query, &policy, &events, &format!("seg mixed #{case}"));
        any_results += report.total_produced;
    }
    assert!(any_results > 0, "mixed workloads must derive join results");
}

#[test]
fn skewed_splitting_agrees_at_segment_boundaries() {
    // Hot-key splitting exercises `retain_where` surgery (segment rebuilds)
    // and `adopt` migration into tiny tails, against the unsplit reference.
    set_default_segment_capacity(TINY_CAPACITY);
    let skew = SkewConfig {
        split_share: 0.3,
        unsplit_share: 0.1,
        min_routed: 48,
    };
    let mut any_split = false;
    for case in 0..2usize {
        let mut rng = StdRng::seed_from_u64(0x5E61_5917 + case as u64);
        let window = rng.gen_range(300u64..900);
        let query = common_key_query(2, window);
        let policy = policy_for(case, &mut rng);
        let shift = case % 2 == 1;
        let mut sent = [0usize; 2];
        let events = gen_events(
            &mut rng,
            2,
            120,
            300,
            |rng, stream, key| {
                let j = sent[stream];
                sent[stream] += 1;
                let hot = if shift && j >= 60 { 13 } else { 7 };
                vec![Value::Int(if rng.gen_bool(0.6) { hot } else { 100 + key })]
            },
            8,
        );
        let label = format!("seg skewed #{case}");
        let (want, want_report) = run(
            &query,
            &policy,
            ExecutionBackend::Sequential,
            1,
            &events,
            None,
        );
        for (backend, batch) in [
            (ExecutionBackend::Threads(4), 64),
            (ExecutionBackend::Pool { workers: 4 }, 64),
            (ExecutionBackend::remote_inproc(4), 64),
        ] {
            let (results, report) =
                run(&query, &policy, backend.clone(), batch, &events, Some(skew));
            assert_eq!(
                want, results,
                "[{label}] {backend} with splitting must match the unsplit reference"
            );
            assert_eq!(want_report.produced, report.produced, "[{label}] {backend}");
            any_split |= report.skew_transitions.iter().any(|t| t.split);
        }
    }
    assert!(any_split, "at least one workload must actually split");
}

#[test]
fn window_bytes_are_reported_per_shard() {
    set_default_segment_capacity(TINY_CAPACITY);
    let mut rng = StdRng::seed_from_u64(0x5E61_0B17);
    let query = common_key_query(2, 800);
    let events = gen_events(&mut rng, 2, 80, 100, |_, _, key| vec![Value::Int(key)], 6);
    for backend in [ExecutionBackend::Sequential, ExecutionBackend::Threads(4)] {
        let mut pipeline = Pipeline::builder()
            .query(query.clone())
            .policy(BufferPolicy::FixedK(100))
            .parallelism(backend.clone())
            .build()
            .unwrap();
        let mut sink = CountingSink::default();
        // Snapshot mid-run, while the windows are still populated.
        for e in &events {
            pipeline.push_into(e.clone(), &mut sink);
        }
        let bytes: u64 = pipeline
            .engine()
            .shard_stats()
            .iter()
            .map(|s| s.runtime.window_bytes)
            .sum();
        assert!(bytes > 0, "{backend}: live windows must report bytes");
        let shards = pipeline.engine().shard_count();
        let report = pipeline.finish_into(&mut sink);
        assert_eq!(report.shard_stats.len(), shards);
    }
}

//! Empirical check of Theorem 1 (the Same-K policy): for any heterogeneous
//! configuration of per-stream K-slack buffer sizes there is an equivalent
//! common buffer size that yields the same join output.
//!
//! The theorem's equivalent common value is
//! `k = min_i(iT) - min_i(iT - k_i)`; for the stationary workloads used here
//! (both streams progress at the same rate, so `iT` is the same for both)
//! that is simply `max_i k_i`.

use mswj::prelude::*;
use std::sync::Arc;

/// A two-stream workload where both streams advance in lock-step and each
/// stream has periodic late tuples.
fn workload(n: u64) -> Vec<ArrivalEvent> {
    let mut events = Vec::new();
    for i in 1..=n {
        let t = i * 10;
        let ts0 = if i % 7 == 0 { t.saturating_sub(160) } else { t };
        let ts1 = if i % 11 == 0 {
            t.saturating_sub(320)
        } else {
            t
        };
        events.push(ArrivalEvent::new(
            Timestamp::from_millis(t),
            Tuple::new(
                0.into(),
                i,
                Timestamp::from_millis(ts0),
                vec![Value::Int((i % 5) as i64)],
            ),
        ));
        events.push(ArrivalEvent::new(
            Timestamp::from_millis(t),
            Tuple::new(
                1.into(),
                i,
                Timestamp::from_millis(ts1),
                vec![Value::Int((i % 5) as i64)],
            ),
        ));
    }
    events
}

fn query() -> JoinQuery {
    let streams =
        StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), 1_000).unwrap();
    let condition = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
    JoinQuery::new("same-k", streams, condition).unwrap()
}

/// Runs the raw component chain (K-slack per stream -> Synchronizer -> join
/// operator) with explicit per-stream buffer sizes and returns the total
/// number of produced results.
fn run_with_buffers(k0: u64, k1: u64, events: &[ArrivalEvent]) -> u64 {
    let mut ks = vec![mswj::core::KSlack::new(k0), mswj::core::KSlack::new(k1)];
    let mut sync = mswj::core::Synchronizer::new(2);
    let mut op = MswjOperator::new(query());
    let feed = |tuples: Vec<Tuple>, sync: &mut mswj::core::Synchronizer, op: &mut MswjOperator| {
        for t in tuples {
            for s in sync.push(t) {
                op.push(s);
            }
        }
    };
    for event in events {
        let released = ks[event.stream().as_usize()].push(event.tuple.clone());
        feed(released, &mut sync, &mut op);
    }
    // Flush everything at end of stream, preserving timestamp order.
    let mut tail: Vec<Tuple> = Vec::new();
    for k in &mut ks {
        tail.extend(k.flush());
    }
    tail.sort_by_key(|t| t.ts);
    feed(tail, &mut sync, &mut op);
    for t in sync.flush() {
        op.push(t);
    }
    op.stats().results
}

#[test]
fn heterogeneous_buffers_match_equivalent_common_buffer() {
    // Theorem 1 equates the *total* per-stream buffering (explicit K-slack
    // plus the implicit synchronizer buffer); the discrete implementation
    // can still process a handful of tuples in a different relative order at
    // the moment a late tuple crosses the buffer boundary, so we assert that
    // the produced output matches the equivalent common-K configuration up
    // to a sub-percent edge effect.
    let events = workload(2_000);
    for (k0, k1) in [(0u64, 200u64), (200, 0), (100, 300), (400, 150)] {
        // Both streams share the same iT trajectory, so Theorem 1's common
        // value reduces to max(k0, k1).
        let common = k0.max(k1);
        let hetero = run_with_buffers(k0, k1, &events) as f64;
        let same_k = run_with_buffers(common, common, &events) as f64;
        let rel_diff = (hetero - same_k).abs() / same_k.max(1.0);
        assert!(
            rel_diff < 0.01,
            "config ({k0},{k1}) deviates from common K = {common} by {:.3}%",
            rel_diff * 100.0
        );
    }

    // When only one stream is buffered and the other is perfectly in order,
    // the equivalence is exact.
    let mut ordered = workload(500);
    for e in &mut ordered {
        if e.stream() == StreamIndex(1) {
            e.tuple.ts = e.arrival;
        }
    }
    assert_eq!(
        run_with_buffers(300, 0, &ordered),
        run_with_buffers(300, 300, &ordered)
    );
}

#[test]
fn larger_common_buffer_never_loses_results() {
    let events = workload(2_000);
    let mut last = 0;
    for k in [0u64, 100, 200, 400, 800] {
        let produced = run_with_buffers(k, k, &events);
        assert!(
            produced >= last,
            "K={k} produced {produced} < previous {last}"
        );
        last = produced;
    }
}

#[test]
fn skew_between_kslack_outputs_equals_raw_skew() {
    // Proposition 1: with the Same-K policy the time skew between the
    // K-slack output streams equals the skew between the raw inputs.
    let events = workload(500);
    for k in [0u64, 150, 500] {
        let mut ks = [mswj::core::KSlack::new(k), mswj::core::KSlack::new(k)];
        let mut raw = mswj_types::SkewTracker::new(2);
        for event in &events {
            raw.observe(event.stream(), event.ts());
            ks[event.stream().as_usize()].push(event.tuple.clone());
        }
        let out_skew = ks[0].local_time().abs_diff(ks[1].local_time());
        let raw_skew = raw.skew(StreamIndex(0), StreamIndex(1));
        assert_eq!(out_skew, raw_skew);
    }
}

//! Differential harness for the hash-indexed probe path.
//!
//! Every randomized m-way workload is run through two materializing
//! sessions that differ **only** in the probe strategy: the default
//! hash-indexed plan (`ProbeStrategy::Auto`) and the forced exhaustive
//! scan (`ProbeStrategy::NestedLoop`).  The sessions must emit
//! byte-identical multisets of [`JoinResult`]s and identical run reports —
//! under out-of-order arrivals, K-slack buffer shrinks and expansions,
//! common-key and star query shapes, and adversarial mixed-type key
//! columns that force the per-probe soundness fallback.
//!
//! Well over 100 randomized workloads run across the three tests below
//! (60 common-key + 30 star + 30 mixed-type).

use mswj::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Canonical multiset encoding of materialized results: the sorted list of
/// their full display forms (stream, seq, timestamp and attribute values of
/// every component).  Two sessions agree iff these compare equal.
fn canon(results: &[JoinResult]) -> Vec<String> {
    let mut v: Vec<String> = results.iter().map(|r| r.to_string()).collect();
    v.sort();
    v
}

/// Runs one materializing session over `events` and returns the canonical
/// result multiset plus the run report.
fn run(
    query: &JoinQuery,
    policy: &BufferPolicy,
    strategy: ProbeStrategy,
    events: &[ArrivalEvent],
) -> (Vec<String>, RunReport) {
    let mut pipeline = Pipeline::builder()
        .query(query.clone())
        .policy(policy.clone())
        .probe(strategy)
        .materialize_results()
        .build()
        .unwrap();
    let mut sink = CollectSink::default();
    for e in events {
        pipeline.push_into(e.clone(), &mut sink);
    }
    let report = pipeline.finish_into(&mut sink);
    assert_eq!(
        sink.results.len() as u64,
        report.total_produced,
        "sink must see exactly the results the report counts"
    );
    (canon(&sink.results), report)
}

/// Runs the indexed and nested-loop sessions and asserts their outputs are
/// identical; returns the indexed session's report.
fn assert_differential(
    query: &JoinQuery,
    policy: &BufferPolicy,
    events: &[ArrivalEvent],
    label: &str,
) -> RunReport {
    let (indexed, indexed_report) = run(query, policy, ProbeStrategy::Auto, events);
    let (scan, scan_report) = run(query, policy, ProbeStrategy::NestedLoop, events);
    assert_eq!(
        indexed, scan,
        "[{label}] indexed and nested-loop probes must produce identical result multisets"
    );
    assert_eq!(indexed_report.total_produced, scan_report.total_produced);
    assert_eq!(
        indexed_report.operator_stats.in_order,
        scan_report.operator_stats.in_order
    );
    assert_eq!(
        scan_report.operator_stats.indexed_probes, 0,
        "[{label}] the forced nested-loop session must never touch the index"
    );
    indexed_report
}

/// Rotates through every buffer-size policy, biased towards quality-driven
/// sessions whose adaptation both shrinks and expands K mid-run.
fn policy_for(case: usize, rng: &mut StdRng) -> BufferPolicy {
    match case % 5 {
        0 => BufferPolicy::NoKSlack,
        1 => BufferPolicy::MaxKSlack,
        2 => BufferPolicy::FixedK(rng.gen_range(40u64..400)),
        _ => BufferPolicy::QualityDriven(
            DisorderConfig::with_gamma(rng.gen_range(0.7f64..0.99))
                .period(1_000)
                .interval(250)
                .granularity(20)
                .basic_window(20),
        ),
    }
}

/// One tuple every 10 ms per stream, with bursty delays (alternating calm
/// and chaotic phases) so adaptive policies shrink *and* expand K.
/// `value_of` maps `(stream, seq, key)` to the attribute vector.
fn gen_events(
    rng: &mut StdRng,
    m: usize,
    per_stream: usize,
    max_delay: u64,
    mut value_of: impl FnMut(&mut StdRng, usize, i64) -> Vec<Value>,
    domain: i64,
) -> Vec<ArrivalEvent> {
    let mut events = Vec::with_capacity(m * per_stream);
    for stream in 0..m {
        for j in 0..per_stream {
            let arrival = (j as u64 + 1) * 10 + rng.gen_range(0u64..5);
            let calm = (j / 15) % 2 == 0;
            let delay = if calm {
                rng.gen_range(0u64..=max_delay / 8 + 1)
            } else {
                rng.gen_range(0u64..=max_delay)
            };
            let ts = arrival.saturating_sub(delay);
            let key = rng.gen_range(0i64..domain);
            events.push(ArrivalEvent::new(
                Timestamp::from_millis(arrival),
                Tuple::new(
                    stream.into(),
                    j as u64,
                    Timestamp::from_millis(ts),
                    value_of(rng, stream, key),
                ),
            ));
        }
    }
    // Normalize to the deterministic global arrival order.
    ArrivalLog::from_events(events).events().to_vec()
}

fn common_key_query(m: usize, window: u64) -> JoinQuery {
    let streams =
        StreamSet::homogeneous(m, Schema::new(vec![("a1", FieldType::Int)]), window).unwrap();
    let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
    JoinQuery::new("diff-common", streams, cond).unwrap()
}

/// 3-way star: anchor S1(a1, a2) joined with S2(a1) and S3(a2).
fn star_query(window: u64) -> JoinQuery {
    let streams = StreamSet::new(vec![
        StreamSpec::new(
            "S1",
            Schema::new(vec![("a1", FieldType::Int), ("a2", FieldType::Int)]),
            window,
        ),
        StreamSpec::new("S2", Schema::new(vec![("a1", FieldType::Int)]), window),
        StreamSpec::new("S3", Schema::new(vec![("a2", FieldType::Int)]), window),
    ])
    .unwrap();
    let cond =
        Arc::new(StarEquiJoin::new(&streams, 0, &[(1, "a1", "a1"), (2, "a2", "a2")]).unwrap());
    JoinQuery::new("diff-star", streams, cond).unwrap()
}

#[test]
fn common_key_workloads_indexed_equals_nested_loop() {
    let mut k_shrunk = false;
    let mut k_expanded = false;
    let mut any_results = 0u64;
    for case in 0..60usize {
        let mut rng = StdRng::seed_from_u64(0xD1FF + case as u64);
        let m = 2 + case % 2;
        // Keep the nested-loop reference tractable at arity 3.
        let window = if m == 2 {
            rng.gen_range(300u64..1_200)
        } else {
            rng.gen_range(200u64..500)
        };
        let domain = if m == 2 { 4 } else { 6 };
        let query = common_key_query(m, window);
        let policy = policy_for(case, &mut rng);
        let events = gen_events(
            &mut rng,
            m,
            if m == 2 { 90 } else { 70 },
            300,
            |_, _, key| vec![Value::Int(key)],
            domain,
        );
        let report = assert_differential(&query, &policy, &events, &format!("common-key #{case}"));
        // Clean integer workloads must actually exercise the index.
        assert_eq!(report.operator_stats.fallback_probes, 0);
        assert!(report.operator_stats.indexed_probes > 0);
        any_results += report.total_produced;
        for w in report.checkpoints.windows(2) {
            k_shrunk |= w[1].k < w[0].k;
            k_expanded |= w[1].k > w[0].k;
        }
    }
    assert!(any_results > 0, "workloads must derive join results");
    assert!(
        k_shrunk && k_expanded,
        "adaptive sessions must both shrink and expand K across the workloads \
         (shrunk: {k_shrunk}, expanded: {k_expanded})"
    );
}

#[test]
fn star_workloads_indexed_equals_nested_loop() {
    let mut any_results = 0u64;
    for case in 0..30usize {
        let mut rng = StdRng::seed_from_u64(0x57A2 + case as u64);
        let window = rng.gen_range(200u64..500);
        let query = star_query(window);
        let policy = policy_for(case, &mut rng);
        let events = gen_events(
            &mut rng,
            3,
            70,
            250,
            |rng, stream, key| {
                if stream == 0 {
                    // Anchor tuples carry both pair columns.
                    vec![Value::Int(key), Value::Int(rng.gen_range(0i64..5))]
                } else {
                    vec![Value::Int(key)]
                }
            },
            5,
        );
        let report = assert_differential(&query, &policy, &events, &format!("star #{case}"));
        assert_eq!(report.operator_stats.fallback_probes, 0);
        assert!(report.operator_stats.indexed_probes > 0);
        any_results += report.total_produced;
    }
    assert!(any_results > 0, "star workloads must derive join results");
}

#[test]
fn mixed_type_keys_force_fallback_and_stay_identical() {
    // Adversarial columns: floats that equal integer keys numerically
    // (join_eq coercion), floats that equal nothing, Nulls and strings.
    // The indexed session must fall back where soundness demands it and
    // still match the reference scan bit for bit.
    let mut fallbacks = 0u64;
    for case in 0..30usize {
        let mut rng = StdRng::seed_from_u64(0xF10A7 + case as u64);
        let m = 2 + case % 2;
        let window = if m == 2 { 600 } else { 350 };
        let query = common_key_query(m, window);
        let policy = policy_for(case + 3, &mut rng);
        let events = gen_events(
            &mut rng,
            m,
            60,
            200,
            |rng, _, key| {
                let roll = rng.gen_range(0u64..20);
                vec![match roll {
                    0 => Value::Float(key as f64),       // numerically joins Int(key)
                    1 => Value::Float(key as f64 + 0.5), // joins nothing
                    2 => Value::Null,
                    3 => Value::Str(format!("s{key}")),
                    _ => Value::Int(key),
                }]
            },
            4,
        );
        let report = assert_differential(&query, &policy, &events, &format!("mixed #{case}"));
        fallbacks += report.operator_stats.fallback_probes;
        assert!(
            report.operator_stats.indexed_probes > 0,
            "probes must re-engage the index once unindexable values expire"
        );
    }
    assert!(
        fallbacks > 0,
        "mixed-type workloads must exercise the soundness fallback"
    );
}

//! Property tests for the key partitioner and the sharded engine's state.
//!
//! * `join_eq(a, b)` implies `join_key_hash(a) == join_key_hash(b)` — the
//!   soundness condition of hash routing — under randomized values
//!   including the Int/Float numeric coercion.
//! * A tuple's shard depends only on its stream's routing column value:
//!   it is stable across streams, timestamps, sequence numbers, buffer-size
//!   (K) changes and window expiry — the partitioner is pure.
//! * After a randomized run with an adaptive policy (K shrinks *and*
//!   expands) on `Threads(3)`, every live tuple sits in the shard the
//!   partitioner routes it to, and the in-scope window content per stream
//!   equals the sequential reference exactly.
//! * The resident pool's pipelined epochs merge deterministically: for
//!   arbitrary tuple streams chopped into arbitrary batch sizes (some
//!   below the inline threshold, some deferring an epoch across flush
//!   boundaries), the `Pool` engine emits the **exact ordered event
//!   stream** — results *and* per-tuple outcomes — of the sequential
//!   engine.

use mswj::prelude::*;
use mswj_join::{join_key_hash, Partitioner, Route};
use proptest::prelude::*;

/// Random attribute values spanning every `Value` variant, over a small
/// domain so that `join_eq`-equal pairs — including the Int/Float numeric
/// coercion and the `-0.0`/`0.0` fold — actually occur, plus huge
/// magnitudes around 2^53/2^63 where the coercion turns lossy.
fn value_strategy() -> impl Strategy<Value = Value> {
    const BIG: i64 = 9_007_199_254_740_992; // 2^53
    (0usize..10, -20i64..20).prop_map(|(variant, v)| match variant {
        0 => Value::Int(v),
        1 => Value::Float(v as f64),
        2 => Value::Float(v as f64 + 0.5),
        3 => Value::Str(format!("s{}", v.rem_euclid(3))),
        4 => Value::Bool(v % 2 == 0),
        5 => Value::Null,
        6 => Value::Float(0.0),
        7 => Value::Int(if v % 2 == 0 {
            BIG + v.abs()
        } else {
            i64::MAX - v.abs()
        }),
        8 => Value::Float((BIG + v) as f64),
        _ => Value::Float(-0.0),
    })
}

proptest! {
    #[test]
    fn join_eq_implies_equal_hash(a in value_strategy(), b in value_strategy()) {
        if a.join_eq(&b) {
            prop_assert_eq!(
                join_key_hash(Some(&a)),
                join_key_hash(Some(&b)),
                "{:?} join_eq {:?} but hashes differ", a, b
            );
        }
    }

    #[test]
    fn route_depends_only_on_the_key(
        key in value_strategy(),
        ts_a in 0u64..1_000_000,
        ts_b in 0u64..1_000_000,
        seq in 0u64..1_000,
        shards in 1usize..9,
    ) {
        let plan = ProbePlan::CommonKey { columns: vec![0, 0] };
        let p = Partitioner::new(&plan, shards);
        let t0 = Tuple::new(0.into(), seq, Timestamp::from_millis(ts_a), vec![key.clone()]);
        let t1 = Tuple::new(1.into(), seq + 7, Timestamp::from_millis(ts_b), vec![key]);
        let (r0, r1) = (p.route(&t0), p.route(&t1));
        prop_assert_eq!(r0, r1, "routing must ignore stream/ts/seq");
        prop_assert_eq!(r0, p.route(&t0), "routing must be deterministic");
        if let Route::One(s) = r0 {
            prop_assert!(s < p.shard_count());
        }
    }
}

/// Strategy producing an interleaved 2-stream arrival list with bursty
/// delays (so adaptive policies move K both ways) and small integer keys.
fn arrival_strategy(len: usize) -> impl Strategy<Value = Vec<ArrivalEvent>> {
    proptest::collection::vec((0u64..2, 0u64..300, 0i64..8), len).prop_map(|items| {
        let events = items
            .into_iter()
            .enumerate()
            .map(|(i, (stream, delay, key))| {
                let arrival = (i as u64 + 1) * 5;
                let calm = (i / 30) % 2 == 0;
                let delay = if calm { delay / 8 } else { delay };
                let ts = arrival.saturating_sub(delay);
                ArrivalEvent::new(
                    Timestamp::from_millis(arrival),
                    Tuple::new(
                        (stream as usize).into(),
                        i as u64,
                        Timestamp::from_millis(ts),
                        vec![Value::Int(key)],
                    ),
                )
            })
            .collect();
        ArrivalLog::from_events(events).events().to_vec()
    })
}

fn build(backend: ExecutionBackend) -> Pipeline {
    Pipeline::builder()
        .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 400)
        .on_common_key("a1")
        .quality_driven(0.9)
        .period(1_000)
        .interval(250)
        .granularity(20)
        .basic_window(20)
        .parallelism(backend)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn shard_state_is_routing_stable_under_k_changes_and_expiry(
        events in arrival_strategy(240),
    ) {
        let mut sharded = build(ExecutionBackend::Threads(3));
        let mut sequential = build(ExecutionBackend::Sequential);
        for chunk in events.chunks(50) {
            sharded.push_batch_into(chunk.iter().cloned(), &mut NullSink);
            for e in chunk {
                sequential.push_into(e.clone(), &mut NullSink);
            }
        }
        let engine = sharded.engine();
        prop_assert_eq!(engine.shard_count(), 3);
        prop_assert_eq!(engine.on_t(), sequential.engine().on_t());
        // Rebuild the routing rules the engine derived: they are a pure
        // function of the probe plan and shard count.
        let partitioner = Partitioner::new(sharded.probe_plan(), 3);
        for s in 0..3 {
            let shard = engine.shard(s);
            for stream in 0..2usize {
                for t in shard.window(StreamIndex(stream)).iter() {
                    // Every live tuple sits exactly where the partitioner
                    // routes it — K changes and expiry never migrate state.
                    prop_assert_eq!(partitioner.route(t), Route::One(s));
                }
            }
        }
        // In-scope content equals the sequential reference (shards expire
        // lazily, so stale out-of-scope tuples may linger in shards that
        // did not see the last probes).
        let on_t = engine.on_t();
        let bound = on_t.saturating_sub_duration(400);
        for stream in 0..2usize {
            let mut sharded_live: Vec<String> = (0..3)
                .flat_map(|s| {
                    engine
                        .shard(s)
                        .window(StreamIndex(stream))
                        .iter()
                        .filter(|t| t.ts >= bound)
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                })
                .collect();
            let mut reference_live: Vec<String> = sequential
                .engine()
                .shard(0)
                .window(StreamIndex(stream))
                .iter()
                .filter(|t| t.ts >= bound)
                .map(|t| t.to_string())
                .collect();
            sharded_live.sort();
            reference_live.sort();
            prop_assert_eq!(sharded_live, reference_live);
        }
        // Both runs agree end to end, too.
        let a = sharded.finish();
        let b = sequential.finish();
        prop_assert_eq!(a.total_produced, b.total_produced);
        prop_assert_eq!(a.produced, b.produced);
    }
}

/// Raw tuple stream (no pipeline front-end): interleaved streams, mild
/// disorder, small key domain so shards share work.
fn raw_tuple_strategy(len: usize) -> impl Strategy<Value = Vec<Tuple>> {
    proptest::collection::vec((0u64..2, 0u64..80, 0i64..6), len).prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (stream, back, key))| {
                let ts = ((i as u64 + 1) * 8).saturating_sub(back);
                Tuple::new(
                    (stream as usize).into(),
                    i as u64,
                    Timestamp::from_millis(ts),
                    vec![Value::Int(key)],
                )
            })
            .collect()
    })
}

/// Drives `tuples` through a [`JoinEngine`] in batches sized by `cuts`
/// (cycled), recording the *ordered* event stream.
fn engine_event_stream(backend: ExecutionBackend, tuples: &[Tuple], cuts: &[usize]) -> Vec<String> {
    use mswj_join::{CommonKeyEquiJoin, JoinQuery};
    use std::sync::Arc;
    let streams =
        StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), 300).unwrap();
    let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
    let query = JoinQuery::new("pool-epochs", streams, cond).unwrap();
    let mut engine = JoinEngine::new(query, ProbeStrategy::Auto, true, backend);
    let mut events = Vec::new();
    let mut handler = |ev: mswj_core::EngineEvent<'_>| match ev {
        mswj_core::EngineEvent::Result(r) => events.push(format!("R {r}")),
        mswj_core::EngineEvent::Done(o) => events.push(format!("D {o:?}")),
    };
    let mut rest = tuples;
    let mut c = 0usize;
    while !rest.is_empty() {
        let take = cuts[c % cuts.len()].min(rest.len());
        c += 1;
        let (batch, tail) = rest.split_at(take);
        engine.push_batch(batch.iter().cloned(), &mut handler);
        rest = tail;
    }
    engine.sync(&mut handler);
    events
}

/// Raw tuples with a Zipf-style hot key: ~60% of the traffic on key 7,
/// the remainder spread over a small cold domain.
fn skewed_tuple_strategy(len: usize) -> impl Strategy<Value = Vec<Tuple>> {
    proptest::collection::vec((0u64..2, 0u64..80, 0u64..10, 0i64..6), len).prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (stream, back, roll, key))| {
                let ts = ((i as u64 + 1) * 8).saturating_sub(back);
                let key = if roll < 6 { 7 } else { 100 + key };
                Tuple::new(
                    (stream as usize).into(),
                    i as u64,
                    Timestamp::from_millis(ts),
                    vec![Value::Int(key)],
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn split_routing_partitions_the_reference_with_replicas_counted_once(
        tuples in skewed_tuple_strategy(240),
        cuts in proptest::collection::vec(30usize..90, 1..6),
    ) {
        use mswj_join::{CommonKeyEquiJoin, JoinQuery};
        use std::collections::BTreeSet;
        use std::collections::HashMap;
        use std::sync::Arc;
        let query = || {
            let streams =
                StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), 300)
                    .unwrap();
            let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
            JoinQuery::new("split-props", streams, cond).unwrap()
        };
        let skew = SkewConfig { split_share: 0.3, unsplit_share: 0.1, min_routed: 64 };
        let mut engine = JoinEngine::with_skew(
            query(),
            ProbeStrategy::Auto,
            true,
            ExecutionBackend::Threads(3),
            Some(skew),
        );
        let mut reference = JoinEngine::new(
            query(),
            ProbeStrategy::Auto,
            true,
            ExecutionBackend::Sequential,
        );
        let run = |engine: &mut JoinEngine| {
            let mut results = Vec::new();
            let mut rest = tuples.as_slice();
            let mut c = 0usize;
            while !rest.is_empty() {
                let take = cuts[c % cuts.len()].min(rest.len());
                c += 1;
                let (batch, tail) = rest.split_at(take);
                engine.push_batch(batch.iter().cloned(), &mut |ev| {
                    if let mswj_core::EngineEvent::Result(r) = ev {
                        results.push(r.to_string());
                    }
                });
                // Barriers are where skew windows close and routing moves.
                engine.sync(&mut |ev| {
                    if let mswj_core::EngineEvent::Result(r) = ev {
                        results.push(r.to_string());
                    }
                });
                rest = tail;
            }
            results.sort();
            results
        };
        let split_results = run(&mut engine);
        let reference_results = run(&mut reference);
        prop_assert_eq!(split_results, reference_results);
        prop_assert!(
            !engine.skew_transitions().is_empty(),
            "a 60% hot key must trip the 0.3 split threshold"
        );

        // Shard-state partition property, replicas counted once: every
        // in-scope tuple of a currently split class is replicated in ALL
        // shards; every other in-scope tuple sits exactly in its home
        // shard.  Deduplicated, the union equals the sequential reference.
        let n = engine.shard_count();
        let split: BTreeSet<u64> = engine.split_classes().iter().copied().collect();
        let partitioner = Partitioner::new(engine.probe_plan(), n);
        let bound = engine.on_t().saturating_sub_duration(300);
        for stream in 0..2usize {
            let mut placement: HashMap<String, (u64, BTreeSet<usize>)> = HashMap::new();
            for s in 0..n {
                let shard = engine.shard(s);
                for t in shard.window(StreamIndex(stream)).iter() {
                    if t.ts < bound {
                        continue; // Lazily expired copies are out of scope.
                    }
                    let hash = partitioner.key_hash(t).expect("key-routed plan");
                    let entry = placement.entry(t.to_string()).or_insert((hash, BTreeSet::new()));
                    prop_assert_eq!(entry.0, hash);
                    entry.1.insert(s);
                }
            }
            for (tuple, (hash, shards)) in &placement {
                if split.contains(hash) {
                    prop_assert_eq!(
                        shards.len(), n,
                        "split-class tuple {} must be replicated everywhere, found {:?}",
                        tuple, shards
                    );
                } else {
                    let home = partitioner.home_shard(*hash);
                    prop_assert!(
                        shards.len() == 1 && shards.contains(&home),
                        "unsplit tuple {} must live exactly at home shard {}, found {:?}",
                        tuple, home, shards
                    );
                }
            }
            let mut deduped: Vec<&String> = placement.keys().collect();
            deduped.sort();
            let mut reference_live: Vec<String> = reference
                .shard(0)
                .window(StreamIndex(stream))
                .iter()
                .filter(|t| t.ts >= bound)
                .map(|t| t.to_string())
                .collect();
            reference_live.sort();
            let reference_refs: Vec<&String> = reference_live.iter().collect();
            prop_assert_eq!(deduped, reference_refs);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn pipelined_pool_epochs_preserve_the_deterministic_merge(
        tuples in raw_tuple_strategy(220),
        pool_cuts in proptest::collection::vec(1usize..90, 1..8),
        seq_cuts in proptest::collection::vec(1usize..90, 1..8),
    ) {
        // The sequential reference is batch-size-invariant, so cut it
        // differently on purpose: only the *merged stream* may matter.
        let reference = engine_event_stream(ExecutionBackend::Sequential, &tuples, &seq_cuts);
        let pooled = engine_event_stream(
            ExecutionBackend::Pool { workers: 3 },
            &tuples,
            &pool_cuts,
        );
        // Exact ordered equality — not just multisets: epoch deferral and
        // the shard-order merge must reproduce the sequential interleaving
        // of results and outcomes event for event.
        prop_assert_eq!(reference, pooled);
    }
}

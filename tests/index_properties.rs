//! Property tests for the window hash index and the indexed probe path.
//!
//! * After **any** interleaving of in-order/out-of-order inserts and
//!   expirations — including non-integer key values — a window's hash index
//!   is exactly the index a from-scratch rebuild of its live tuples would
//!   produce, and it always agrees with a plain scan.
//! * The indexed probe's output is invariant under shuffling of the raw
//!   event list (the arrival log normalizes deterministically), and always
//!   identical to the forced nested-loop reference.

use mswj::prelude::*;
use proptest::prelude::*;

/// Strategy producing an arrival sequence for one stream: increasing
/// arrival instants with bounded random delays and small integer keys.
fn stream_events(
    stream: usize,
    len: usize,
    max_delay: u64,
) -> impl Strategy<Value = Vec<ArrivalEvent>> {
    proptest::collection::vec((0u64..=max_delay, 0i64..5), len).prop_map(move |items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (delay, key))| {
                let arrival = (i as u64 + 1) * 10;
                let ts = arrival.saturating_sub(delay);
                ArrivalEvent::new(
                    Timestamp::from_millis(arrival),
                    Tuple::new(
                        stream.into(),
                        i as u64,
                        Timestamp::from_millis(ts),
                        vec![Value::Int(key)],
                    ),
                )
            })
            .collect()
    })
}

/// Runs a materializing fixed-K session over `events` with the given probe
/// strategy; returns the canonical result multiset and the run report.
fn run_session(events: &[ArrivalEvent], strategy: ProbeStrategy) -> (Vec<String>, RunReport) {
    let mut pipeline = Pipeline::builder()
        .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 400)
        .on_common_key("a1")
        .fixed_k(100)
        .materialize_results()
        .probe(strategy)
        .build()
        .unwrap();
    let mut sink = CollectSink::default();
    for e in events {
        pipeline.push_into(e.clone(), &mut sink);
    }
    let report = pipeline.finish_into(&mut sink);
    let mut canon: Vec<String> = sink.results.iter().map(|r| r.to_string()).collect();
    canon.sort();
    (canon, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incrementally maintained hash index exactly mirrors a
    /// from-scratch rebuild of the window's live tuples, whatever the
    /// interleaving of out-of-order inserts, expirations and non-integer
    /// key values.
    #[test]
    fn window_index_mirrors_from_scratch_rebuild(
        ops in proptest::collection::vec((0u64..2_000, 0i64..6, 0usize..12), 1..250),
    ) {
        let mut w = Window::with_indexed_columns(10_000, &[0]);
        let mut seq = 0u64;
        for (ts, key, kind) in ops {
            let ts = Timestamp::from_millis(ts);
            let value = match kind {
                // Mostly integer keys, with every other value class mixed in.
                0..=7 => Some(Value::Int(key)),
                8 => Some(Value::Float(key as f64)),
                9 => Some(Value::Null),
                10 => None, // tuple without the indexed column at all
                _ => {
                    w.expire_before(ts);
                    continue;
                }
            };
            let values = value.map(|v| vec![v]).unwrap_or_default();
            w.insert(Tuple::new(0.into(), seq, ts, values));
            seq += 1;
        }

        // Rebuild the index from scratch out of the surviving tuples.
        let mut rebuilt = Window::with_indexed_columns(10_000, &[0]);
        for t in w.iter() {
            rebuilt.insert(t.clone());
        }

        prop_assert_eq!(w.len(), rebuilt.len());
        prop_assert_eq!(w.unindexable_count(0), rebuilt.unindexable_count(0));
        prop_assert_eq!(w.index_usable(0), rebuilt.index_usable(0));
        for key in -1i64..=6 {
            prop_assert_eq!(w.count_key(0, key), rebuilt.count_key(0, key));
            let live: Vec<u64> = w.matching(0, key).map(|t| t.seq).collect();
            let fresh: Vec<u64> = rebuilt.matching(0, key).map(|t| t.seq).collect();
            prop_assert_eq!(&live, &fresh, "bucket for key {} diverged", key);
            // And the bucket agrees with a plain scan of the live tuples.
            let scan: Vec<u64> = w
                .iter()
                .filter(|t| matches!(t.value(0), Some(Value::Int(k)) if *k == key))
                .map(|t| t.seq)
                .collect();
            prop_assert_eq!(live, scan, "bucket for key {} disagrees with scan", key);
        }
    }

    /// Shuffling the raw event list never changes the indexed session's
    /// output (the arrival log re-normalizes deterministically), and the
    /// output always equals the forced nested-loop reference.
    #[test]
    fn indexed_probe_output_is_shuffle_invariant(
        s0 in stream_events(0, 60, 150),
        s1 in stream_events(1, 60, 150),
        seed in 0u64..1_000_000,
    ) {
        let mut events: Vec<ArrivalEvent> = s0.into_iter().chain(s1).collect();
        let baseline_log = ArrivalLog::from_events(events.clone());
        let (baseline, baseline_report) = run_session(baseline_log.events(), ProbeStrategy::Auto);

        // Deterministic Fisher–Yates shuffle driven by an xorshift state.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            state
        };
        for i in (1..events.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            events.swap(i, j);
        }
        let shuffled_log = ArrivalLog::from_events(events);
        let (shuffled, shuffled_report) = run_session(shuffled_log.events(), ProbeStrategy::Auto);
        prop_assert_eq!(&shuffled, &baseline, "indexed output must be shuffle-invariant");
        prop_assert_eq!(shuffled_report.total_produced, baseline_report.total_produced);

        // Differential against the exhaustive reference on the same log.
        let (scan, scan_report) = run_session(shuffled_log.events(), ProbeStrategy::NestedLoop);
        prop_assert_eq!(&scan, &baseline);
        prop_assert_eq!(scan_report.operator_stats.indexed_probes, 0);

        // Pure integer keys: the indexed session never falls back, and the
        // probe counters partition the in-order arrivals.
        let stats = baseline_report.operator_stats;
        prop_assert_eq!(stats.fallback_probes, 0);
        prop_assert_eq!(stats.indexed_probes, stats.in_order);
    }
}

//! Asserts the sink contract of the event-driven hot path: a counting-mode
//! session's `push_into` performs **no per-event heap allocation** in steady
//! state.
//!
//! A counting global allocator tallies every allocation made by the test
//! binary.  After a warm-up phase (internal scratch buffers, windows,
//! histograms and heaps acquire their capacity), a measured phase pushes
//! hundreds of pre-materialized events and checks that the allocation count
//! stays far below one per event — the old `push(..) -> Vec<JoinResult>`
//! surface allocated several times per event on the same workload.

use mswj::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The counter is process-global, so the two measuring tests must not run
/// concurrently: each holds this lock across its measured phase.
static MEASURE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// In-order events on two streams, 1 ms apart, with keys chosen so the two
/// streams never join (the probe path runs, `produced` stays untouched).
fn events(from_ms: u64, to_ms: u64) -> Vec<ArrivalEvent> {
    (from_ms..to_ms)
        .map(|t| {
            let stream = (t % 2) as usize;
            // Stream 0 uses keys {1, 2}, stream 1 uses {11, 12}: no matches,
            // and the windows' key indexes stay at a constant, tiny size.
            let key = (stream as i64) * 10 + 1 + (t as i64 % 2);
            let ts = Timestamp::from_millis(t);
            ArrivalEvent::new(ts, Tuple::new(stream.into(), t, ts, vec![Value::Int(key)]))
        })
        .collect()
}

#[test]
fn counting_push_into_does_not_allocate_per_event() {
    let _guard = MEASURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut pipeline = mswj::session()
        .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 100)
        .on_common_key("a1")
        .no_k_slack()
        .build()
        .unwrap();

    // Warm up: scratch buffers, window deques, key indexes, delay
    // histograms and ADWIN state acquire their steady-state capacity.
    // All arrivals stay below the first adaptation checkpoint (L = 1 s by
    // default), so no checkpoint bookkeeping runs mid-measurement.
    let warmup = events(1, 400);
    let measured = events(400, 800);
    let n = measured.len() as u64;
    let mut sink = CountingSink::default();
    for e in warmup {
        pipeline.push_into(e, &mut sink);
    }

    let before = allocations();
    for e in measured {
        pipeline.push_into(e, &mut sink);
    }
    let during = allocations() - before;

    // The watermark advanced through the measured phase without a single
    // Result event (counting mode, non-joining keys).  The synchronizer
    // holds back the newest tuple per stream, so progress trails the last
    // arrival by a tick or two.
    assert_eq!(sink.results, 0);
    assert!(sink.last_progress.unwrap() >= Timestamp::from_millis(790));

    // Strict bound: far below one allocation per event.  The only growth
    // allowed is amortized history-window expansion (ADWIN/statistics),
    // which is O(log n), not O(n).
    assert!(
        during <= n / 8,
        "hot path allocated {during} times for {n} events (> 1 per {} events)",
        n / during.max(1)
    );

    let report = pipeline.finish();
    assert_eq!(report.total_produced, 0);
    assert_eq!(report.operator_stats.in_order, 799);
}

#[test]
fn telemetry_enabled_push_into_does_not_allocate_per_event() {
    // The instrumented hot path: events-ingested counter, K-slack delay
    // histogram and batch-latency histogram all record on every push.
    // Counters and histogram buckets are fixed-size atomics registered at
    // build time, so enabling telemetry must not add a single per-event
    // allocation.
    let _guard = MEASURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let telemetry = Telemetry::new();
    let mut pipeline = mswj::session()
        .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 100)
        .on_common_key("a1")
        .no_k_slack()
        .telemetry(telemetry.clone())
        .build()
        .unwrap();

    let warmup = events(1, 400);
    let measured = events(400, 800);
    let n = measured.len() as u64;
    let mut sink = CountingSink::default();
    for e in warmup {
        pipeline.push_into(e, &mut sink);
    }

    let before = allocations();
    for e in measured {
        pipeline.push_into(e, &mut sink);
    }
    let during = allocations() - before;
    assert!(
        during <= n / 8,
        "instrumented hot path allocated {during} times for {n} events (> 1 per {} events)",
        n / during.max(1)
    );

    // The instruments saw every event.
    let session = telemetry.session();
    assert_eq!(session.events_ingested.get(), 799);
    assert_eq!(session.kslack_delay_ms.count(), 799);
    assert!(session.ingest_emit_latency_nanos.count() > 0);

    let report = pipeline.finish();
    assert_eq!(report.total_produced, 0);
    assert_eq!(report.operator_stats.in_order, 799);
}

#[test]
fn joining_counting_session_still_stays_allocation_free_per_event() {
    // Same shape but with matching keys: the index-assisted counting path
    // runs (results are tallied, never materialized) and `produced`
    // bookkeeping appends amortized — still no per-event allocation.
    let _guard = MEASURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut pipeline = mswj::session()
        .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 50)
        .on_common_key("a1")
        .no_k_slack()
        .build()
        .unwrap();
    let shared_key = |t: u64, stream: usize| {
        let ts = Timestamp::from_millis(t);
        ArrivalEvent::new(ts, Tuple::new(stream.into(), t, ts, vec![Value::Int(7)]))
    };
    let warmup: Vec<ArrivalEvent> = (1..400u64)
        .map(|t| shared_key(t, (t % 2) as usize))
        .collect();
    let measured: Vec<ArrivalEvent> = (400..800u64)
        .map(|t| shared_key(t, (t % 2) as usize))
        .collect();
    let n = measured.len() as u64;
    for e in warmup {
        pipeline.push(e);
    }
    let before = allocations();
    for e in measured {
        pipeline.push(e);
    }
    let during = allocations() - before;
    assert!(
        during <= n / 8,
        "joining hot path allocated {during} times for {n} events"
    );
    let report = pipeline.finish();
    assert!(report.total_produced > 0);
    // The constant-key workload is answered entirely by the hash-indexed
    // probe path: every in-order arrival is an indexed probe.
    let stats = report.operator_stats;
    assert_eq!(stats.fallback_probes, 0);
    assert_eq!(stats.indexed_probes, stats.in_order);
}

#[test]
fn parallel_backends_small_batch_fallback_stays_allocation_free() {
    // Single-event `push_into` on the parallel backends takes the
    // sub-threshold inline fallback: no scoped spawn (`Threads`), no epoch
    // enqueue (`Pool`) — and, like the sequential path, no per-event heap
    // allocation once the scratch buffers have their capacity.  The pool's
    // resident workers are idle the whole time (every batch is far below
    // the threshold), so the fallback locks uncontended shard mutexes.
    let _guard = MEASURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for backend in [
        ExecutionBackend::Threads(4),
        ExecutionBackend::Pool { workers: 4 },
    ] {
        let mut pipeline = mswj::session()
            .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 100)
            .on_common_key("a1")
            .no_k_slack()
            .parallelism(backend.clone())
            .build()
            .unwrap();
        let warmup = events(1, 400);
        let measured = events(400, 800);
        let n = measured.len() as u64;
        for e in warmup {
            pipeline.push(e);
        }
        let before = allocations();
        for e in measured {
            pipeline.push(e);
        }
        let during = allocations() - before;
        assert!(
            during <= n / 8,
            "{backend} fallback path allocated {during} times for {n} events"
        );
        let report = pipeline.finish();
        assert_eq!(report.operator_stats.in_order, 799, "{backend}");
        // Proof the fallback really ran: no epochs were ever enqueued.
        assert!(
            report
                .shard_stats
                .iter()
                .all(|s| s.runtime.epochs_enqueued == 0),
            "{backend} sub-threshold batches must never enqueue an epoch"
        );
    }
}

#[test]
fn indexed_probe_path_reuses_buckets_without_allocating() {
    // The indexed probe path in steady state: keys rotate through a small
    // domain, so every probe walks a different hash bucket and every insert
    // and expiration updates one.  Buckets acquired their capacity during
    // warm-up; afterwards bucket reuse keeps the hot path allocation-free —
    // no per-probe and no per-maintenance allocation.
    let _guard = MEASURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut pipeline = mswj::session()
        .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 100)
        .on_common_key("a1")
        .no_k_slack()
        .build()
        .unwrap();
    assert!(pipeline.probe_plan().is_indexed());
    let rotating = |t: u64| {
        let stream = (t % 2) as usize;
        // Eight keys shared by both streams: each window holds every bucket
        // non-empty in steady state (window 100 ms, per-stream key period
        // 16 ms), so expirations shrink buckets without ever dropping and
        // re-creating them.
        let key = ((t / 2) % 8) as i64;
        let ts = Timestamp::from_millis(t);
        ArrivalEvent::new(ts, Tuple::new(stream.into(), t, ts, vec![Value::Int(key)]))
    };
    let warmup: Vec<ArrivalEvent> = (1..400u64).map(rotating).collect();
    let measured: Vec<ArrivalEvent> = (400..800u64).map(rotating).collect();
    let n = measured.len() as u64;
    for e in warmup {
        pipeline.push(e);
    }
    let before = allocations();
    for e in measured {
        pipeline.push(e);
    }
    let during = allocations() - before;
    assert!(
        during <= n / 8,
        "indexed probe path allocated {during} times for {n} events"
    );
    let report = pipeline.finish();
    assert!(report.total_produced > 0, "rotating keys must join");
    let stats = report.operator_stats;
    assert_eq!(stats.fallback_probes, 0, "integer keys never fall back");
    assert_eq!(stats.indexed_probes, stats.in_order);
}

//! Integration tests of the telemetry subsystem: observe-only semantics
//! (byte-identical results with telemetry on and off, on every backend),
//! quality-gauge and event-ring population, the HTTP exporter, and the
//! remote window-footprint regression (`ShardRuntimeStats::window_bytes`
//! must be non-zero on the `Remote` backend).

use mswj::core::engine::transport::serve_uds;
use mswj::prelude::*;
use std::io::{Read, Write};

fn schema() -> Schema {
    Schema::new(vec![("a1", FieldType::Int)])
}

/// A disordered 2-stream workload: tuples every 10 ms on both streams over
/// a small shared key domain, with every 4th tuple of stream 0 arriving
/// 180 ms late — enough disorder for checkpoints to move K and for the
/// drop-rate gauge to see out-of-order tuples.
fn workload(n: u64) -> Vec<ArrivalEvent> {
    let mut events = Vec::new();
    for i in 1..=n {
        let arrival = i * 10;
        let ts0 = if i % 4 == 0 {
            arrival.saturating_sub(180)
        } else {
            arrival
        };
        let key = (i % 4) as i64;
        events.push(ArrivalEvent::new(
            Timestamp::from_millis(arrival),
            Tuple::new(
                StreamIndex(0),
                i,
                Timestamp::from_millis(ts0),
                vec![Value::Int(key)],
            ),
        ));
        events.push(ArrivalEvent::new(
            Timestamp::from_millis(arrival),
            Tuple::new(
                StreamIndex(1),
                i,
                Timestamp::from_millis(arrival),
                vec![Value::Int(key)],
            ),
        ));
    }
    events
}

fn session(backend: ExecutionBackend, telemetry: Option<Telemetry>) -> Pipeline {
    let mut builder = mswj::session()
        .streams(2, schema(), 500)
        .on_common_key("a1")
        .quality_driven(0.9)
        .period(2_000)
        .interval(500)
        .materialize_results()
        .parallelism(backend);
    if let Some(t) = telemetry {
        builder = builder.telemetry(t);
    }
    builder.build().unwrap()
}

#[test]
fn telemetry_is_observe_only_on_every_backend() {
    // The differential guarantee: attaching telemetry must not change a
    // single materialized result, checkpoint or counter, on any backend.
    for backend in [
        ExecutionBackend::Sequential,
        ExecutionBackend::Pool { workers: 2 },
        ExecutionBackend::remote_inproc(2),
    ] {
        let mut plain_sink = CollectSink::default();
        let mut plain = session(backend.clone(), None);
        for e in workload(600) {
            plain.push_into(e, &mut plain_sink);
        }
        let plain_report = plain.finish_into(&mut plain_sink);

        let telemetry = Telemetry::new();
        let mut wired_sink = CollectSink::default();
        let mut wired = session(backend.clone(), Some(telemetry.clone()));
        for e in workload(600) {
            wired.push_into(e, &mut wired_sink);
        }
        let wired_report = wired.finish_into(&mut wired_sink);

        assert_eq!(
            plain_sink.results, wired_sink.results,
            "{backend}: telemetry changed the materialized results"
        );
        assert_eq!(plain_report.total_produced, wired_report.total_produced);
        assert_eq!(plain_report.operator_stats, wired_report.operator_stats);
        assert_eq!(
            plain_report.checkpoints.len(),
            wired_report.checkpoints.len()
        );
        // And the instrumented run really observed the workload.
        assert_eq!(
            telemetry.session().events_ingested.get(),
            1_200,
            "{backend}"
        );
        assert!(telemetry.session().checkpoints.get() > 0, "{backend}");
    }
}

#[test]
fn quality_gauges_and_event_ring_populate_after_checkpoints() {
    let telemetry = Telemetry::new();
    let mut pipeline = session(ExecutionBackend::Sequential, Some(telemetry.clone()));
    for e in workload(600) {
        pipeline.push(e);
    }

    let s = telemetry.session();
    assert!(s.checkpoints.get() > 0);
    assert!(s.k_ms.get() >= 0.0, "K gauge must be set");
    assert!(
        s.drop_rate.get() > 0.0,
        "180 ms delays against a small K must register dropped tuples"
    );
    assert!(
        s.recall_observed.get() > 0.0,
        "a joining workload must observe recall"
    );
    assert!(s.kslack_delay_ms.count() > 0);
    assert!(s.ingest_emit_latency_nanos.count() > 0);
    assert!(s.results_emitted.get() > 0);

    let events = telemetry.recent_events();
    assert!(
        events.iter().any(|e| e.kind == EventKind::Checkpoint),
        "checkpoints must land in the event ring, got {events:?}"
    );
    let report = pipeline.finish();
    assert!(report.total_produced > 0);
}

#[test]
fn event_callback_fires_synchronously() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let seen = Arc::new(AtomicU64::new(0));
    let counter = seen.clone();
    let mut pipeline = mswj::session()
        .streams(2, schema(), 500)
        .on_common_key("a1")
        .quality_driven(0.9)
        .period(2_000)
        .interval(500)
        .on_event(move |event| {
            assert!(!event.message.is_empty());
            counter.fetch_add(1, Ordering::Relaxed);
        })
        .build()
        .unwrap();
    for e in workload(400) {
        pipeline.push(e);
    }
    assert!(
        seen.load(Ordering::Relaxed) > 0,
        "checkpoint events must reach the registered callback"
    );
    let _ = pipeline.finish();
}

#[test]
fn remote_uds_backend_reports_window_footprint() {
    // Satellite regression: the barrier reply carries the server-side
    // window footprint, so `ShardRuntimeStats::window_bytes` is non-zero
    // on the `Remote` backend exactly like on local ones.
    let path = std::env::temp_dir().join(format!("mswj-obs-test-{}.sock", std::process::id()));
    let serve_path = path.clone();
    std::thread::spawn(move || {
        let _ = serve_uds(&serve_path);
    });
    // Wait for the listener to bind.
    for _ in 0..200 {
        if path.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    let telemetry = Telemetry::new();
    let backend = ExecutionBackend::Remote {
        endpoints: vec![Endpoint::Uds(path.clone())],
    };
    let mut pipeline = session(backend, Some(telemetry.clone()));
    for e in workload(400) {
        pipeline.push(e);
    }
    // Mid-run, with windows populated: the barrier-time shard stats must
    // carry the remote operator's live footprint.
    let stats = pipeline.shard_stats();
    assert_eq!(stats.len(), 1);
    assert!(
        stats[0].runtime.window_bytes > 0,
        "remote shard reported zero window bytes: {:?}",
        stats[0].runtime
    );
    assert!(stats[0].runtime.window_segments > 0);
    // The per-shard telemetry gauges mirror the same figures after a
    // checkpoint barrier published them.
    let shard = telemetry.shard(0);
    assert!(shard.window_bytes.get() > 0.0);
    assert!(shard.frames_sent.get() > 0.0);
    let report = pipeline.finish();
    assert!(report.total_produced > 0);
    let _ = std::fs::remove_file(&path);
}

/// Issues one HTTP GET against the exporter and returns the full response.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

#[test]
fn exporter_serves_live_session_metrics() {
    let telemetry = Telemetry::new();
    let exporter = MetricsExporter::serve("127.0.0.1:0", telemetry.clone()).unwrap();
    let mut pipeline = session(
        ExecutionBackend::Pool { workers: 2 },
        Some(telemetry.clone()),
    );
    for e in workload(600) {
        pipeline.push(e);
    }

    let response = http_get(exporter.local_addr(), "/metrics");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    let body = response
        .split_once("\r\n\r\n")
        .expect("header/body split")
        .1;
    for required in [
        "mswj_k_ms",
        "mswj_gamma_prime",
        "mswj_recall_observed",
        "mswj_drop_rate",
        "mswj_checkpoints_total",
        "mswj_kslack_delay_ms_bucket",
        "mswj_ingest_emit_latency_nanos_count",
        "mswj_shard_queue_depth",
        "mswj_shard_busy_share",
        "mswj_shard_window_bytes",
    ] {
        assert!(body.contains(required), "scrape misses {required}:\n{body}");
    }
    // The scrape passes the repo's own Prometheus text-format checker.
    let samples = mswj::core::check_prometheus_text(body)
        .unwrap_or_else(|e| panic!("scrape is not well-formed: {e}"));
    assert!(
        samples > 20,
        "expected a full scrape, got {samples} samples"
    );
    // The latency histogram is populated, not just registered.
    assert!(telemetry.session().ingest_emit_latency_nanos.count() > 0);

    let json = http_get(exporter.local_addr(), "/metrics.json");
    assert!(json.starts_with("HTTP/1.1 200 OK"));
    let json_body = json.split_once("\r\n\r\n").unwrap().1;
    assert!(json_body.contains("\"mswj_k_ms\""), "{json_body}");
    assert!(json_body.contains("\"shards\""), "{json_body}");

    assert!(http_get(exporter.local_addr(), "/nope").starts_with("HTTP/1.1 404"));
    let _ = pipeline.finish();
}

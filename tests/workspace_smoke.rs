//! Workspace smoke test: every member crate's top-level API must be
//! reachable through `mswj::prelude` (or the facade's module aliases) and
//! minimally functional. This is the cheap end-to-end guard CI runs on
//! every push; deeper behaviour is covered by the per-crate unit tests and
//! the other integration tests.

use mswj::prelude::*;
use std::sync::Arc;

fn tiny_query() -> JoinQuery {
    let streams =
        StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), 1_000).unwrap();
    let condition = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
    JoinQuery::new("smoke", streams, condition).unwrap()
}

#[test]
fn types_substrate_is_reachable() {
    let ts = Timestamp::from_millis(42);
    assert_eq!(ts.as_millis(), 42);
    let tuple = Tuple::new(StreamIndex(0), 1, ts, vec![Value::Int(7)]);
    assert_eq!(tuple.ts, ts);
    let event = ArrivalEvent::new(ts, tuple);
    let log = ArrivalLog::from_events(vec![event]);
    assert_eq!(log.len(), 1);
}

#[test]
fn join_operator_is_reachable() {
    let mut op = MswjOperator::new(tiny_query());
    let t0 = Tuple::new(0.into(), 1, Timestamp::from_millis(10), vec![Value::Int(1)]);
    let t1 = Tuple::new(1.into(), 1, Timestamp::from_millis(20), vec![Value::Int(1)]);
    op.push(t0);
    let outcome = op.push(t1);
    assert_eq!(
        outcome.n_join, 1,
        "matching keys inside the window must join"
    );
}

#[test]
fn adwin_detector_is_reachable() {
    let mut adwin = Adwin::default_detector();
    for _ in 0..256 {
        adwin.insert(0.0);
    }
    assert!(!adwin.is_empty());
    // A drastic mean shift must eventually shrink the window.
    let mut changed = false;
    for _ in 0..512 {
        changed |= adwin.insert(100.0);
    }
    assert!(changed, "ADWIN missed an obvious change");
}

#[test]
fn core_pipeline_is_reachable() {
    let config = DisorderConfig::with_gamma(0.95).period(2_000).interval(500);
    let mut pipeline = Pipeline::new(tiny_query(), BufferPolicy::QualityDriven(config)).unwrap();
    for i in 1..=200u64 {
        let ts = Timestamp::from_millis(i * 10);
        pipeline.push(ArrivalEvent::new(
            ts,
            Tuple::new(0.into(), i, ts, vec![Value::Int(1)]),
        ));
        pipeline.push(ArrivalEvent::new(
            ts,
            Tuple::new(1.into(), i, ts, vec![Value::Int(1)]),
        ));
    }
    let report: RunReport = pipeline.finish();
    assert!(report.total_produced > 0);

    // The standalone building blocks are exported too.
    let mut ks = KSlack::new(100);
    assert!(ks
        .push(Tuple::marker(0.into(), 0, Timestamp::from_millis(5)))
        .is_empty());
    let _sync = Synchronizer::new(2);
}

#[test]
fn session_builder_and_sinks_are_reachable() {
    let mut pipeline = mswj::session()
        .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 1_000)
        .on_common_key("a1")
        .quality_driven(0.95)
        .period(2_000)
        .interval(500)
        .materialize_results()
        .build()
        .unwrap();
    let mut collected = CollectSink::default();
    for i in 1..=300u64 {
        let ts = Timestamp::from_millis(i * 10);
        let ev = ArrivalEvent::new(
            ts,
            Tuple::new(((i % 2) as usize).into(), i, ts, vec![Value::Int(1)]),
        );
        pipeline.push_into(ev, &mut collected);
    }
    let report = pipeline.finish_into(&mut collected);
    assert!(report.total_produced > 0);
    assert_eq!(collected.results.len() as u64, report.total_produced);
    assert!(!collected.checkpoints.is_empty());

    // The closure adapter is part of the facade surface too.
    let mut seen = 0u32;
    {
        let mut tee = sink_fn(|ev: OutputEvent<'_>| {
            if matches!(ev, OutputEvent::Progress(_)) {
                seen += 1;
            }
        });
        tee.event(OutputEvent::Progress(Timestamp::from_millis(1)));
    }
    assert_eq!(seen, 1);
}

#[test]
fn datasets_generators_are_reachable() {
    let cfg = SyntheticConfig::three_way().duration_secs(2);
    let dataset = SyntheticDataset::generate(&cfg, 7).into_dataset();
    assert_eq!(dataset.query.arity(), 3);
    assert!(!dataset.is_empty());
}

#[test]
fn metrics_are_reachable() {
    let cfg = SyntheticConfig::three_way().duration_secs(2);
    let dataset = SyntheticDataset::generate(&cfg, 7).into_dataset();
    let truth: CountSeries = ground_truth_counts(&dataset.query, &dataset.log);
    assert!(truth.total() > 0);

    let mut pipeline = Pipeline::new(dataset.query.clone(), BufferPolicy::MaxKSlack).unwrap();
    for event in dataset.log.iter() {
        pipeline.push(event.clone());
    }
    let report = pipeline.finish();
    let eval: RecallEvaluation = evaluate_recall(&report, &truth, 1_000);
    assert!(eval.overall_recall > 0.0 && eval.overall_recall <= 1.0);
}

#[test]
fn facade_module_aliases_match_member_crates() {
    // The facade also exposes whole crates as modules for items the prelude
    // deliberately leaves out.
    let _zipf = mswj::datasets::Zipf::new(10, 1.0);
    let _table = mswj::metrics::format_table("t", &[]);
    let delta = mswj::adwin::DEFAULT_DELTA;
    let _detector_with_default = mswj::adwin::Adwin::new(delta);
    let _e: mswj::types::Error = mswj::types::Error::InvalidConfig("smoke".into());
    let _cross = mswj::join::CrossJoin::new(2);
    let _policy = mswj::core::BufferPolicy::NoKSlack;
}

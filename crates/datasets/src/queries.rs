//! The three join queries of the paper's evaluation (Sec. VI).

use mswj_join::{CommonKeyEquiJoin, DistanceWithin, JoinQuery, StarEquiJoin};
use mswj_types::{Duration, FieldType, Schema, StreamSet, StreamSpec};
use std::sync::Arc;

/// Query Q×2: a 2-way join of two player-position streams on
/// `dist(S1.xCoord, S1.yCoord, S2.xCoord, S2.yCoord) < threshold`
/// within `window_ms` sliding windows.
pub fn q2_query(window_ms: Duration, threshold_m: f64) -> JoinQuery {
    let schema = Schema::new(vec![
        ("sID", FieldType::Int),
        ("xCoord", FieldType::Float),
        ("yCoord", FieldType::Float),
    ]);
    let streams = StreamSet::new(vec![
        StreamSpec::new("team_a", schema.clone(), window_ms),
        StreamSpec::new("team_b", schema, window_ms),
    ])
    .expect("two streams are always valid");
    let condition = Arc::new(
        DistanceWithin::new(&streams, "xCoord", "yCoord", threshold_m)
            .expect("coordinate attributes exist in both schemas"),
    );
    JoinQuery::new("Qx2", streams, condition).expect("arity matches")
}

/// Query Q×3: a 3-way equi-join `S1.a1 = S2.a1 AND S2.a1 = S3.a1` within
/// `window_ms` sliding windows.
pub fn q3_query(window_ms: Duration) -> JoinQuery {
    let schema = Schema::new(vec![("a1", FieldType::Int)]);
    let streams =
        StreamSet::homogeneous(3, schema, window_ms).expect("three streams are always valid");
    let condition =
        Arc::new(CommonKeyEquiJoin::new(&streams, "a1").expect("a1 exists in every schema"));
    JoinQuery::new("Qx3", streams, condition).expect("arity matches")
}

/// Query Q×4: a 4-way star equi-join
/// `S1.a1 = S2.a1 AND S1.a2 = S3.a2 AND S1.a3 = S4.a3` within `window_ms`
/// sliding windows.
pub fn q4_query(window_ms: Duration) -> JoinQuery {
    let streams = StreamSet::new(vec![
        StreamSpec::new(
            "S1",
            Schema::new(vec![
                ("a1", FieldType::Int),
                ("a2", FieldType::Int),
                ("a3", FieldType::Int),
            ]),
            window_ms,
        ),
        StreamSpec::new("S2", Schema::new(vec![("a1", FieldType::Int)]), window_ms),
        StreamSpec::new("S3", Schema::new(vec![("a2", FieldType::Int)]), window_ms),
        StreamSpec::new("S4", Schema::new(vec![("a3", FieldType::Int)]), window_ms),
    ])
    .expect("four streams are always valid");
    let condition = Arc::new(
        StarEquiJoin::new(
            &streams,
            0,
            &[(1, "a1", "a1"), (2, "a2", "a2"), (3, "a3", "a3")],
        )
        .expect("attributes exist"),
    );
    JoinQuery::new("Qx4", streams, condition).expect("arity matches")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q2_shape() {
        let q = q2_query(5_000, 5.0);
        assert_eq!(q.name(), "Qx2");
        assert_eq!(q.arity(), 2);
        assert_eq!(q.windows(), vec![5_000, 5_000]);
        assert!(q.condition().equi_structure().is_none());
    }

    #[test]
    fn q3_shape() {
        let q = q3_query(5_000);
        assert_eq!(q.name(), "Qx3");
        assert_eq!(q.arity(), 3);
        assert!(q.condition().equi_structure().is_some());
    }

    #[test]
    fn q4_shape() {
        let q = q4_query(3_000);
        assert_eq!(q.name(), "Qx4");
        assert_eq!(q.arity(), 4);
        assert_eq!(q.windows(), vec![3_000; 4]);
        assert!(q.condition().equi_structure().is_some());
    }
}

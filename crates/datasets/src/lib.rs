//! # mswj-datasets — workloads and queries of the paper's evaluation
//!
//! The evaluation of the ICDE'16 paper (Sec. VI) uses three datasets and one
//! join query per dataset:
//!
//! * **D×2real / Q×2** — a real-world soccer-game dataset (DEBS 2013 grand
//!   challenge): two streams of player positions, joined on a distance
//!   predicate within 5-second windows.  The original sensor data is not
//!   redistributable, so this crate ships a *simulator* that reproduces its
//!   relevant characteristics (rates, delay bounds, low and time-varying
//!   predicate selectivity); see `DESIGN.md` for the substitution rationale.
//! * **D×3syn / Q×3** — three synthetic streams `(ts, a1)` with Zipf delays
//!   and Zipf attribute values whose skew changes over time, joined on
//!   `a1` equality within 5-second windows.
//! * **D×4syn / Q×4** — four synthetic streams joined by a star-shaped
//!   conjunction of equalities within 3-second windows.
//!
//! All generators are deterministic for a given seed and expose scale knobs
//! (duration, rate) so experiments can run at paper scale or at bench scale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod queries;
pub mod soccer;
pub mod synthetic;
pub mod zipf;

pub use queries::{q2_query, q3_query, q4_query};
pub use soccer::{SoccerConfig, SoccerDataset};
pub use synthetic::{SyntheticConfig, SyntheticDataset};
pub use zipf::Zipf;

use mswj_join::JoinQuery;
use mswj_types::ArrivalLog;

/// A fully materialized workload: a join query plus the arrival-ordered
/// tuple log of all its input streams.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short name used in reports (e.g. `"Dx3syn"`).
    pub name: String,
    /// The join query evaluated on this dataset.
    pub query: JoinQuery,
    /// The interleaved arrival log of all input streams.
    pub log: ArrivalLog,
}

impl Dataset {
    /// Creates a dataset wrapper.
    pub fn new(name: impl Into<String>, query: JoinQuery, log: ArrivalLog) -> Self {
        Dataset {
            name: name.into(),
            query,
            log,
        }
    }

    /// Number of tuples across all streams.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// `true` when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_wrapper_reports_size() {
        let cfg = SyntheticConfig::three_way().duration_secs(5);
        let d = SyntheticDataset::generate(&cfg, 7);
        let ds = Dataset::new("toy", d.query.clone(), d.log.clone());
        assert_eq!(ds.len(), d.log.len());
        assert!(!ds.is_empty());
        assert_eq!(ds.name, "toy");
    }
}

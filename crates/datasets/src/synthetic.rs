//! Synthetic dataset generators (D×3syn and D×4syn, Sec. VI).
//!
//! Each stream is generated exactly as the paper describes: for every new
//! tuple the generation clock `iT` advances by a fixed tick (10 ms by
//! default, i.e. 100 tuples/s), a delay is drawn from a Zipf distribution
//! over `[0, max_delay]`, and the tuple timestamp is set to `iT - delay`.
//! The generation order is the arrival order, so a delayed tuple is an
//! out-of-order tuple from the consumer's perspective.  Join attribute
//! values are drawn from Zipf distributions over `[1, 100]` whose skew
//! changes at random intervals of 1–10 minutes (scaled down for short
//! runs) to produce a time-varying join selectivity.

use crate::zipf::Zipf;
use crate::Dataset;
use mswj_join::JoinQuery;
use mswj_types::{ArrivalEvent, ArrivalLog, Duration, Interleaver, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of one synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Number of input streams (3 for D×3syn, 4 for D×4syn).
    pub streams: usize,
    /// Total generated duration per stream (ms).
    pub duration_ms: Duration,
    /// Generation clock tick (ms); the paper uses 10 ms (100 tuples/s).
    pub tick_ms: Duration,
    /// Maximum tuple delay (ms); the paper uses 20 s.
    pub max_delay_ms: Duration,
    /// Delay-granularity for the Zipf delay domain (ms): delays are drawn
    /// from `{0, step, 2·step, …, max_delay}`.
    pub delay_step_ms: Duration,
    /// Per-stream Zipf skews for the delay distribution
    /// (paper: `z^d = [2.0, 3.0, 3.0]` for D×3syn and `[3.0, 3.0, 3.0, 4.0]`
    /// for D×4syn).
    pub delay_skews: Vec<f64>,
    /// Domain of the join attribute values (paper: `[1, 100]`).
    pub value_domain: usize,
    /// Sliding window size applied by the query on every stream (ms).
    pub window_ms: Duration,
    /// Mean interval between changes of the value skew (ms).  The paper
    /// redraws the skew every 1–10 minutes; short runs scale this down.
    pub value_skew_change_ms: Duration,
}

impl SyntheticConfig {
    /// The D×3syn configuration of the paper (scaled to full length only by
    /// [`SyntheticConfig::duration_secs`]).
    pub fn three_way() -> Self {
        SyntheticConfig {
            streams: 3,
            duration_ms: 30 * 60_000,
            tick_ms: 10,
            max_delay_ms: 20_000,
            delay_step_ms: 100,
            delay_skews: vec![2.0, 3.0, 3.0],
            value_domain: 100,
            window_ms: 5_000,
            value_skew_change_ms: 120_000,
        }
    }

    /// The D×4syn configuration of the paper.
    pub fn four_way() -> Self {
        SyntheticConfig {
            streams: 4,
            duration_ms: 30 * 60_000,
            tick_ms: 10,
            max_delay_ms: 20_000,
            delay_step_ms: 100,
            delay_skews: vec![3.0, 3.0, 3.0, 4.0],
            value_domain: 100,
            window_ms: 3_000,
            value_skew_change_ms: 120_000,
        }
    }

    /// Overrides the duration (seconds) — the main scale knob.
    pub fn duration_secs(mut self, secs: u64) -> Self {
        self.duration_ms = secs * 1_000;
        self
    }

    /// Overrides the generation tick (ms), i.e. the per-stream data rate.
    pub fn tick(mut self, tick_ms: Duration) -> Self {
        self.tick_ms = tick_ms.max(1);
        self
    }

    /// Overrides the maximum delay (ms).
    pub fn max_delay(mut self, ms: Duration) -> Self {
        self.max_delay_ms = ms;
        self
    }

    /// Overrides the window size (ms).
    pub fn window(mut self, ms: Duration) -> Self {
        self.window_ms = ms;
        self
    }
}

/// A generated synthetic workload (query + arrival log).
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The join query (Q×3 or Q×4 depending on the stream count).
    pub query: JoinQuery,
    /// The interleaved arrival log.
    pub log: ArrivalLog,
    /// The configuration that produced it.
    pub config: SyntheticConfig,
}

impl SyntheticDataset {
    /// Generates a workload deterministically from `config` and `seed`.
    pub fn generate(config: &SyntheticConfig, seed: u64) -> Self {
        assert!(
            config.streams == 3 || config.streams == 4,
            "the paper's synthetic workloads have 3 or 4 streams"
        );
        let query = if config.streams == 3 {
            crate::queries::q3_query(config.window_ms)
        } else {
            crate::queries::q4_query(config.window_ms)
        };

        let delay_ranks = (config.max_delay_ms / config.delay_step_ms.max(1)) as usize + 1;
        let mut interleaver = Interleaver::new();
        for stream in 0..config.streams {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64 ^ (stream as u64) << 32));
            let delay_zipf = Zipf::new(delay_ranks, config.delay_skews[stream]);
            let mut value_zipf = Zipf::new(config.value_domain, 1.0);
            let mut next_skew_change: u64 = sample_change_interval(&mut rng, config);
            let mut events = Vec::with_capacity((config.duration_ms / config.tick_ms) as usize);
            let mut gen_clock: u64 = 0;
            let mut seq: u64 = 0;
            while gen_clock < config.duration_ms {
                gen_clock += config.tick_ms;
                if gen_clock >= next_skew_change {
                    // Time-varying selectivity: redraw the value skew in [0, 5].
                    let new_skew = rng.gen_range(0.0..=5.0);
                    value_zipf = Zipf::new(config.value_domain, new_skew);
                    next_skew_change = gen_clock + sample_change_interval(&mut rng, config);
                }
                let delay = (delay_zipf.sample(&mut rng) as u64 - 1) * config.delay_step_ms;
                let ts = gen_clock.saturating_sub(delay);
                let values = attribute_values(config.streams, stream, &value_zipf, &mut rng);
                let tuple = Tuple::new(stream.into(), seq, Timestamp::from_millis(ts), values);
                events.push(ArrivalEvent::new(Timestamp::from_millis(gen_clock), tuple));
                seq += 1;
            }
            interleaver.add_stream(events);
        }
        SyntheticDataset {
            query,
            log: interleaver.merge(),
            config: config.clone(),
        }
    }

    /// Wraps the generated workload as a generic [`Dataset`].
    pub fn into_dataset(self) -> Dataset {
        let name = if self.config.streams == 3 {
            "Dx3syn"
        } else {
            "Dx4syn"
        };
        Dataset::new(name, self.query, self.log)
    }
}

fn sample_change_interval(rng: &mut StdRng, config: &SyntheticConfig) -> u64 {
    // The paper redraws the value skew every 1–10 minutes; we scale the
    // interval with the configured mean so short runs still see changes.
    let mean = config.value_skew_change_ms.max(1);
    rng.gen_range(mean / 2..=mean * 2)
}

fn attribute_values(
    streams: usize,
    stream: usize,
    value_zipf: &Zipf,
    rng: &mut StdRng,
) -> Vec<Value> {
    if streams == 3 {
        // All three streams carry a single attribute a1.
        vec![Value::Int(value_zipf.sample(rng) as i64)]
    } else if stream == 0 {
        // D×4syn anchor stream S1 carries (a1, a2, a3).
        vec![
            Value::Int(value_zipf.sample(rng) as i64),
            Value::Int(value_zipf.sample(rng) as i64),
            Value::Int(value_zipf.sample(rng) as i64),
        ]
    } else {
        // Satellite streams carry exactly one attribute.
        vec![Value::Int(value_zipf.sample(rng) as i64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_types::StreamIndex;

    #[test]
    fn three_way_generation_matches_configuration() {
        let cfg = SyntheticConfig::three_way().duration_secs(10);
        let d = SyntheticDataset::generate(&cfg, 1);
        // 10 s at 100 tuples/s and 3 streams = 3 000 tuples.
        assert_eq!(d.log.len(), 3_000);
        for s in 0..3 {
            assert_eq!(d.log.count_for(StreamIndex(s)), 1_000);
        }
        assert_eq!(d.query.arity(), 3);
        assert_eq!(d.query.windows(), vec![5_000; 3]);
        // Arrival instants never precede tuple timestamps (delays >= 0).
        assert!(d.log.iter().all(|e| e.arrival >= e.ts()));
        // There is some disorder but the majority of tuples are in order
        // (Zipf skew >= 2 puts most mass on delay 0).
        let late = d.log.iter().filter(|e| e.arrival > e.ts()).count();
        assert!(late > 0);
        assert!((late as f64) < 0.6 * d.log.len() as f64);
    }

    #[test]
    fn four_way_generation_has_star_schema() {
        let cfg = SyntheticConfig::four_way().duration_secs(5);
        let d = SyntheticDataset::generate(&cfg, 2);
        assert_eq!(d.query.arity(), 4);
        assert_eq!(d.query.windows(), vec![3_000; 4]);
        for e in d.log.iter() {
            let expected_arity = if e.stream() == StreamIndex(0) { 3 } else { 1 };
            assert_eq!(e.tuple.arity(), expected_arity);
        }
        let ds = d.into_dataset();
        assert_eq!(ds.name, "Dx4syn");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = SyntheticConfig::three_way().duration_secs(3);
        let a = SyntheticDataset::generate(&cfg, 99);
        let b = SyntheticDataset::generate(&cfg, 99);
        let c = SyntheticDataset::generate(&cfg, 100);
        assert_eq!(a.log, b.log);
        assert_ne!(a.log, c.log);
    }

    #[test]
    fn delays_respect_the_configured_bound() {
        let cfg = SyntheticConfig::three_way()
            .duration_secs(5)
            .max_delay(2_000);
        let d = SyntheticDataset::generate(&cfg, 5);
        for e in d.log.iter() {
            let delay = e.arrival - e.ts();
            assert!(delay <= 2_000, "delay {delay} exceeds the bound");
        }
    }

    #[test]
    fn values_stay_in_domain() {
        let cfg = SyntheticConfig::three_way().duration_secs(2);
        let d = SyntheticDataset::generate(&cfg, 3);
        for e in d.log.iter() {
            let v = e.tuple.value(0).and_then(Value::as_int).unwrap();
            assert!((1..=100).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "3 or 4 streams")]
    fn rejects_unsupported_stream_counts() {
        let mut cfg = SyntheticConfig::three_way();
        cfg.streams = 5;
        cfg.delay_skews = vec![1.0; 5];
        let _ = SyntheticDataset::generate(&cfg, 0);
    }
}

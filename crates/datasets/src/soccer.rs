//! Simulated soccer-game dataset (substitute for D×2real, Sec. VI).
//!
//! The paper's real-world dataset comes from the DEBS 2013 grand challenge:
//! two streams of player positions (one per team) recorded by body sensors
//! during a 23-minute training game, ~450 k tuples per stream, with maximum
//! network delays of 22 s (team A) and 26 s (team B).  The raw sensor data
//! cannot be shipped with this repository, so this module *simulates* a
//! workload with the same relevant characteristics:
//!
//! * two streams with schema `(sID, xCoord, yCoord)`;
//! * players move on a 105 m × 68 m pitch following bounded random walks
//!   around team-specific formations, which yields a low, time-varying
//!   selectivity for the `dist() < 5 m` predicate of query Q×2;
//! * tuples are timestamped by the sensor clock and arrive after a
//!   heavy-tailed (Zipf) network delay bounded by the per-team maxima above.
//!
//! The disorder-handling code paths only depend on timestamps, delays and
//! the predicate selectivity, all of which this simulation reproduces; see
//! `DESIGN.md` §5 for the substitution argument.

use crate::zipf::Zipf;
use crate::Dataset;
use mswj_join::JoinQuery;
use mswj_types::{ArrivalEvent, ArrivalLog, Duration, Interleaver, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pitch dimensions in metres (standard soccer field).
const PITCH_X: f64 = 105.0;
const PITCH_Y: f64 = 68.0;

/// Shape of the simulated soccer workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SoccerConfig {
    /// Players per team (the DEBS game has 8 field players per side plus
    /// goalkeepers; the default follows that).
    pub players_per_team: usize,
    /// Sensor sampling interval per player (ms).  With 9 players and 30 ms,
    /// each team stream carries ~300 tuples/s, in the ballpark of the
    /// original data (450 k tuples over 23 minutes ≈ 325 tuples/s).
    pub sample_interval_ms: Duration,
    /// Total simulated duration (ms); the original game lasts 23 minutes.
    pub duration_ms: Duration,
    /// Maximum network delay per team stream (ms); the paper reports 22 s
    /// and 26 s.
    pub max_delay_ms: [Duration; 2],
    /// Zipf skew of the delay distribution (most tuples arrive in order).
    pub delay_skew: f64,
    /// Delay-domain granularity (ms).
    pub delay_step_ms: Duration,
    /// Sliding window of query Q×2 (ms); the paper uses 5 s.
    pub window_ms: Duration,
    /// Distance threshold of query Q×2 (metres); the paper uses 5 m.
    pub distance_m: f64,
}

impl Default for SoccerConfig {
    fn default() -> Self {
        SoccerConfig {
            players_per_team: 9,
            sample_interval_ms: 30,
            duration_ms: 23 * 60_000,
            max_delay_ms: [22_000, 26_000],
            // Most sensor readings arrive in order; large delays are rare
            // spikes, as in the original DEBS 2013 traces.
            delay_skew: 3.5,
            delay_step_ms: 100,
            window_ms: 5_000,
            distance_m: 5.0,
        }
    }
}

impl SoccerConfig {
    /// Overrides the simulated duration (seconds) — the main scale knob.
    pub fn duration_secs(mut self, secs: u64) -> Self {
        self.duration_ms = secs * 1_000;
        self
    }

    /// Overrides the per-player sampling interval (ms), i.e. the data rate.
    pub fn sample_interval(mut self, ms: Duration) -> Self {
        self.sample_interval_ms = ms.max(1);
        self
    }

    /// Overrides both per-team maximum delays (ms).
    pub fn max_delays(mut self, team_a: Duration, team_b: Duration) -> Self {
        self.max_delay_ms = [team_a, team_b];
        self
    }
}

/// A generated soccer workload (query Q×2 + arrival log).
#[derive(Debug, Clone)]
pub struct SoccerDataset {
    /// The distance-join query Q×2.
    pub query: JoinQuery,
    /// The interleaved arrival log of both team streams.
    pub log: ArrivalLog,
    /// The configuration that produced it.
    pub config: SoccerConfig,
}

impl SoccerDataset {
    /// Generates a workload deterministically from `config` and `seed`.
    pub fn generate(config: &SoccerConfig, seed: u64) -> Self {
        let query = crate::queries::q2_query(config.window_ms, config.distance_m);
        let mut interleaver = Interleaver::new();
        for team in 0..2usize {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (team as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407));
            let delay_ranks =
                (config.max_delay_ms[team] / config.delay_step_ms.max(1)) as usize + 1;
            let delay_zipf = Zipf::new(delay_ranks.max(1), config.delay_skew);

            // Initial formation: players of both teams are spread over the
            // whole pitch (as during open play), so close encounters between
            // opposing players occur from the start — the original data's
            // dist() < 5 m selectivity is low but never zero.
            let mut positions: Vec<(f64, f64)> = (0..config.players_per_team)
                .map(|p| {
                    let frac = (p as f64 + 1.0) / (config.players_per_team as f64 + 1.0);
                    (
                        rng.gen_range(0.1 * PITCH_X..0.9 * PITCH_X),
                        (PITCH_Y * frac + rng.gen_range(-5.0..5.0)).clamp(0.0, PITCH_Y),
                    )
                })
                .collect();

            let mut events = Vec::new();
            let mut clock: u64 = 0;
            let mut seq: u64 = 0;
            let mut player = 0usize;
            while clock < config.duration_ms {
                clock += config.sample_interval_ms;
                // Round-robin over the team's sensors.
                player = (player + 1) % config.players_per_team;
                // Bounded random walk: players drift by up to ±1.5 m per step
                // and are clamped to the pitch; occasionally they sprint
                // towards the middle, which creates close encounters between
                // the teams (and thus join results).
                let (x, y) = &mut positions[player];
                let sprint = rng.gen_bool(0.02);
                let (dx, dy) = if sprint {
                    ((PITCH_X / 2.0 - *x) * 0.2, rng.gen_range(-3.0..3.0))
                } else {
                    (rng.gen_range(-1.5..1.5), rng.gen_range(-1.5..1.5))
                };
                *x = (*x + dx).clamp(0.0, PITCH_X);
                *y = (*y + dy).clamp(0.0, PITCH_Y);

                let delay = (delay_zipf.sample(&mut rng) as u64 - 1) * config.delay_step_ms;
                let ts = clock;
                let arrival = clock + delay;
                let tuple = Tuple::new(
                    team.into(),
                    seq,
                    Timestamp::from_millis(ts),
                    vec![
                        Value::Int((team * config.players_per_team + player) as i64),
                        Value::Float(*x),
                        Value::Float(*y),
                    ],
                );
                events.push(ArrivalEvent::new(Timestamp::from_millis(arrival), tuple));
                seq += 1;
            }
            // Network delays permute the arrival order within the stream.
            events.sort_by_key(|e| e.arrival);
            interleaver.add_stream(events);
        }
        SoccerDataset {
            query,
            log: interleaver.merge(),
            config: config.clone(),
        }
    }

    /// Wraps the generated workload as a generic [`Dataset`].
    pub fn into_dataset(self) -> Dataset {
        Dataset::new("Dx2real(sim)", self.query, self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_types::StreamIndex;

    fn small() -> SoccerDataset {
        let cfg = SoccerConfig::default()
            .duration_secs(20)
            .sample_interval(50)
            .max_delays(2_000, 3_000);
        SoccerDataset::generate(&cfg, 11)
    }

    #[test]
    fn two_streams_with_position_schema() {
        let d = small();
        assert_eq!(d.query.arity(), 2);
        assert!(d.log.count_for(StreamIndex(0)) > 0);
        assert!(d.log.count_for(StreamIndex(1)) > 0);
        for e in d.log.iter() {
            assert_eq!(e.tuple.arity(), 3);
            let x = e.tuple.value(1).and_then(Value::as_float).unwrap();
            let y = e.tuple.value(2).and_then(Value::as_float).unwrap();
            assert!((0.0..=PITCH_X).contains(&x));
            assert!((0.0..=PITCH_Y).contains(&y));
        }
    }

    #[test]
    fn arrival_log_is_ordered_and_has_disorder() {
        let d = small();
        let arrivals: Vec<u64> = d.log.iter().map(|e| e.arrival.as_millis()).collect();
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        assert_eq!(arrivals, sorted, "arrival log must be arrival-ordered");
        // Network delays produce intra-stream disorder: at least one tuple
        // arrives after a tuple with a larger timestamp.
        let mut max_ts = [0u64; 2];
        let mut disorder = 0usize;
        for e in d.log.iter() {
            let s = e.stream().as_usize();
            let ts = e.ts().as_millis();
            if ts < max_ts[s] {
                disorder += 1;
            }
            max_ts[s] = max_ts[s].max(ts);
        }
        assert!(disorder > 0);
    }

    #[test]
    fn delays_respect_per_team_bounds() {
        let d = small();
        for e in d.log.iter() {
            let delay = e.arrival - e.ts();
            let bound = d.config.max_delay_ms[e.stream().as_usize()];
            assert!(delay <= bound, "delay {delay} > bound {bound}");
        }
    }

    #[test]
    fn distance_predicate_has_low_but_nonzero_selectivity() {
        // Evaluate the predicate over a sample of cross pairs: encounters
        // within 5 m must exist but be rare, mirroring the original data.
        let d = small();
        let team_a: Vec<_> = d
            .log
            .iter()
            .filter(|e| e.stream() == StreamIndex(0))
            .take(400)
            .collect();
        let team_b: Vec<_> = d
            .log
            .iter()
            .filter(|e| e.stream() == StreamIndex(1))
            .take(400)
            .collect();
        let mut close = 0usize;
        let mut total = 0usize;
        for a in &team_a {
            for b in &team_b {
                let ax = a.tuple.value(1).and_then(Value::as_float).unwrap();
                let ay = a.tuple.value(2).and_then(Value::as_float).unwrap();
                let bx = b.tuple.value(1).and_then(Value::as_float).unwrap();
                let by = b.tuple.value(2).and_then(Value::as_float).unwrap();
                let dist = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
                total += 1;
                if dist < 5.0 {
                    close += 1;
                }
            }
        }
        let sel = close as f64 / total as f64;
        assert!(sel > 0.0, "no close encounters at all");
        assert!(sel < 0.5, "selectivity implausibly high: {sel}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SoccerConfig::default()
            .duration_secs(5)
            .sample_interval(100);
        let a = SoccerDataset::generate(&cfg, 3);
        let b = SoccerDataset::generate(&cfg, 3);
        assert_eq!(a.log, b.log);
        let ds = a.into_dataset();
        assert_eq!(ds.name, "Dx2real(sim)");
    }
}

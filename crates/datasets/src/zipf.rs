//! Zipf-distributed sampling.
//!
//! The synthetic datasets of the paper draw both tuple delays and join
//! attribute values from Zipf distributions with configurable skew
//! (Sec. VI, *Datasets and Queries*).  A skew of 0 degenerates to the
//! uniform distribution; larger skews concentrate the probability mass on
//! the smallest ranks.

use rand::Rng;

/// A Zipf(n, s) sampler over ranks `1..=n` using an explicit cumulative
/// distribution table (O(log n) per sample).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: usize,
    skew: f64,
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `1..=n` with the given skew `s >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `skew` is negative or not finite.
    pub fn new(n: usize, skew: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(
            skew >= 0.0 && skew.is_finite(),
            "skew must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(skew);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { n, skew, cdf }
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The skew parameter `s`.
    pub fn skew(&self) -> f64 {
        self.skew
    }

    /// Samples a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index whose cumulative probability reaches u.
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf values are finite"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.n),
        }
    }

    /// Probability of rank `r` (1-based); 0 outside the domain.
    pub fn probability(&self, r: usize) -> f64 {
        if r == 0 || r > self.n {
            return 0.0;
        }
        let prev = if r >= 2 { self.cdf[r - 2] } else { 0.0 };
        self.cdf[r - 1] - prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn rejects_empty_domain() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "skew must be finite")]
    fn rejects_negative_skew() {
        let _ = Zipf::new(10, -1.0);
    }

    #[test]
    fn probabilities_sum_to_one_and_decrease_with_rank() {
        let z = Zipf::new(100, 1.5);
        let total: f64 = (1..=100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..100 {
            assert!(z.probability(r) >= z.probability(r + 1));
        }
        assert_eq!(z.probability(0), 0.0);
        assert_eq!(z.probability(101), 0.0);
        assert_eq!(z.n(), 100);
        assert!((z.skew() - 1.5).abs() < f64::EPSILON);
    }

    #[test]
    fn zero_skew_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for r in 1..=4 {
            assert!((z.probability(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_stay_in_domain_and_match_distribution_roughly() {
        let z = Zipf::new(50, 2.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u64; 51];
        let n = 20_000;
        for _ in 0..n {
            let s = z.sample(&mut rng);
            assert!((1..=50).contains(&s));
            counts[s] += 1;
        }
        // With skew 2 the first rank should dominate (p1 ≈ 0.61).
        let p1 = counts[1] as f64 / n as f64;
        assert!(p1 > 0.5, "rank-1 frequency {p1}");
        // And the tail must be rare but present.
        assert!(counts[1] > counts[2]);
    }

    #[test]
    fn high_skew_concentrates_on_rank_one() {
        let z = Zipf::new(1_000, 4.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 1_000;
        let rank_one = (0..n).filter(|_| z.sample(&mut rng) == 1).count();
        // With skew 4 the first rank carries ~92% of the mass.
        assert!(rank_one as f64 > 0.85 * n as f64, "rank-1 count {rank_one}");
    }
}

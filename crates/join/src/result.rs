//! Join result tuples.

use mswj_types::{Timestamp, Tuple};
use std::fmt;

/// One m-way join result `⟨e_1, e_2, …, e_m⟩`.
///
/// The timestamp assigned to a result tuple is the maximum timestamp among
/// its deriving input tuples (Sec. I / II-A); under Alg. 2 that is always
/// the timestamp of the in-order tuple whose arrival triggered the probe.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinResult {
    /// Result timestamp (maximum of the deriving tuples' timestamps).
    pub ts: Timestamp,
    /// The deriving tuples, one per stream, in stream order.
    pub components: Vec<Tuple>,
}

impl JoinResult {
    /// Builds a result from its deriving tuples, computing the timestamp.
    pub fn new(components: Vec<Tuple>) -> Self {
        let ts = components
            .iter()
            .map(|t| t.ts)
            .max()
            .unwrap_or(Timestamp::ZERO);
        JoinResult { ts, components }
    }

    /// Number of deriving streams.
    pub fn arity(&self) -> usize {
        self.components.len()
    }

    /// The deriving tuple of stream `i`.
    pub fn component(&self, i: usize) -> Option<&Tuple> {
        self.components.get(i)
    }
}

impl fmt::Display for JoinResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, t) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "⟩@{}", self.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_types::{StreamIndex, Value};

    fn t(stream: usize, ts: u64, v: i64) -> Tuple {
        Tuple::new(
            StreamIndex(stream),
            0,
            Timestamp::from_millis(ts),
            vec![Value::Int(v)],
        )
    }

    #[test]
    fn timestamp_is_max_of_components() {
        let r = JoinResult::new(vec![t(0, 10, 1), t(1, 40, 1), t(2, 25, 1)]);
        assert_eq!(r.ts, Timestamp::from_millis(40));
        assert_eq!(r.arity(), 3);
        assert_eq!(r.component(1).unwrap().ts.as_millis(), 40);
        assert!(r.component(5).is_none());
    }

    #[test]
    fn empty_result_defaults_to_zero_timestamp() {
        let r = JoinResult::new(vec![]);
        assert_eq!(r.ts, Timestamp::ZERO);
        assert_eq!(r.arity(), 0);
    }

    #[test]
    fn display_mentions_components() {
        let r = JoinResult::new(vec![t(0, 10, 3), t(1, 20, 3)]);
        let s = r.to_string();
        assert!(s.contains("S1"));
        assert!(s.contains("S2"));
        assert!(s.contains("20ms"));
    }
}

//! Join conditions `p_on`.
//!
//! The framework is generic over the join condition (the paper stresses
//! support for *arbitrary* conditions, including user-defined functions such
//! as the `dist()` predicate of query Q×2).  A condition is an m-ary
//! predicate over one tuple per stream.  Conditions that are structurally
//! equi-joins additionally expose an [`EquiStructure`] so that the operator
//! can compute result *counts* through window count-indexes instead of
//! enumerating every combination — which is what makes the paper-scale
//! workloads (Q×3, Q×4) tractable.

use mswj_types::{Error, Result, StreamSet, Tuple, Value};
use std::fmt;
use std::sync::Arc;

/// Structural description of an equi-join, used for index-based counting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquiStructure {
    /// Every stream must agree on one key column:
    /// `S_1.c_1 = S_2.c_2 = … = S_m.c_m` (query Q×3).
    /// `columns[i]` is the key column position in stream `i`.
    CommonKey {
        /// Key column position per stream.
        columns: Vec<usize>,
    },
    /// A star-shaped conjunction anchored at one stream (query Q×4):
    /// `anchor.a_j = S_j.b_j` for every non-anchor stream `j`.
    Star {
        /// Index of the anchor stream.
        anchor: usize,
        /// For every stream `j != anchor`, `anchor_cols[j]` is the anchor
        /// column compared against stream `j` (ignored at `j == anchor`).
        anchor_cols: Vec<usize>,
        /// For every stream `j != anchor`, `other_cols[j]` is the column of
        /// stream `j` compared against the anchor (ignored at `j == anchor`).
        other_cols: Vec<usize>,
    },
}

/// A serializable, data-only description of a join condition.
///
/// This is what crosses a process boundary: every built-in condition can
/// describe itself as resolved column positions plus scalar parameters, and
/// [`ConditionDescriptor::instantiate`] rebuilds an equivalent condition on
/// the other side.  Closure-backed conditions ([`PredicateFn`]) have no
/// descriptor and therefore cannot run on remote shards.
#[derive(Debug, Clone, PartialEq)]
pub enum ConditionDescriptor {
    /// [`CrossJoin`] over `arity` streams.
    Cross {
        /// Number of input streams.
        arity: usize,
    },
    /// [`CommonKeyEquiJoin`] on one resolved key column per stream.
    CommonKey {
        /// Key column position per stream.
        columns: Vec<usize>,
    },
    /// [`StarEquiJoin`] anchored at `anchor`.
    Star {
        /// Index of the anchor stream.
        anchor: usize,
        /// Anchor-side column per non-anchor stream (ignored at the anchor).
        anchor_cols: Vec<usize>,
        /// Other-side column per non-anchor stream (ignored at the anchor).
        other_cols: Vec<usize>,
    },
    /// [`BandJoin`] of width `band` on one column per stream.
    Band {
        /// Band column position per stream.
        columns: Vec<usize>,
        /// Band width.
        band: f64,
    },
    /// [`DistanceWithin`] over two position streams.
    DistanceWithin {
        /// X-coordinate column in each stream.
        x_cols: [usize; 2],
        /// Y-coordinate column in each stream.
        y_cols: [usize; 2],
        /// Distance threshold.
        threshold: f64,
    },
}

impl ConditionDescriptor {
    /// Rebuilds the concrete condition this descriptor came from.
    ///
    /// The reconstruction is exact: the rebuilt condition evaluates
    /// [`JoinCondition::matches`] identically and exposes the same
    /// [`EquiStructure`], so probe plans and shard routing derived from it
    /// agree byte-for-byte with the originating process.
    pub fn instantiate(&self) -> Arc<dyn JoinCondition> {
        match self {
            ConditionDescriptor::Cross { arity } => Arc::new(CrossJoin::new(*arity)),
            ConditionDescriptor::CommonKey { columns } => {
                Arc::new(CommonKeyEquiJoin::from_columns(columns.clone()))
            }
            ConditionDescriptor::Star {
                anchor,
                anchor_cols,
                other_cols,
            } => Arc::new(StarEquiJoin::from_columns(
                *anchor,
                anchor_cols.clone(),
                other_cols.clone(),
            )),
            ConditionDescriptor::Band { columns, band } => {
                Arc::new(BandJoin::from_columns(columns.clone(), *band))
            }
            ConditionDescriptor::DistanceWithin {
                x_cols,
                y_cols,
                threshold,
            } => Arc::new(DistanceWithin::from_columns(*x_cols, *y_cols, *threshold)),
        }
    }
}

/// An m-ary join predicate over one tuple per input stream.
///
/// Implementations must be cheap to clone behind an `Arc` and side-effect
/// free; the operator may evaluate them many times per arriving tuple.
pub trait JoinCondition: Send + Sync {
    /// Number of input streams the condition expects.
    fn arity(&self) -> usize;

    /// Evaluates the predicate on one tuple per stream (`tuples[i]` belongs
    /// to stream `i`).
    fn matches(&self, tuples: &[&Tuple]) -> bool;

    /// Structural equi-join description, if the condition has one.
    ///
    /// # Contract
    ///
    /// A returned structure must characterize [`JoinCondition::matches`]
    /// **exactly**: a combination satisfies `matches` if and only if it
    /// satisfies the described equalities (under
    /// [`Value::join_eq`](mswj_types::Value::join_eq) semantics).  The
    /// operator plans hash-indexed probes and index-based result counting
    /// from this structure without re-evaluating `matches`, so a condition
    /// that checks anything beyond the described equalities must return
    /// `None` here and accept nested-loop evaluation.
    fn equi_structure(&self) -> Option<EquiStructure> {
        None
    }

    /// Short human-readable description for reports.
    fn describe(&self) -> String {
        "join condition".to_owned()
    }

    /// A serializable description of this condition, if one exists.
    ///
    /// # Contract
    ///
    /// When `Some`, [`ConditionDescriptor::instantiate`] on the returned
    /// descriptor must rebuild a condition whose `matches` and
    /// `equi_structure` behave identically to `self` — remote shards
    /// evaluate the rebuilt condition and their results must stay
    /// byte-identical to local execution.  Conditions that cannot be
    /// described as data (e.g. closures) return `None` and are rejected by
    /// remote execution backends at build time.
    fn descriptor(&self) -> Option<ConditionDescriptor> {
        None
    }
}

/// The trivial condition that accepts every combination (cross join).
///
/// The paper's analytical model uses the cross-join result size
/// `N×` as the normalizing quantity; this condition also doubles as the
/// `EqSel` modelling assumption in tests.
#[derive(Debug, Clone)]
pub struct CrossJoin {
    arity: usize,
}

impl CrossJoin {
    /// A cross join over `m` streams.
    pub fn new(arity: usize) -> Self {
        CrossJoin { arity }
    }
}

impl JoinCondition for CrossJoin {
    fn arity(&self) -> usize {
        self.arity
    }
    fn matches(&self, _tuples: &[&Tuple]) -> bool {
        true
    }
    fn describe(&self) -> String {
        format!("cross join over {} streams", self.arity)
    }
    fn descriptor(&self) -> Option<ConditionDescriptor> {
        Some(ConditionDescriptor::Cross { arity: self.arity })
    }
}

/// Equi-join on a single attribute shared by every stream
/// (`S1.a1 = S2.a1 AND S2.a1 = S3.a1`, query Q×3).
#[derive(Debug, Clone)]
pub struct CommonKeyEquiJoin {
    columns: Vec<usize>,
}

impl CommonKeyEquiJoin {
    /// Resolves the named attribute in every stream's schema.
    pub fn new(streams: &StreamSet, attribute: &str) -> Result<Self> {
        let mut columns = Vec::with_capacity(streams.arity());
        for (_, spec) in streams.iter() {
            columns.push(spec.schema.require(attribute)?);
        }
        Ok(CommonKeyEquiJoin { columns })
    }

    /// Builds the condition from already-resolved column positions.
    pub fn from_columns(columns: Vec<usize>) -> Self {
        CommonKeyEquiJoin { columns }
    }

    /// The key column position for stream `i`.
    pub fn column(&self, i: usize) -> usize {
        self.columns[i]
    }
}

impl JoinCondition for CommonKeyEquiJoin {
    fn arity(&self) -> usize {
        self.columns.len()
    }

    fn matches(&self, tuples: &[&Tuple]) -> bool {
        debug_assert_eq!(tuples.len(), self.columns.len());
        let first = match tuples[0].value(self.columns[0]) {
            Some(v) => v,
            None => return false,
        };
        tuples
            .iter()
            .zip(&self.columns)
            .skip(1)
            .all(|(t, &c)| t.value(c).map(|v| v.join_eq(first)).unwrap_or(false))
    }

    fn equi_structure(&self) -> Option<EquiStructure> {
        Some(EquiStructure::CommonKey {
            columns: self.columns.clone(),
        })
    }

    fn describe(&self) -> String {
        format!("common-key equi-join on columns {:?}", self.columns)
    }

    fn descriptor(&self) -> Option<ConditionDescriptor> {
        Some(ConditionDescriptor::CommonKey {
            columns: self.columns.clone(),
        })
    }
}

/// Star-shaped equi-join anchored at one stream
/// (`S1.a1 = S2.a1 AND S1.a2 = S3.a2 AND S1.a3 = S4.a3`, query Q×4).
#[derive(Debug, Clone)]
pub struct StarEquiJoin {
    anchor: usize,
    anchor_cols: Vec<usize>,
    other_cols: Vec<usize>,
}

impl StarEquiJoin {
    /// Builds the condition from attribute-name pairs.
    ///
    /// `pairs[j]` (for every non-anchor stream `j`, in ascending stream
    /// order, skipping the anchor) gives `(anchor_attribute, other_attribute)`.
    pub fn new(streams: &StreamSet, anchor: usize, pairs: &[(usize, &str, &str)]) -> Result<Self> {
        let m = streams.arity();
        if anchor >= m {
            return Err(Error::UnknownStream {
                index: anchor,
                streams: m,
            });
        }
        let anchor_schema = &streams.spec(anchor.into())?.schema;
        let mut anchor_cols = vec![0usize; m];
        let mut other_cols = vec![0usize; m];
        let mut covered = vec![false; m];
        covered[anchor] = true;
        for &(other, anchor_attr, other_attr) in pairs {
            if other >= m || other == anchor {
                return Err(Error::InvalidConfig(format!(
                    "invalid star-join pair referencing stream {other}"
                )));
            }
            anchor_cols[other] = anchor_schema.require(anchor_attr)?;
            other_cols[other] = streams.spec(other.into())?.schema.require(other_attr)?;
            covered[other] = true;
        }
        if !covered.iter().all(|&c| c) {
            return Err(Error::InvalidConfig(
                "star-join pairs must cover every non-anchor stream".to_owned(),
            ));
        }
        Ok(StarEquiJoin {
            anchor,
            anchor_cols,
            other_cols,
        })
    }

    /// Builds the condition from already-resolved column positions.
    pub fn from_columns(anchor: usize, anchor_cols: Vec<usize>, other_cols: Vec<usize>) -> Self {
        StarEquiJoin {
            anchor,
            anchor_cols,
            other_cols,
        }
    }

    /// The anchor stream index.
    pub fn anchor(&self) -> usize {
        self.anchor
    }
}

impl JoinCondition for StarEquiJoin {
    fn arity(&self) -> usize {
        self.anchor_cols.len()
    }

    fn matches(&self, tuples: &[&Tuple]) -> bool {
        let anchor_tuple = tuples[self.anchor];
        (0..tuples.len()).filter(|&j| j != self.anchor).all(|j| {
            let a = anchor_tuple.value(self.anchor_cols[j]);
            let b = tuples[j].value(self.other_cols[j]);
            match (a, b) {
                (Some(a), Some(b)) => a.join_eq(b),
                _ => false,
            }
        })
    }

    fn equi_structure(&self) -> Option<EquiStructure> {
        Some(EquiStructure::Star {
            anchor: self.anchor,
            anchor_cols: self.anchor_cols.clone(),
            other_cols: self.other_cols.clone(),
        })
    }

    fn describe(&self) -> String {
        format!("star equi-join anchored at stream {}", self.anchor + 1)
    }

    fn descriptor(&self) -> Option<ConditionDescriptor> {
        Some(ConditionDescriptor::Star {
            anchor: self.anchor,
            anchor_cols: self.anchor_cols.clone(),
            other_cols: self.other_cols.clone(),
        })
    }
}

/// Euclidean-distance predicate for 2-way joins over position streams
/// (`dist(S1.x, S1.y, S2.x, S2.y) < threshold`, query Q×2).
#[derive(Debug, Clone)]
pub struct DistanceWithin {
    x_cols: [usize; 2],
    y_cols: [usize; 2],
    threshold: f64,
}

impl DistanceWithin {
    /// Resolves coordinate attribute names in both schemas.
    pub fn new(streams: &StreamSet, x_attr: &str, y_attr: &str, threshold: f64) -> Result<Self> {
        if streams.arity() != 2 {
            return Err(Error::InvalidConfig(format!(
                "DistanceWithin is a binary predicate, query has {} streams",
                streams.arity()
            )));
        }
        let s0 = &streams.spec(0.into())?.schema;
        let s1 = &streams.spec(1.into())?.schema;
        Ok(DistanceWithin {
            x_cols: [s0.require(x_attr)?, s1.require(x_attr)?],
            y_cols: [s0.require(y_attr)?, s1.require(y_attr)?],
            threshold,
        })
    }

    /// Builds the predicate from resolved column positions.
    pub fn from_columns(x_cols: [usize; 2], y_cols: [usize; 2], threshold: f64) -> Self {
        DistanceWithin {
            x_cols,
            y_cols,
            threshold,
        }
    }

    /// The distance threshold in the coordinate unit (metres for Q×2).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl JoinCondition for DistanceWithin {
    fn arity(&self) -> usize {
        2
    }

    fn matches(&self, tuples: &[&Tuple]) -> bool {
        let coord = |t: &Tuple, col: usize| t.value(col).and_then(Value::as_float);
        match (
            coord(tuples[0], self.x_cols[0]),
            coord(tuples[0], self.y_cols[0]),
            coord(tuples[1], self.x_cols[1]),
            coord(tuples[1], self.y_cols[1]),
        ) {
            (Some(x0), Some(y0), Some(x1), Some(y1)) => {
                let dx = x0 - x1;
                let dy = y0 - y1;
                (dx * dx + dy * dy).sqrt() < self.threshold
            }
            _ => false,
        }
    }

    fn describe(&self) -> String {
        format!("dist() < {}", self.threshold)
    }

    fn descriptor(&self) -> Option<ConditionDescriptor> {
        Some(ConditionDescriptor::DistanceWithin {
            x_cols: self.x_cols,
            y_cols: self.y_cols,
            threshold: self.threshold,
        })
    }
}

/// Band join on an integer/float attribute: `|S1.a - S2.a| <= band`.
#[derive(Debug, Clone)]
pub struct BandJoin {
    columns: Vec<usize>,
    band: f64,
}

impl BandJoin {
    /// Resolves the named attribute in every stream's schema.
    pub fn new(streams: &StreamSet, attribute: &str, band: f64) -> Result<Self> {
        let mut columns = Vec::with_capacity(streams.arity());
        for (_, spec) in streams.iter() {
            columns.push(spec.schema.require(attribute)?);
        }
        Ok(BandJoin { columns, band })
    }

    /// Builds the condition from already-resolved column positions.
    pub fn from_columns(columns: Vec<usize>, band: f64) -> Self {
        BandJoin { columns, band }
    }

    /// The band width.
    pub fn band(&self) -> f64 {
        self.band
    }
}

impl JoinCondition for BandJoin {
    fn arity(&self) -> usize {
        self.columns.len()
    }

    fn matches(&self, tuples: &[&Tuple]) -> bool {
        let mut values = tuples
            .iter()
            .zip(&self.columns)
            .map(|(t, &c)| t.value(c).and_then(Value::as_float));
        let first = match values.next().flatten() {
            Some(v) => v,
            None => return false,
        };
        // Every stream must lie within the band of the first one.
        tuples.iter().zip(&self.columns).skip(1).all(|(t, &c)| {
            match t.value(c).and_then(Value::as_float) {
                Some(v) => (v - first).abs() <= self.band,
                None => false,
            }
        })
    }

    fn describe(&self) -> String {
        format!("band join (width {})", self.band)
    }

    fn descriptor(&self) -> Option<ConditionDescriptor> {
        Some(ConditionDescriptor::Band {
            columns: self.columns.clone(),
            band: self.band,
        })
    }
}

/// The boxed m-ary predicate closure wrapped by [`PredicateFn`].
pub type PredicateClosure = Arc<dyn Fn(&[&Tuple]) -> bool + Send + Sync>;

/// A user-defined m-ary predicate backed by a closure.
///
/// This is the catch-all escape hatch the paper insists on ("arbitrary join
/// conditions, e.g., conditions involving user-defined functions").
#[derive(Clone)]
pub struct PredicateFn {
    arity: usize,
    name: String,
    f: PredicateClosure,
}

impl PredicateFn {
    /// Wraps a closure as a join condition over `arity` streams.
    pub fn new(
        arity: usize,
        name: impl Into<String>,
        f: impl Fn(&[&Tuple]) -> bool + Send + Sync + 'static,
    ) -> Self {
        PredicateFn {
            arity,
            name: name.into(),
            f: Arc::new(f),
        }
    }
}

impl fmt::Debug for PredicateFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PredicateFn")
            .field("arity", &self.arity)
            .field("name", &self.name)
            .finish()
    }
}

impl JoinCondition for PredicateFn {
    fn arity(&self) -> usize {
        self.arity
    }
    fn matches(&self, tuples: &[&Tuple]) -> bool {
        (self.f)(tuples)
    }
    fn describe(&self) -> String {
        format!("udf({})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_types::{FieldType, Schema, StreamSpec, Timestamp};

    fn int_tuple(stream: usize, values: Vec<i64>) -> Tuple {
        Tuple::new(
            stream.into(),
            0,
            Timestamp::ZERO,
            values.into_iter().map(Value::Int).collect(),
        )
    }

    fn common_key_streams(m: usize) -> StreamSet {
        StreamSet::homogeneous(m, Schema::new(vec![("a1", FieldType::Int)]), 5_000).unwrap()
    }

    #[test]
    fn cross_join_accepts_everything() {
        let c = CrossJoin::new(3);
        assert_eq!(c.arity(), 3);
        let t0 = int_tuple(0, vec![1]);
        let t1 = int_tuple(1, vec![2]);
        let t2 = int_tuple(2, vec![3]);
        assert!(c.matches(&[&t0, &t1, &t2]));
        assert!(c.equi_structure().is_none());
        assert!(c.describe().contains("cross"));
    }

    #[test]
    fn common_key_equi_join_matches_equal_keys() {
        let streams = common_key_streams(3);
        let c = CommonKeyEquiJoin::new(&streams, "a1").unwrap();
        assert_eq!(c.arity(), 3);
        assert_eq!(c.column(2), 0);
        let a = int_tuple(0, vec![7]);
        let b = int_tuple(1, vec![7]);
        let d = int_tuple(2, vec![7]);
        let e = int_tuple(2, vec![8]);
        assert!(c.matches(&[&a, &b, &d]));
        assert!(!c.matches(&[&a, &b, &e]));
        match c.equi_structure() {
            Some(EquiStructure::CommonKey { columns }) => assert_eq!(columns, vec![0, 0, 0]),
            other => panic!("unexpected structure {other:?}"),
        }
    }

    #[test]
    fn common_key_requires_attribute_in_every_schema() {
        let streams = common_key_streams(2);
        assert!(CommonKeyEquiJoin::new(&streams, "missing").is_err());
    }

    #[test]
    fn star_equi_join_q4_shape() {
        // S1:(a1,a2,a3), S2:(a1), S3:(a2), S4:(a3)
        let streams = StreamSet::new(vec![
            StreamSpec::new(
                "S1",
                Schema::new(vec![
                    ("a1", FieldType::Int),
                    ("a2", FieldType::Int),
                    ("a3", FieldType::Int),
                ]),
                3_000,
            ),
            StreamSpec::new("S2", Schema::new(vec![("a1", FieldType::Int)]), 3_000),
            StreamSpec::new("S3", Schema::new(vec![("a2", FieldType::Int)]), 3_000),
            StreamSpec::new("S4", Schema::new(vec![("a3", FieldType::Int)]), 3_000),
        ])
        .unwrap();
        let c = StarEquiJoin::new(
            &streams,
            0,
            &[(1, "a1", "a1"), (2, "a2", "a2"), (3, "a3", "a3")],
        )
        .unwrap();
        assert_eq!(c.arity(), 4);
        assert_eq!(c.anchor(), 0);
        let s1 = int_tuple(0, vec![1, 2, 3]);
        let s2 = int_tuple(1, vec![1]);
        let s3 = int_tuple(2, vec![2]);
        let s4 = int_tuple(3, vec![3]);
        assert!(c.matches(&[&s1, &s2, &s3, &s4]));
        let s4_bad = int_tuple(3, vec![9]);
        assert!(!c.matches(&[&s1, &s2, &s3, &s4_bad]));
        assert!(matches!(
            c.equi_structure(),
            Some(EquiStructure::Star { anchor: 0, .. })
        ));
    }

    #[test]
    fn star_join_validates_coverage_and_indices() {
        let streams = common_key_streams(3);
        // Missing stream 2 in the pairs.
        assert!(StarEquiJoin::new(&streams, 0, &[(1, "a1", "a1")]).is_err());
        // Anchor out of range.
        assert!(StarEquiJoin::new(&streams, 9, &[]).is_err());
        // Pair referencing the anchor itself.
        assert!(StarEquiJoin::new(&streams, 0, &[(0, "a1", "a1"), (1, "a1", "a1")]).is_err());
    }

    #[test]
    fn distance_within_matches_close_points() {
        let schema = Schema::new(vec![
            ("sID", FieldType::Int),
            ("xCoord", FieldType::Float),
            ("yCoord", FieldType::Float),
        ]);
        let streams = StreamSet::homogeneous(2, schema, 5_000).unwrap();
        let c = DistanceWithin::new(&streams, "xCoord", "yCoord", 5.0).unwrap();
        assert_eq!(c.arity(), 2);
        assert!((c.threshold() - 5.0).abs() < f64::EPSILON);
        let make = |stream: usize, x: f64, y: f64| {
            Tuple::new(
                stream.into(),
                0,
                Timestamp::ZERO,
                vec![Value::Int(1), Value::Float(x), Value::Float(y)],
            )
        };
        let a = make(0, 10.0, 10.0);
        let near = make(1, 12.0, 13.0); // dist = sqrt(4+9) ≈ 3.6
        let far = make(1, 20.0, 10.0); // dist = 10
        assert!(c.matches(&[&a, &near]));
        assert!(!c.matches(&[&a, &far]));
    }

    #[test]
    fn distance_within_requires_two_streams() {
        let schema = Schema::new(vec![
            ("xCoord", FieldType::Float),
            ("yCoord", FieldType::Float),
        ]);
        let streams = StreamSet::homogeneous(3, schema, 5_000).unwrap();
        assert!(DistanceWithin::new(&streams, "xCoord", "yCoord", 5.0).is_err());
    }

    #[test]
    fn band_join_width_semantics() {
        let streams = common_key_streams(2);
        let c = BandJoin::new(&streams, "a1", 2.0).unwrap();
        let a = int_tuple(0, vec![10]);
        let near = int_tuple(1, vec![12]);
        let far = int_tuple(1, vec![13]);
        assert!(c.matches(&[&a, &near]));
        assert!(!c.matches(&[&a, &far]));
        assert!(c.describe().contains("band"));
    }

    #[test]
    fn predicate_fn_wraps_closures() {
        let c = PredicateFn::new(2, "sum_lt_10", |ts: &[&Tuple]| {
            let sum: i64 = ts
                .iter()
                .filter_map(|t| t.value(0).and_then(Value::as_int))
                .sum();
            sum < 10
        });
        let a = int_tuple(0, vec![3]);
        let b = int_tuple(1, vec![4]);
        let big = int_tuple(1, vec![9]);
        assert!(c.matches(&[&a, &b]));
        assert!(!c.matches(&[&a, &big]));
        assert_eq!(c.arity(), 2);
        assert!(format!("{c:?}").contains("sum_lt_10"));
        assert!(c.describe().contains("udf"));
    }

    #[test]
    fn descriptors_rebuild_equivalent_conditions() {
        let streams = common_key_streams(3);
        let originals: Vec<Arc<dyn JoinCondition>> = vec![
            Arc::new(CrossJoin::new(3)),
            Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap()),
            Arc::new(StarEquiJoin::new(&streams, 0, &[(1, "a1", "a1"), (2, "a1", "a1")]).unwrap()),
            Arc::new(BandJoin::new(&streams, "a1", 2.0).unwrap()),
        ];
        let probes = [
            vec![
                int_tuple(0, vec![7]),
                int_tuple(1, vec![7]),
                int_tuple(2, vec![7]),
            ],
            vec![
                int_tuple(0, vec![7]),
                int_tuple(1, vec![8]),
                int_tuple(2, vec![7]),
            ],
            vec![
                int_tuple(0, vec![1]),
                int_tuple(1, vec![2]),
                int_tuple(2, vec![9]),
            ],
        ];
        for original in &originals {
            let descriptor = original
                .descriptor()
                .expect("built-in must describe itself");
            let rebuilt = descriptor.instantiate();
            assert_eq!(rebuilt.arity(), original.arity());
            assert_eq!(rebuilt.equi_structure(), original.equi_structure());
            assert_eq!(rebuilt.descriptor(), Some(descriptor));
            for combo in &probes {
                let refs: Vec<&Tuple> = combo.iter().collect();
                assert_eq!(rebuilt.matches(&refs), original.matches(&refs));
            }
        }
    }

    #[test]
    fn distance_descriptor_roundtrips() {
        let schema = Schema::new(vec![
            ("xCoord", FieldType::Float),
            ("yCoord", FieldType::Float),
        ]);
        let streams = StreamSet::homogeneous(2, schema, 5_000).unwrap();
        let original = DistanceWithin::new(&streams, "xCoord", "yCoord", 5.0).unwrap();
        let rebuilt = original.descriptor().unwrap().instantiate();
        let make = |stream: usize, x: f64, y: f64| {
            Tuple::new(
                stream.into(),
                0,
                Timestamp::ZERO,
                vec![Value::Float(x), Value::Float(y)],
            )
        };
        let a = make(0, 10.0, 10.0);
        let near = make(1, 12.0, 13.0);
        let far = make(1, 20.0, 10.0);
        assert!(rebuilt.matches(&[&a, &near]));
        assert!(!rebuilt.matches(&[&a, &far]));
    }

    #[test]
    fn closures_have_no_descriptor() {
        let c = PredicateFn::new(2, "opaque", |_: &[&Tuple]| true);
        assert!(c.descriptor().is_none());
    }

    #[test]
    fn missing_values_never_match() {
        let streams = common_key_streams(2);
        let c = CommonKeyEquiJoin::new(&streams, "a1").unwrap();
        let empty = Tuple::marker(0.into(), 0, Timestamp::ZERO);
        let other = int_tuple(1, vec![1]);
        assert!(!c.matches(&[&empty, &other]));
    }
}

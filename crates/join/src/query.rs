//! Join query description: streams, windows and the join condition.

use crate::condition::JoinCondition;
use mswj_types::{Duration, Result, StreamIndex, StreamSet};
use std::sync::Arc;

/// A complete m-way sliding window join query: the input streams with their
/// window sizes plus the join condition `p_on`.
///
/// `JoinQuery` is cheap to clone; operators, pipelines and experiment
/// harnesses all hold one.
#[derive(Clone)]
pub struct JoinQuery {
    streams: StreamSet,
    condition: Arc<dyn JoinCondition>,
    name: String,
}

impl std::fmt::Debug for JoinQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinQuery")
            .field("name", &self.name)
            .field("arity", &self.streams.arity())
            .field("windows", &self.streams.windows())
            .field("condition", &self.condition.describe())
            .finish()
    }
}

impl JoinQuery {
    /// Builds a query; the condition's arity must match the stream count.
    pub fn new(
        name: impl Into<String>,
        streams: StreamSet,
        condition: Arc<dyn JoinCondition>,
    ) -> Result<Self> {
        if condition.arity() != streams.arity() {
            return Err(mswj_types::Error::InvalidConfig(format!(
                "join condition arity {} does not match stream count {}",
                condition.arity(),
                streams.arity()
            )));
        }
        Ok(JoinQuery {
            streams,
            condition,
            name: name.into(),
        })
    }

    /// The query name (used in experiment reports, e.g. `"Qx3"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The input streams.
    pub fn streams(&self) -> &StreamSet {
        &self.streams
    }

    /// Number of input streams `m`.
    pub fn arity(&self) -> usize {
        self.streams.arity()
    }

    /// The join condition.
    pub fn condition(&self) -> &Arc<dyn JoinCondition> {
        &self.condition
    }

    /// The window size of stream `i`.
    pub fn window(&self, i: StreamIndex) -> Duration {
        self.streams
            .window(i)
            .expect("stream index validated at construction")
    }

    /// All window sizes in stream order.
    pub fn windows(&self) -> Vec<Duration> {
        self.streams.windows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{CommonKeyEquiJoin, CrossJoin};
    use mswj_types::{FieldType, Schema, StreamSet};

    fn streams(m: usize) -> StreamSet {
        StreamSet::homogeneous(m, Schema::new(vec![("a1", FieldType::Int)]), 5_000).unwrap()
    }

    #[test]
    fn query_construction_checks_arity() {
        let s = streams(3);
        let cond = Arc::new(CrossJoin::new(2));
        assert!(JoinQuery::new("bad", s.clone(), cond).is_err());
        let cond = Arc::new(CrossJoin::new(3));
        let q = JoinQuery::new("ok", s, cond).unwrap();
        assert_eq!(q.arity(), 3);
        assert_eq!(q.name(), "ok");
        assert_eq!(q.windows(), vec![5_000; 3]);
        assert_eq!(q.window(StreamIndex(1)), 5_000);
        assert!(format!("{q:?}").contains("cross"));
    }

    #[test]
    fn query_exposes_condition() {
        let s = streams(2);
        let cond = Arc::new(CommonKeyEquiJoin::new(&s, "a1").unwrap());
        let q = JoinQuery::new("q", s, cond).unwrap();
        assert!(q.condition().equi_structure().is_some());
        assert_eq!(q.streams().arity(), 2);
    }
}

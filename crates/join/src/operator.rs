//! The MJoin-style m-way sliding window join operator (Alg. 2).
//!
//! The operator receives the (partially) sorted and synchronized stream
//! produced by the disorder-handling front-end and processes each tuple as
//! follows:
//!
//! 1. If the tuple is **in order** (its timestamp is not smaller than the
//!    maximum timestamp `onT` seen so far): advance `onT`, invalidate
//!    expired tuples in the windows of every *other* stream, probe those
//!    windows, emit the qualifying result tuples, and insert the tuple into
//!    its own window.
//! 2. If the tuple is **out of order**: skip invalidation and probing (its
//!    results are lost), but still insert it into its own window if it is
//!    within the window's current scope so that it can contribute to future
//!    results.
//!
//! ## Probe access paths
//!
//! How step 1 searches the other windows is decided by a [`ProbePlan`]
//! (see [`planner`](crate::planner)): equi-join conditions probe through
//! the windows' value→tuple hash indexes — each lookup touches only the
//! bucket of tuples that can still satisfy the join — while generic
//! conditions (and any probe whose index soundness cannot be guaranteed)
//! use the exhaustive nested-loop scan.  Both paths are proven equivalent
//! by the differential harness in `tests/differential_probe.rs`.
//!
//! For every processed tuple the operator reports the number of produced
//! join results `n_on(e)` and the corresponding cross-join size `n_x(e)`;
//! the Tuple-Productivity Profiler consumes these to learn the
//! delay-productivity correlation (Sec. IV-B).

use crate::condition::JoinCondition;
use crate::planner::{ProbePlan, ProbeStrategy};
use crate::query::JoinQuery;
use crate::result::JoinResult;
use crate::window::{classify, KeyClass, Window};
use mswj_types::{StreamIndex, Timestamp, Tuple, Value};
use std::collections::VecDeque;
use std::sync::Arc;

/// What happened when one tuple was pushed into the operator.
///
/// Materialized results are not carried here: in enumerating mode they are
/// handed to the caller's emit callback one by one (see
/// [`MswjOperator::push_with`]), so the outcome itself stays allocation-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Whether the tuple arrived in timestamp order w.r.t. `onT`.
    pub in_order: bool,
    /// Whether the tuple was inserted into its window (out-of-order tuples
    /// that already fell out of the window scope are dropped).
    pub inserted: bool,
    /// Whether the probe was answered without scanning the other windows:
    /// through hash-index bucket lookups, or short-circuited because the
    /// probing key can never join (`Null`/missing).  `false` for
    /// nested-loop scans and for out-of-order (non-probing) arrivals.
    pub indexed: bool,
    /// Number of join results derived at this arrival (`n_on(e)`); zero for
    /// out-of-order tuples.
    pub n_join: u64,
    /// Size of the corresponding cross-join (`n_x(e)`), i.e. the product of
    /// the other windows' cardinalities at probe time; zero for out-of-order
    /// tuples.
    pub n_cross: u64,
    /// Number of tuples expired from other windows by this arrival.
    pub expired: usize,
}

/// Aggregate counters over the operator's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorStats {
    /// Tuples processed in timestamp order (probing arrivals).
    pub in_order: u64,
    /// Tuples processed out of timestamp order (non-probing arrivals).
    pub out_of_order: u64,
    /// Out-of-order tuples that were too old to be inserted into their
    /// window and were dropped entirely.
    pub dropped: u64,
    /// Probing arrivals answered through the hash-indexed probe path
    /// (bucket lookups or barren-key short-circuits).
    pub indexed_probes: u64,
    /// Probing arrivals that used the exhaustive nested-loop scan — either
    /// because the plan is [`ProbePlan::NestedLoop`] or because index
    /// soundness could not be guaranteed for that probe.
    pub fallback_probes: u64,
    /// Total join results produced.
    pub results: u64,
    /// Total cross-join combinations corresponding to probing arrivals.
    pub cross_results: u64,
    /// Total expired tuples across all windows.
    pub expired: u64,
}

/// Per-probe decision of the indexed access path.
enum Gate {
    /// Hash lookups are provably equivalent to the scan for this probe.
    /// Carries the probe's own bucket key (0 for anchor probes, which read
    /// one key per satellite from the probing tuple instead).
    Engage(i64),
    /// The probing tuple's key is `Null` or missing: no combination can
    /// satisfy the equi-join, so the probe derives zero results without
    /// touching any window.
    Barren,
    /// Equivalence cannot be guaranteed (non-integer key values in play):
    /// the probe must use the exhaustive nested-loop scan.
    Fallback,
}

/// The m-way sliding window join operator.
pub struct MswjOperator {
    query: JoinQuery,
    condition: Arc<dyn JoinCondition>,
    plan: ProbePlan,
    windows: Vec<Window>,
    on_t: Timestamp,
    started: bool,
    enumerate: bool,
    stats: OperatorStats,
}

impl std::fmt::Debug for MswjOperator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MswjOperator")
            .field("query", &self.query)
            .field("plan", &self.plan.describe())
            .field("on_t", &self.on_t)
            .field("enumerate", &self.enumerate)
            .field("stats", &self.stats)
            .finish()
    }
}

impl MswjOperator {
    /// Creates an operator that **counts** join results without
    /// materializing them.  Counting uses the windows' hash indexes when
    /// the join condition is an equi-join, which makes the paper-scale
    /// workloads tractable.
    pub fn new(query: JoinQuery) -> Self {
        Self::build(query, false, ProbeStrategy::Auto)
    }

    /// Creates an operator that additionally **materializes** every result
    /// tuple.  Intended for small-scale runs, examples and tests.
    pub fn enumerating(query: JoinQuery) -> Self {
        Self::build(query, true, ProbeStrategy::Auto)
    }

    /// Creates an operator with an explicit [`ProbeStrategy`] —
    /// [`ProbeStrategy::NestedLoop`] forces the exhaustive scan even for
    /// equi-joins, which is what the differential test harness compares
    /// the indexed path against.
    pub fn with_probe(query: JoinQuery, strategy: ProbeStrategy, enumerate: bool) -> Self {
        Self::build(query, enumerate, strategy)
    }

    fn build(query: JoinQuery, enumerate: bool, strategy: ProbeStrategy) -> Self {
        let condition = Arc::clone(query.condition());
        let equi = condition.equi_structure();
        let plan = ProbePlan::new(strategy, equi.as_ref());
        let m = query.arity();
        let mut windows = Vec::with_capacity(m);
        for i in 0..m {
            let size = query.window(StreamIndex(i));
            windows.push(Window::with_indexed_columns(size, &plan.indexed_columns(i)));
        }
        MswjOperator {
            query,
            condition,
            plan,
            windows,
            on_t: Timestamp::ZERO,
            started: false,
            enumerate,
            stats: OperatorStats::default(),
        }
    }

    /// The query this operator executes.
    pub fn query(&self) -> &JoinQuery {
        &self.query
    }

    /// The probe access path planned from the condition's equi structure.
    pub fn probe_plan(&self) -> &ProbePlan {
        &self.plan
    }

    /// The maximum timestamp among tuples received so far (`onT`).
    pub fn on_t(&self) -> Timestamp {
        self.on_t
    }

    /// The window of stream `i`.
    pub fn window(&self, i: StreamIndex) -> &Window {
        &self.windows[i.as_usize()]
    }

    /// Lifetime counters.
    pub fn stats(&self) -> OperatorStats {
        self.stats
    }

    /// Whether the operator materializes result tuples.
    pub fn is_enumerating(&self) -> bool {
        self.enumerate
    }

    /// Clears every window and resets `onT`, keeping the query and plan.
    pub fn reset(&mut self) {
        for w in &mut self.windows {
            w.clear();
        }
        self.on_t = Timestamp::ZERO;
        self.started = false;
        self.stats = OperatorStats::default();
    }

    /// Processes one tuple according to Alg. 2 and reports what happened.
    ///
    /// In enumerating mode the materialized results are computed and
    /// discarded; use [`MswjOperator::push_with`] to receive them.
    pub fn push(&mut self, tuple: Tuple) -> ProbeOutcome {
        self.push_with(tuple, &mut |_| {})
    }

    /// Processes one tuple according to Alg. 2, invoking `emit` once per
    /// materialized join result (enumerating operators only — a counting
    /// operator never calls `emit`) and reporting what happened.
    ///
    /// This is the event-driven hot path used by the pipeline's sink-based
    /// output: results stream out through the callback instead of being
    /// collected into a per-push `Vec`.
    pub fn push_with(&mut self, tuple: Tuple, emit: &mut dyn FnMut(JoinResult)) -> ProbeOutcome {
        let i = tuple.stream.as_usize();
        debug_assert!(i < self.windows.len(), "tuple references unknown stream");
        let in_order = !self.started || tuple.ts >= self.on_t;
        let mut outcome = ProbeOutcome {
            in_order,
            ..ProbeOutcome::default()
        };
        if in_order {
            self.on_t = tuple.ts;
            self.started = true;
            // Step 1: invalidate expired tuples in windows of other streams.
            for j in 0..self.windows.len() {
                if j != i {
                    let w_j = self.query.window(StreamIndex(j));
                    let bound = tuple.ts.saturating_sub_duration(w_j);
                    outcome.expired += self.windows[j].expire_before(bound);
                }
            }
            // Step 2: probe remaining tuples in all other windows.
            outcome.n_cross = self.cross_size(i);
            if self.enumerate {
                let mut n_join = 0u64;
                outcome.indexed = self.probe_enumerate(i, &tuple, &mut |combo| {
                    n_join += 1;
                    emit(JoinResult::new(combo.iter().map(|&t| t.clone()).collect()));
                });
                outcome.n_join = n_join;
            } else {
                let (n_join, indexed) = self.probe_count(i, &tuple);
                outcome.n_join = n_join;
                outcome.indexed = indexed;
            }
            // Step 3: insert into own window.
            self.windows[i].insert(tuple);
            outcome.inserted = true;
            self.stats.in_order += 1;
            if outcome.indexed {
                self.stats.indexed_probes += 1;
            } else {
                self.stats.fallback_probes += 1;
            }
            self.stats.results += outcome.n_join;
            self.stats.cross_results += outcome.n_cross;
            self.stats.expired += outcome.expired as u64;
        } else {
            // Out-of-order tuple: no probing; insert only if still in scope
            // (e.ts >= onT - W_i, Sec. III-A).
            self.stats.out_of_order += 1;
            let w_i = self.query.window(StreamIndex(i));
            if tuple.ts >= self.on_t.saturating_sub_duration(w_i) {
                self.windows[i].insert(tuple);
                outcome.inserted = true;
            } else {
                self.stats.dropped += 1;
            }
        }
        outcome
    }

    /// Product of the other windows' cardinalities: the cross-join size at
    /// the arrival of a probing tuple of stream `i`.
    fn cross_size(&self, i: usize) -> u64 {
        self.windows
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, w)| w.len() as u64)
            .product()
    }

    // ------------------------------------------------------------------
    // Per-probe gates: when is the indexed path provably equivalent?
    // ------------------------------------------------------------------

    /// Classifies the probing tuple's own key value, with the same
    /// [`KeyClass`] rules the windows use for index maintenance — the gate
    /// is only sound because the two sides agree case-for-case.
    fn classify_probe(v: Option<&Value>) -> Gate {
        match classify(v) {
            // Null/missing keys fail every join_eq comparison.
            KeyClass::Inert => Gate::Barren,
            KeyClass::Key(k) => Gate::Engage(k),
            // Floats can equal integers under join_eq's numeric coercion,
            // and strings/bools can equal their own kind in other windows —
            // neither is answerable from the i64 buckets.
            KeyClass::Unindexable => Gate::Fallback,
        }
    }

    fn common_key_gate(&self, i: usize, tuple: &Tuple, columns: &[usize]) -> Gate {
        let key = match Self::classify_probe(tuple.value(columns[i])) {
            Gate::Engage(k) => k,
            other => return other,
        };
        for (j, w) in self.windows.iter().enumerate() {
            if j != i && !w.index_usable(columns[j]) {
                return Gate::Fallback;
            }
        }
        Gate::Engage(key)
    }

    fn star_anchor_gate(&self, anchor: usize, tuple: &Tuple, cols: &StarCols<'_>) -> Gate {
        let mut fallback = false;
        for j in 0..self.windows.len() {
            if j == anchor {
                continue;
            }
            match Self::classify_probe(tuple.value(cols.anchor_cols[j])) {
                // A Null/missing pair key fails every combination outright,
                // regardless of any soundness concern elsewhere.
                Gate::Barren => return Gate::Barren,
                Gate::Fallback => fallback = true,
                Gate::Engage(_) => {}
            }
            if !self.windows[j].index_usable(cols.other_cols[j]) {
                fallback = true;
            }
        }
        if fallback {
            Gate::Fallback
        } else {
            Gate::Engage(0)
        }
    }

    fn star_satellite_gate(
        &self,
        i: usize,
        anchor: usize,
        tuple: &Tuple,
        cols: &StarCols<'_>,
    ) -> Gate {
        let key = match Self::classify_probe(tuple.value(cols.other_cols[i])) {
            Gate::Engage(k) => k,
            other => return other,
        };
        // The anchor window must be sound on *every* anchor-side column:
        // on anchor_cols[i] for the bucket lookup itself, and on the other
        // pair columns so that skipping non-integer anchor values (which
        // are then provably inert) is equivalent to the scan.
        for j in 0..self.windows.len() {
            if j == anchor {
                continue;
            }
            if !self.windows[anchor].index_usable(cols.anchor_cols[j]) {
                return Gate::Fallback;
            }
            if j != i && !self.windows[j].index_usable(cols.other_cols[j]) {
                return Gate::Fallback;
            }
        }
        Gate::Engage(key)
    }

    // ------------------------------------------------------------------
    // Counting probes
    // ------------------------------------------------------------------

    /// Index-assisted (or enumerated) count of the join results derived by
    /// a probing tuple of stream `i`; the flag reports whether the probe
    /// avoided a window scan.
    fn probe_count(&self, i: usize, tuple: &Tuple) -> (u64, bool) {
        match &self.plan {
            ProbePlan::CommonKey { columns } => match self.common_key_gate(i, tuple, columns) {
                Gate::Engage(key) => {
                    let mut product = 1u64;
                    for (j, w) in self.windows.iter().enumerate() {
                        if j == i {
                            continue;
                        }
                        let c = w.count_key(columns[j], key);
                        if c == 0 {
                            return (0, true);
                        }
                        product = product.saturating_mul(c);
                    }
                    (product, true)
                }
                Gate::Barren => (0, true),
                Gate::Fallback => (self.enumerate_count(i, tuple), false),
            },
            ProbePlan::Star {
                anchor,
                anchor_cols,
                other_cols,
            } => {
                let cols = StarCols {
                    anchor_cols,
                    other_cols,
                };
                if i == *anchor {
                    match self.star_anchor_gate(*anchor, tuple, &cols) {
                        Gate::Engage(_) => {
                            let mut product = 1u64;
                            for (j, w) in self.windows.iter().enumerate() {
                                if j == *anchor {
                                    continue;
                                }
                                let key = tuple
                                    .value(anchor_cols[j])
                                    .and_then(Value::as_int)
                                    .expect("gate guarantees integer pair keys");
                                let c = w.count_key(other_cols[j], key);
                                if c == 0 {
                                    return (0, true);
                                }
                                product = product.saturating_mul(c);
                            }
                            (product, true)
                        }
                        Gate::Barren => (0, true),
                        Gate::Fallback => (self.enumerate_count(i, tuple), false),
                    }
                } else {
                    match self.star_satellite_gate(i, *anchor, tuple, &cols) {
                        Gate::Engage(own_key) => {
                            (self.count_star_satellite(i, *anchor, own_key, &cols), true)
                        }
                        Gate::Barren => (0, true),
                        Gate::Fallback => (self.enumerate_count(i, tuple), false),
                    }
                }
            }
            ProbePlan::NestedLoop => (self.enumerate_count(i, tuple), false),
        }
    }

    /// Satellite-probe counting: walk only the anchor tuples in the
    /// matching bucket and multiply the other satellites' bucket sizes.
    fn count_star_satellite(
        &self,
        i: usize,
        anchor: usize,
        own_key: i64,
        cols: &StarCols<'_>,
    ) -> u64 {
        let Some(anchor_bucket) = self.windows[anchor].bucket(cols.anchor_cols[i], own_key) else {
            return 0;
        };
        let mut total = 0u64;
        'anchor: for a in anchor_bucket {
            let mut product = 1u64;
            for (k, w) in self.windows.iter().enumerate() {
                if k == anchor || k == i {
                    continue;
                }
                // The gate proved the anchor window sound on this column,
                // so a non-integer value here is inert and never joins.
                let key = match a.value(cols.anchor_cols[k]).and_then(Value::as_int) {
                    Some(v) => v,
                    None => continue 'anchor,
                };
                let c = w.count_key(cols.other_cols[k], key);
                if c == 0 {
                    continue 'anchor;
                }
                product = product.saturating_mul(c);
            }
            total = total.saturating_add(product);
        }
        total
    }

    /// Nested-loop count of matching combinations for arbitrary conditions.
    fn enumerate_count(&self, i: usize, tuple: &Tuple) -> u64 {
        let mut count = 0u64;
        self.for_each_combination(i, tuple, &mut |_| count += 1);
        count
    }

    // ------------------------------------------------------------------
    // Enumerating probes
    // ------------------------------------------------------------------

    /// Invokes `f` for every matching combination (one live tuple per other
    /// stream plus the probing tuple at position `i`), choosing the indexed
    /// bucket walk when the gate allows it and the exhaustive scan
    /// otherwise.  Returns whether a window scan was avoided.
    fn probe_enumerate<'a>(
        &'a self,
        i: usize,
        tuple: &'a Tuple,
        f: &mut dyn FnMut(&[&'a Tuple]),
    ) -> bool {
        match &self.plan {
            ProbePlan::CommonKey { columns } => match self.common_key_gate(i, tuple, columns) {
                Gate::Engage(key) => {
                    self.enumerate_common_key(i, tuple, columns, key, f);
                    true
                }
                Gate::Barren => true,
                Gate::Fallback => {
                    self.for_each_combination(i, tuple, f);
                    false
                }
            },
            ProbePlan::Star {
                anchor,
                anchor_cols,
                other_cols,
            } => {
                let cols = StarCols {
                    anchor_cols,
                    other_cols,
                };
                let gate = if i == *anchor {
                    self.star_anchor_gate(*anchor, tuple, &cols)
                } else {
                    self.star_satellite_gate(i, *anchor, tuple, &cols)
                };
                match gate {
                    Gate::Engage(own_key) => {
                        if i == *anchor {
                            self.enumerate_star_anchor(i, tuple, &cols, f);
                        } else {
                            self.enumerate_star_satellite(i, *anchor, tuple, own_key, &cols, f);
                        }
                        true
                    }
                    Gate::Barren => true,
                    Gate::Fallback => {
                        self.for_each_combination(i, tuple, f);
                        false
                    }
                }
            }
            ProbePlan::NestedLoop => {
                self.for_each_combination(i, tuple, f);
                false
            }
        }
    }

    fn enumerate_common_key<'a>(
        &'a self,
        i: usize,
        tuple: &'a Tuple,
        columns: &[usize],
        key: i64,
        f: &mut dyn FnMut(&[&'a Tuple]),
    ) {
        let m = self.windows.len();
        let mut levels: Vec<(usize, &VecDeque<Tuple>)> = Vec::with_capacity(m - 1);
        for (j, w) in self.windows.iter().enumerate() {
            if j == i {
                continue;
            }
            match w.bucket(columns[j], key) {
                Some(bucket) => levels.push((j, bucket)),
                None => return, // one empty bucket kills every combination
            }
        }
        let mut slots: Vec<&Tuple> = vec![tuple; m];
        emit_product(&levels, &mut slots, f);
    }

    fn enumerate_star_anchor<'a>(
        &'a self,
        anchor: usize,
        tuple: &'a Tuple,
        cols: &StarCols<'_>,
        f: &mut dyn FnMut(&[&'a Tuple]),
    ) {
        let m = self.windows.len();
        let mut levels: Vec<(usize, &VecDeque<Tuple>)> = Vec::with_capacity(m - 1);
        for (j, w) in self.windows.iter().enumerate() {
            if j == anchor {
                continue;
            }
            let key = tuple
                .value(cols.anchor_cols[j])
                .and_then(Value::as_int)
                .expect("gate guarantees integer pair keys");
            match w.bucket(cols.other_cols[j], key) {
                Some(bucket) => levels.push((j, bucket)),
                None => return,
            }
        }
        let mut slots: Vec<&Tuple> = vec![tuple; m];
        emit_product(&levels, &mut slots, f);
    }

    fn enumerate_star_satellite<'a>(
        &'a self,
        i: usize,
        anchor: usize,
        tuple: &'a Tuple,
        own_key: i64,
        cols: &StarCols<'_>,
        f: &mut dyn FnMut(&[&'a Tuple]),
    ) {
        let Some(anchor_bucket) = self.windows[anchor].bucket(cols.anchor_cols[i], own_key) else {
            return;
        };
        let m = self.windows.len();
        let mut slots: Vec<&Tuple> = vec![tuple; m];
        let mut levels: Vec<(usize, &VecDeque<Tuple>)> = Vec::with_capacity(m.saturating_sub(2));
        'anchor: for a in anchor_bucket {
            levels.clear();
            for (k, w) in self.windows.iter().enumerate() {
                if k == anchor || k == i {
                    continue;
                }
                // Sound anchor column: non-integer values are inert here.
                let key = match a.value(cols.anchor_cols[k]).and_then(Value::as_int) {
                    Some(v) => v,
                    None => continue 'anchor,
                };
                match w.bucket(cols.other_cols[k], key) {
                    Some(bucket) => levels.push((k, bucket)),
                    None => continue 'anchor,
                }
            }
            slots[anchor] = a;
            emit_product(&levels, &mut slots, f);
        }
    }

    /// Invokes `f` for every combination of one live tuple per other stream
    /// (plus the probing tuple at position `i`) that satisfies the join
    /// condition.  Combinations are presented in stream order.
    fn for_each_combination<'a>(
        &'a self,
        i: usize,
        tuple: &'a Tuple,
        f: &mut dyn FnMut(&[&'a Tuple]),
    ) {
        let m = self.windows.len();
        let mut slots: Vec<&Tuple> = vec![tuple; m];
        self.recurse(0, i, tuple, &mut slots, f);
    }

    fn recurse<'a>(
        &'a self,
        j: usize,
        probe: usize,
        tuple: &'a Tuple,
        slots: &mut Vec<&'a Tuple>,
        f: &mut dyn FnMut(&[&'a Tuple]),
    ) {
        if j == self.windows.len() {
            if self.condition.matches(slots) {
                f(slots);
            }
            return;
        }
        if j == probe {
            slots[j] = tuple;
            self.recurse(j + 1, probe, tuple, slots, f);
        } else {
            for candidate in self.windows[j].iter() {
                slots[j] = candidate;
                self.recurse(j + 1, probe, tuple, slots, f);
            }
        }
    }
}

/// The two column maps of a star plan, bundled to keep signatures short.
struct StarCols<'a> {
    anchor_cols: &'a [usize],
    other_cols: &'a [usize],
}

/// Emits the cross product of the given buckets into `slots` (one level per
/// stream position), invoking `f` once per complete combination.  The plan
/// gates guarantee every combination reached here satisfies the equi-join,
/// so the condition is not re-evaluated.
fn emit_product<'a>(
    levels: &[(usize, &'a VecDeque<Tuple>)],
    slots: &mut Vec<&'a Tuple>,
    f: &mut dyn FnMut(&[&'a Tuple]),
) {
    match levels.split_first() {
        None => f(slots),
        Some((&(j, bucket), rest)) => {
            for t in bucket {
                slots[j] = t;
                emit_product(rest, slots, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{CommonKeyEquiJoin, CrossJoin, DistanceWithin, StarEquiJoin};
    use mswj_types::{FieldType, Schema, StreamSet, StreamSpec};

    fn equi_query(m: usize, window: u64) -> JoinQuery {
        let streams =
            StreamSet::homogeneous(m, Schema::new(vec![("a1", FieldType::Int)]), window).unwrap();
        let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
        JoinQuery::new("equi", streams, cond).unwrap()
    }

    fn tup(stream: usize, seq: u64, ts: u64, key: i64) -> Tuple {
        Tuple::new(
            stream.into(),
            seq,
            Timestamp::from_millis(ts),
            vec![Value::Int(key)],
        )
    }

    fn star_query() -> JoinQuery {
        let streams = StreamSet::new(vec![
            StreamSpec::new(
                "S1",
                Schema::new(vec![
                    ("a1", FieldType::Int),
                    ("a2", FieldType::Int),
                    ("a3", FieldType::Int),
                ]),
                10_000,
            ),
            StreamSpec::new("S2", Schema::new(vec![("a1", FieldType::Int)]), 10_000),
            StreamSpec::new("S3", Schema::new(vec![("a2", FieldType::Int)]), 10_000),
            StreamSpec::new("S4", Schema::new(vec![("a3", FieldType::Int)]), 10_000),
        ])
        .unwrap();
        let cond = Arc::new(
            StarEquiJoin::new(
                &streams,
                0,
                &[(1, "a1", "a1"), (2, "a2", "a2"), (3, "a3", "a3")],
            )
            .unwrap(),
        );
        JoinQuery::new("star", streams, cond).unwrap()
    }

    #[test]
    fn fig1_missed_result_without_disorder_handling() {
        // Reproduces the motivating example of Fig. 1: a 2-way join with
        // W1 = W2 = 2 time units; the out-of-order tuple C4 misses its match
        // c3 because B6 already advanced the windows.
        let streams = StreamSet::homogeneous(
            2,
            Schema::new(vec![("v", FieldType::Int)]),
            2, // 2 "time units" = 2 ms in our clock
        )
        .unwrap();
        let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "v").unwrap());
        let query = JoinQuery::new("fig1", streams, cond).unwrap();
        let mut op = MswjOperator::enumerating(query);

        // Arrival order from Fig. 1 (values renamed to integers):
        // A1, b2, B3, c3, a4, E5, B6, C4(out of order), e5, D8, d6, e7, B7
        // We only check the C4/c3 part: after B6 arrives, c3 (ts=3) expires
        // from S2's window, so the late C4 derives nothing.
        op.push(tup(0, 0, 1, 10)); // A1
        op.push(tup(1, 0, 2, 11)); // b2
        let r_b3 = op.push(tup(0, 1, 3, 11)); // B3 joins b2
        assert_eq!(r_b3.n_join, 1);
        op.push(tup(1, 1, 3, 12)); // c3
        op.push(tup(0, 2, 5, 13)); // E5
        let r_b6 = op.push(tup(0, 3, 6, 11)); // B6 advances onT to 6, expires c3 (3 < 6-2=4)
        assert_eq!(r_b6.n_join, 0);
        // C4 arrives late (ts 4 < onT 6): no probing, so its result with c3 is missed.
        let r_c4 = op.push(tup(0, 4, 4, 12));
        assert!(!r_c4.in_order);
        assert_eq!(r_c4.n_join, 0);
        assert!(r_c4.inserted, "C4 is still within S1's window scope");
        assert_eq!(op.stats().out_of_order, 1);
    }

    #[test]
    fn in_order_equi_join_counts_and_results_agree() {
        let query = equi_query(2, 10_000);
        let mut counting = MswjOperator::new(query.clone());
        let mut enumerating = MswjOperator::enumerating(query);
        let tuples = vec![
            tup(0, 0, 0, 1),
            tup(1, 0, 10, 1),
            tup(0, 1, 20, 2),
            tup(1, 1, 30, 2),
            tup(0, 2, 40, 1),
            tup(1, 2, 50, 1),
        ];
        let mut total_counting = 0;
        let mut total_enumerated = 0;
        for t in tuples {
            let a = counting.push(t.clone());
            let mut materialized = Vec::new();
            let b = enumerating.push_with(t, &mut |r| materialized.push(r));
            assert_eq!(a.n_join, b.n_join);
            assert_eq!(a.n_cross, b.n_cross);
            assert_eq!(b.n_join as usize, materialized.len());
            assert!(a.indexed && b.indexed, "clean int keys must stay indexed");
            total_counting += a.n_join;
            total_enumerated += materialized.len() as u64;
        }
        // (0,1)x(1,1): S2#0 joins S1#0; S1#2 joins S2#0; S2#2 joins S1#0 and S1#2, etc.
        assert_eq!(total_counting, total_enumerated);
        assert!(total_counting >= 4);
        assert!(!counting.is_enumerating());
        assert!(enumerating.is_enumerating());
        assert_eq!(counting.stats().fallback_probes, 0);
        assert_eq!(counting.stats().indexed_probes, counting.stats().in_order);
    }

    #[test]
    fn forced_nested_loop_produces_identical_results() {
        let query = equi_query(3, 5_000);
        let mut indexed = MswjOperator::with_probe(query.clone(), ProbeStrategy::Auto, true);
        let mut scan = MswjOperator::with_probe(query, ProbeStrategy::NestedLoop, true);
        assert!(indexed.probe_plan().is_indexed());
        assert_eq!(*scan.probe_plan(), ProbePlan::NestedLoop);
        for s in 0..60u64 {
            let t = tup((s % 3) as usize, s, s * 7, (s % 4) as i64);
            let mut a = Vec::new();
            let mut b = Vec::new();
            let ra = indexed.push_with(t.clone(), &mut |r| a.push(r.to_string()));
            let rb = scan.push_with(t, &mut |r| b.push(r.to_string()));
            assert_eq!(ra.n_join, rb.n_join);
            a.sort();
            b.sort();
            assert_eq!(a, b, "indexed and scan probes must emit the same multiset");
        }
        assert!(indexed.stats().indexed_probes > 0);
        assert_eq!(indexed.stats().fallback_probes, 0);
        assert_eq!(scan.stats().indexed_probes, 0);
        assert!(scan.stats().results > 0);
    }

    #[test]
    fn float_keys_fall_back_and_keep_numeric_equality() {
        // join_eq equates Int(4) with Float(4.0); the hash index cannot see
        // that, so such probes must fall back to the scan — on both sides.
        let query = equi_query(2, 10_000);
        let mut op = MswjOperator::enumerating(query);
        let float_tuple = Tuple::new(
            1.into(),
            0,
            Timestamp::from_millis(10),
            vec![Value::Float(4.0)],
        );
        let r = op.push(float_tuple);
        assert!(!r.indexed, "a float probe key cannot use the index");
        // The float tuple now poisons S2's window: an Int(4) probe must
        // fall back and still find the numeric match.
        let r = op.push(tup(0, 0, 20, 4));
        assert!(!r.indexed);
        assert_eq!(r.n_join, 1, "Int(4) joins Float(4.0) numerically");
        // Once the float expires, integer probes engage the index again.
        op.push(tup(1, 1, 30_000, 4));
        let r = op.push(tup(0, 1, 30_010, 4));
        assert!(r.indexed);
        assert_eq!(r.n_join, 1);
        assert_eq!(op.stats().fallback_probes, 2);
    }

    #[test]
    fn null_probe_keys_short_circuit() {
        let query = equi_query(2, 10_000);
        let mut indexed = MswjOperator::enumerating(query.clone());
        let mut scan = MswjOperator::with_probe(query, ProbeStrategy::NestedLoop, true);
        for op in [&mut indexed, &mut scan] {
            op.push(tup(1, 0, 0, 1));
        }
        let null_probe = Tuple::new(0.into(), 0, Timestamp::from_millis(10), vec![Value::Null]);
        let ra = indexed.push(null_probe.clone());
        let rb = scan.push(null_probe);
        assert_eq!(ra.n_join, 0);
        assert_eq!(rb.n_join, 0);
        assert!(ra.indexed, "a barren probe is answered without scanning");
        // Null tuples sit inertly in the window without disabling the index.
        let r = indexed.push(tup(1, 1, 20, 1));
        assert!(r.indexed);
        assert_eq!(r.n_join, 0, "Null never joins");
    }

    #[test]
    fn out_of_order_tuple_produces_nothing_but_contributes_later() {
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        op.push(tup(0, 0, 100, 7));
        op.push(tup(1, 0, 500, 7)); // joins -> 1 result
                                    // Late S2 tuple (ts 200 < onT 500) is inserted silently.
        let late = op.push(tup(1, 1, 200, 7));
        assert!(!late.in_order);
        assert_eq!(late.n_join, 0);
        assert!(!late.indexed, "non-probing arrivals are not indexed probes");
        assert!(late.inserted);
        // A later S1 tuple joins both S2 tuples.
        let r = op.push(tup(0, 1, 600, 7));
        assert_eq!(r.n_join, 2);
        assert_eq!(op.stats().results, 3);
        let s = op.stats();
        assert_eq!(s.indexed_probes + s.fallback_probes, s.in_order);
    }

    #[test]
    fn too_old_out_of_order_tuple_is_dropped() {
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        op.push(tup(0, 0, 5_000, 1));
        let r = op.push(tup(1, 0, 1_000, 1)); // 1000 < 5000 - 1000 => dropped
        assert!(!r.in_order);
        assert!(!r.inserted);
        assert_eq!(op.stats().dropped, 1);
        assert_eq!(op.window(StreamIndex(1)).len(), 0);
    }

    #[test]
    fn window_expiration_follows_probing_timestamp() {
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        op.push(tup(0, 0, 0, 1));
        op.push(tup(0, 1, 500, 1));
        // S2 tuple at t=1400 expires the S1 tuple at t=0 (0 < 1400-1000).
        let r = op.push(tup(1, 0, 1_400, 1));
        assert_eq!(r.expired, 1);
        assert_eq!(op.window(StreamIndex(0)).len(), 1);
        assert_eq!(r.n_join, 1); // joins only the surviving S1 tuple
        assert_eq!(op.on_t(), Timestamp::from_millis(1_400));
    }

    #[test]
    fn cross_join_counts_are_window_products() {
        let streams =
            StreamSet::homogeneous(3, Schema::new(vec![("a1", FieldType::Int)]), 10_000).unwrap();
        let cond = Arc::new(CrossJoin::new(3));
        let query = JoinQuery::new("cross", streams, cond).unwrap();
        let mut op = MswjOperator::new(query);
        assert_eq!(*op.probe_plan(), ProbePlan::NestedLoop);
        op.push(tup(0, 0, 0, 1));
        op.push(tup(0, 1, 1, 2));
        op.push(tup(1, 0, 2, 3));
        // Probing S3 tuple sees |W1| = 2, |W2| = 1 -> 2 cross results.
        let r = op.push(tup(2, 0, 3, 4));
        assert_eq!(r.n_cross, 2);
        assert_eq!(r.n_join, 2);
        assert!(!r.indexed);
        assert_eq!(op.stats().indexed_probes, 0);
    }

    #[test]
    fn star_join_counts_match_enumeration() {
        // Q×4-shaped query at a small scale.
        let query = star_query();
        let mut counting = MswjOperator::new(query.clone());
        let mut enumerating = MswjOperator::enumerating(query);

        let anchor = |seq: u64, ts: u64, a1: i64, a2: i64, a3: i64| {
            Tuple::new(
                0.into(),
                seq,
                Timestamp::from_millis(ts),
                vec![Value::Int(a1), Value::Int(a2), Value::Int(a3)],
            )
        };
        let sat = |stream: usize, seq: u64, ts: u64, v: i64| tup(stream, seq, ts, v);

        let script = vec![
            sat(1, 0, 0, 1),
            sat(2, 0, 1, 2),
            sat(3, 0, 2, 3),
            anchor(0, 3, 1, 2, 3), // matches all satellites -> 1 result
            sat(1, 1, 4, 1),       // satellite probing anchor -> 1 result
            anchor(1, 5, 1, 2, 9), // a3 mismatch -> 0
            sat(3, 1, 6, 9),       // matches second anchor only -> 2 (two S2 with a1=1)
            sat(2, 1, 7, 2),       // probes both anchors
        ];
        for t in script {
            let a = counting.push(t.clone());
            let mut emitted = 0u64;
            let b = enumerating.push_with(t, &mut |_| emitted += 1);
            assert_eq!(a.n_join, b.n_join, "count vs enumeration disagreement");
            assert_eq!(emitted, b.n_join);
            assert!(a.indexed && b.indexed, "clean star workload stays indexed");
        }
        assert_eq!(counting.stats().results, enumerating.stats().results);
        assert!(counting.stats().results > 0);
        assert_eq!(counting.stats().fallback_probes, 0);
    }

    #[test]
    fn star_probes_match_forced_nested_loop() {
        let query = star_query();
        let mut indexed = MswjOperator::with_probe(query.clone(), ProbeStrategy::Auto, true);
        let mut scan = MswjOperator::with_probe(query, ProbeStrategy::NestedLoop, true);
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for s in 0..120u64 {
            let stream = (next() % 4) as usize;
            let ts = s * 5;
            let t = if stream == 0 {
                Tuple::new(
                    0.into(),
                    s,
                    Timestamp::from_millis(ts),
                    vec![
                        Value::Int((next() % 3) as i64),
                        Value::Int((next() % 3) as i64),
                        Value::Int((next() % 3) as i64),
                    ],
                )
            } else {
                tup(stream, s, ts, (next() % 3) as i64)
            };
            let mut a = Vec::new();
            let mut b = Vec::new();
            indexed.push_with(t.clone(), &mut |r| a.push(r.to_string()));
            scan.push_with(t, &mut |r| b.push(r.to_string()));
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
        assert!(indexed.stats().results > 0, "workload must derive results");
        assert_eq!(indexed.stats().fallback_probes, 0);
    }

    #[test]
    fn udf_condition_uses_nested_loop_counting() {
        let schema = Schema::new(vec![
            ("sID", FieldType::Int),
            ("xCoord", FieldType::Float),
            ("yCoord", FieldType::Float),
        ]);
        let streams = StreamSet::homogeneous(2, schema, 5_000).unwrap();
        let cond = Arc::new(DistanceWithin::new(&streams, "xCoord", "yCoord", 5.0).unwrap());
        let query = JoinQuery::new("dist", streams, cond).unwrap();
        let mut op = MswjOperator::new(query);
        assert_eq!(*op.probe_plan(), ProbePlan::NestedLoop);
        let pos = |stream: usize, seq: u64, ts: u64, x: f64, y: f64| {
            Tuple::new(
                stream.into(),
                seq,
                Timestamp::from_millis(ts),
                vec![Value::Int(seq as i64), Value::Float(x), Value::Float(y)],
            )
        };
        op.push(pos(0, 0, 0, 0.0, 0.0));
        op.push(pos(0, 1, 10, 50.0, 50.0));
        let r = op.push(pos(1, 0, 20, 1.0, 1.0)); // near the first only
        assert_eq!(r.n_join, 1);
        assert_eq!(r.n_cross, 2);
    }

    #[test]
    fn reset_clears_state_but_keeps_query() {
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        op.push(tup(0, 0, 100, 1));
        op.push(tup(1, 0, 200, 1));
        assert!(op.stats().results > 0);
        op.reset();
        assert_eq!(op.on_t(), Timestamp::ZERO);
        assert_eq!(op.stats(), OperatorStats::default());
        assert_eq!(op.window(StreamIndex(0)).len(), 0);
        // Operator is usable again after reset, index included.
        let r = op.push(tup(0, 0, 50, 1));
        assert!(r.in_order);
        assert!(op.probe_plan().is_indexed());
    }

    #[test]
    fn first_tuple_is_always_in_order() {
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        let r = op.push(tup(0, 0, 999, 1));
        assert!(r.in_order);
        assert_eq!(r.n_cross, 0);
        assert_eq!(r.n_join, 0);
    }
}

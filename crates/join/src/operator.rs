//! The MJoin-style m-way sliding window join operator (Alg. 2).
//!
//! The operator receives the (partially) sorted and synchronized stream
//! produced by the disorder-handling front-end and processes each tuple as
//! follows:
//!
//! 1. If the tuple is **in order** (its timestamp is not smaller than the
//!    maximum timestamp `onT` seen so far): advance `onT`, invalidate
//!    expired tuples in the windows of every *other* stream, probe those
//!    windows, emit the qualifying result tuples, and insert the tuple into
//!    its own window.
//! 2. If the tuple is **out of order**: skip invalidation and probing (its
//!    results are lost), but still insert it into its own window if it is
//!    within the window's current scope so that it can contribute to future
//!    results.
//!
//! For every processed tuple the operator reports the number of produced
//! join results `n_on(e)` and the corresponding cross-join size `n_x(e)`;
//! the Tuple-Productivity Profiler consumes these to learn the
//! delay-productivity correlation (Sec. IV-B).

use crate::condition::{EquiStructure, JoinCondition};
use crate::query::JoinQuery;
use crate::result::JoinResult;
use crate::window::Window;
use mswj_types::{StreamIndex, Timestamp, Tuple, Value};
use std::sync::Arc;

/// What happened when one tuple was pushed into the operator.
///
/// Materialized results are not carried here: in enumerating mode they are
/// handed to the caller's emit callback one by one (see
/// [`MswjOperator::push_with`]), so the outcome itself stays allocation-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Whether the tuple arrived in timestamp order w.r.t. `onT`.
    pub in_order: bool,
    /// Whether the tuple was inserted into its window (out-of-order tuples
    /// that already fell out of the window scope are dropped).
    pub inserted: bool,
    /// Number of join results derived at this arrival (`n_on(e)`); zero for
    /// out-of-order tuples.
    pub n_join: u64,
    /// Size of the corresponding cross-join (`n_x(e)`), i.e. the product of
    /// the other windows' cardinalities at probe time; zero for out-of-order
    /// tuples.
    pub n_cross: u64,
    /// Number of tuples expired from other windows by this arrival.
    pub expired: usize,
}

/// Aggregate counters over the operator's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorStats {
    /// Tuples processed in timestamp order (probing arrivals).
    pub in_order: u64,
    /// Tuples processed out of timestamp order (non-probing arrivals).
    pub out_of_order: u64,
    /// Out-of-order tuples that were too old to be inserted into their
    /// window and were dropped entirely.
    pub dropped: u64,
    /// Total join results produced.
    pub results: u64,
    /// Total cross-join combinations corresponding to probing arrivals.
    pub cross_results: u64,
    /// Total expired tuples across all windows.
    pub expired: u64,
}

/// The m-way sliding window join operator.
pub struct MswjOperator {
    query: JoinQuery,
    condition: Arc<dyn JoinCondition>,
    equi: Option<EquiStructure>,
    windows: Vec<Window>,
    on_t: Timestamp,
    started: bool,
    enumerate: bool,
    stats: OperatorStats,
}

impl std::fmt::Debug for MswjOperator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MswjOperator")
            .field("query", &self.query)
            .field("on_t", &self.on_t)
            .field("enumerate", &self.enumerate)
            .field("stats", &self.stats)
            .finish()
    }
}

impl MswjOperator {
    /// Creates an operator that **counts** join results without
    /// materializing them.  Counting uses the windows' per-column count
    /// indexes when the join condition is an equi-join, which makes the
    /// paper-scale workloads tractable.
    pub fn new(query: JoinQuery) -> Self {
        Self::build(query, false)
    }

    /// Creates an operator that additionally **materializes** every result
    /// tuple.  Intended for small-scale runs, examples and tests.
    pub fn enumerating(query: JoinQuery) -> Self {
        Self::build(query, true)
    }

    fn build(query: JoinQuery, enumerate: bool) -> Self {
        let condition = Arc::clone(query.condition());
        let equi = condition.equi_structure();
        let m = query.arity();
        let mut windows = Vec::with_capacity(m);
        for i in 0..m {
            let size = query.window(StreamIndex(i));
            let indexed = match &equi {
                Some(EquiStructure::CommonKey { columns }) => vec![columns[i]],
                Some(EquiStructure::Star {
                    anchor, other_cols, ..
                }) if i != *anchor => vec![other_cols[i]],
                _ => vec![],
            };
            windows.push(Window::with_indexed_columns(size, &indexed));
        }
        MswjOperator {
            query,
            condition,
            equi,
            windows,
            on_t: Timestamp::ZERO,
            started: false,
            enumerate,
            stats: OperatorStats::default(),
        }
    }

    /// The query this operator executes.
    pub fn query(&self) -> &JoinQuery {
        &self.query
    }

    /// The maximum timestamp among tuples received so far (`onT`).
    pub fn on_t(&self) -> Timestamp {
        self.on_t
    }

    /// The window of stream `i`.
    pub fn window(&self, i: StreamIndex) -> &Window {
        &self.windows[i.as_usize()]
    }

    /// Lifetime counters.
    pub fn stats(&self) -> OperatorStats {
        self.stats
    }

    /// Whether the operator materializes result tuples.
    pub fn is_enumerating(&self) -> bool {
        self.enumerate
    }

    /// Clears every window and resets `onT`, keeping the query.
    pub fn reset(&mut self) {
        for w in &mut self.windows {
            w.clear();
        }
        self.on_t = Timestamp::ZERO;
        self.started = false;
        self.stats = OperatorStats::default();
    }

    /// Processes one tuple according to Alg. 2 and reports what happened.
    ///
    /// In enumerating mode the materialized results are computed and
    /// discarded; use [`MswjOperator::push_with`] to receive them.
    pub fn push(&mut self, tuple: Tuple) -> ProbeOutcome {
        self.push_with(tuple, &mut |_| {})
    }

    /// Processes one tuple according to Alg. 2, invoking `emit` once per
    /// materialized join result (enumerating operators only — a counting
    /// operator never calls `emit`) and reporting what happened.
    ///
    /// This is the event-driven hot path used by the pipeline's sink-based
    /// output: results stream out through the callback instead of being
    /// collected into a per-push `Vec`.
    pub fn push_with(&mut self, tuple: Tuple, emit: &mut dyn FnMut(JoinResult)) -> ProbeOutcome {
        let i = tuple.stream.as_usize();
        debug_assert!(i < self.windows.len(), "tuple references unknown stream");
        let in_order = !self.started || tuple.ts >= self.on_t;
        let mut outcome = ProbeOutcome {
            in_order,
            ..ProbeOutcome::default()
        };
        if in_order {
            self.on_t = tuple.ts;
            self.started = true;
            // Step 1: invalidate expired tuples in windows of other streams.
            for j in 0..self.windows.len() {
                if j != i {
                    let w_j = self.query.window(StreamIndex(j));
                    let bound = tuple.ts.saturating_sub_duration(w_j);
                    outcome.expired += self.windows[j].expire_before(bound);
                }
            }
            // Step 2: probe remaining tuples in all other windows.
            outcome.n_cross = self.cross_size(i);
            if self.enumerate {
                let mut n_join = 0u64;
                self.for_each_combination(i, &tuple, &mut |combo| {
                    n_join += 1;
                    emit(JoinResult::new(combo.iter().map(|&t| t.clone()).collect()));
                });
                outcome.n_join = n_join;
            } else {
                outcome.n_join = self.count_results(i, &tuple);
            }
            // Step 3: insert into own window.
            self.windows[i].insert(tuple);
            outcome.inserted = true;
            self.stats.in_order += 1;
            self.stats.results += outcome.n_join;
            self.stats.cross_results += outcome.n_cross;
            self.stats.expired += outcome.expired as u64;
        } else {
            // Out-of-order tuple: no probing; insert only if still in scope
            // (e.ts >= onT - W_i, Sec. III-A).
            self.stats.out_of_order += 1;
            let w_i = self.query.window(StreamIndex(i));
            if tuple.ts >= self.on_t.saturating_sub_duration(w_i) {
                self.windows[i].insert(tuple);
                outcome.inserted = true;
            } else {
                self.stats.dropped += 1;
            }
        }
        outcome
    }

    /// Product of the other windows' cardinalities: the cross-join size at
    /// the arrival of a probing tuple of stream `i`.
    fn cross_size(&self, i: usize) -> u64 {
        self.windows
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, w)| w.len() as u64)
            .product()
    }

    /// Index-assisted (or enumerated) count of the join results derived by a
    /// probing tuple of stream `i`.
    fn count_results(&self, i: usize, tuple: &Tuple) -> u64 {
        match &self.equi {
            Some(EquiStructure::CommonKey { columns }) => {
                let key = match tuple.value(columns[i]).and_then(int_key) {
                    Some(k) => k,
                    None => return 0,
                };
                let mut product = 1u64;
                for (j, w) in self.windows.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    let c = w.count_key(columns[j], key);
                    if c == 0 {
                        return 0;
                    }
                    product = product.saturating_mul(c);
                }
                product
            }
            Some(EquiStructure::Star {
                anchor,
                anchor_cols,
                other_cols,
            }) => {
                if i == *anchor {
                    let mut product = 1u64;
                    for (j, w) in self.windows.iter().enumerate() {
                        if j == *anchor {
                            continue;
                        }
                        let key = match tuple.value(anchor_cols[j]).and_then(int_key) {
                            Some(k) => k,
                            None => return 0,
                        };
                        let c = w.count_key(other_cols[j], key);
                        if c == 0 {
                            return 0;
                        }
                        product = product.saturating_mul(c);
                    }
                    product
                } else {
                    // Probing tuple belongs to a satellite stream: iterate the
                    // anchor tuples that match it and multiply the counts of
                    // the remaining satellites for each.
                    let own_key = match tuple.value(other_cols[i]).and_then(int_key) {
                        Some(k) => k,
                        None => return 0,
                    };
                    let mut total = 0u64;
                    'anchor: for a in self.windows[*anchor].iter() {
                        match a.value(anchor_cols[i]).and_then(int_key) {
                            Some(k) if k == own_key => {}
                            _ => continue,
                        }
                        let mut product = 1u64;
                        for (k, w) in self.windows.iter().enumerate() {
                            if k == *anchor || k == i {
                                continue;
                            }
                            let key = match a.value(anchor_cols[k]).and_then(int_key) {
                                Some(v) => v,
                                None => continue 'anchor,
                            };
                            let c = w.count_key(other_cols[k], key);
                            if c == 0 {
                                continue 'anchor;
                            }
                            product = product.saturating_mul(c);
                        }
                        total = total.saturating_add(product);
                    }
                    total
                }
            }
            None => self.enumerate_count(i, tuple),
        }
    }

    /// Nested-loop count of matching combinations for arbitrary conditions.
    fn enumerate_count(&self, i: usize, tuple: &Tuple) -> u64 {
        let mut count = 0u64;
        self.for_each_combination(i, tuple, &mut |_| count += 1);
        count
    }

    /// Invokes `f` for every combination of one live tuple per other stream
    /// (plus the probing tuple at position `i`) that satisfies the join
    /// condition.  Combinations are presented in stream order.
    fn for_each_combination<'a>(
        &'a self,
        i: usize,
        tuple: &'a Tuple,
        f: &mut dyn FnMut(&[&'a Tuple]),
    ) {
        let m = self.windows.len();
        let mut slots: Vec<&Tuple> = vec![tuple; m];
        self.recurse(0, i, tuple, &mut slots, f);
    }

    fn recurse<'a>(
        &'a self,
        j: usize,
        probe: usize,
        tuple: &'a Tuple,
        slots: &mut Vec<&'a Tuple>,
        f: &mut dyn FnMut(&[&'a Tuple]),
    ) {
        if j == self.windows.len() {
            if self.condition.matches(slots) {
                f(slots);
            }
            return;
        }
        if j == probe {
            slots[j] = tuple;
            self.recurse(j + 1, probe, tuple, slots, f);
        } else {
            for candidate in self.windows[j].iter() {
                slots[j] = candidate;
                self.recurse(j + 1, probe, tuple, slots, f);
            }
        }
    }
}

fn int_key(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        Value::Bool(b) => Some(*b as i64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{CommonKeyEquiJoin, CrossJoin, DistanceWithin, StarEquiJoin};
    use mswj_types::{FieldType, Schema, StreamSet, StreamSpec};

    fn equi_query(m: usize, window: u64) -> JoinQuery {
        let streams =
            StreamSet::homogeneous(m, Schema::new(vec![("a1", FieldType::Int)]), window).unwrap();
        let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
        JoinQuery::new("equi", streams, cond).unwrap()
    }

    fn tup(stream: usize, seq: u64, ts: u64, key: i64) -> Tuple {
        Tuple::new(
            stream.into(),
            seq,
            Timestamp::from_millis(ts),
            vec![Value::Int(key)],
        )
    }

    #[test]
    fn fig1_missed_result_without_disorder_handling() {
        // Reproduces the motivating example of Fig. 1: a 2-way join with
        // W1 = W2 = 2 time units; the out-of-order tuple C4 misses its match
        // c3 because B6 already advanced the windows.
        let streams = StreamSet::homogeneous(
            2,
            Schema::new(vec![("v", FieldType::Int)]),
            2, // 2 "time units" = 2 ms in our clock
        )
        .unwrap();
        let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "v").unwrap());
        let query = JoinQuery::new("fig1", streams, cond).unwrap();
        let mut op = MswjOperator::enumerating(query);

        // Arrival order from Fig. 1 (values renamed to integers):
        // A1, b2, B3, c3, a4, E5, B6, C4(out of order), e5, D8, d6, e7, B7
        // We only check the C4/c3 part: after B6 arrives, c3 (ts=3) expires
        // from S2's window, so the late C4 derives nothing.
        op.push(tup(0, 0, 1, 10)); // A1
        op.push(tup(1, 0, 2, 11)); // b2
        let r_b3 = op.push(tup(0, 1, 3, 11)); // B3 joins b2
        assert_eq!(r_b3.n_join, 1);
        op.push(tup(1, 1, 3, 12)); // c3
        op.push(tup(0, 2, 5, 13)); // E5
        let r_b6 = op.push(tup(0, 3, 6, 11)); // B6 advances onT to 6, expires c3 (3 < 6-2=4)
        assert_eq!(r_b6.n_join, 0);
        // C4 arrives late (ts 4 < onT 6): no probing, so its result with c3 is missed.
        let r_c4 = op.push(tup(0, 4, 4, 12));
        assert!(!r_c4.in_order);
        assert_eq!(r_c4.n_join, 0);
        assert!(r_c4.inserted, "C4 is still within S1's window scope");
        assert_eq!(op.stats().out_of_order, 1);
    }

    #[test]
    fn in_order_equi_join_counts_and_results_agree() {
        let query = equi_query(2, 10_000);
        let mut counting = MswjOperator::new(query.clone());
        let mut enumerating = MswjOperator::enumerating(query);
        let tuples = vec![
            tup(0, 0, 0, 1),
            tup(1, 0, 10, 1),
            tup(0, 1, 20, 2),
            tup(1, 1, 30, 2),
            tup(0, 2, 40, 1),
            tup(1, 2, 50, 1),
        ];
        let mut total_counting = 0;
        let mut total_enumerated = 0;
        for t in tuples {
            let a = counting.push(t.clone());
            let mut materialized = Vec::new();
            let b = enumerating.push_with(t, &mut |r| materialized.push(r));
            assert_eq!(a.n_join, b.n_join);
            assert_eq!(a.n_cross, b.n_cross);
            assert_eq!(b.n_join as usize, materialized.len());
            total_counting += a.n_join;
            total_enumerated += materialized.len() as u64;
        }
        // (0,1)x(1,1): S2#0 joins S1#0; S1#2 joins S2#0; S2#2 joins S1#0 and S1#2, etc.
        assert_eq!(total_counting, total_enumerated);
        assert!(total_counting >= 4);
        assert!(!counting.is_enumerating());
        assert!(enumerating.is_enumerating());
    }

    #[test]
    fn out_of_order_tuple_produces_nothing_but_contributes_later() {
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        op.push(tup(0, 0, 100, 7));
        op.push(tup(1, 0, 500, 7)); // joins -> 1 result
                                    // Late S2 tuple (ts 200 < onT 500) is inserted silently.
        let late = op.push(tup(1, 1, 200, 7));
        assert!(!late.in_order);
        assert_eq!(late.n_join, 0);
        assert!(late.inserted);
        // A later S1 tuple joins both S2 tuples.
        let r = op.push(tup(0, 1, 600, 7));
        assert_eq!(r.n_join, 2);
        assert_eq!(op.stats().results, 3);
    }

    #[test]
    fn too_old_out_of_order_tuple_is_dropped() {
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        op.push(tup(0, 0, 5_000, 1));
        let r = op.push(tup(1, 0, 1_000, 1)); // 1000 < 5000 - 1000 => dropped
        assert!(!r.in_order);
        assert!(!r.inserted);
        assert_eq!(op.stats().dropped, 1);
        assert_eq!(op.window(StreamIndex(1)).len(), 0);
    }

    #[test]
    fn window_expiration_follows_probing_timestamp() {
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        op.push(tup(0, 0, 0, 1));
        op.push(tup(0, 1, 500, 1));
        // S2 tuple at t=1400 expires the S1 tuple at t=0 (0 < 1400-1000).
        let r = op.push(tup(1, 0, 1_400, 1));
        assert_eq!(r.expired, 1);
        assert_eq!(op.window(StreamIndex(0)).len(), 1);
        assert_eq!(r.n_join, 1); // joins only the surviving S1 tuple
        assert_eq!(op.on_t(), Timestamp::from_millis(1_400));
    }

    #[test]
    fn cross_join_counts_are_window_products() {
        let streams =
            StreamSet::homogeneous(3, Schema::new(vec![("a1", FieldType::Int)]), 10_000).unwrap();
        let cond = Arc::new(CrossJoin::new(3));
        let query = JoinQuery::new("cross", streams, cond).unwrap();
        let mut op = MswjOperator::new(query);
        op.push(tup(0, 0, 0, 1));
        op.push(tup(0, 1, 1, 2));
        op.push(tup(1, 0, 2, 3));
        // Probing S3 tuple sees |W1| = 2, |W2| = 1 -> 2 cross results.
        let r = op.push(tup(2, 0, 3, 4));
        assert_eq!(r.n_cross, 2);
        assert_eq!(r.n_join, 2);
    }

    #[test]
    fn star_join_counts_match_enumeration() {
        // Q×4-shaped query at a small scale.
        let streams = StreamSet::new(vec![
            StreamSpec::new(
                "S1",
                Schema::new(vec![
                    ("a1", FieldType::Int),
                    ("a2", FieldType::Int),
                    ("a3", FieldType::Int),
                ]),
                10_000,
            ),
            StreamSpec::new("S2", Schema::new(vec![("a1", FieldType::Int)]), 10_000),
            StreamSpec::new("S3", Schema::new(vec![("a2", FieldType::Int)]), 10_000),
            StreamSpec::new("S4", Schema::new(vec![("a3", FieldType::Int)]), 10_000),
        ])
        .unwrap();
        let cond = Arc::new(
            StarEquiJoin::new(
                &streams,
                0,
                &[(1, "a1", "a1"), (2, "a2", "a2"), (3, "a3", "a3")],
            )
            .unwrap(),
        );
        let query = JoinQuery::new("star", streams, cond).unwrap();
        let mut counting = MswjOperator::new(query.clone());
        let mut enumerating = MswjOperator::enumerating(query);

        let anchor = |seq: u64, ts: u64, a1: i64, a2: i64, a3: i64| {
            Tuple::new(
                0.into(),
                seq,
                Timestamp::from_millis(ts),
                vec![Value::Int(a1), Value::Int(a2), Value::Int(a3)],
            )
        };
        let sat = |stream: usize, seq: u64, ts: u64, v: i64| tup(stream, seq, ts, v);

        let script = vec![
            sat(1, 0, 0, 1),
            sat(2, 0, 1, 2),
            sat(3, 0, 2, 3),
            anchor(0, 3, 1, 2, 3), // matches all satellites -> 1 result
            sat(1, 1, 4, 1),       // satellite probing anchor -> 1 result
            anchor(1, 5, 1, 2, 9), // a3 mismatch -> 0
            sat(3, 1, 6, 9),       // matches second anchor only -> 2 (two S2 with a1=1)
            sat(2, 1, 7, 2),       // probes both anchors
        ];
        for t in script {
            let a = counting.push(t.clone());
            let mut emitted = 0u64;
            let b = enumerating.push_with(t, &mut |_| emitted += 1);
            assert_eq!(a.n_join, b.n_join, "count vs enumeration disagreement");
            assert_eq!(emitted, b.n_join);
        }
        assert_eq!(counting.stats().results, enumerating.stats().results);
        assert!(counting.stats().results > 0);
    }

    #[test]
    fn udf_condition_uses_nested_loop_counting() {
        let schema = Schema::new(vec![
            ("sID", FieldType::Int),
            ("xCoord", FieldType::Float),
            ("yCoord", FieldType::Float),
        ]);
        let streams = StreamSet::homogeneous(2, schema, 5_000).unwrap();
        let cond = Arc::new(DistanceWithin::new(&streams, "xCoord", "yCoord", 5.0).unwrap());
        let query = JoinQuery::new("dist", streams, cond).unwrap();
        let mut op = MswjOperator::new(query);
        let pos = |stream: usize, seq: u64, ts: u64, x: f64, y: f64| {
            Tuple::new(
                stream.into(),
                seq,
                Timestamp::from_millis(ts),
                vec![Value::Int(seq as i64), Value::Float(x), Value::Float(y)],
            )
        };
        op.push(pos(0, 0, 0, 0.0, 0.0));
        op.push(pos(0, 1, 10, 50.0, 50.0));
        let r = op.push(pos(1, 0, 20, 1.0, 1.0)); // near the first only
        assert_eq!(r.n_join, 1);
        assert_eq!(r.n_cross, 2);
    }

    #[test]
    fn reset_clears_state_but_keeps_query() {
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        op.push(tup(0, 0, 100, 1));
        op.push(tup(1, 0, 200, 1));
        assert!(op.stats().results > 0);
        op.reset();
        assert_eq!(op.on_t(), Timestamp::ZERO);
        assert_eq!(op.stats(), OperatorStats::default());
        assert_eq!(op.window(StreamIndex(0)).len(), 0);
        // Operator is usable again after reset.
        let r = op.push(tup(0, 0, 50, 1));
        assert!(r.in_order);
    }

    #[test]
    fn first_tuple_is_always_in_order() {
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        let r = op.push(tup(0, 0, 999, 1));
        assert!(r.in_order);
        assert_eq!(r.n_cross, 0);
        assert_eq!(r.n_join, 0);
    }
}

//! Probe planning: how the operator searches the other windows.
//!
//! The windows of an equi-join maintain value→tuple hash indexes on their
//! key columns (see [`Window`](crate::Window)), so a probing tuple can look
//! up exactly the bucket of candidates that can still satisfy the join
//! instead of scanning every live tuple.  Which lookups are legal is decided
//! in two stages:
//!
//! 1. **Statically**, at operator construction: the join condition's
//!    [`EquiStructure`] is turned into a [`ProbePlan`] that names, per
//!    stream, the columns to index and the shape of the indexed probe
//!    (common-key or star).  Conditions without an equi structure (cross
//!    joins, band joins, user-defined predicates) plan a
//!    [`ProbePlan::NestedLoop`].
//! 2. **Dynamically**, per probing tuple: the indexed path engages only when
//!    it is provably equivalent to the exhaustive nested-loop scan — the
//!    probing key is an integer and every probed window is *index-sound* on
//!    its key column (it holds no live float/string/bool value there, which
//!    could join an integer key through [`Value::join_eq`]'s numeric
//!    coercion without being hashable to the same bucket).  Otherwise the
//!    operator transparently falls back to the nested loop for that probe.
//!
//! [`Value::join_eq`]: mswj_types::Value::join_eq
//!
//! The strategy knob exists so that the equivalence can be *tested*: the
//! differential harness (`tests/differential_probe.rs`) runs every workload
//! through an [`Auto`](ProbeStrategy::Auto) session and a
//! [`NestedLoop`](ProbeStrategy::NestedLoop) session and asserts identical
//! result multisets.

use crate::condition::EquiStructure;

/// User-selectable probe strategy, wired through
/// `SessionBuilder::probe(..)` in `mswj-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeStrategy {
    /// Plan hash-indexed probes from the condition's [`EquiStructure`],
    /// falling back to the nested loop per probe when index soundness
    /// cannot be guaranteed.  This is the default.
    #[default]
    Auto,
    /// Always probe by exhaustively scanning every other window.  Exists as
    /// the reference implementation for the differential test harness and
    /// for debugging; never faster.
    NestedLoop,
}

impl std::fmt::Display for ProbeStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeStrategy::Auto => write!(f, "auto"),
            ProbeStrategy::NestedLoop => write!(f, "nested-loop"),
        }
    }
}

/// The probe access path chosen at operator construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbePlan {
    /// Hash-bucket lookups on one shared key column per stream
    /// (`S_1.c_1 = … = S_m.c_m`, query Q×3).
    CommonKey {
        /// Key column position per stream.
        columns: Vec<usize>,
    },
    /// Star-shaped bucket lookups anchored at one stream (query Q×4).
    /// Anchor probes look up one satellite bucket per pair; satellite probes
    /// look up the matching anchor bucket first and fan out from there.
    Star {
        /// Index of the anchor stream.
        anchor: usize,
        /// For every stream `j != anchor`, the anchor column compared
        /// against stream `j` (ignored at `j == anchor`).
        anchor_cols: Vec<usize>,
        /// For every stream `j != anchor`, the column of stream `j`
        /// compared against the anchor (ignored at `j == anchor`).
        other_cols: Vec<usize>,
    },
    /// Exhaustive scan over every combination of live tuples; the only
    /// correct plan for conditions without an [`EquiStructure`].
    NestedLoop,
}

impl ProbePlan {
    /// Plans the probe path for a condition's equi structure under the
    /// given strategy.
    pub fn new(strategy: ProbeStrategy, equi: Option<&EquiStructure>) -> Self {
        match (strategy, equi) {
            (ProbeStrategy::NestedLoop, _) | (_, None) => ProbePlan::NestedLoop,
            (ProbeStrategy::Auto, Some(EquiStructure::CommonKey { columns })) => {
                ProbePlan::CommonKey {
                    columns: columns.clone(),
                }
            }
            (
                ProbeStrategy::Auto,
                Some(EquiStructure::Star {
                    anchor,
                    anchor_cols,
                    other_cols,
                }),
            ) => ProbePlan::Star {
                anchor: *anchor,
                anchor_cols: anchor_cols.clone(),
                other_cols: other_cols.clone(),
            },
        }
    }

    /// The column positions stream `i`'s window must index for this plan.
    ///
    /// Common-key plans index the key column of every stream.  Star plans
    /// index each satellite on its pair column and the anchor on every
    /// (deduplicated) anchor-side column, so that satellite probes can look
    /// up matching anchor tuples directly.
    pub fn indexed_columns(&self, i: usize) -> Vec<usize> {
        match self {
            ProbePlan::CommonKey { columns } => vec![columns[i]],
            ProbePlan::Star {
                anchor,
                anchor_cols,
                other_cols,
            } => {
                if i == *anchor {
                    let mut cols: Vec<usize> = (0..anchor_cols.len())
                        .filter(|&j| j != *anchor)
                        .map(|j| anchor_cols[j])
                        .collect();
                    cols.sort_unstable();
                    cols.dedup();
                    cols
                } else {
                    vec![other_cols[i]]
                }
            }
            ProbePlan::NestedLoop => Vec::new(),
        }
    }

    /// Whether the plan ever uses hash-bucket lookups.
    pub fn is_indexed(&self) -> bool {
        !matches!(self, ProbePlan::NestedLoop)
    }

    /// Short human-readable description for reports.
    pub fn describe(&self) -> String {
        match self {
            ProbePlan::CommonKey { columns } => {
                format!("hash-indexed common-key probe on columns {columns:?}")
            }
            ProbePlan::Star { anchor, .. } => {
                // 0-indexed, matching `shard_stats`, skew transitions and
                // every error message.
                format!("hash-indexed star probe anchored at stream {anchor}")
            }
            ProbePlan::NestedLoop => "nested-loop probe".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_loop_strategy_overrides_equi_structure() {
        let equi = EquiStructure::CommonKey {
            columns: vec![0, 0],
        };
        let plan = ProbePlan::new(ProbeStrategy::NestedLoop, Some(&equi));
        assert_eq!(plan, ProbePlan::NestedLoop);
        assert!(!plan.is_indexed());
        assert!(plan.indexed_columns(0).is_empty());
    }

    #[test]
    fn auto_plans_common_key() {
        let equi = EquiStructure::CommonKey {
            columns: vec![1, 0, 2],
        };
        let plan = ProbePlan::new(ProbeStrategy::Auto, Some(&equi));
        assert!(plan.is_indexed());
        assert_eq!(plan.indexed_columns(0), vec![1]);
        assert_eq!(plan.indexed_columns(2), vec![2]);
        assert!(plan.describe().contains("common-key"));
    }

    #[test]
    fn auto_plans_star_with_deduplicated_anchor_columns() {
        // Anchor stream 0 joins satellites 1 and 2 through the *same* anchor
        // column 3, and satellite 3 through column 5.
        let equi = EquiStructure::Star {
            anchor: 0,
            anchor_cols: vec![0, 3, 3, 5],
            other_cols: vec![0, 1, 2, 0],
        };
        let plan = ProbePlan::new(ProbeStrategy::Auto, Some(&equi));
        assert_eq!(plan.indexed_columns(0), vec![3, 5]);
        assert_eq!(plan.indexed_columns(1), vec![1]);
        assert_eq!(plan.indexed_columns(3), vec![0]);
        assert!(plan.describe().contains("star"));
    }

    #[test]
    fn describe_numbers_streams_zero_indexed() {
        // Stream numbering is 0-indexed everywhere a human can read it
        // (shard stats, skew transitions, error messages); `describe` must
        // follow the same convention.
        let equi = EquiStructure::Star {
            anchor: 0,
            anchor_cols: vec![0, 1],
            other_cols: vec![0, 0],
        };
        let plan = ProbePlan::new(ProbeStrategy::Auto, Some(&equi));
        assert_eq!(
            plan.describe(),
            "hash-indexed star probe anchored at stream 0"
        );
    }

    #[test]
    fn conditions_without_structure_plan_nested_loop() {
        let plan = ProbePlan::new(ProbeStrategy::Auto, None);
        assert_eq!(plan, ProbePlan::NestedLoop);
        assert!(plan.describe().contains("nested-loop"));
        assert_eq!(ProbeStrategy::default(), ProbeStrategy::Auto);
        assert_eq!(ProbeStrategy::NestedLoop.to_string(), "nested-loop");
        assert_eq!(ProbeStrategy::Auto.to_string(), "auto");
    }
}

//! Key partitioning: which shard of a sharded join engine owns a tuple.
//!
//! A sharded engine (see `mswj-core`'s `engine` module) splits the join
//! state — windows plus their hash indexes — across `n` independent shards
//! and routes every tuple by its equi-join key, so that any combination of
//! tuples that can satisfy the join meets inside exactly one shard.  The
//! routing rules are derived from the same [`ProbePlan`] that drives the
//! indexed probe path:
//!
//! * **Common-key plans** route every stream by its key column: a result
//!   combination shares one key, so all of its members hash to the same
//!   shard.
//! * **Star plans** pick one *partition pair* — the anchor column and the
//!   paired column of the lowest-numbered satellite — and route the anchor
//!   and that satellite by it; every other satellite is **broadcast** (it
//!   is inserted into, and probes, every shard).  Each result combination
//!   contains exactly one anchor tuple, which lives in exactly one shard,
//!   so broadcast probes never duplicate results.
//! * **Nested-loop plans** expose no key at all: the partitioner degrades
//!   to a single broadcast shard, keeping arbitrary conditions exactly as
//!   correct as the unsharded operator.
//!
//! ## Hashing must follow `join_eq`
//!
//! Routing is only sound if two values that can satisfy the equi-join land
//! in the same shard.  [`Value::join_eq`] equates integers with floats
//! numerically (`Int(4) == Float(4.0)`), so [`join_key_hash`] canonicalizes
//! integral floats to their integer form before hashing; `Null` and missing
//! keys join nothing and are pinned to a fixed shard.  The property harness
//! in `tests/partition_properties.rs` pins `join_eq(a, b) ⇒ hash(a) ==
//! hash(b)` under randomized values.
//!
//! ## Hot-key splitting
//!
//! Hash routing degrades under skew: a Zipf hot key pins its entire key
//! class — build state *and* probe work — to one shard, so "n shards"
//! behaves like one.  The cure is *replicated build / split probe*: a hot
//! key's inserts fan out to **every** shard's build state while each of its
//! probes runs on exactly **one** shard, so probe work spreads while any
//! single probe still sees the full key class.  Which key classes are
//! currently split lives in a [`RoutingTable`] — the one piece of *mutable*
//! routing state, versioned by an epoch counter so an engine can assert
//! that routing never changes while work is in flight.  [`Partitioner`]
//! itself stays pure: [`Partitioner::route_with`] maps a tuple plus a table
//! snapshot to a [`Route`], returning [`Route::Split`] for split classes.
//!
//! Splitting is only sound when every stream is key-routed
//! ([`Partitioner::supports_splitting`]): a broadcast stream (star
//! satellites outside the partition pair) probes *every* shard, and
//! replicated build tuples would then match once per shard and duplicate
//! results.
//!
//! ```
//! use mswj_join::{join_key_hash, Partitioner, ProbePlan, Route, RoutingTable};
//! use mswj_types::{Timestamp, Tuple, Value};
//!
//! let plan = ProbePlan::CommonKey { columns: vec![0, 0] };
//! let partitioner = Partitioner::new(&plan, 4);
//! assert!(partitioner.supports_splitting());
//!
//! let hot = Tuple::new(0.into(), 0, Timestamp::ZERO, vec![Value::Int(7)]);
//! let mut table = RoutingTable::new();
//! assert_eq!(partitioner.route_with(&hot, &table), partitioner.route(&hot));
//!
//! let class = partitioner.key_hash(&hot).unwrap();
//! assert!(table.split(class));
//! assert_eq!(table.epoch(), 1);
//! assert_eq!(partitioner.route_with(&hot, &table), Route::Split);
//! ```
//!
//! [`Value::join_eq`]: mswj_types::Value::join_eq

use crate::planner::ProbePlan;
use mswj_types::{Tuple, Value};

/// Where one tuple must be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The tuple is owned by exactly one shard: insert there, probe there.
    One(usize),
    /// The tuple belongs to a broadcast stream: insert into and probe every
    /// shard (star satellites outside the partition pair).
    All,
    /// The tuple's key class is split (see [`RoutingTable`]): insert into
    /// every shard's build state, probe on exactly one shard of the
    /// caller's choosing (round-robin or least-loaded — any single shard
    /// sees the full replicated key class).
    Split,
}

/// The mutable half of split routing: which key classes (by
/// [`join_key_hash`]) are currently *replicated-build / split-probe*,
/// versioned by an epoch counter.
///
/// Every mutation bumps [`epoch`](RoutingTable::epoch), which lets an
/// engine tag in-flight work with the epoch it was routed under and assert
/// that routing only ever changes at a barrier (no work outstanding).  The
/// set itself is kept sorted so membership is a binary search and the
/// split-class listing is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoutingTable {
    split: Vec<u64>,
    epoch: u64,
}

impl RoutingTable {
    /// An empty table: nothing split, epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The version of the table: bumped by one on every effective
    /// [`split`](RoutingTable::split) / [`unsplit`](RoutingTable::unsplit).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the key class `hash` is currently split.
    pub fn is_split(&self, hash: u64) -> bool {
        self.split.binary_search(&hash).is_ok()
    }

    /// Marks the key class `hash` as split.  Returns `true` (and bumps the
    /// epoch) if the class was not already split.
    pub fn split(&mut self, hash: u64) -> bool {
        match self.split.binary_search(&hash) {
            Ok(_) => false,
            Err(at) => {
                self.split.insert(at, hash);
                self.epoch += 1;
                true
            }
        }
    }

    /// Reverts the key class `hash` to plain hash routing.  Returns `true`
    /// (and bumps the epoch) if the class was split.
    pub fn unsplit(&mut self, hash: u64) -> bool {
        match self.split.binary_search(&hash) {
            Ok(at) => {
                self.split.remove(at);
                self.epoch += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Bumps the epoch without touching the split set — the marker for a
    /// routing change that lives *outside* the table, such as a star
    /// partition-pair switch rebuilding the [`Partitioner`] itself.  Any
    /// in-flight work tagged with the old epoch is thereby invalidated, so
    /// callers must only do this at a barrier.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// The currently split key classes, sorted ascending.
    pub fn split_classes(&self) -> &[u64] {
        &self.split
    }

    /// Number of split key classes.
    pub fn len(&self) -> usize {
        self.split.len()
    }

    /// Whether no key class is split (plain hash routing everywhere).
    pub fn is_empty(&self) -> bool {
        self.split.is_empty()
    }
}

/// Per-stream routing rules derived from a [`ProbePlan`].
///
/// A `Partitioner` is pure and stateless: a tuple's route depends only on
/// its stream and its key value, never on engine state — which is what
/// keeps routing stable under buffer-size (K) changes and window expiry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioner {
    /// Routing column per stream; `None` broadcasts the stream.  An overall
    /// `None` means the plan exposes no key to partition on.
    columns: Option<Vec<Option<usize>>>,
    /// Number of shards actually usable under these rules (1 when the plan
    /// is unpartitionable).
    shards: usize,
}

impl Partitioner {
    /// Derives the routing rules for `requested` shards from a probe plan.
    ///
    /// Unpartitionable plans ([`ProbePlan::NestedLoop`]) fall back to one
    /// broadcast shard regardless of `requested`; `requested` is clamped to
    /// at least 1.
    pub fn new(plan: &ProbePlan, requested: usize) -> Self {
        // Star plans default to the pair shared with the lowest-numbered
        // satellite — the *blind* choice runtime re-planning may later
        // revise towards the lowest observed-cardinality satellite.
        Self::with_star_partner(plan, requested, Self::default_star_partner(plan))
    }

    /// The partition partner [`Partitioner::new`] picks for a star plan:
    /// the lowest-numbered satellite.  `None` for non-star plans (and the
    /// degenerate satellite-free star).
    pub fn default_star_partner(plan: &ProbePlan) -> Option<usize> {
        match plan {
            ProbePlan::Star {
                anchor,
                anchor_cols,
                ..
            } => (0..anchor_cols.len()).find(|&j| j != *anchor),
            _ => None,
        }
    }

    /// Derives routing rules like [`Partitioner::new`], but partitions a
    /// star plan on the pair shared with the given satellite `partner`
    /// instead of the lowest-numbered one.  Runtime re-planning uses this
    /// to move the partition pair to the lowest observed-cardinality
    /// satellite; `partner` is ignored for non-star plans.
    ///
    /// # Panics
    ///
    /// Panics if `partner` names the anchor or an out-of-range stream of a
    /// star plan.
    pub fn with_star_partner(plan: &ProbePlan, requested: usize, partner: Option<usize>) -> Self {
        let requested = requested.max(1);
        let columns = match plan {
            ProbePlan::CommonKey { columns } => {
                Some(columns.iter().map(|&c| Some(c)).collect::<Vec<_>>())
            }
            ProbePlan::Star {
                anchor,
                anchor_cols,
                other_cols,
            } => {
                // Partition on the pair shared with `partner`; every other
                // satellite broadcasts.
                partner.map(|j0| {
                    assert!(
                        j0 != *anchor && j0 < anchor_cols.len(),
                        "star partition partner must be a satellite stream"
                    );
                    (0..anchor_cols.len())
                        .map(|j| {
                            if j == *anchor {
                                Some(anchor_cols[j0])
                            } else if j == j0 {
                                Some(other_cols[j0])
                            } else {
                                None
                            }
                        })
                        .collect()
                })
            }
            ProbePlan::NestedLoop => None,
        };
        let shards = if columns.is_some() { requested } else { 1 };
        Partitioner { columns, shards }
    }

    /// The number of shards these rules can actually feed (1 when the plan
    /// is unpartitionable, the requested count otherwise).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Whether the plan exposed a key to partition on.
    pub fn is_partitioned(&self) -> bool {
        self.columns.is_some() && self.shards > 1
    }

    /// The routing column of stream `i`, if that stream is key-routed
    /// (`None` for broadcast streams and unpartitionable plans).
    pub fn column(&self, i: usize) -> Option<usize> {
        self.columns.as_ref().and_then(|cols| cols[i])
    }

    /// Routes one tuple under plain hash routing (no split classes).
    pub fn route(&self, tuple: &Tuple) -> Route {
        match self.key_hash(tuple) {
            Some(hash) => Route::One(self.home_shard(hash)),
            None if self.columns.is_some() => Route::All,
            None => Route::One(0),
        }
    }

    /// Routes one tuple under the split classes of `table`: key-routed
    /// tuples whose key class is split get [`Route::Split`], everything
    /// else routes exactly as [`route`](Partitioner::route).  With an empty
    /// table the two are identical.
    pub fn route_with(&self, tuple: &Tuple, table: &RoutingTable) -> Route {
        match self.key_hash(tuple) {
            Some(hash) if table.is_split(hash) => Route::Split,
            Some(hash) => Route::One(self.home_shard(hash)),
            None if self.columns.is_some() => Route::All,
            None => Route::One(0),
        }
    }

    /// The [`join_key_hash`] class of this tuple's routing key, or `None`
    /// when the tuple's stream is broadcast or the plan is unpartitionable.
    pub fn key_hash(&self, tuple: &Tuple) -> Option<u64> {
        let cols = self.columns.as_ref()?;
        let col = cols[tuple.stream.as_usize()]?;
        Some(join_key_hash(tuple.value(col)))
    }

    /// The shard that owns key class `hash` under plain hash routing — and
    /// that keeps the authoritative copy of its build state while the class
    /// is split.
    pub fn home_shard(&self, hash: u64) -> usize {
        (hash % self.shards as u64) as usize
    }

    /// Whether hot-key splitting is sound under these rules: every stream
    /// must be key-routed.  A broadcast stream probes every shard, so a
    /// replicated build tuple would match once per shard and duplicate
    /// results; star plans with broadcast satellites and unpartitionable
    /// plans therefore must not split.
    pub fn supports_splitting(&self) -> bool {
        self.shards > 1
            && self
                .columns
                .as_ref()
                .is_some_and(|cols| cols.iter().all(Option::is_some))
    }
}

/// Magnitude bound (2⁵³) below which every `i64` survives the `as f64`
/// round-trip exactly.  At or beyond it, [`Value::join_eq`]'s lossy
/// coercion is not even transitive — `Int(2⁵³)` and `Int(2⁵³ + 1)` both
/// join `Float(2⁵³)` without joining each other — so no per-value hash can
/// be consistent there and the whole magnitude class is pinned to one
/// fixed hash instead.
const EXACT_INT_BOUND: f64 = 9_007_199_254_740_992.0;

/// Hashes one join-key value such that `a.join_eq(b)` implies
/// `join_key_hash(a) == join_key_hash(b)`.
///
/// Integers and integral floats share the integer hash (numeric coercion);
/// non-integral floats hash their canonical bit pattern (`-0.0` folds into
/// `0.0` first); strings and booleans hash structurally.  `Null` and
/// missing values join nothing, so their fixed placement is arbitrary but
/// deterministic.  Each family carries a distinct tag so unrelated types
/// only collide by chance, never systematically.
///
/// Numeric values at magnitude ≥ 2⁵³ — where `join_eq`'s `i64 → f64`
/// coercion loses precision and stops being transitive — all collapse into
/// one pinned class.  The class is closed under `join_eq` (a value below
/// the bound coerces exactly, so it can only ever join values below the
/// bound), which keeps routing sound at the price of co-locating
/// astronomically-keyed tuples on one shard.
pub fn join_key_hash(value: Option<&Value>) -> u64 {
    match value {
        None | Some(Value::Null) => 0,
        Some(Value::Int(i)) => {
            if i.unsigned_abs() >= EXACT_INT_BOUND as u64 {
                mix(5, 0)
            } else {
                mix(1, *i as u64)
            }
        }
        Some(Value::Float(f)) => {
            // Fold -0.0 into 0.0 (they compare equal), then canonicalize
            // exactly-representable integral floats to the integer they
            // join with.  Finite floats at magnitude ≥ 2⁵³ (necessarily
            // integral — the f64 grid spacing is ≥ 1 there) fall into the
            // pinned lossy-coercion class; everything else — non-integral
            // floats, infinities, NaN — only ever joins a bit-identical
            // float, so its bit pattern is a safe class representative.
            let f = if *f == 0.0 { 0.0 } else { *f };
            if f.fract() == 0.0 && f.abs() < EXACT_INT_BOUND {
                mix(1, f as i64 as u64)
            } else if f.is_finite() && f.abs() >= EXACT_INT_BOUND {
                mix(5, 0)
            } else {
                mix(2, f.to_bits())
            }
        }
        Some(Value::Str(s)) => {
            // FNV-1a over the bytes, then the avalanche mix.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in s.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            mix(3, h)
        }
        Some(Value::Bool(b)) => mix(4, u64::from(*b)),
    }
}

/// SplitMix64 finalizer over a tagged payload: deterministic across
/// platforms and processes (unlike `DefaultHasher`), with full avalanche so
/// `hash % shards` spreads consecutive integer keys evenly.
fn mix(tag: u64, payload: u64) -> u64 {
    let mut z = payload ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_types::{StreamIndex, Timestamp};

    fn tup(stream: usize, v: Value) -> Tuple {
        Tuple::new(StreamIndex(stream), 0, Timestamp::ZERO, vec![v])
    }

    #[test]
    fn join_eq_classes_hash_identically() {
        let cases = [
            (Value::Int(4), Value::Float(4.0)),
            (Value::Int(-7), Value::Float(-7.0)),
            (Value::Int(0), Value::Float(-0.0)),
            (Value::Float(2.5), Value::Float(2.5)),
            (Value::Str("abc".into()), Value::Str("abc".into())),
            (Value::Bool(true), Value::Bool(true)),
        ];
        for (a, b) in cases {
            assert!(a.join_eq(&b), "{a:?} must join_eq {b:?}");
            assert_eq!(
                join_key_hash(Some(&a)),
                join_key_hash(Some(&b)),
                "join_eq-equal values must share a hash: {a:?} vs {b:?}"
            );
        }
        assert_eq!(join_key_hash(None), join_key_hash(Some(&Value::Null)));
    }

    #[test]
    fn lossy_coercion_magnitudes_share_the_pinned_class() {
        // Beyond 2^53, join_eq's `i64 as f64` coercion is lossy and not
        // transitive: Int(2^53) and Int(2^53 + 1) both join Float(2^53)
        // without joining each other.  All such values must share a hash.
        let big = 9_007_199_254_740_992i64; // 2^53
        let cases = [
            (Value::Int(big + 1), Value::Float(big as f64)),
            (Value::Int(big), Value::Float(big as f64)),
            (Value::Int(i64::MAX), Value::Float(2f64.powi(63))),
            (Value::Int(i64::MIN), Value::Float(-(2f64.powi(63)))),
            (Value::Float(2f64.powi(60)), Value::Int(1 << 60)),
        ];
        for (a, b) in cases {
            assert!(a.join_eq(&b), "{a:?} must join_eq {b:?}");
            assert_eq!(
                join_key_hash(Some(&a)),
                join_key_hash(Some(&b)),
                "lossy-coercion pair must share a hash: {a:?} vs {b:?}"
            );
        }
        // Values below the bound keep their spread-out per-value hashes.
        assert_ne!(
            join_key_hash(Some(&Value::Int(big - 1))),
            join_key_hash(Some(&Value::Int(big - 2)))
        );
        // Non-finite floats only join bit-identical floats.
        assert_eq!(
            join_key_hash(Some(&Value::Float(f64::INFINITY))),
            join_key_hash(Some(&Value::Float(f64::INFINITY)))
        );
    }

    #[test]
    fn distinct_integer_keys_spread_across_shards() {
        let plan = ProbePlan::CommonKey {
            columns: vec![0, 0],
        };
        let p = Partitioner::new(&plan, 4);
        assert_eq!(p.shard_count(), 4);
        assert!(p.is_partitioned());
        assert_eq!(p.column(0), Some(0));
        let mut seen = [false; 4];
        for key in 0..64i64 {
            match p.route(&tup(0, Value::Int(key))) {
                Route::One(s) => seen[s] = true,
                other => panic!("common-key streams must be key-routed, got {other:?}"),
            }
        }
        assert!(seen.iter().all(|&s| s), "64 keys must reach all 4 shards");
    }

    #[test]
    fn equal_keys_route_to_the_same_shard_on_every_stream() {
        let plan = ProbePlan::CommonKey {
            columns: vec![0, 0, 0],
        };
        let p = Partitioner::new(&plan, 8);
        for key in -20i64..20 {
            let r0 = p.route(&tup(0, Value::Int(key)));
            let r1 = p.route(&tup(1, Value::Int(key)));
            let r2 = p.route(&tup(2, Value::Float(key as f64)));
            assert_eq!(r0, r1);
            assert_eq!(r0, r2, "coerced float keys must follow the int route");
        }
    }

    #[test]
    fn star_partitions_one_pair_and_broadcasts_the_rest() {
        let plan = ProbePlan::Star {
            anchor: 0,
            anchor_cols: vec![0, 0, 1],
            other_cols: vec![0, 0, 0],
        };
        let p = Partitioner::new(&plan, 4);
        assert_eq!(p.shard_count(), 4);
        assert_eq!(p.column(0), Some(0), "anchor routes by the pair-0 column");
        assert_eq!(p.column(1), Some(0), "satellite 1 routes by its column");
        assert_eq!(p.column(2), None, "satellite 2 broadcasts");
        // The anchor and its partition partner agree on equal keys.
        let anchor = Tuple::new(
            StreamIndex(0),
            0,
            Timestamp::ZERO,
            vec![Value::Int(9), Value::Int(1)],
        );
        assert_eq!(p.route(&anchor), p.route(&tup(1, Value::Int(9))));
        assert_eq!(p.route(&tup(2, Value::Int(9))), Route::All);
    }

    #[test]
    fn star_partner_can_be_re_selected() {
        let plan = ProbePlan::Star {
            anchor: 0,
            anchor_cols: vec![0, 0, 1],
            other_cols: vec![0, 0, 0],
        };
        assert_eq!(Partitioner::default_star_partner(&plan), Some(1));
        let p = Partitioner::with_star_partner(&plan, 4, Some(2));
        assert_eq!(p.column(0), Some(1), "anchor routes by the pair-2 column");
        assert_eq!(p.column(1), None, "satellite 1 now broadcasts");
        assert_eq!(p.column(2), Some(0), "satellite 2 routes by its column");
        // The anchor and the new partner agree on equal keys.
        let anchor = Tuple::new(
            StreamIndex(0),
            0,
            Timestamp::ZERO,
            vec![Value::Int(9), Value::Int(5)],
        );
        assert_eq!(p.route(&anchor), p.route(&tup(2, Value::Int(5))));
        assert_eq!(p.route(&tup(1, Value::Int(5))), Route::All);
        // The default partner reproduces `Partitioner::new` exactly.
        assert_eq!(
            Partitioner::with_star_partner(&plan, 4, Some(1)),
            Partitioner::new(&plan, 4)
        );
    }

    #[test]
    fn bump_epoch_versions_external_routing_changes() {
        let mut table = RoutingTable::new();
        table.split(42);
        assert_eq!(table.epoch(), 1);
        table.bump_epoch();
        assert_eq!(table.epoch(), 2, "a pair switch must version the table");
        assert_eq!(table.split_classes(), &[42], "the split set is untouched");
    }

    #[test]
    fn nested_loop_plans_fall_back_to_one_shard() {
        let p = Partitioner::new(&ProbePlan::NestedLoop, 8);
        assert_eq!(p.shard_count(), 1);
        assert!(!p.is_partitioned());
        assert_eq!(p.column(0), None);
        assert_eq!(p.route(&tup(0, Value::Int(5))), Route::One(0));
    }

    #[test]
    fn null_and_missing_keys_are_pinned() {
        let plan = ProbePlan::CommonKey {
            columns: vec![0, 0],
        };
        let p = Partitioner::new(&plan, 4);
        let null_route = p.route(&tup(0, Value::Null));
        let missing = Tuple::marker(StreamIndex(0), 0, Timestamp::ZERO);
        assert_eq!(p.route(&missing), null_route);
        assert!(matches!(null_route, Route::One(_)));
    }

    #[test]
    fn requested_shard_count_is_clamped() {
        let plan = ProbePlan::CommonKey {
            columns: vec![0, 0],
        };
        assert_eq!(Partitioner::new(&plan, 0).shard_count(), 1);
    }

    #[test]
    fn routing_table_versions_every_effective_change() {
        let mut table = RoutingTable::new();
        assert_eq!(table.epoch(), 0);
        assert!(table.is_empty());
        assert!(table.split(42));
        assert!(!table.split(42), "re-splitting must be a no-op");
        assert_eq!(table.epoch(), 1, "a no-op must not bump the epoch");
        assert!(table.split(7));
        assert_eq!(table.epoch(), 2);
        assert_eq!(table.split_classes(), &[7, 42], "classes stay sorted");
        assert!(table.is_split(7) && table.is_split(42) && !table.is_split(8));
        assert!(table.unsplit(7));
        assert!(!table.unsplit(7), "re-unsplitting must be a no-op");
        assert_eq!(table.epoch(), 3);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn split_classes_reroute_without_touching_the_rest() {
        let plan = ProbePlan::CommonKey {
            columns: vec![0, 0],
        };
        let p = Partitioner::new(&plan, 4);
        let hot = tup(0, Value::Int(7));
        let cold = tup(1, Value::Int(8));
        let mut table = RoutingTable::new();
        assert_eq!(p.route_with(&hot, &table), p.route(&hot));
        table.split(p.key_hash(&hot).unwrap());
        assert_eq!(p.route_with(&hot, &table), Route::Split);
        // The coerced float shares the key class, so it splits too.
        assert_eq!(
            p.route_with(&tup(1, Value::Float(7.0)), &table),
            Route::Split
        );
        assert_eq!(p.route_with(&cold, &table), p.route(&cold));
        // The home shard is where plain hashing would have sent the key.
        let home = p.home_shard(p.key_hash(&hot).unwrap());
        assert_eq!(p.route(&hot), Route::One(home));
        table.unsplit(p.key_hash(&hot).unwrap());
        assert_eq!(p.route_with(&hot, &table), p.route(&hot));
    }

    #[test]
    fn splitting_is_gated_to_fully_key_routed_plans() {
        let common = ProbePlan::CommonKey {
            columns: vec![0, 0],
        };
        assert!(Partitioner::new(&common, 4).supports_splitting());
        assert!(
            !Partitioner::new(&common, 1).supports_splitting(),
            "one shard has nothing to split across"
        );
        // Star plans broadcast satellites outside the partition pair: a
        // replicated build tuple would match once per probing shard.
        let star = ProbePlan::Star {
            anchor: 0,
            anchor_cols: vec![0, 0, 1],
            other_cols: vec![0, 0, 0],
        };
        let p = Partitioner::new(&star, 4);
        assert!(!p.supports_splitting());
        assert_eq!(
            p.key_hash(&tup(2, Value::Int(9))),
            None,
            "broadcast streams expose no key class"
        );
        assert!(!Partitioner::new(&ProbePlan::NestedLoop, 4).supports_splitting());
    }
}

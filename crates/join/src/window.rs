//! Time-based sliding windows over one input stream.
//!
//! Each input stream `S_i` of an MSWJ carries a user-specified, time-based
//! sliding window of `W_i` milliseconds (Sec. II-A).  The window holds the
//! tuples whose timestamps are still within scope, supports expiration
//! driven by the timestamp of a newly processed tuple (Alg. 2, line 6) and
//! maintains per-column *count indexes* so that equi-join result sizes can
//! be computed without enumerating every combination.

use mswj_types::{Duration, Timestamp, Tuple, Value};
use std::collections::{HashMap, VecDeque};

/// Aggregate statistics about a window's lifetime behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Total number of tuples ever inserted.
    pub inserted: u64,
    /// Total number of tuples expired.
    pub expired: u64,
    /// Number of inserts that were not appended at the tail (i.e. the tuple
    /// was out of timestamp order with respect to the window content).
    pub unordered_inserts: u64,
    /// Largest number of tuples simultaneously held.
    pub peak_len: usize,
}

/// A time-based sliding window holding the live tuples of one stream.
///
/// Tuples are kept ordered by timestamp (ties broken by insertion order) so
/// that expiration is a pop-from-the-front operation in the common case.
/// Optionally, integer columns can be indexed; the index maintains, for each
/// distinct value, the number of live tuples carrying it.
///
/// # Examples
///
/// ```
/// use mswj_join::Window;
/// use mswj_types::{Tuple, Timestamp, Value};
/// let mut w = Window::new(1_000);
/// w.insert(Tuple::new(0.into(), 0, Timestamp::from_millis(100), vec![Value::Int(7)]));
/// w.insert(Tuple::new(0.into(), 1, Timestamp::from_millis(600), vec![Value::Int(7)]));
/// assert_eq!(w.len(), 2);
/// // A tuple at t=1200 expires everything with ts < 1200 - 1000 = 200.
/// let expired = w.expire_before(Timestamp::from_millis(200));
/// assert_eq!(expired, 1);
/// assert_eq!(w.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Window {
    size: Duration,
    tuples: VecDeque<Tuple>,
    /// column position -> (value -> live count)
    count_index: HashMap<usize, HashMap<i64, u64>>,
    stats: WindowStats,
}

impl Window {
    /// Creates a window of `size` milliseconds with no indexed columns.
    pub fn new(size: Duration) -> Self {
        Window {
            size,
            tuples: VecDeque::new(),
            count_index: HashMap::new(),
            stats: WindowStats::default(),
        }
    }

    /// Creates a window that maintains count indexes on the given integer
    /// column positions.
    pub fn with_indexed_columns(size: Duration, columns: &[usize]) -> Self {
        let mut w = Window::new(size);
        for &c in columns {
            w.count_index.entry(c).or_default();
        }
        w
    }

    /// The window size `W_i` in milliseconds.
    pub fn size(&self) -> Duration {
        self.size
    }

    /// Number of live tuples `|S_i[W_i]|`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the window holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> WindowStats {
        self.stats
    }

    /// Iterates over live tuples in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// The smallest timestamp currently held, if any.
    pub fn min_ts(&self) -> Option<Timestamp> {
        self.tuples.front().map(|t| t.ts)
    }

    /// The largest timestamp currently held, if any.
    pub fn max_ts(&self) -> Option<Timestamp> {
        self.tuples.back().map(|t| t.ts)
    }

    /// Inserts a tuple, keeping the content ordered by timestamp.
    pub fn insert(&mut self, tuple: Tuple) {
        for (&col, index) in self.count_index.iter_mut() {
            if let Some(key) = tuple.value(col).and_then(int_key) {
                *index.entry(key).or_insert(0) += 1;
            }
        }
        let in_order = self
            .tuples
            .back()
            .map(|last| last.ts <= tuple.ts)
            .unwrap_or(true);
        if in_order {
            self.tuples.push_back(tuple);
        } else {
            // Out-of-order insertion (Alg. 2, lines 9–10): find the position
            // from the back, since late tuples are usually only a little late.
            self.stats.unordered_inserts += 1;
            let mut pos = self.tuples.len();
            while pos > 0 && self.tuples[pos - 1].ts > tuple.ts {
                pos -= 1;
            }
            self.tuples.insert(pos, tuple);
        }
        self.stats.inserted += 1;
        if self.tuples.len() > self.stats.peak_len {
            self.stats.peak_len = self.tuples.len();
        }
    }

    /// Removes every tuple with `ts < bound` (Alg. 2, line 6, where
    /// `bound = e_i.ts - W_j`).  Returns the number of expired tuples.
    pub fn expire_before(&mut self, bound: Timestamp) -> usize {
        let mut expired = 0;
        while let Some(front) = self.tuples.front() {
            if front.ts < bound {
                let t = self.tuples.pop_front().expect("front checked above");
                for (&col, index) in self.count_index.iter_mut() {
                    if let Some(key) = t.value(col).and_then(int_key) {
                        if let Some(cnt) = index.get_mut(&key) {
                            *cnt -= 1;
                            if *cnt == 0 {
                                index.remove(&key);
                            }
                        }
                    }
                }
                expired += 1;
            } else {
                break;
            }
        }
        self.stats.expired += expired as u64;
        expired
    }

    /// Number of live tuples whose indexed column `col` equals `key`.
    ///
    /// Falls back to a scan when the column is not indexed.
    pub fn count_key(&self, col: usize, key: i64) -> u64 {
        if let Some(index) = self.count_index.get(&col) {
            index.get(&key).copied().unwrap_or(0)
        } else {
            self.tuples
                .iter()
                .filter(|t| t.value(col).and_then(int_key) == Some(key))
                .count() as u64
        }
    }

    /// Iterates over live tuples whose column `col` equals `key`.
    pub fn matching<'a>(&'a self, col: usize, key: i64) -> impl Iterator<Item = &'a Tuple> + 'a {
        self.tuples
            .iter()
            .filter(move |t| t.value(col).and_then(int_key) == Some(key))
    }

    /// Whether `col` has a count index.
    pub fn is_indexed(&self, col: usize) -> bool {
        self.count_index.contains_key(&col)
    }

    /// Removes every tuple (used when resetting an operator between runs).
    pub fn clear(&mut self) {
        self.tuples.clear();
        for index in self.count_index.values_mut() {
            index.clear();
        }
    }
}

/// Maps an integer-convertible [`Value`] to the index key domain.
fn int_key(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        Value::Bool(b) => Some(*b as i64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_types::StreamIndex;

    fn tup(seq: u64, ts: u64, key: i64) -> Tuple {
        Tuple::new(
            StreamIndex(0),
            seq,
            Timestamp::from_millis(ts),
            vec![Value::Int(key)],
        )
    }

    #[test]
    fn insert_keeps_timestamp_order() {
        let mut w = Window::new(1_000);
        w.insert(tup(0, 100, 1));
        w.insert(tup(1, 300, 2));
        w.insert(tup(2, 200, 3)); // out of order
        let ts: Vec<u64> = w.iter().map(|t| t.ts.as_millis()).collect();
        assert_eq!(ts, vec![100, 200, 300]);
        assert_eq!(w.stats().unordered_inserts, 1);
        assert_eq!(w.min_ts(), Some(Timestamp::from_millis(100)));
        assert_eq!(w.max_ts(), Some(Timestamp::from_millis(300)));
    }

    #[test]
    fn expiration_removes_only_old_tuples() {
        let mut w = Window::new(500);
        for (i, ts) in [100u64, 200, 300, 400].iter().enumerate() {
            w.insert(tup(i as u64, *ts, 1));
        }
        let removed = w.expire_before(Timestamp::from_millis(250));
        assert_eq!(removed, 2);
        assert_eq!(w.len(), 2);
        assert_eq!(w.min_ts(), Some(Timestamp::from_millis(300)));
        assert_eq!(w.stats().expired, 2);
        // Expiring with an older bound is a no-op.
        assert_eq!(w.expire_before(Timestamp::from_millis(100)), 0);
    }

    #[test]
    fn expiration_bound_is_exclusive() {
        // Tuples with ts == bound stay: the paper removes ts < ei.ts - Wj.
        let mut w = Window::new(500);
        w.insert(tup(0, 100, 1));
        w.insert(tup(1, 200, 1));
        assert_eq!(w.expire_before(Timestamp::from_millis(200)), 1);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn count_index_tracks_inserts_and_expirations() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        assert!(w.is_indexed(0));
        assert!(!w.is_indexed(1));
        w.insert(tup(0, 100, 7));
        w.insert(tup(1, 200, 7));
        w.insert(tup(2, 300, 9));
        assert_eq!(w.count_key(0, 7), 2);
        assert_eq!(w.count_key(0, 9), 1);
        assert_eq!(w.count_key(0, 5), 0);
        w.expire_before(Timestamp::from_millis(250));
        assert_eq!(w.count_key(0, 7), 0);
        assert_eq!(w.count_key(0, 9), 1);
    }

    #[test]
    fn count_key_without_index_scans() {
        let mut w = Window::new(1_000);
        w.insert(tup(0, 100, 4));
        w.insert(tup(1, 200, 4));
        assert_eq!(w.count_key(0, 4), 2);
        assert_eq!(w.count_key(0, 1), 0);
    }

    #[test]
    fn matching_iterates_only_matching_tuples() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        w.insert(tup(0, 100, 4));
        w.insert(tup(1, 150, 5));
        w.insert(tup(2, 200, 4));
        let seqs: Vec<u64> = w.matching(0, 4).map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 2]);
    }

    #[test]
    fn peak_len_and_clear() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        for i in 0..5 {
            w.insert(tup(i, 100 * (i + 1), 1));
        }
        assert_eq!(w.stats().peak_len, 5);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.count_key(0, 1), 0);
        // Peak is a lifetime statistic and survives clear().
        assert_eq!(w.stats().peak_len, 5);
    }

    #[test]
    fn non_integer_columns_are_ignored_by_index() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        w.insert(Tuple::new(
            StreamIndex(0),
            0,
            Timestamp::from_millis(10),
            vec![Value::Float(2.5)],
        ));
        assert_eq!(w.count_key(0, 2), 0);
        assert_eq!(w.len(), 1);
        // Expiration of unindexed-value tuples must not underflow the index.
        w.expire_before(Timestamp::from_millis(100));
        assert!(w.is_empty());
    }
}

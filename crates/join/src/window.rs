//! Time-based sliding windows over one input stream.
//!
//! Each input stream `S_i` of an MSWJ carries a user-specified, time-based
//! sliding window of `W_i` milliseconds (Sec. II-A).  The window holds the
//! tuples whose timestamps are still within scope, supports expiration
//! driven by the timestamp of a newly processed tuple (Alg. 2, line 6) and
//! maintains, per indexed column, a **value→tuple hash index**: one bucket
//! of live tuples per distinct integer key, kept incrementally under
//! out-of-order inserts and expiration.  The index serves two purposes:
//!
//! * equi-join result *counts* are bucket-length products instead of
//!   enumerations, and
//! * the operator's indexed probe path (see
//!   [`planner`](crate::planner)) enumerates only the matching bucket of
//!   every other window instead of scanning it.
//!
//! ## Index soundness
//!
//! Buckets are keyed by `i64`, so only [`Value::Int`] attributes are
//! hashable.  [`Value::join_eq`] additionally equates integers with floats
//! numerically (`Int(4) == Float(4.0)`), which a hash lookup cannot see —
//! so every index tracks, per column, the number of live tuples whose value
//! there is a float, string or boolean ([`Window::unindexable_count`]).
//! The probe planner consults [`Window::index_usable`] and falls back to
//! the exhaustive scan whenever that count is non-zero.  `Null` and missing
//! values never satisfy `join_eq` at all; they are simply left out of the
//! buckets without compromising soundness.

use mswj_types::{Duration, Timestamp, Tuple, Value};
use std::collections::{HashMap, VecDeque};

/// Aggregate statistics about a window's lifetime behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Total number of tuples ever inserted.
    pub inserted: u64,
    /// Total number of tuples expired.
    pub expired: u64,
    /// Number of inserts that were not appended at the tail (i.e. the tuple
    /// was out of timestamp order with respect to the window content).
    pub unordered_inserts: u64,
    /// Largest number of tuples simultaneously held.
    pub peak_len: usize,
}

/// The hash index of one column: live tuples grouped by integer key, plus
/// the count of live values the index cannot represent.
#[derive(Debug, Clone, Default)]
struct KeyIndex {
    /// key value → live tuples carrying it, in timestamp order.
    buckets: HashMap<i64, VecDeque<Tuple>>,
    /// Live tuples whose value in this column is a float, string or bool:
    /// such values can satisfy `join_eq` without being bucket-addressable,
    /// so any non-zero count disables the indexed probe path.
    unindexable: u64,
}

/// Classification of one attribute value with respect to the hash index.
///
/// The same classification drives both index maintenance (here) and the
/// operator's per-probe soundness gate — they must agree case-for-case for
/// the indexed probe to stay equivalent to the nested-loop scan.
pub(crate) enum KeyClass {
    /// Hashable integer key.
    Key(i64),
    /// `Null` or missing: can never satisfy `join_eq`, safe to omit.
    Inert,
    /// Float / string / bool: joinable but not hashable to an `i64` bucket.
    Unindexable,
}

pub(crate) fn classify(v: Option<&Value>) -> KeyClass {
    match v {
        None | Some(Value::Null) => KeyClass::Inert,
        Some(Value::Int(i)) => KeyClass::Key(*i),
        Some(_) => KeyClass::Unindexable,
    }
}

/// A time-based sliding window holding the live tuples of one stream.
///
/// Tuples are kept ordered by timestamp (ties broken by insertion order) so
/// that expiration is a pop-from-the-front operation in the common case.
/// Optionally, integer columns can be indexed; the index maintains, for each
/// distinct value, the bucket of live tuples carrying it.
///
/// # Examples
///
/// ```
/// use mswj_join::Window;
/// use mswj_types::{Tuple, Timestamp, Value};
/// let mut w = Window::new(1_000);
/// w.insert(Tuple::new(0.into(), 0, Timestamp::from_millis(100), vec![Value::Int(7)]));
/// w.insert(Tuple::new(0.into(), 1, Timestamp::from_millis(600), vec![Value::Int(7)]));
/// assert_eq!(w.len(), 2);
/// // A tuple at t=1200 expires everything with ts < 1200 - 1000 = 200.
/// let expired = w.expire_before(Timestamp::from_millis(200));
/// assert_eq!(expired, 1);
/// assert_eq!(w.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Window {
    size: Duration,
    tuples: VecDeque<Tuple>,
    /// column position -> hash index of that column's live values.
    index: HashMap<usize, KeyIndex>,
    stats: WindowStats,
}

impl Window {
    /// Creates a window of `size` milliseconds with no indexed columns.
    pub fn new(size: Duration) -> Self {
        Window {
            size,
            tuples: VecDeque::new(),
            index: HashMap::new(),
            stats: WindowStats::default(),
        }
    }

    /// Creates a window that maintains value→tuple hash indexes on the
    /// given integer column positions.
    pub fn with_indexed_columns(size: Duration, columns: &[usize]) -> Self {
        let mut w = Window::new(size);
        for &c in columns {
            w.index.entry(c).or_default();
        }
        w
    }

    /// The window size `W_i` in milliseconds.
    pub fn size(&self) -> Duration {
        self.size
    }

    /// Number of live tuples `|S_i[W_i]|`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the window holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> WindowStats {
        self.stats
    }

    /// Iterates over live tuples in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// The smallest timestamp currently held, if any.
    pub fn min_ts(&self) -> Option<Timestamp> {
        self.tuples.front().map(|t| t.ts)
    }

    /// The largest timestamp currently held, if any.
    pub fn max_ts(&self) -> Option<Timestamp> {
        self.tuples.back().map(|t| t.ts)
    }

    /// Inserts a tuple, keeping the content ordered by timestamp.
    pub fn insert(&mut self, tuple: Tuple) {
        for (&col, index) in self.index.iter_mut() {
            match classify(tuple.value(col)) {
                KeyClass::Key(key) => {
                    bucket_insert(index.buckets.entry(key).or_default(), tuple.clone())
                }
                KeyClass::Unindexable => index.unindexable += 1,
                KeyClass::Inert => {}
            }
        }
        let in_order = self
            .tuples
            .back()
            .map(|last| last.ts <= tuple.ts)
            .unwrap_or(true);
        if in_order {
            self.tuples.push_back(tuple);
        } else {
            // Out-of-order insertion (Alg. 2, lines 9–10): find the position
            // from the back, since late tuples are usually only a little late.
            self.stats.unordered_inserts += 1;
            let mut pos = self.tuples.len();
            while pos > 0 && self.tuples[pos - 1].ts > tuple.ts {
                pos -= 1;
            }
            self.tuples.insert(pos, tuple);
        }
        self.stats.inserted += 1;
        if self.tuples.len() > self.stats.peak_len {
            self.stats.peak_len = self.tuples.len();
        }
    }

    /// Removes every tuple with `ts < bound` (Alg. 2, line 6, where
    /// `bound = e_i.ts - W_j`).  Returns the number of expired tuples.
    pub fn expire_before(&mut self, bound: Timestamp) -> usize {
        let mut expired = 0;
        while let Some(front) = self.tuples.front() {
            if front.ts < bound {
                let t = self.tuples.pop_front().expect("front checked above");
                for (&col, index) in self.index.iter_mut() {
                    match classify(t.value(col)) {
                        KeyClass::Key(key) => bucket_remove(index, key, &t),
                        KeyClass::Unindexable => {
                            debug_assert!(index.unindexable > 0, "unindexable count underflow");
                            index.unindexable = index.unindexable.saturating_sub(1);
                        }
                        KeyClass::Inert => {}
                    }
                }
                expired += 1;
            } else {
                break;
            }
        }
        self.stats.expired += expired as u64;
        expired
    }

    /// Removes every live tuple for which `keep` returns `false`,
    /// maintaining the hash indexes and unindexable counters; returns the
    /// number of removed tuples.
    ///
    /// This is *state surgery*, not expiry: the removed tuples do not count
    /// towards [`WindowStats::expired`].  The sharded engine uses it to
    /// purge replicated hot-key build state from non-home shards when a
    /// split key reverts to plain hash routing.
    pub fn retain_where(&mut self, mut keep: impl FnMut(&Tuple) -> bool) -> usize {
        let mut removed = Vec::new();
        self.tuples.retain(|t| {
            let keep_it = keep(t);
            if !keep_it {
                removed.push(t.clone());
            }
            keep_it
        });
        for t in &removed {
            for (&col, index) in self.index.iter_mut() {
                match classify(t.value(col)) {
                    KeyClass::Key(key) => bucket_remove(index, key, t),
                    KeyClass::Unindexable => {
                        debug_assert!(index.unindexable > 0, "unindexable count underflow");
                        index.unindexable = index.unindexable.saturating_sub(1);
                    }
                    KeyClass::Inert => {}
                }
            }
        }
        removed.len()
    }

    /// Number of live tuples whose indexed column `col` is `Int(key)`.
    ///
    /// Falls back to a scan when the column is not indexed.
    pub fn count_key(&self, col: usize, key: i64) -> u64 {
        if let Some(index) = self.index.get(&col) {
            index.buckets.get(&key).map(|b| b.len()).unwrap_or(0) as u64
        } else {
            self.tuples
                .iter()
                .filter(|t| t.value(col).and_then(Value::as_int) == Some(key))
                .count() as u64
        }
    }

    /// Iterates over live tuples whose column `col` is `Int(key)`, in
    /// timestamp order — through the hash bucket when `col` is indexed, by
    /// scanning otherwise.  Both paths yield the identical tuple sequence
    /// (the property harness in `tests/index_properties.rs` pins this).
    pub fn matching<'a>(&'a self, col: usize, key: i64) -> impl Iterator<Item = &'a Tuple> + 'a {
        let (bucket, scan) = match self.index.get(&col) {
            Some(ki) => (ki.buckets.get(&key), None),
            None => (None, Some(self.tuples.iter())),
        };
        scan.into_iter()
            .flatten()
            .filter(move |t| t.value(col).and_then(Value::as_int) == Some(key))
            .chain(bucket.into_iter().flatten())
    }

    /// The hash bucket of live tuples whose column `col` is `Int(key)`;
    /// `None` when the column is not indexed or the key has no live tuples.
    pub(crate) fn bucket(&self, col: usize, key: i64) -> Option<&VecDeque<Tuple>> {
        self.index.get(&col)?.buckets.get(&key)
    }

    /// Whether `col` has a hash index.
    pub fn is_indexed(&self, col: usize) -> bool {
        self.index.contains_key(&col)
    }

    /// Number of live tuples whose value in indexed column `col` is
    /// joinable but not hashable (float, string or bool); 0 for unindexed
    /// columns.
    pub fn unindexable_count(&self, col: usize) -> u64 {
        self.index.get(&col).map(|ki| ki.unindexable).unwrap_or(0)
    }

    /// Whether the hash index on `col` is *sound* to probe: the column is
    /// indexed and every live value in it is either an integer key or inert
    /// (`Null`/missing).  When this returns `false` the operator must use
    /// the nested-loop scan for probes touching this column.
    pub fn index_usable(&self, col: usize) -> bool {
        self.index
            .get(&col)
            .map(|ki| ki.unindexable == 0)
            .unwrap_or(false)
    }

    /// Drops every hash index of this window permanently: subsequent probes
    /// scan, and inserts/expiry skip index maintenance entirely.
    ///
    /// Used by runtime re-planning when the observed indexed-vs-fallback
    /// ratio shows the index stopped paying (e.g. a persistently
    /// float-polluted key column forces the nested-loop fallback anyway,
    /// leaving the maintenance cost with no return).  The demotion is
    /// one-way for the window's lifetime — re-promotion would require a
    /// full index rebuild from live state.
    pub fn demote_index(&mut self) {
        self.index.clear();
        self.index.shrink_to_fit();
    }

    /// Removes every tuple (used when resetting an operator between runs).
    pub fn clear(&mut self) {
        self.tuples.clear();
        for index in self.index.values_mut() {
            index.buckets.clear();
            index.unindexable = 0;
        }
    }
}

/// Inserts into a bucket keeping timestamp order (ties keep insertion
/// order, mirroring [`Window::insert`]); late tuples search from the back.
fn bucket_insert(bucket: &mut VecDeque<Tuple>, tuple: Tuple) {
    let mut pos = bucket.len();
    while pos > 0 && bucket[pos - 1].ts > tuple.ts {
        pos -= 1;
    }
    if pos == bucket.len() {
        bucket.push_back(tuple);
    } else {
        bucket.insert(pos, tuple);
    }
}

/// Removes one expired tuple from its bucket.  Expired tuples carry the
/// smallest timestamps, so the scan terminates within the bucket's leading
/// equal-timestamp run; empty buckets are dropped to bound the key map.
///
/// The bucket entry is a clone of the expired tuple, so it is identified by
/// its shared value allocation (`shares_values`) — never by deep value
/// equality, which `Float(NaN)` attributes would break.
fn bucket_remove(index: &mut KeyIndex, key: i64, t: &Tuple) {
    let Some(bucket) = index.buckets.get_mut(&key) else {
        debug_assert!(false, "expired tuple missing from index bucket");
        return;
    };
    let pos = bucket
        .iter()
        .position(|b| b.ts == t.ts && b.seq == t.seq && b.shares_values(t));
    match pos {
        Some(pos) => {
            bucket.remove(pos);
            if bucket.is_empty() {
                index.buckets.remove(&key);
            }
        }
        None => debug_assert!(false, "expired tuple missing from index bucket"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_types::StreamIndex;

    fn tup(seq: u64, ts: u64, key: i64) -> Tuple {
        Tuple::new(
            StreamIndex(0),
            seq,
            Timestamp::from_millis(ts),
            vec![Value::Int(key)],
        )
    }

    #[test]
    fn insert_keeps_timestamp_order() {
        let mut w = Window::new(1_000);
        w.insert(tup(0, 100, 1));
        w.insert(tup(1, 300, 2));
        w.insert(tup(2, 200, 3)); // out of order
        let ts: Vec<u64> = w.iter().map(|t| t.ts.as_millis()).collect();
        assert_eq!(ts, vec![100, 200, 300]);
        assert_eq!(w.stats().unordered_inserts, 1);
        assert_eq!(w.min_ts(), Some(Timestamp::from_millis(100)));
        assert_eq!(w.max_ts(), Some(Timestamp::from_millis(300)));
    }

    #[test]
    fn expiration_removes_only_old_tuples() {
        let mut w = Window::new(500);
        for (i, ts) in [100u64, 200, 300, 400].iter().enumerate() {
            w.insert(tup(i as u64, *ts, 1));
        }
        let removed = w.expire_before(Timestamp::from_millis(250));
        assert_eq!(removed, 2);
        assert_eq!(w.len(), 2);
        assert_eq!(w.min_ts(), Some(Timestamp::from_millis(300)));
        assert_eq!(w.stats().expired, 2);
        // Expiring with an older bound is a no-op.
        assert_eq!(w.expire_before(Timestamp::from_millis(100)), 0);
    }

    #[test]
    fn expiration_bound_is_exclusive() {
        // Tuples with ts == bound stay: the paper removes ts < ei.ts - Wj.
        let mut w = Window::new(500);
        w.insert(tup(0, 100, 1));
        w.insert(tup(1, 200, 1));
        assert_eq!(w.expire_before(Timestamp::from_millis(200)), 1);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn key_index_tracks_inserts_and_expirations() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        assert!(w.is_indexed(0));
        assert!(!w.is_indexed(1));
        w.insert(tup(0, 100, 7));
        w.insert(tup(1, 200, 7));
        w.insert(tup(2, 300, 9));
        assert_eq!(w.count_key(0, 7), 2);
        assert_eq!(w.count_key(0, 9), 1);
        assert_eq!(w.count_key(0, 5), 0);
        w.expire_before(Timestamp::from_millis(250));
        assert_eq!(w.count_key(0, 7), 0);
        assert_eq!(w.count_key(0, 9), 1);
    }

    #[test]
    fn count_key_without_index_scans() {
        let mut w = Window::new(1_000);
        w.insert(tup(0, 100, 4));
        w.insert(tup(1, 200, 4));
        assert_eq!(w.count_key(0, 4), 2);
        assert_eq!(w.count_key(0, 1), 0);
    }

    #[test]
    fn matching_iterates_only_matching_tuples() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        w.insert(tup(0, 100, 4));
        w.insert(tup(1, 150, 5));
        w.insert(tup(2, 200, 4));
        let seqs: Vec<u64> = w.matching(0, 4).map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 2]);
        // Unindexed columns scan and yield the same answer.
        let mut scan = Window::new(1_000);
        scan.insert(tup(0, 100, 4));
        scan.insert(tup(1, 150, 5));
        scan.insert(tup(2, 200, 4));
        let seqs: Vec<u64> = scan.matching(0, 4).map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 2]);
    }

    #[test]
    fn buckets_mirror_out_of_order_inserts() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        w.insert(tup(0, 300, 4));
        w.insert(tup(1, 100, 4)); // late
        w.insert(tup(2, 200, 4)); // late
        let seqs: Vec<u64> = w.matching(0, 4).map(|t| t.seq).collect();
        assert_eq!(seqs, vec![1, 2, 0], "bucket must stay timestamp-ordered");
        // Expiring the two oldest removes exactly them from the bucket.
        assert_eq!(w.expire_before(Timestamp::from_millis(250)), 2);
        let seqs: Vec<u64> = w.matching(0, 4).map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0]);
    }

    #[test]
    fn retain_where_maintains_indexes_and_unindexable_counts() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        w.insert(tup(0, 100, 7));
        w.insert(tup(1, 200, 9));
        w.insert(tup(2, 300, 7));
        w.insert(Tuple::new(
            StreamIndex(0),
            3,
            Timestamp::from_millis(400),
            vec![Value::Float(7.5)],
        ));
        assert!(!w.index_usable(0));
        // Surgically remove key 7 and the float: middle-of-window removal,
        // not front expiry.
        let removed = w.retain_where(|t| t.value(0) == Some(&Value::Int(9)));
        assert_eq!(removed, 3);
        assert_eq!(w.len(), 1);
        assert_eq!(w.count_key(0, 7), 0);
        assert_eq!(w.count_key(0, 9), 1);
        assert_eq!(w.unindexable_count(0), 0);
        assert!(w.index_usable(0), "removing the float re-arms the index");
        assert_eq!(w.stats().expired, 0, "surgery is not expiry");
        // Removing nothing is a no-op.
        assert_eq!(w.retain_where(|_| true), 0);
    }

    #[test]
    fn peak_len_and_clear() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        for i in 0..5 {
            w.insert(tup(i, 100 * (i + 1), 1));
        }
        assert_eq!(w.stats().peak_len, 5);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.count_key(0, 1), 0);
        assert!(w.index_usable(0));
        // Peak is a lifetime statistic and survives clear().
        assert_eq!(w.stats().peak_len, 5);
    }

    #[test]
    fn unindexable_values_disable_the_index_while_live() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        w.insert(tup(0, 100, 2));
        assert!(w.index_usable(0));
        w.insert(Tuple::new(
            StreamIndex(0),
            1,
            Timestamp::from_millis(200),
            vec![Value::Float(2.5)],
        ));
        assert_eq!(w.unindexable_count(0), 1);
        assert!(!w.index_usable(0), "a live float must disable the index");
        assert_eq!(w.count_key(0, 2), 1, "the integer tuple stays bucketed");
        // Expiring the float restores soundness without touching buckets.
        w.expire_before(Timestamp::from_millis(300));
        assert!(w.is_empty());
        assert_eq!(w.unindexable_count(0), 0);
        assert!(w.index_usable(0));
    }

    #[test]
    fn null_and_missing_values_stay_inert() {
        let mut w = Window::with_indexed_columns(1_000, &[1]);
        // Column 1 missing entirely, and explicitly Null: neither can ever
        // satisfy join_eq, so the index stays sound.
        w.insert(Tuple::new(
            StreamIndex(0),
            0,
            Timestamp::from_millis(10),
            vec![Value::Int(1)],
        ));
        w.insert(Tuple::new(
            StreamIndex(0),
            1,
            Timestamp::from_millis(20),
            vec![Value::Int(1), Value::Null],
        ));
        assert_eq!(w.unindexable_count(1), 0);
        assert!(w.index_usable(1));
        assert_eq!(w.count_key(1, 0), 0);
        w.expire_before(Timestamp::from_millis(100));
        assert!(w.is_empty());
        assert!(w.index_usable(1));
    }

    #[test]
    fn nan_attributes_do_not_break_bucket_expiration() {
        // Regression: bucket entries are identified by their shared value
        // allocation, not deep equality — a Float(NaN) payload attribute
        // (NaN != NaN) must not leave a stale clone behind at expiration.
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        w.insert(Tuple::new(
            StreamIndex(0),
            0,
            Timestamp::from_millis(100),
            vec![Value::Int(7), Value::Float(f64::NAN)],
        ));
        assert_eq!(w.count_key(0, 7), 1);
        assert_eq!(w.expire_before(Timestamp::from_millis(200)), 1);
        assert!(w.is_empty());
        assert_eq!(w.count_key(0, 7), 0, "no phantom tuple may survive");
        assert_eq!(w.matching(0, 7).count(), 0);
    }

    #[test]
    fn demote_index_turns_the_window_into_a_scan() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        w.insert(tup(0, 100, 7));
        w.insert(tup(1, 200, 7));
        assert!(w.is_indexed(0) && w.index_usable(0));
        w.demote_index();
        assert!(!w.is_indexed(0), "demotion drops the index");
        assert!(!w.index_usable(0), "probes must fall back to the scan");
        assert_eq!(w.count_key(0, 7), 2, "counting now scans, same answer");
        // Maintenance paths are inert after demotion.
        w.insert(tup(2, 300, 7));
        assert_eq!(w.expire_before(Timestamp::from_millis(250)), 2);
        assert_eq!(w.count_key(0, 7), 1);
        assert_eq!(w.retain_where(|_| false), 1);
    }

    #[test]
    fn unindexed_column_is_never_usable() {
        let w = Window::new(1_000);
        assert!(!w.index_usable(0));
        assert_eq!(w.unindexable_count(0), 0);
    }
}

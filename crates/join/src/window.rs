//! Time-based sliding windows over one input stream, stored as
//! timestamp-ordered columnar segments.
//!
//! Each input stream `S_i` of an MSWJ carries a user-specified, time-based
//! sliding window of `W_i` milliseconds (Sec. II-A).  The window holds the
//! tuples whose timestamps are still within scope, supports expiration
//! driven by the timestamp of a newly processed tuple (Alg. 2, line 6) and
//! maintains, per indexed column, a **value→row hash index**.
//!
//! ## Segmented storage
//!
//! Live state is a deque of `Segment`s covering disjoint, ascending
//! timestamp ranges.  A segment owns a row arena (`rows`), the
//! timestamp-ordered ids of its live rows (`order`), and — per indexed
//! column — a posting map (`key → live row ids`) plus a `ColZone` summary
//! (numeric min/max of the column's values and live counts of the value
//! classes a hash bucket cannot represent).  The back segment is the
//! mutable *tail*: it absorbs in-order appends and slightly-late
//! out-of-order inserts, and seals once its arena reaches the segment
//! capacity.  Older segments only ever *lose* rows.
//!
//! The layout buys three things:
//!
//! * **Segment-drop expiry.**  `expire_before` drops whole leading segments
//!   whose maximum live timestamp is out of scope — O(distinct keys) per
//!   segment instead of a per-tuple bucket scan — and walks rows only in
//!   the single boundary segment, where the posting fronts align with the
//!   expiry order and pop in O(1).  Dropped segments park their buffers in
//!   a one-slot spare so steady-state seal/drop cycles do not allocate.
//! * **Zone-map pruning.**  Fallback scans ([`Window::scan_candidates`])
//!   skip whole segments whose zone map proves no live row can satisfy
//!   `join_eq` against the probe key — see *Pruning soundness* below.
//! * **Single-copy state.**  Postings hold row ids, not tuple clones, so
//!   indexed window state exists exactly once ([`Tuple::payload_refs`]
//!   observes this).
//!
//! ## Index soundness
//!
//! Postings are keyed by `i64`, so only [`Value::Int`] attributes are
//! hashable.  [`Value::join_eq`] additionally equates integers with floats
//! numerically (`Int(4) == Float(4.0)`), which a hash lookup cannot see —
//! so every index tracks, per column, the number of live tuples whose value
//! there is a float, string or boolean ([`Window::unindexable_count`]).
//! The probe planner consults [`Window::index_usable`] and falls back to
//! the exhaustive scan whenever that count is non-zero.  `Null` and missing
//! values never satisfy `join_eq` at all; they are simply left out of the
//! postings without compromising soundness.
//!
//! ## Pruning soundness
//!
//! `join_eq` compares numbers by their `f64` image: `Int`/`Int` equality
//! implies equal images, and mixed or float comparisons *are* image
//! equality.  Every chain of `join_eq` equalities therefore preserves the
//! image, so a segment whose zone bounds exclude the probe key's image —
//! and which holds no live strings or booleans (the only classes that join
//! outside the numeric image) — cannot contribute a row to any matching
//! combination.  Bounds only ever widen (expiry leaves them stale-wide),
//! which keeps the zone an over-approximation: pruning can only skip
//! provably barren segments, never a joinable row.

use mswj_types::{Duration, Timestamp, Tuple, Value};
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Fibonacci-multiply hasher for the `i64`-keyed index maps.
///
/// Postings and key counts are touched once or twice per tuple on the
/// insert and expiry hot paths; the default SipHash costs more than the
/// rest of the maintenance combined.  Join keys are data, not
/// attacker-chosen hash-flood inputs, so the non-keyed multiply hash is an
/// acceptable trade — the same one interning tables in production query
/// engines make.
#[derive(Default)]
struct KeyHasher {
    hash: u64,
}

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        // Golden-ratio multiply with a pre-rotation so low-entropy high
        // bits still disperse across the table index bits.
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }
}

/// An `i64`-keyed map using [`KeyHasher`].
type KeyMap<V> = HashMap<i64, V, BuildHasherDefault<KeyHasher>>;

/// Rows a tail segment's arena absorbs before it seals.
const DEFAULT_SEGMENT_CAPACITY: usize = 1024;

/// Process-wide default segment capacity; 0 until first resolved.
static SEGMENT_CAPACITY: AtomicUsize = AtomicUsize::new(0);

/// Resolves the default segment capacity: an explicit
/// [`set_default_segment_capacity`] call wins, then the
/// `MSWJ_SEGMENT_CAPACITY` environment variable, then
/// [`DEFAULT_SEGMENT_CAPACITY`].
fn default_segment_capacity() -> usize {
    let cap = SEGMENT_CAPACITY.load(Ordering::Relaxed);
    if cap != 0 {
        return cap;
    }
    let cap = std::env::var("MSWJ_SEGMENT_CAPACITY")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&c| c >= 2)
        .unwrap_or(DEFAULT_SEGMENT_CAPACITY);
    SEGMENT_CAPACITY.store(cap, Ordering::Relaxed);
    cap
}

/// Overrides the segment capacity used by every subsequently created
/// [`Window`] (process-wide).  The differential harness forces tiny
/// capacities to exercise seal/drop boundaries on ordinary workloads;
/// values below 2 are rejected because a tail must be able to hold a tuple
/// and still accept a late sibling.
pub fn set_default_segment_capacity(capacity: usize) {
    assert!(capacity >= 2, "segment capacity must be at least 2");
    SEGMENT_CAPACITY.store(capacity, Ordering::Relaxed);
}

/// Aggregate statistics about a window's lifetime behaviour, plus a
/// snapshot of its current storage shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Total number of tuples ever inserted.
    pub inserted: u64,
    /// Total number of tuples expired.
    pub expired: u64,
    /// Number of inserts that were not appended at the tail (i.e. the tuple
    /// was out of timestamp order with respect to the window content).
    pub unordered_inserts: u64,
    /// Largest number of tuples simultaneously held.
    pub peak_len: usize,
    /// Estimated heap bytes of the currently live tuples (tuple headers
    /// plus payload vectors and string bytes).  Payloads shared with other
    /// holders via `Arc` are counted in full — an upper-bound estimate.
    pub live_bytes_est: u64,
    /// Number of storage segments currently held.
    pub segments: usize,
    /// Segments no longer accepting in-order appends (all but the tail).
    pub sealed_segments: usize,
}

/// Classification of one attribute value with respect to the hash index.
///
/// The same classification drives both index maintenance (here) and the
/// operator's per-probe soundness gate — they must agree case-for-case for
/// the indexed probe to stay equivalent to the nested-loop scan.
pub(crate) enum KeyClass {
    /// Hashable integer key.
    Key(i64),
    /// `Null` or missing: can never satisfy `join_eq`, safe to omit.
    Inert,
    /// Float / string / bool: joinable but not hashable to an `i64` bucket.
    Unindexable,
}

pub(crate) fn classify(v: Option<&Value>) -> KeyClass {
    match v {
        None | Some(Value::Null) => KeyClass::Inert,
        Some(Value::Int(i)) => KeyClass::Key(*i),
        Some(_) => KeyClass::Unindexable,
    }
}

/// Estimated heap bytes of one tuple: the header, the payload vector and
/// any owned string bytes.  Shared (`Arc`) payloads are counted in full.
fn estimated_bytes(t: &Tuple) -> u64 {
    let strings: usize = t
        .values()
        .iter()
        .map(|v| match v {
            Value::Str(s) => s.len(),
            _ => 0,
        })
        .sum();
    (std::mem::size_of::<Tuple>()
        + std::mem::size_of::<Vec<Value>>()
        + std::mem::size_of_val(t.values())
        + strings) as u64
}

/// Zone summary of one indexed column within one segment.
#[derive(Debug, Clone)]
struct ColZone {
    /// Smallest `f64` image of any non-NaN numeric value ever inserted
    /// (never shrinks on expiry — a sound over-approximation).
    num_lo: f64,
    /// Largest such image.
    num_hi: f64,
    /// Live strings and booleans: values that join outside the numeric
    /// image, so any non-zero count disables numeric pruning.
    str_bool: u64,
    /// Live floats, strings and booleans: the segment's contribution to
    /// [`Window::unindexable_count`].
    unindexable: u64,
}

impl Default for ColZone {
    fn default() -> Self {
        ColZone {
            num_lo: f64::INFINITY,
            num_hi: f64::NEG_INFINITY,
            str_bool: 0,
            unindexable: 0,
        }
    }
}

impl ColZone {
    fn widen(&mut self, v: f64) {
        if v < self.num_lo {
            self.num_lo = v;
        }
        if v > self.num_hi {
            self.num_hi = v;
        }
    }
}

/// One timestamp-contiguous storage segment.
///
/// `rows` is an append-only arena; expiry removes ids from `order` and the
/// postings but leaves the arena untouched until the whole segment is
/// dropped (or rebuilt by [`Window::retain_where`]), so the hot paths never
/// shift rows.
#[derive(Debug, Clone, Default)]
struct Segment {
    /// Row arena: every tuple ever inserted here, live and expired alike.
    rows: Vec<Tuple>,
    /// Timestamp-ordered (ties insertion-ordered) ids of the live rows.
    order: VecDeque<u32>,
    /// Per indexed column (parallel to `Window::cols`):
    /// key → live row ids, in the same timestamp order as `order`.
    postings: Vec<KeyMap<VecDeque<u32>>>,
    /// Per indexed column zone summary.
    zones: Vec<ColZone>,
    /// Estimated heap bytes of the live rows.
    live_bytes: u64,
}

/// Inserts `rid` into a timestamp-ordered id deque, searching from the back
/// (late tuples are usually only a little late); ties keep insertion order.
fn ordered_insert(ids: &mut VecDeque<u32>, rows: &[Tuple], rid: u32, ts: Timestamp) {
    let mut pos = ids.len();
    while pos > 0 && rows[ids[pos - 1] as usize].ts > ts {
        pos -= 1;
    }
    if pos == ids.len() {
        ids.push_back(rid);
    } else {
        ids.insert(pos, rid);
    }
}

impl Segment {
    fn with_cols(n: usize) -> Self {
        Segment {
            rows: Vec::new(),
            order: VecDeque::new(),
            postings: vec![KeyMap::default(); n],
            zones: vec![ColZone::default(); n],
            live_bytes: 0,
        }
    }

    fn live_len(&self) -> usize {
        self.order.len()
    }

    /// Smallest live timestamp.
    fn min_ts(&self) -> Option<Timestamp> {
        self.order.front().map(|&r| self.rows[r as usize].ts)
    }

    /// Largest live timestamp.
    fn max_ts(&self) -> Option<Timestamp> {
        self.order.back().map(|&r| self.rows[r as usize].ts)
    }

    /// Live rows in timestamp order.
    fn live(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.order.iter().map(move |&r| &self.rows[r as usize])
    }

    /// Live rows of one posting, in timestamp order.
    fn posting_tuples(&self, ci: usize, key: i64) -> impl Iterator<Item = &Tuple> + '_ {
        self.postings[ci]
            .get(&key)
            .into_iter()
            .flatten()
            .map(move |&rid| &self.rows[rid as usize])
    }

    /// Appends a row to the arena, maintaining order, postings, zones and
    /// the window-level live aggregates.
    fn insert(
        &mut self,
        cols: &[usize],
        counts: &mut [KeyMap<u64>],
        unindexable: &mut [u64],
        tuple: Tuple,
    ) {
        let rid = u32::try_from(self.rows.len()).expect("segment row id overflow");
        for (ci, &col) in cols.iter().enumerate() {
            match classify(tuple.value(col)) {
                KeyClass::Key(key) => {
                    ordered_insert(
                        self.postings[ci].entry(key).or_default(),
                        &self.rows,
                        rid,
                        tuple.ts,
                    );
                    self.zones[ci].widen(key as f64);
                    *counts[ci].entry(key).or_insert(0) += 1;
                }
                KeyClass::Inert => {}
                KeyClass::Unindexable => {
                    let z = &mut self.zones[ci];
                    z.unindexable += 1;
                    unindexable[ci] += 1;
                    match tuple.value(col) {
                        Some(Value::Float(f)) => {
                            if !f.is_nan() {
                                z.widen(*f);
                            }
                        }
                        Some(Value::Str(_) | Value::Bool(_)) => z.str_bool += 1,
                        _ => debug_assert!(false, "unindexable is float, string or bool"),
                    }
                }
            }
        }
        let mut pos = self.order.len();
        while pos > 0 && self.rows[self.order[pos - 1] as usize].ts > tuple.ts {
            pos -= 1;
        }
        self.live_bytes += estimated_bytes(&tuple);
        self.rows.push(tuple);
        if pos == self.order.len() {
            self.order.push_back(rid);
        } else {
            self.order.insert(pos, rid);
        }
    }

    /// Empties the segment, retaining every buffer's capacity (the spare
    /// slot recycles segments through this).
    fn reset(&mut self) {
        self.rows.clear();
        self.order.clear();
        for m in &mut self.postings {
            m.clear();
        }
        for z in &mut self.zones {
            *z = ColZone::default();
        }
        self.live_bytes = 0;
    }

    /// Whether the zone map proves no live row's value in indexed column
    /// `ci` can reach `key` through any chain of `join_eq` equalities (see
    /// *Pruning soundness* in the module docs).
    fn zone_prunes(&self, ci: usize, key: &Value) -> bool {
        let z = &self.zones[ci];
        match key {
            Value::Int(i) => {
                let k = *i as f64;
                z.str_bool == 0 && (k < z.num_lo || k > z.num_hi)
            }
            Value::Float(f) => {
                // NaN joins nothing under join_eq (NaN != NaN).
                f.is_nan() || (z.str_bool == 0 && (*f < z.num_lo || *f > z.num_hi))
            }
            // Strings and booleans only ever join their own kind.
            Value::Str(_) | Value::Bool(_) => z.str_bool == 0,
            // A Null probe key never reaches a scan (the gates short-circuit
            // it), but stay conservative if it does.
            Value::Null => false,
        }
    }
}

/// A hash bucket resolved to per-segment arena slices: cheaply re-iterable,
/// which the indexed enumeration's cross-product walk needs — without
/// cloning a single tuple.
pub(crate) struct Bucket<'a> {
    /// `(row arena, live ids)` per segment with a non-empty posting, in
    /// segment (= timestamp) order.
    parts: Vec<(&'a [Tuple], &'a VecDeque<u32>)>,
}

impl<'a> Bucket<'a> {
    /// The bucket's live tuples in timestamp order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &'a Tuple> + '_ {
        self.parts
            .iter()
            .flat_map(|(rows, ids)| ids.iter().map(move |&rid| &rows[rid as usize]))
    }
}

/// A time-based sliding window holding the live tuples of one stream.
///
/// Tuples are kept ordered by timestamp (ties broken by insertion order)
/// across a deque of columnar segments, so that expiration drops whole
/// segments in the common case.  Optionally, integer columns can be
/// indexed; the index maintains, for each distinct value, the row ids of
/// the live tuples carrying it.
///
/// # Examples
///
/// ```
/// use mswj_join::Window;
/// use mswj_types::{Tuple, Timestamp, Value};
/// let mut w = Window::new(1_000);
/// w.insert(Tuple::new(0.into(), 0, Timestamp::from_millis(100), vec![Value::Int(7)]));
/// w.insert(Tuple::new(0.into(), 1, Timestamp::from_millis(600), vec![Value::Int(7)]));
/// assert_eq!(w.len(), 2);
/// // A tuple at t=1200 expires everything with ts < 1200 - 1000 = 200.
/// let expired = w.expire_before(Timestamp::from_millis(200));
/// assert_eq!(expired, 1);
/// assert_eq!(w.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Window {
    size: Duration,
    /// Arena rows a tail segment absorbs before sealing.
    capacity: usize,
    /// Indexed column positions (sorted, deduped); emptied permanently by
    /// [`Window::demote_index`].
    cols: Vec<usize>,
    /// Storage segments in ascending, disjoint timestamp ranges; the back
    /// one is the mutable tail.  Every present segment has live rows.
    segments: VecDeque<Segment>,
    /// Total live rows across all segments.
    len: usize,
    /// Per indexed column: live count per key across all segments — keeps
    /// [`Window::count_key`] O(1).
    counts: Vec<KeyMap<u64>>,
    /// Per indexed column: live unindexable count across all segments.
    unindexable: Vec<u64>,
    /// One recycled segment: dropped segments park their buffers here so
    /// steady-state seal/drop cycles do not allocate.
    spare: Option<Box<Segment>>,
    /// Lifetime counters (the live-shape fields stay zero here and are
    /// filled by [`Window::stats`]).
    counters: WindowStats,
}

impl Window {
    /// Creates a window of `size` milliseconds with no indexed columns.
    pub fn new(size: Duration) -> Self {
        Self::with_segment_capacity(size, &[], default_segment_capacity())
    }

    /// Creates a window that maintains value→row hash indexes on the given
    /// integer column positions.
    pub fn with_indexed_columns(size: Duration, columns: &[usize]) -> Self {
        Self::with_segment_capacity(size, columns, default_segment_capacity())
    }

    /// Creates a window with an explicit segment capacity (the number of
    /// arena rows a tail segment absorbs before sealing).  Capacities below
    /// 2 are clamped.  The storage layout is an access-path choice only:
    /// any two capacities yield identical window content.
    pub fn with_segment_capacity(size: Duration, columns: &[usize], capacity: usize) -> Self {
        let mut cols = columns.to_vec();
        cols.sort_unstable();
        cols.dedup();
        let n = cols.len();
        Window {
            size,
            capacity: capacity.max(2),
            cols,
            segments: VecDeque::new(),
            len: 0,
            counts: vec![KeyMap::default(); n],
            unindexable: vec![0; n],
            spare: None,
            counters: WindowStats::default(),
        }
    }

    /// The window size `W_i` in milliseconds.
    pub fn size(&self) -> Duration {
        self.size
    }

    /// Number of live tuples `|S_i[W_i]|`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the window holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lifetime statistics plus the current storage shape.
    pub fn stats(&self) -> WindowStats {
        WindowStats {
            live_bytes_est: self.segments.iter().map(|s| s.live_bytes).sum(),
            segments: self.segments.len(),
            sealed_segments: self.segments.len().saturating_sub(1),
            ..self.counters
        }
    }

    /// Iterates over live tuples in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.segments.iter().flat_map(Segment::live)
    }

    /// The smallest timestamp currently held, if any.
    pub fn min_ts(&self) -> Option<Timestamp> {
        self.segments.front().and_then(Segment::min_ts)
    }

    /// The largest timestamp currently held, if any.
    pub fn max_ts(&self) -> Option<Timestamp> {
        self.segments.back().and_then(Segment::max_ts)
    }

    /// A segment to start a new tail with: the spare if one is parked.
    fn fresh_segment(&mut self) -> Segment {
        match self.spare.take() {
            Some(seg) => *seg,
            None => Segment::with_cols(self.cols.len()),
        }
    }

    /// Parks a dropped segment's buffers for reuse (one-slot).
    fn recycle(&mut self, mut seg: Segment) {
        if self.spare.is_none() {
            seg.reset();
            self.spare = Some(Box::new(seg));
        }
    }

    /// The segment `ts` belongs in — the last one whose live minimum does
    /// not exceed `ts` (so a timestamp tie lands *after* every earlier
    /// sibling, preserving insertion order), clamped to the front segment
    /// for tuples older than everything.  `None` when a new tail segment
    /// must be started instead: the window is empty, or the tuple extends a
    /// full tail at (or past) its live maximum.
    fn target_segment(&self, ts: Timestamp) -> Option<usize> {
        let last = self.segments.len().checked_sub(1)?;
        let pick = self
            .segments
            .iter()
            .rposition(|seg| seg.min_ts().map(|m| m <= ts).unwrap_or(false));
        match pick {
            None => Some(0),
            Some(k) if k == last => {
                let tail = &self.segments[last];
                let extends = tail.max_ts().map(|m| ts >= m).unwrap_or(true);
                if extends && tail.rows.len() >= self.capacity {
                    None // seal: start a new tail
                } else {
                    Some(k)
                }
            }
            Some(k) => Some(k),
        }
    }

    /// Inserts a tuple, keeping the content ordered by timestamp.
    pub fn insert(&mut self, tuple: Tuple) {
        if let Some(max) = self.max_ts() {
            if tuple.ts < max {
                self.counters.unordered_inserts += 1;
            }
        }
        let target = match self.target_segment(tuple.ts) {
            Some(k) => k,
            None => {
                let seg = self.fresh_segment();
                self.segments.push_back(seg);
                self.segments.len() - 1
            }
        };
        self.segments[target].insert(&self.cols, &mut self.counts, &mut self.unindexable, tuple);
        self.len += 1;
        self.counters.inserted += 1;
        if self.len > self.counters.peak_len {
            self.counters.peak_len = self.len;
        }
    }

    /// Subtracts a whole segment's live rows from the window aggregates —
    /// O(distinct keys), the segment-drop expiry path.
    fn forget_segment(seg: &Segment, counts: &mut [KeyMap<u64>], unindexable: &mut [u64]) {
        for ci in 0..counts.len() {
            for (key, posting) in &seg.postings[ci] {
                if posting.is_empty() {
                    continue;
                }
                let now_zero = match counts[ci].get_mut(key) {
                    Some(c) => {
                        *c -= (posting.len() as u64).min(*c);
                        *c == 0
                    }
                    None => {
                        debug_assert!(false, "dropped segment key missing from counts");
                        false
                    }
                };
                if now_zero {
                    counts[ci].remove(key);
                }
            }
            unindexable[ci] = unindexable[ci].saturating_sub(seg.zones[ci].unindexable);
        }
    }

    /// Expires the boundary segment's leading rows with `ts < bound`.  The
    /// posting fronts align with the expiry order (both are timestamp plus
    /// insertion ordered), so each row pops in O(1).
    fn expire_segment_prefix(
        seg: &mut Segment,
        cols: &[usize],
        counts: &mut [KeyMap<u64>],
        unindexable: &mut [u64],
        bound: Timestamp,
    ) -> usize {
        let mut n = 0usize;
        while let Some(&rid) = seg.order.front() {
            if seg.rows[rid as usize].ts >= bound {
                break;
            }
            seg.order.pop_front();
            let t = &seg.rows[rid as usize];
            seg.live_bytes = seg.live_bytes.saturating_sub(estimated_bytes(t));
            for (ci, &col) in cols.iter().enumerate() {
                match classify(t.value(col)) {
                    KeyClass::Key(key) => {
                        let emptied = match seg.postings[ci].get_mut(&key) {
                            Some(posting) => {
                                let popped = posting.pop_front();
                                debug_assert_eq!(
                                    popped,
                                    Some(rid),
                                    "posting front must align with expiry order"
                                );
                                posting.is_empty()
                            }
                            None => {
                                debug_assert!(false, "expired tuple missing from posting");
                                false
                            }
                        };
                        if emptied {
                            seg.postings[ci].remove(&key);
                        }
                        let now_zero = match counts[ci].get_mut(&key) {
                            Some(c) => {
                                *c = c.saturating_sub(1);
                                *c == 0
                            }
                            None => {
                                debug_assert!(false, "expired key missing from counts");
                                false
                            }
                        };
                        if now_zero {
                            counts[ci].remove(&key);
                        }
                    }
                    KeyClass::Unindexable => {
                        let z = &mut seg.zones[ci];
                        debug_assert!(z.unindexable > 0, "unindexable count underflow");
                        z.unindexable = z.unindexable.saturating_sub(1);
                        unindexable[ci] = unindexable[ci].saturating_sub(1);
                        if matches!(t.value(col), Some(Value::Str(_) | Value::Bool(_))) {
                            z.str_bool = z.str_bool.saturating_sub(1);
                        }
                    }
                    KeyClass::Inert => {}
                }
            }
            n += 1;
        }
        n
    }

    /// Removes every tuple with `ts < bound` (Alg. 2, line 6, where
    /// `bound = e_i.ts - W_j`).  Returns the number of expired tuples.
    ///
    /// Expired rows form a prefix of the global timestamp order, so whole
    /// leading segments drop in O(distinct keys) each; only the single
    /// boundary segment is walked row by row.
    pub fn expire_before(&mut self, bound: Timestamp) -> usize {
        let mut expired = 0usize;
        while let Some(front) = self.segments.front() {
            match front.max_ts() {
                Some(max) if max < bound => {
                    let seg = self.segments.pop_front().expect("front checked above");
                    expired += seg.live_len();
                    Self::forget_segment(&seg, &mut self.counts, &mut self.unindexable);
                    self.recycle(seg);
                }
                Some(_) => {
                    let seg = self.segments.front_mut().expect("front checked above");
                    expired += Self::expire_segment_prefix(
                        seg,
                        &self.cols,
                        &mut self.counts,
                        &mut self.unindexable,
                        bound,
                    );
                    break;
                }
                None => {
                    debug_assert!(false, "windows never hold empty segments");
                    let seg = self.segments.pop_front().expect("front checked above");
                    self.recycle(seg);
                }
            }
        }
        self.len -= expired;
        self.counters.expired += expired as u64;
        expired
    }

    /// Removes every live tuple for which `keep` returns `false`,
    /// maintaining the indexes, zones and unindexable counters; returns the
    /// number of removed tuples.
    ///
    /// This is *state surgery*, not expiry: the removed tuples do not count
    /// towards [`WindowStats::expired`].  The sharded engine uses it at
    /// barriers to purge replicated hot-key build state from non-home
    /// shards when a split key reverts to plain hash routing — rare enough
    /// that affected segments are simply rebuilt in place.
    pub fn retain_where(&mut self, mut keep: impl FnMut(&Tuple) -> bool) -> usize {
        let mut removed = 0usize;
        let mut survivors: Vec<Tuple> = Vec::new();
        for si in 0..self.segments.len() {
            // `keep` may be stateful: call it exactly once per live row, in
            // global timestamp order (segments are visited front to back).
            let seg = &self.segments[si];
            let mut any_removed = false;
            let decisions: Vec<bool> = seg
                .order
                .iter()
                .map(|&rid| {
                    let k = keep(&seg.rows[rid as usize]);
                    any_removed |= !k;
                    k
                })
                .collect();
            if !any_removed {
                continue;
            }
            survivors.clear();
            survivors.extend(
                seg.order
                    .iter()
                    .zip(&decisions)
                    .filter(|(_, &k)| k)
                    .map(|(&rid, _)| seg.rows[rid as usize].clone()),
            );
            removed += decisions.len() - survivors.len();
            Self::forget_segment(&self.segments[si], &mut self.counts, &mut self.unindexable);
            let seg = &mut self.segments[si];
            seg.reset();
            for t in survivors.drain(..) {
                seg.insert(&self.cols, &mut self.counts, &mut self.unindexable, t);
            }
        }
        while let Some(pos) = self.segments.iter().position(|s| s.live_len() == 0) {
            let seg = self.segments.remove(pos).expect("position checked above");
            self.recycle(seg);
        }
        self.len -= removed;
        removed
    }

    /// Position of `col` in the indexed-column set.
    fn col_pos(&self, col: usize) -> Option<usize> {
        self.cols.iter().position(|&c| c == col)
    }

    /// Number of live tuples whose indexed column `col` is `Int(key)`.
    ///
    /// Falls back to a scan when the column is not indexed.
    pub fn count_key(&self, col: usize, key: i64) -> u64 {
        match self.col_pos(col) {
            Some(ci) => self.counts[ci].get(&key).copied().unwrap_or(0),
            None => self
                .iter()
                .filter(|t| t.value(col).and_then(Value::as_int) == Some(key))
                .count() as u64,
        }
    }

    /// The posting chain of live tuples whose column `ci` (an indexed-set
    /// position) is `Int(key)`, across segments in timestamp order.
    fn bucket_chain(&self, ci: usize, key: i64) -> impl Iterator<Item = &Tuple> + '_ {
        self.segments
            .iter()
            .flat_map(move |seg| seg.posting_tuples(ci, key))
    }

    /// Iterates over live tuples whose column `col` is `Int(key)`, in
    /// timestamp order — through the postings when `col` is indexed, by
    /// scanning otherwise.  Both paths yield the identical tuple sequence
    /// (the property harness in `tests/index_properties.rs` pins this).
    pub fn matching<'a>(&'a self, col: usize, key: i64) -> impl Iterator<Item = &'a Tuple> + 'a {
        let (indexed, scan) = match self.col_pos(col) {
            Some(ci) => (Some(ci), None),
            None => (None, Some(self.iter())),
        };
        scan.into_iter()
            .flatten()
            .filter(move |t| t.value(col).and_then(Value::as_int) == Some(key))
            .chain(
                indexed
                    .into_iter()
                    .flat_map(move |ci| self.bucket_chain(ci, key)),
            )
    }

    /// Single-pass, allocation-free walk of the live tuples whose indexed
    /// column `col` is `Int(key)`; empty when the column is not indexed.
    pub(crate) fn bucket_iter(&self, col: usize, key: i64) -> impl Iterator<Item = &Tuple> + '_ {
        self.col_pos(col)
            .into_iter()
            .flat_map(move |ci| self.bucket_chain(ci, key))
    }

    /// The hash bucket of live tuples whose column `col` is `Int(key)`,
    /// resolved to re-iterable per-segment slices; `None` when the column
    /// is not indexed or the key has no live tuples.
    pub(crate) fn bucket(&self, col: usize, key: i64) -> Option<Bucket<'_>> {
        let ci = self.col_pos(col)?;
        let mut parts = Vec::new();
        for seg in &self.segments {
            if let Some(posting) = seg.postings[ci].get(&key) {
                if !posting.is_empty() {
                    parts.push((seg.rows.as_slice(), posting));
                }
            }
        }
        if parts.is_empty() {
            None
        } else {
            Some(Bucket { parts })
        }
    }

    /// Live tuples in timestamp order, skipping segments whose zone map
    /// proves them barren for the prune spec `(column, probe key)` — the
    /// fallback-scan access path.  `None` (or an unindexed column) scans
    /// everything.
    pub(crate) fn iter_pruned<'a>(
        &'a self,
        prune: Option<(usize, &'a Value)>,
    ) -> impl Iterator<Item = &'a Tuple> + 'a {
        let spec = prune.and_then(|(col, key)| self.col_pos(col).map(|ci| (ci, key)));
        self.segments
            .iter()
            .filter(move |seg| spec.is_none_or(|(ci, key)| !seg.zone_prunes(ci, key)))
            .flat_map(Segment::live)
    }

    /// Live tuples that could satisfy `join_eq` between their value in
    /// indexed column `col` and `key` — directly or through a chain of
    /// `join_eq` equalities — in timestamp order.
    ///
    /// An over-approximation driven by the per-segment zone maps: segments
    /// whose summaries prove them barren are skipped wholesale, every other
    /// segment is yielded in full, so the caller must still evaluate the
    /// join condition per tuple.  No joinable tuple is ever skipped.  For
    /// unindexed (or demoted) columns this degrades to a full scan.
    pub fn scan_candidates<'a>(
        &'a self,
        col: usize,
        key: &'a Value,
    ) -> impl Iterator<Item = &'a Tuple> + 'a {
        self.iter_pruned(Some((col, key)))
    }

    /// Whether `col` has a hash index.
    pub fn is_indexed(&self, col: usize) -> bool {
        self.col_pos(col).is_some()
    }

    /// Number of live tuples whose value in indexed column `col` is
    /// joinable but not hashable (float, string or bool); 0 for unindexed
    /// columns.
    pub fn unindexable_count(&self, col: usize) -> u64 {
        self.col_pos(col)
            .map(|ci| self.unindexable[ci])
            .unwrap_or(0)
    }

    /// Whether the hash index on `col` is *sound* to probe: the column is
    /// indexed and every live value in it is either an integer key or inert
    /// (`Null`/missing).  When this returns `false` the operator must use
    /// the nested-loop scan for probes touching this column.
    pub fn index_usable(&self, col: usize) -> bool {
        self.col_pos(col)
            .map(|ci| self.unindexable[ci] == 0)
            .unwrap_or(false)
    }

    /// Drops every hash index (and zone map) of this window permanently:
    /// subsequent probes scan, and inserts/expiry skip index maintenance
    /// entirely.
    ///
    /// Used by runtime re-planning when the observed indexed-vs-fallback
    /// ratio shows the index stopped paying (e.g. a persistently
    /// float-polluted key column forces the nested-loop fallback anyway,
    /// leaving the maintenance cost with no return).  The demotion is
    /// one-way for the window's lifetime — re-promotion would require a
    /// full index rebuild from live state.
    pub fn demote_index(&mut self) {
        self.cols = Vec::new();
        self.counts = Vec::new();
        self.unindexable = Vec::new();
        self.spare = None;
        for seg in &mut self.segments {
            seg.postings = Vec::new();
            seg.zones = Vec::new();
        }
    }

    /// Removes every tuple (used when resetting an operator between runs).
    pub fn clear(&mut self) {
        if let Some(seg) = self.segments.pop_front() {
            self.recycle(seg);
        }
        self.segments.clear();
        self.len = 0;
        for m in &mut self.counts {
            m.clear();
        }
        for u in &mut self.unindexable {
            *u = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_types::StreamIndex;

    fn tup(seq: u64, ts: u64, key: i64) -> Tuple {
        Tuple::new(
            StreamIndex(0),
            seq,
            Timestamp::from_millis(ts),
            vec![Value::Int(key)],
        )
    }

    #[test]
    fn insert_keeps_timestamp_order() {
        let mut w = Window::new(1_000);
        w.insert(tup(0, 100, 1));
        w.insert(tup(1, 300, 2));
        w.insert(tup(2, 200, 3)); // out of order
        let ts: Vec<u64> = w.iter().map(|t| t.ts.as_millis()).collect();
        assert_eq!(ts, vec![100, 200, 300]);
        assert_eq!(w.stats().unordered_inserts, 1);
        assert_eq!(w.min_ts(), Some(Timestamp::from_millis(100)));
        assert_eq!(w.max_ts(), Some(Timestamp::from_millis(300)));
    }

    #[test]
    fn expiration_removes_only_old_tuples() {
        let mut w = Window::new(500);
        for (i, ts) in [100u64, 200, 300, 400].iter().enumerate() {
            w.insert(tup(i as u64, *ts, 1));
        }
        let removed = w.expire_before(Timestamp::from_millis(250));
        assert_eq!(removed, 2);
        assert_eq!(w.len(), 2);
        assert_eq!(w.min_ts(), Some(Timestamp::from_millis(300)));
        assert_eq!(w.stats().expired, 2);
        // Expiring with an older bound is a no-op.
        assert_eq!(w.expire_before(Timestamp::from_millis(100)), 0);
    }

    #[test]
    fn expiration_bound_is_exclusive() {
        // Tuples with ts == bound stay: the paper removes ts < ei.ts - Wj.
        let mut w = Window::new(500);
        w.insert(tup(0, 100, 1));
        w.insert(tup(1, 200, 1));
        assert_eq!(w.expire_before(Timestamp::from_millis(200)), 1);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn key_index_tracks_inserts_and_expirations() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        assert!(w.is_indexed(0));
        assert!(!w.is_indexed(1));
        w.insert(tup(0, 100, 7));
        w.insert(tup(1, 200, 7));
        w.insert(tup(2, 300, 9));
        assert_eq!(w.count_key(0, 7), 2);
        assert_eq!(w.count_key(0, 9), 1);
        assert_eq!(w.count_key(0, 5), 0);
        w.expire_before(Timestamp::from_millis(250));
        assert_eq!(w.count_key(0, 7), 0);
        assert_eq!(w.count_key(0, 9), 1);
    }

    #[test]
    fn count_key_without_index_scans() {
        let mut w = Window::new(1_000);
        w.insert(tup(0, 100, 4));
        w.insert(tup(1, 200, 4));
        assert_eq!(w.count_key(0, 4), 2);
        assert_eq!(w.count_key(0, 1), 0);
    }

    #[test]
    fn matching_iterates_only_matching_tuples() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        w.insert(tup(0, 100, 4));
        w.insert(tup(1, 150, 5));
        w.insert(tup(2, 200, 4));
        let seqs: Vec<u64> = w.matching(0, 4).map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 2]);
        // Unindexed columns scan and yield the same answer.
        let mut scan = Window::new(1_000);
        scan.insert(tup(0, 100, 4));
        scan.insert(tup(1, 150, 5));
        scan.insert(tup(2, 200, 4));
        let seqs: Vec<u64> = scan.matching(0, 4).map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 2]);
    }

    #[test]
    fn buckets_mirror_out_of_order_inserts() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        w.insert(tup(0, 300, 4));
        w.insert(tup(1, 100, 4)); // late
        w.insert(tup(2, 200, 4)); // late
        let seqs: Vec<u64> = w.matching(0, 4).map(|t| t.seq).collect();
        assert_eq!(seqs, vec![1, 2, 0], "bucket must stay timestamp-ordered");
        // Expiring the two oldest removes exactly them from the bucket.
        assert_eq!(w.expire_before(Timestamp::from_millis(250)), 2);
        let seqs: Vec<u64> = w.matching(0, 4).map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0]);
    }

    #[test]
    fn retain_where_maintains_indexes_and_unindexable_counts() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        w.insert(tup(0, 100, 7));
        w.insert(tup(1, 200, 9));
        w.insert(tup(2, 300, 7));
        w.insert(Tuple::new(
            StreamIndex(0),
            3,
            Timestamp::from_millis(400),
            vec![Value::Float(7.5)],
        ));
        assert!(!w.index_usable(0));
        // Surgically remove key 7 and the float: middle-of-window removal,
        // not front expiry.
        let removed = w.retain_where(|t| t.value(0) == Some(&Value::Int(9)));
        assert_eq!(removed, 3);
        assert_eq!(w.len(), 1);
        assert_eq!(w.count_key(0, 7), 0);
        assert_eq!(w.count_key(0, 9), 1);
        assert_eq!(w.unindexable_count(0), 0);
        assert!(w.index_usable(0), "removing the float re-arms the index");
        assert_eq!(w.stats().expired, 0, "surgery is not expiry");
        // Removing nothing is a no-op.
        assert_eq!(w.retain_where(|_| true), 0);
    }

    #[test]
    fn peak_len_and_clear() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        for i in 0..5 {
            w.insert(tup(i, 100 * (i + 1), 1));
        }
        assert_eq!(w.stats().peak_len, 5);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.count_key(0, 1), 0);
        assert!(w.index_usable(0));
        // Peak is a lifetime statistic and survives clear().
        assert_eq!(w.stats().peak_len, 5);
        assert_eq!(w.stats().live_bytes_est, 0);
    }

    #[test]
    fn unindexable_values_disable_the_index_while_live() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        w.insert(tup(0, 100, 2));
        assert!(w.index_usable(0));
        w.insert(Tuple::new(
            StreamIndex(0),
            1,
            Timestamp::from_millis(200),
            vec![Value::Float(2.5)],
        ));
        assert_eq!(w.unindexable_count(0), 1);
        assert!(!w.index_usable(0), "a live float must disable the index");
        assert_eq!(w.count_key(0, 2), 1, "the integer tuple stays bucketed");
        // Expiring the float restores soundness without touching buckets.
        w.expire_before(Timestamp::from_millis(300));
        assert!(w.is_empty());
        assert_eq!(w.unindexable_count(0), 0);
        assert!(w.index_usable(0));
    }

    #[test]
    fn null_and_missing_values_stay_inert() {
        let mut w = Window::with_indexed_columns(1_000, &[1]);
        // Column 1 missing entirely, and explicitly Null: neither can ever
        // satisfy join_eq, so the index stays sound.
        w.insert(Tuple::new(
            StreamIndex(0),
            0,
            Timestamp::from_millis(10),
            vec![Value::Int(1)],
        ));
        w.insert(Tuple::new(
            StreamIndex(0),
            1,
            Timestamp::from_millis(20),
            vec![Value::Int(1), Value::Null],
        ));
        assert_eq!(w.unindexable_count(1), 0);
        assert!(w.index_usable(1));
        assert_eq!(w.count_key(1, 0), 0);
        w.expire_before(Timestamp::from_millis(100));
        assert!(w.is_empty());
        assert!(w.index_usable(1));
    }

    #[test]
    fn nan_attributes_do_not_break_bucket_expiration() {
        // Regression: a Float(NaN) payload attribute (NaN != NaN) must not
        // leave a phantom index entry behind at expiration.
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        w.insert(Tuple::new(
            StreamIndex(0),
            0,
            Timestamp::from_millis(100),
            vec![Value::Int(7), Value::Float(f64::NAN)],
        ));
        assert_eq!(w.count_key(0, 7), 1);
        assert_eq!(w.expire_before(Timestamp::from_millis(200)), 1);
        assert!(w.is_empty());
        assert_eq!(w.count_key(0, 7), 0, "no phantom tuple may survive");
        assert_eq!(w.matching(0, 7).count(), 0);
    }

    #[test]
    fn demote_index_turns_the_window_into_a_scan() {
        let mut w = Window::with_indexed_columns(1_000, &[0]);
        w.insert(tup(0, 100, 7));
        w.insert(tup(1, 200, 7));
        assert!(w.is_indexed(0) && w.index_usable(0));
        w.demote_index();
        assert!(!w.is_indexed(0), "demotion drops the index");
        assert!(!w.index_usable(0), "probes must fall back to the scan");
        assert_eq!(w.count_key(0, 7), 2, "counting now scans, same answer");
        // Maintenance paths are inert after demotion.
        w.insert(tup(2, 300, 7));
        assert_eq!(w.expire_before(Timestamp::from_millis(250)), 2);
        assert_eq!(w.count_key(0, 7), 1);
        assert_eq!(w.retain_where(|_| false), 1);
    }

    #[test]
    fn unindexed_column_is_never_usable() {
        let w = Window::new(1_000);
        assert!(!w.index_usable(0));
        assert_eq!(w.unindexable_count(0), 0);
    }

    // ------------------------------------------------------------------
    // Segmented-storage specifics
    // ------------------------------------------------------------------

    #[test]
    fn tail_seals_at_capacity_and_whole_segments_drop() {
        let mut w = Window::with_segment_capacity(1_000, &[0], 4);
        for i in 0..10u64 {
            w.insert(tup(i, 100 * (i + 1), (i % 3) as i64));
        }
        let s = w.stats();
        assert_eq!(s.segments, 3, "10 rows at capacity 4 span 3 segments");
        assert_eq!(s.sealed_segments, 2);
        assert!(s.live_bytes_est > 0);
        // Expiring past the first two segments drops them wholesale.
        let removed = w.expire_before(Timestamp::from_millis(850));
        assert_eq!(removed, 8);
        assert_eq!(w.stats().segments, 1);
        let ts: Vec<u64> = w.iter().map(|t| t.ts.as_millis()).collect();
        assert_eq!(ts, vec![900, 1_000]);
        for key in 0..3 {
            let via_index = w.count_key(0, key);
            let via_scan = w
                .iter()
                .filter(|t| t.value(0) == Some(&Value::Int(key)))
                .count() as u64;
            assert_eq!(via_index, via_scan, "counts survive segment drops");
        }
    }

    #[test]
    fn capacity_is_an_access_path_choice_only() {
        // Identical content and index answers for capacities 2 and 1024,
        // under out-of-order inserts, expiry and surgery.
        let mut tiny = Window::with_segment_capacity(10_000, &[0], 2);
        let mut big = Window::with_segment_capacity(10_000, &[0], 1024);
        let script: &[(u64, u64, i64)] = &[
            (0, 500, 1),
            (1, 100, 2),
            (2, 700, 1),
            (3, 300, 3),
            (4, 700, 2),
            (5, 650, 1),
            (6, 900, 3),
            (7, 200, 1),
        ];
        for &(seq, ts, key) in script {
            tiny.insert(tup(seq, ts, key));
            big.insert(tup(seq, ts, key));
        }
        assert_eq!(tiny.expire_before(Timestamp::from_millis(310)), 3);
        assert_eq!(big.expire_before(Timestamp::from_millis(310)), 3);
        assert_eq!(tiny.retain_where(|t| t.seq != 4), 1);
        assert_eq!(big.retain_where(|t| t.seq != 4), 1);
        let seq = |w: &Window| w.iter().map(|t| t.seq).collect::<Vec<_>>();
        assert_eq!(seq(&tiny), seq(&big));
        assert_eq!(tiny.len(), big.len());
        for key in 0..4 {
            assert_eq!(tiny.count_key(0, key), big.count_key(0, key));
            let a: Vec<u64> = tiny.matching(0, key).map(|t| t.seq).collect();
            let b: Vec<u64> = big.matching(0, key).map(|t| t.seq).collect();
            assert_eq!(a, b);
        }
        assert_eq!(tiny.min_ts(), big.min_ts());
        assert_eq!(tiny.max_ts(), big.max_ts());
        assert!(tiny.stats().segments > big.stats().segments);
    }

    #[test]
    fn indexed_window_stores_each_tuple_exactly_once() {
        // Memory regression: the old index cloned every tuple into its
        // bucket, so indexed windows held the payload twice.  Postings hold
        // row ids now — each live tuple's payload allocation must be
        // referenced exactly twice: our clone here and the window's row.
        let mut w = Window::with_segment_capacity(100_000, &[0], 4);
        let mine: Vec<Tuple> = (0..20).map(|i| tup(i, 100 * (i + 1), 7)).collect();
        for t in &mine {
            w.insert(t.clone());
        }
        assert_eq!(w.count_key(0, 7), 20, "everything sits in one bucket");
        for t in &mine {
            assert_eq!(
                t.payload_refs(),
                2,
                "a live tuple must be stored exactly once"
            );
        }
        // Dropping whole segments releases the rows' references.
        w.expire_before(Timestamp::from_millis(100 * 20 + 1));
        assert!(w.is_empty());
        // The one recycled spare segment is reset, so nothing lingers.
        for t in &mine {
            assert_eq!(t.payload_refs(), 1, "expiry must release the payload");
        }
    }

    #[test]
    fn scan_candidates_skips_barren_segments_but_never_matches() {
        let mut w = Window::with_segment_capacity(100_000, &[0], 4);
        // Time-correlated keys: each sealed segment covers a narrow range.
        for i in 0..40u64 {
            w.insert(tup(i, 10 * (i + 1), i as i64));
        }
        // A float probe key inside one segment's range.
        let key = Value::Float(17.0);
        let got: Vec<i64> = w
            .scan_candidates(0, &key)
            .filter(|t| t.value(0).map(|v| v.join_eq(&key)).unwrap_or(false))
            .map(|t| t.seq as i64)
            .collect();
        assert_eq!(got, vec![17], "pruning must never lose a joinable tuple");
        let candidates = w.scan_candidates(0, &key).count();
        assert!(
            candidates <= 4,
            "zone maps must confine the scan to one segment, saw {candidates}"
        );
        // String and boolean probe keys prune pure-integer segments
        // entirely; NaN prunes everything.
        assert_eq!(w.scan_candidates(0, &Value::Str("x".into())).count(), 0);
        assert_eq!(w.scan_candidates(0, &Value::Float(f64::NAN)).count(), 0);
        // A live string re-opens its segment for string probes.
        w.insert(Tuple::new(
            StreamIndex(0),
            99,
            Timestamp::from_millis(500),
            vec![Value::Str("x".into())],
        ));
        assert!(w.scan_candidates(0, &Value::Str("x".into())).count() > 0);
        // Unindexed columns degrade to a full scan.
        assert_eq!(w.scan_candidates(5, &Value::Int(3)).count(), w.len());
    }

    #[test]
    fn zone_bounds_stay_sound_after_expiry_widening() {
        // Bounds never shrink on expiry: stale-wide zones may admit extra
        // candidates but must never prune a joinable one.
        let mut w = Window::with_segment_capacity(100_000, &[0], 8);
        for i in 0..8u64 {
            w.insert(tup(i, 10 * (i + 1), i as i64));
        }
        w.expire_before(Timestamp::from_millis(45)); // keys 0..4 expire
        let key = Value::Float(6.0);
        let joinable: Vec<u64> = w
            .scan_candidates(0, &key)
            .filter(|t| t.value(0).map(|v| v.join_eq(&key)).unwrap_or(false))
            .map(|t| t.seq)
            .collect();
        assert_eq!(joinable, vec![6]);
    }

    #[test]
    fn spare_segment_recycles_dropped_buffers() {
        let mut w = Window::with_segment_capacity(1_000, &[0], 4);
        for round in 0..5u64 {
            for i in 0..4u64 {
                let seq = round * 4 + i;
                w.insert(tup(seq, 100 * (seq + 1), 1));
            }
            // Expire everything inserted so far; the dropped segment's
            // buffers come back for the next round's tail.
            w.expire_before(Timestamp::from_millis(100 * ((round + 1) * 4) + 1));
            assert!(w.is_empty());
        }
        assert_eq!(w.stats().expired, 20);
        assert_eq!(w.stats().segments, 0);
    }
}

//! Probe access paths: the per-probe soundness gates, index-assisted
//! counting, indexed enumeration and the exhaustive nested-loop reference
//! scan.
//!
//! Everything here is *read-only* over the windows: a probe never mutates
//! operator state (expiry and insertion live in
//! [`insert`](super::insert)).  The two entry points —
//! `probe_count` and `probe_enumerate` — choose between the hash-indexed
//! bucket walks and the nested-loop scan per probing tuple, according to
//! the plan and the dynamic soundness gates documented in
//! [`planner`](crate::planner).

use super::MswjOperator;
use crate::result::JoinResult;
use crate::window::{classify, Bucket, KeyClass};
use mswj_types::{Tuple, Value};

/// Per-probe decision of the indexed access path.
enum Gate {
    /// Hash lookups are provably equivalent to the scan for this probe.
    /// Carries the probe's own bucket key (0 for anchor probes, which read
    /// one key per satellite from the probing tuple instead).
    Engage(i64),
    /// The probing tuple's key is `Null` or missing: no combination can
    /// satisfy the equi-join, so the probe derives zero results without
    /// touching any window.
    Barren,
    /// Equivalence cannot be guaranteed (non-integer key values in play):
    /// the probe must use the exhaustive nested-loop scan.
    Fallback,
}

/// The two column maps of a star plan, bundled to keep signatures short.
struct StarCols<'a> {
    anchor_cols: &'a [usize],
    other_cols: &'a [usize],
}

use crate::planner::ProbePlan;

impl MswjOperator {
    /// Product of the other windows' cardinalities: the cross-join size at
    /// the arrival of a probing tuple of stream `i`.
    pub(super) fn cross_size(&self, i: usize) -> u64 {
        self.windows
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, w)| w.len() as u64)
            .fold(1u64, u64::saturating_mul)
    }

    // ------------------------------------------------------------------
    // Per-probe gates: when is the indexed path provably equivalent?
    // ------------------------------------------------------------------

    /// Classifies the probing tuple's own key value, with the same
    /// [`KeyClass`] rules the windows use for index maintenance — the gate
    /// is only sound because the two sides agree case-for-case.
    fn classify_probe(v: Option<&Value>) -> Gate {
        match classify(v) {
            // Null/missing keys fail every join_eq comparison.
            KeyClass::Inert => Gate::Barren,
            KeyClass::Key(k) => Gate::Engage(k),
            // Floats can equal integers under join_eq's numeric coercion,
            // and strings/bools can equal their own kind in other windows —
            // neither is answerable from the i64 buckets.
            KeyClass::Unindexable => Gate::Fallback,
        }
    }

    fn common_key_gate(&self, i: usize, tuple: &Tuple, columns: &[usize]) -> Gate {
        let key = match Self::classify_probe(tuple.value(columns[i])) {
            Gate::Engage(k) => k,
            other => return other,
        };
        for (j, w) in self.windows.iter().enumerate() {
            if j != i && !w.index_usable(columns[j]) {
                return Gate::Fallback;
            }
        }
        Gate::Engage(key)
    }

    fn star_anchor_gate(&self, anchor: usize, tuple: &Tuple, cols: &StarCols<'_>) -> Gate {
        let mut fallback = false;
        for j in 0..self.windows.len() {
            if j == anchor {
                continue;
            }
            match Self::classify_probe(tuple.value(cols.anchor_cols[j])) {
                // A Null/missing pair key fails every combination outright,
                // regardless of any soundness concern elsewhere.
                Gate::Barren => return Gate::Barren,
                Gate::Fallback => fallback = true,
                Gate::Engage(_) => {}
            }
            if !self.windows[j].index_usable(cols.other_cols[j]) {
                fallback = true;
            }
        }
        if fallback {
            Gate::Fallback
        } else {
            Gate::Engage(0)
        }
    }

    fn star_satellite_gate(
        &self,
        i: usize,
        anchor: usize,
        tuple: &Tuple,
        cols: &StarCols<'_>,
    ) -> Gate {
        let key = match Self::classify_probe(tuple.value(cols.other_cols[i])) {
            Gate::Engage(k) => k,
            other => return other,
        };
        // The anchor window must be sound on *every* anchor-side column:
        // on anchor_cols[i] for the bucket lookup itself, and on the other
        // pair columns so that skipping non-integer anchor values (which
        // are then provably inert) is equivalent to the scan.
        for j in 0..self.windows.len() {
            if j == anchor {
                continue;
            }
            if !self.windows[anchor].index_usable(cols.anchor_cols[j]) {
                return Gate::Fallback;
            }
            if j != i && !self.windows[j].index_usable(cols.other_cols[j]) {
                return Gate::Fallback;
            }
        }
        Gate::Engage(key)
    }

    // ------------------------------------------------------------------
    // Counting probes
    // ------------------------------------------------------------------

    /// Index-assisted (or enumerated) count of the join results derived by
    /// a probing tuple of stream `i`; the flag reports whether the probe
    /// avoided a window scan.
    pub(super) fn probe_count(&self, i: usize, tuple: &Tuple) -> (u64, bool) {
        match &self.plan {
            ProbePlan::CommonKey { columns } => match self.common_key_gate(i, tuple, columns) {
                Gate::Engage(key) => {
                    let mut product = 1u64;
                    for &j in &self.order {
                        if j == i {
                            continue;
                        }
                        let c = self.windows[j].count_key(columns[j], key);
                        if c == 0 {
                            return (0, true);
                        }
                        product = product.saturating_mul(c);
                    }
                    (product, true)
                }
                Gate::Barren => (0, true),
                Gate::Fallback => (self.enumerate_count(i, tuple), false),
            },
            ProbePlan::Star {
                anchor,
                anchor_cols,
                other_cols,
            } => {
                let cols = StarCols {
                    anchor_cols,
                    other_cols,
                };
                if i == *anchor {
                    match self.star_anchor_gate(*anchor, tuple, &cols) {
                        Gate::Engage(_) => {
                            let mut product = 1u64;
                            for &j in &self.order {
                                if j == *anchor {
                                    continue;
                                }
                                let key = tuple
                                    .value(anchor_cols[j])
                                    .and_then(Value::as_int)
                                    .expect("gate guarantees integer pair keys");
                                let c = self.windows[j].count_key(other_cols[j], key);
                                if c == 0 {
                                    return (0, true);
                                }
                                product = product.saturating_mul(c);
                            }
                            (product, true)
                        }
                        Gate::Barren => (0, true),
                        Gate::Fallback => (self.enumerate_count(i, tuple), false),
                    }
                } else {
                    match self.star_satellite_gate(i, *anchor, tuple, &cols) {
                        Gate::Engage(own_key) => {
                            (self.count_star_satellite(i, *anchor, own_key, &cols), true)
                        }
                        Gate::Barren => (0, true),
                        Gate::Fallback => (self.enumerate_count(i, tuple), false),
                    }
                }
            }
            ProbePlan::NestedLoop => (self.enumerate_count(i, tuple), false),
        }
    }

    /// Satellite-probe counting: walk only the anchor tuples in the
    /// matching bucket and multiply the other satellites' bucket sizes.
    fn count_star_satellite(
        &self,
        i: usize,
        anchor: usize,
        own_key: i64,
        cols: &StarCols<'_>,
    ) -> u64 {
        let mut total = 0u64;
        'anchor: for a in self.windows[anchor].bucket_iter(cols.anchor_cols[i], own_key) {
            let mut product = 1u64;
            for &k in &self.order {
                if k == anchor || k == i {
                    continue;
                }
                // The gate proved the anchor window sound on this column,
                // so a non-integer value here is inert and never joins.
                let key = match a.value(cols.anchor_cols[k]).and_then(Value::as_int) {
                    Some(v) => v,
                    None => continue 'anchor,
                };
                let c = self.windows[k].count_key(cols.other_cols[k], key);
                if c == 0 {
                    continue 'anchor;
                }
                product = product.saturating_mul(c);
            }
            total = total.saturating_add(product);
        }
        total
    }

    /// Nested-loop count of matching combinations for arbitrary conditions.
    fn enumerate_count(&self, i: usize, tuple: &Tuple) -> u64 {
        let mut count = 0u64;
        self.for_each_combination(i, tuple, &mut |_| count += 1);
        count
    }

    // ------------------------------------------------------------------
    // Enumerating probes
    // ------------------------------------------------------------------

    /// Invokes `f` for every matching combination (one live tuple per other
    /// stream plus the probing tuple at position `i`), choosing the indexed
    /// bucket walk when the gate allows it and the exhaustive scan
    /// otherwise.  Returns whether a window scan was avoided.
    pub(super) fn probe_enumerate<'a>(
        &'a self,
        i: usize,
        tuple: &'a Tuple,
        f: &mut dyn FnMut(&[&'a Tuple]),
    ) -> bool {
        match &self.plan {
            ProbePlan::CommonKey { columns } => match self.common_key_gate(i, tuple, columns) {
                Gate::Engage(key) => {
                    self.enumerate_common_key(i, tuple, columns, key, f);
                    true
                }
                Gate::Barren => true,
                Gate::Fallback => {
                    self.for_each_combination(i, tuple, f);
                    false
                }
            },
            ProbePlan::Star {
                anchor,
                anchor_cols,
                other_cols,
            } => {
                let cols = StarCols {
                    anchor_cols,
                    other_cols,
                };
                let gate = if i == *anchor {
                    self.star_anchor_gate(*anchor, tuple, &cols)
                } else {
                    self.star_satellite_gate(i, *anchor, tuple, &cols)
                };
                match gate {
                    Gate::Engage(own_key) => {
                        if i == *anchor {
                            self.enumerate_star_anchor(i, tuple, &cols, f);
                        } else {
                            self.enumerate_star_satellite(i, *anchor, tuple, own_key, &cols, f);
                        }
                        true
                    }
                    Gate::Barren => true,
                    Gate::Fallback => {
                        self.for_each_combination(i, tuple, f);
                        false
                    }
                }
            }
            ProbePlan::NestedLoop => {
                self.for_each_combination(i, tuple, f);
                false
            }
        }
    }

    fn enumerate_common_key<'a>(
        &'a self,
        i: usize,
        tuple: &'a Tuple,
        columns: &[usize],
        key: i64,
        f: &mut dyn FnMut(&[&'a Tuple]),
    ) {
        let m = self.windows.len();
        let mut levels: Vec<(usize, Bucket<'a>)> = Vec::with_capacity(m - 1);
        for &j in &self.order {
            if j == i {
                continue;
            }
            match self.windows[j].bucket(columns[j], key) {
                Some(bucket) => levels.push((j, bucket)),
                None => return, // one empty bucket kills every combination
            }
        }
        let mut slots: Vec<&Tuple> = vec![tuple; m];
        emit_product(&levels, &mut slots, f);
    }

    fn enumerate_star_anchor<'a>(
        &'a self,
        anchor: usize,
        tuple: &'a Tuple,
        cols: &StarCols<'_>,
        f: &mut dyn FnMut(&[&'a Tuple]),
    ) {
        let m = self.windows.len();
        let mut levels: Vec<(usize, Bucket<'a>)> = Vec::with_capacity(m - 1);
        for &j in &self.order {
            if j == anchor {
                continue;
            }
            let key = tuple
                .value(cols.anchor_cols[j])
                .and_then(Value::as_int)
                .expect("gate guarantees integer pair keys");
            match self.windows[j].bucket(cols.other_cols[j], key) {
                Some(bucket) => levels.push((j, bucket)),
                None => return,
            }
        }
        let mut slots: Vec<&Tuple> = vec![tuple; m];
        emit_product(&levels, &mut slots, f);
    }

    fn enumerate_star_satellite<'a>(
        &'a self,
        i: usize,
        anchor: usize,
        tuple: &'a Tuple,
        own_key: i64,
        cols: &StarCols<'_>,
        f: &mut dyn FnMut(&[&'a Tuple]),
    ) {
        let m = self.windows.len();
        let mut slots: Vec<&Tuple> = vec![tuple; m];
        let mut levels: Vec<(usize, Bucket<'a>)> = Vec::with_capacity(m.saturating_sub(2));
        'anchor: for a in self.windows[anchor].bucket_iter(cols.anchor_cols[i], own_key) {
            levels.clear();
            for &k in &self.order {
                if k == anchor || k == i {
                    continue;
                }
                // Sound anchor column: non-integer values are inert here.
                let key = match a.value(cols.anchor_cols[k]).and_then(Value::as_int) {
                    Some(v) => v,
                    None => continue 'anchor,
                };
                match self.windows[k].bucket(cols.other_cols[k], key) {
                    Some(bucket) => levels.push((k, bucket)),
                    None => continue 'anchor,
                }
            }
            slots[anchor] = a;
            emit_product(&levels, &mut slots, f);
        }
    }

    /// Invokes `f` for every combination of one live tuple per other stream
    /// (plus the probing tuple at position `i`) that satisfies the join
    /// condition.  Combinations are presented in stream order.
    fn for_each_combination<'a>(
        &'a self,
        i: usize,
        tuple: &'a Tuple,
        f: &mut dyn FnMut(&[&'a Tuple]),
    ) {
        let m = self.windows.len();
        let mut slots: Vec<&Tuple> = vec![tuple; m];
        self.recurse(0, i, tuple, &mut slots, f);
    }

    fn recurse<'a>(
        &'a self,
        j: usize,
        probe: usize,
        tuple: &'a Tuple,
        slots: &mut Vec<&'a Tuple>,
        f: &mut dyn FnMut(&[&'a Tuple]),
    ) {
        if j == self.windows.len() {
            if self.condition.matches(slots) {
                f(slots);
            }
            return;
        }
        if j == probe {
            slots[j] = tuple;
            self.recurse(j + 1, probe, tuple, slots, f);
        } else {
            // Zone-map pruning: skip whole segments the plan's equi-join
            // proves barren for this probing tuple.  Pruned tuples would
            // fail `condition.matches` at the leaves anyway, so the emitted
            // combinations (and their order) are unchanged.
            let prune = self.prune_spec(probe, tuple, j);
            for candidate in self.windows[j].iter_pruned(prune) {
                slots[j] = candidate;
                self.recurse(j + 1, probe, tuple, slots, f);
            }
        }
    }

    /// The `(column, probe key)` pair the plan's equi-join imposes on
    /// window `j` when stream `probe` contributes `tuple` — the zone-map
    /// prune spec for the fallback scan.  `None` when the plan ties the two
    /// streams by no direct equality (nested-loop plans, star pairs not
    /// involving the anchor): those scans stay exhaustive.
    fn prune_spec<'a>(
        &self,
        probe: usize,
        tuple: &'a Tuple,
        j: usize,
    ) -> Option<(usize, &'a Value)> {
        match &self.plan {
            ProbePlan::CommonKey { columns } => Some((columns[j], tuple.value(columns[probe])?)),
            ProbePlan::Star {
                anchor,
                anchor_cols,
                other_cols,
            } => {
                if probe == *anchor {
                    Some((other_cols[j], tuple.value(anchor_cols[j])?))
                } else if j == *anchor {
                    Some((anchor_cols[probe], tuple.value(other_cols[probe])?))
                } else {
                    None
                }
            }
            ProbePlan::NestedLoop => None,
        }
    }

    /// Materializes the probe of an enumerating operator, forwarding each
    /// combination to `emit` as an owned [`JoinResult`]; returns the result
    /// count and whether the probe stayed indexed.
    pub(super) fn probe_materialize(
        &self,
        i: usize,
        tuple: &Tuple,
        emit: &mut dyn FnMut(JoinResult),
    ) -> (u64, bool) {
        let mut n_join = 0u64;
        let indexed = self.probe_enumerate(i, tuple, &mut |combo| {
            n_join += 1;
            emit(JoinResult::new(combo.iter().map(|&t| t.clone()).collect()));
        });
        (n_join, indexed)
    }
}

/// Emits the cross product of the given buckets into `slots` (one level per
/// stream position), invoking `f` once per complete combination.  The plan
/// gates guarantee every combination reached here satisfies the equi-join,
/// so the condition is not re-evaluated.
fn emit_product<'a>(
    levels: &[(usize, Bucket<'a>)],
    slots: &mut Vec<&'a Tuple>,
    f: &mut dyn FnMut(&[&'a Tuple]),
) {
    match levels.split_first() {
        None => f(slots),
        Some(((j, bucket), rest)) => {
            for t in bucket.iter() {
                slots[*j] = t;
                emit_product(rest, slots, f);
            }
        }
    }
}

//! The MJoin-style m-way sliding window join operator (Alg. 2).
//!
//! The operator receives the (partially) sorted and synchronized stream
//! produced by the disorder-handling front-end and processes each tuple as
//! follows:
//!
//! 1. If the tuple is **in order** (its timestamp is not smaller than the
//!    maximum timestamp `onT` seen so far): advance `onT`, invalidate
//!    expired tuples in the windows of every *other* stream, probe those
//!    windows, emit the qualifying result tuples, and insert the tuple into
//!    its own window.
//! 2. If the tuple is **out of order**: skip invalidation and probing (its
//!    results are lost), but still insert it into its own window if it is
//!    within the window's current scope so that it can contribute to future
//!    results.
//!
//! The responsibilities are split across three submodules so that
//! shard-local and global concerns stay visible in the module tree:
//! [`insert`] owns window maintenance (expiry, in-order and out-of-order
//! insertion, including the engine-driven [`MswjOperator::insert_late`]),
//! [`probe`] owns the read-only probe access paths, and [`stats`] owns the
//! [`ProbeOutcome`]/[`OperatorStats`] records.
//!
//! ## Probe access paths
//!
//! How step 1 searches the other windows is decided by a [`ProbePlan`]
//! (see [`planner`](crate::planner)): equi-join conditions probe through
//! the windows' value→tuple hash indexes — each lookup touches only the
//! bucket of tuples that can still satisfy the join — while generic
//! conditions (and any probe whose index soundness cannot be guaranteed)
//! use the exhaustive nested-loop scan.  Both paths are proven equivalent
//! by the differential harness in `tests/differential_probe.rs`.
//!
//! ## Sharded execution
//!
//! An operator can also serve as **one shard** of a key-partitioned engine
//! (`mswj-core`'s `engine` module): the engine routes tuples by their
//! equi-join key, keeps the *global* high-water mark itself, and drives
//! each shard through [`MswjOperator::push_with`] (globally in-order
//! tuples, which are in-order for the shard too) and
//! [`MswjOperator::insert_late`] (globally late tuples the shard must
//! absorb without probing).
//!
//! For every processed tuple the operator reports the number of produced
//! join results `n_on(e)` and the corresponding cross-join size `n_x(e)`;
//! the Tuple-Productivity Profiler consumes these to learn the
//! delay-productivity correlation (Sec. IV-B).

pub mod insert;
pub mod probe;
pub mod stats;

pub use stats::{OperatorStats, ProbeOutcome};

use crate::condition::JoinCondition;
use crate::planner::{ProbePlan, ProbeStrategy};
use crate::query::JoinQuery;
use crate::result::JoinResult;
use crate::window::Window;
use mswj_types::{StreamIndex, Timestamp, Tuple};
use std::sync::Arc;

/// The m-way sliding window join operator.
pub struct MswjOperator {
    query: JoinQuery,
    condition: Arc<dyn JoinCondition>,
    plan: ProbePlan,
    windows: Vec<Window>,
    /// The order in which indexed probes visit the other streams' windows
    /// (a permutation of `0..m`; own-stream entries are skipped per probe).
    /// Stream order by default; runtime re-planning rotates low-match-rate
    /// windows to the front so empty buckets short-circuit early.  Purely
    /// an access-path choice: the produced result multiset is unaffected.
    order: Vec<usize>,
    on_t: Timestamp,
    started: bool,
    enumerate: bool,
    stats: OperatorStats,
}

impl std::fmt::Debug for MswjOperator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MswjOperator")
            .field("query", &self.query)
            .field("plan", &self.plan.describe())
            .field("on_t", &self.on_t)
            .field("enumerate", &self.enumerate)
            .field("stats", &self.stats)
            .finish()
    }
}

impl MswjOperator {
    /// Creates an operator that **counts** join results without
    /// materializing them.  Counting uses the windows' hash indexes when
    /// the join condition is an equi-join, which makes the paper-scale
    /// workloads tractable.
    pub fn new(query: JoinQuery) -> Self {
        Self::build(query, false, ProbeStrategy::Auto)
    }

    /// Creates an operator that additionally **materializes** every result
    /// tuple.  Intended for small-scale runs, examples and tests.
    pub fn enumerating(query: JoinQuery) -> Self {
        Self::build(query, true, ProbeStrategy::Auto)
    }

    /// Creates an operator with an explicit [`ProbeStrategy`] —
    /// [`ProbeStrategy::NestedLoop`] forces the exhaustive scan even for
    /// equi-joins, which is what the differential test harness compares
    /// the indexed path against.
    pub fn with_probe(query: JoinQuery, strategy: ProbeStrategy, enumerate: bool) -> Self {
        Self::build(query, enumerate, strategy)
    }

    fn build(query: JoinQuery, enumerate: bool, strategy: ProbeStrategy) -> Self {
        let condition = Arc::clone(query.condition());
        let equi = condition.equi_structure();
        let plan = ProbePlan::new(strategy, equi.as_ref());
        let m = query.arity();
        let mut windows = Vec::with_capacity(m);
        for i in 0..m {
            let size = query.window(StreamIndex(i));
            windows.push(Window::with_indexed_columns(size, &plan.indexed_columns(i)));
        }
        MswjOperator {
            query,
            condition,
            plan,
            windows,
            order: (0..m).collect(),
            on_t: Timestamp::ZERO,
            started: false,
            enumerate,
            stats: OperatorStats::default(),
        }
    }

    /// The query this operator executes.
    pub fn query(&self) -> &JoinQuery {
        &self.query
    }

    /// The probe access path planned from the condition's equi structure.
    pub fn probe_plan(&self) -> &ProbePlan {
        &self.plan
    }

    /// The order in which indexed probes visit the other streams' windows.
    pub fn probe_order(&self) -> &[usize] {
        &self.order
    }

    /// Re-orders the indexed probe chain: windows are visited in `order`
    /// (a permutation of `0..m`), so placing low-match-rate streams first
    /// lets empty buckets short-circuit a probe before the expensive
    /// levels are touched.  The result multiset is unaffected — only the
    /// access path (and the emission order within one probe) changes.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..m`.
    pub fn set_probe_order(&mut self, order: Vec<usize>) {
        let m = self.windows.len();
        let mut seen = vec![false; m];
        assert_eq!(order.len(), m, "probe order must cover every stream");
        for &j in &order {
            assert!(
                j < m && !std::mem::replace(&mut seen[j], true),
                "probe order must be a permutation of 0..{m}"
            );
        }
        self.order = order;
    }

    /// Demotes every window's hash index to the nested-loop scan, for the
    /// operator's lifetime (see [`Window::demote_index`]).  Runtime
    /// re-planning applies this when the observed indexed-vs-fallback
    /// ratio shows index maintenance stopped paying.
    pub fn demote_index(&mut self) {
        for w in &mut self.windows {
            w.demote_index();
        }
    }

    /// The maximum timestamp among tuples received so far (`onT`).
    pub fn on_t(&self) -> Timestamp {
        self.on_t
    }

    /// The window of stream `i`.
    pub fn window(&self, i: StreamIndex) -> &Window {
        &self.windows[i.as_usize()]
    }

    /// Lifetime counters.
    pub fn stats(&self) -> OperatorStats {
        self.stats
    }

    /// Estimated heap bytes of all live window state held by this operator
    /// (see [`crate::WindowStats::live_bytes_est`]).
    pub fn window_bytes(&self) -> u64 {
        self.windows.iter().map(|w| w.stats().live_bytes_est).sum()
    }

    /// Number of columnar storage segments held across all of this
    /// operator's windows (see [`crate::WindowStats::segments`]).
    pub fn window_segments(&self) -> u64 {
        self.windows.iter().map(|w| w.stats().segments as u64).sum()
    }

    /// Whether the operator materializes result tuples.
    pub fn is_enumerating(&self) -> bool {
        self.enumerate
    }

    /// Clears every window and resets `onT`, keeping the query and plan.
    pub fn reset(&mut self) {
        for w in &mut self.windows {
            w.clear();
        }
        self.on_t = Timestamp::ZERO;
        self.started = false;
        self.stats = OperatorStats::default();
    }

    /// Processes one tuple according to Alg. 2 and reports what happened.
    ///
    /// In enumerating mode the materialized results are computed and
    /// discarded; use [`MswjOperator::push_with`] to receive them.
    pub fn push(&mut self, tuple: Tuple) -> ProbeOutcome {
        self.push_with(tuple, &mut |_| {})
    }

    /// Processes one tuple according to Alg. 2, invoking `emit` once per
    /// materialized join result (enumerating operators only — a counting
    /// operator never calls `emit`) and reporting what happened.
    ///
    /// This is the event-driven hot path used by the pipeline's sink-based
    /// output: results stream out through the callback instead of being
    /// collected into a per-push `Vec`.
    pub fn push_with(&mut self, tuple: Tuple, emit: &mut dyn FnMut(JoinResult)) -> ProbeOutcome {
        let i = tuple.stream.as_usize();
        debug_assert!(i < self.windows.len(), "tuple references unknown stream");
        let in_order = !self.started || tuple.ts >= self.on_t;
        let mut outcome = ProbeOutcome {
            in_order,
            ..ProbeOutcome::default()
        };
        if in_order {
            self.on_t = tuple.ts;
            self.started = true;
            // Step 1: invalidate expired tuples in windows of other streams.
            outcome.expired = self.expire_others(i, &tuple);
            // Step 2: probe remaining tuples in all other windows.
            outcome.n_cross = self.cross_size(i);
            if self.enumerate {
                let (n_join, indexed) = self.probe_materialize(i, &tuple, emit);
                outcome.n_join = n_join;
                outcome.indexed = indexed;
            } else {
                let (n_join, indexed) = self.probe_count(i, &tuple);
                outcome.n_join = n_join;
                outcome.indexed = indexed;
            }
            // Step 3: insert into own window.
            self.windows[i].insert(tuple);
            outcome.inserted = true;
            self.stats.in_order += 1;
            if outcome.indexed {
                self.stats.indexed_probes += 1;
            } else {
                self.stats.fallback_probes += 1;
            }
            self.stats.results += outcome.n_join;
            self.stats.cross_results += outcome.n_cross;
            self.stats.expired += outcome.expired as u64;
        } else {
            // Out-of-order tuple: no probing; insert only if still in scope
            // (e.ts >= onT - W_i, Sec. III-A).
            outcome.inserted = self.insert_out_of_order(tuple);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{CommonKeyEquiJoin, CrossJoin, DistanceWithin, StarEquiJoin};
    use mswj_types::{FieldType, Schema, StreamSet, StreamSpec, Value};

    fn equi_query(m: usize, window: u64) -> JoinQuery {
        let streams =
            StreamSet::homogeneous(m, Schema::new(vec![("a1", FieldType::Int)]), window).unwrap();
        let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
        JoinQuery::new("equi", streams, cond).unwrap()
    }

    fn tup(stream: usize, seq: u64, ts: u64, key: i64) -> Tuple {
        Tuple::new(
            stream.into(),
            seq,
            Timestamp::from_millis(ts),
            vec![Value::Int(key)],
        )
    }

    fn star_query() -> JoinQuery {
        let streams = StreamSet::new(vec![
            StreamSpec::new(
                "S1",
                Schema::new(vec![
                    ("a1", FieldType::Int),
                    ("a2", FieldType::Int),
                    ("a3", FieldType::Int),
                ]),
                10_000,
            ),
            StreamSpec::new("S2", Schema::new(vec![("a1", FieldType::Int)]), 10_000),
            StreamSpec::new("S3", Schema::new(vec![("a2", FieldType::Int)]), 10_000),
            StreamSpec::new("S4", Schema::new(vec![("a3", FieldType::Int)]), 10_000),
        ])
        .unwrap();
        let cond = Arc::new(
            StarEquiJoin::new(
                &streams,
                0,
                &[(1, "a1", "a1"), (2, "a2", "a2"), (3, "a3", "a3")],
            )
            .unwrap(),
        );
        JoinQuery::new("star", streams, cond).unwrap()
    }

    #[test]
    fn fig1_missed_result_without_disorder_handling() {
        // Reproduces the motivating example of Fig. 1: a 2-way join with
        // W1 = W2 = 2 time units; the out-of-order tuple C4 misses its match
        // c3 because B6 already advanced the windows.
        let streams = StreamSet::homogeneous(
            2,
            Schema::new(vec![("v", FieldType::Int)]),
            2, // 2 "time units" = 2 ms in our clock
        )
        .unwrap();
        let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "v").unwrap());
        let query = JoinQuery::new("fig1", streams, cond).unwrap();
        let mut op = MswjOperator::enumerating(query);

        // Arrival order from Fig. 1 (values renamed to integers):
        // A1, b2, B3, c3, a4, E5, B6, C4(out of order), e5, D8, d6, e7, B7
        // We only check the C4/c3 part: after B6 arrives, c3 (ts=3) expires
        // from S2's window, so the late C4 derives nothing.
        op.push(tup(0, 0, 1, 10)); // A1
        op.push(tup(1, 0, 2, 11)); // b2
        let r_b3 = op.push(tup(0, 1, 3, 11)); // B3 joins b2
        assert_eq!(r_b3.n_join, 1);
        op.push(tup(1, 1, 3, 12)); // c3
        op.push(tup(0, 2, 5, 13)); // E5
        let r_b6 = op.push(tup(0, 3, 6, 11)); // B6 advances onT to 6, expires c3 (3 < 6-2=4)
        assert_eq!(r_b6.n_join, 0);
        // C4 arrives late (ts 4 < onT 6): no probing, so its result with c3 is missed.
        let r_c4 = op.push(tup(0, 4, 4, 12));
        assert!(!r_c4.in_order);
        assert_eq!(r_c4.n_join, 0);
        assert!(r_c4.inserted, "C4 is still within S1's window scope");
        assert_eq!(op.stats().out_of_order, 1);
    }

    #[test]
    fn in_order_equi_join_counts_and_results_agree() {
        let query = equi_query(2, 10_000);
        let mut counting = MswjOperator::new(query.clone());
        let mut enumerating = MswjOperator::enumerating(query);
        let tuples = vec![
            tup(0, 0, 0, 1),
            tup(1, 0, 10, 1),
            tup(0, 1, 20, 2),
            tup(1, 1, 30, 2),
            tup(0, 2, 40, 1),
            tup(1, 2, 50, 1),
        ];
        let mut total_counting = 0;
        let mut total_enumerated = 0;
        for t in tuples {
            let a = counting.push(t.clone());
            let mut materialized = Vec::new();
            let b = enumerating.push_with(t, &mut |r| materialized.push(r));
            assert_eq!(a.n_join, b.n_join);
            assert_eq!(a.n_cross, b.n_cross);
            assert_eq!(b.n_join as usize, materialized.len());
            assert!(a.indexed && b.indexed, "clean int keys must stay indexed");
            total_counting += a.n_join;
            total_enumerated += materialized.len() as u64;
        }
        // (0,1)x(1,1): S2#0 joins S1#0; S1#2 joins S2#0; S2#2 joins S1#0 and S1#2, etc.
        assert_eq!(total_counting, total_enumerated);
        assert!(total_counting >= 4);
        assert!(!counting.is_enumerating());
        assert!(enumerating.is_enumerating());
        assert_eq!(counting.stats().fallback_probes, 0);
        assert_eq!(counting.stats().indexed_probes, counting.stats().in_order);
    }

    #[test]
    fn forced_nested_loop_produces_identical_results() {
        let query = equi_query(3, 5_000);
        let mut indexed = MswjOperator::with_probe(query.clone(), ProbeStrategy::Auto, true);
        let mut scan = MswjOperator::with_probe(query, ProbeStrategy::NestedLoop, true);
        assert!(indexed.probe_plan().is_indexed());
        assert_eq!(*scan.probe_plan(), ProbePlan::NestedLoop);
        for s in 0..60u64 {
            let t = tup((s % 3) as usize, s, s * 7, (s % 4) as i64);
            let mut a = Vec::new();
            let mut b = Vec::new();
            let ra = indexed.push_with(t.clone(), &mut |r| a.push(r.to_string()));
            let rb = scan.push_with(t, &mut |r| b.push(r.to_string()));
            assert_eq!(ra.n_join, rb.n_join);
            a.sort();
            b.sort();
            assert_eq!(a, b, "indexed and scan probes must emit the same multiset");
        }
        assert!(indexed.stats().indexed_probes > 0);
        assert_eq!(indexed.stats().fallback_probes, 0);
        assert_eq!(scan.stats().indexed_probes, 0);
        assert!(scan.stats().results > 0);
    }

    #[test]
    fn float_keys_fall_back_and_keep_numeric_equality() {
        // join_eq equates Int(4) with Float(4.0); the hash index cannot see
        // that, so such probes must fall back to the scan — on both sides.
        let query = equi_query(2, 10_000);
        let mut op = MswjOperator::enumerating(query);
        let float_tuple = Tuple::new(
            1.into(),
            0,
            Timestamp::from_millis(10),
            vec![Value::Float(4.0)],
        );
        let r = op.push(float_tuple);
        assert!(!r.indexed, "a float probe key cannot use the index");
        // The float tuple now poisons S2's window: an Int(4) probe must
        // fall back and still find the numeric match.
        let r = op.push(tup(0, 0, 20, 4));
        assert!(!r.indexed);
        assert_eq!(r.n_join, 1, "Int(4) joins Float(4.0) numerically");
        // Once the float expires, integer probes engage the index again.
        op.push(tup(1, 1, 30_000, 4));
        let r = op.push(tup(0, 1, 30_010, 4));
        assert!(r.indexed);
        assert_eq!(r.n_join, 1);
        assert_eq!(op.stats().fallback_probes, 2);
    }

    #[test]
    fn null_probe_keys_short_circuit() {
        let query = equi_query(2, 10_000);
        let mut indexed = MswjOperator::enumerating(query.clone());
        let mut scan = MswjOperator::with_probe(query, ProbeStrategy::NestedLoop, true);
        for op in [&mut indexed, &mut scan] {
            op.push(tup(1, 0, 0, 1));
        }
        let null_probe = Tuple::new(0.into(), 0, Timestamp::from_millis(10), vec![Value::Null]);
        let ra = indexed.push(null_probe.clone());
        let rb = scan.push(null_probe);
        assert_eq!(ra.n_join, 0);
        assert_eq!(rb.n_join, 0);
        assert!(ra.indexed, "a barren probe is answered without scanning");
        // Null tuples sit inertly in the window without disabling the index.
        let r = indexed.push(tup(1, 1, 20, 1));
        assert!(r.indexed);
        assert_eq!(r.n_join, 0, "Null never joins");
    }

    #[test]
    fn out_of_order_tuple_produces_nothing_but_contributes_later() {
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        op.push(tup(0, 0, 100, 7));
        op.push(tup(1, 0, 500, 7)); // joins -> 1 result
                                    // Late S2 tuple (ts 200 < onT 500) is inserted silently.
        let late = op.push(tup(1, 1, 200, 7));
        assert!(!late.in_order);
        assert_eq!(late.n_join, 0);
        assert!(!late.indexed, "non-probing arrivals are not indexed probes");
        assert!(late.inserted);
        // A later S1 tuple joins both S2 tuples.
        let r = op.push(tup(0, 1, 600, 7));
        assert_eq!(r.n_join, 2);
        assert_eq!(op.stats().results, 3);
        let s = op.stats();
        assert_eq!(s.indexed_probes + s.fallback_probes, s.in_order);
    }

    #[test]
    fn too_old_out_of_order_tuple_is_dropped() {
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        op.push(tup(0, 0, 5_000, 1));
        let r = op.push(tup(1, 0, 1_000, 1)); // 1000 < 5000 - 1000 => dropped
        assert!(!r.in_order);
        assert!(!r.inserted);
        assert_eq!(op.stats().dropped, 1);
        assert_eq!(op.window(StreamIndex(1)).len(), 0);
    }

    #[test]
    fn insert_late_bypasses_probing_and_the_scope_check() {
        // The sharded engine decides ordering and scope globally; the shard
        // must absorb the tuple as-is — no probing even when the tuple looks
        // in-order to this (lagging) shard, no local scope veto.
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        op.push(tup(0, 0, 100, 7));
        // Locally in-order (ts 400 >= onT 100) but globally late: must not
        // probe, must not advance onT, must still land in the window.
        op.insert_late(tup(1, 0, 400, 7));
        assert_eq!(op.on_t(), Timestamp::from_millis(100));
        assert_eq!(op.stats().results, 0, "a late insert never probes");
        assert_eq!(op.stats().out_of_order, 1);
        assert_eq!(op.window(StreamIndex(1)).len(), 1);
        // The absorbed tuple contributes to future probes.
        let r = op.push(tup(0, 1, 500, 7));
        assert_eq!(r.n_join, 1);
    }

    #[test]
    fn window_expiration_follows_probing_timestamp() {
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        op.push(tup(0, 0, 0, 1));
        op.push(tup(0, 1, 500, 1));
        // S2 tuple at t=1400 expires the S1 tuple at t=0 (0 < 1400-1000).
        let r = op.push(tup(1, 0, 1_400, 1));
        assert_eq!(r.expired, 1);
        assert_eq!(op.window(StreamIndex(0)).len(), 1);
        assert_eq!(r.n_join, 1); // joins only the surviving S1 tuple
        assert_eq!(op.on_t(), Timestamp::from_millis(1_400));
    }

    #[test]
    fn cross_join_counts_are_window_products() {
        let streams =
            StreamSet::homogeneous(3, Schema::new(vec![("a1", FieldType::Int)]), 10_000).unwrap();
        let cond = Arc::new(CrossJoin::new(3));
        let query = JoinQuery::new("cross", streams, cond).unwrap();
        let mut op = MswjOperator::new(query);
        assert_eq!(*op.probe_plan(), ProbePlan::NestedLoop);
        op.push(tup(0, 0, 0, 1));
        op.push(tup(0, 1, 1, 2));
        op.push(tup(1, 0, 2, 3));
        // Probing S3 tuple sees |W1| = 2, |W2| = 1 -> 2 cross results.
        let r = op.push(tup(2, 0, 3, 4));
        assert_eq!(r.n_cross, 2);
        assert_eq!(r.n_join, 2);
        assert!(!r.indexed);
        assert_eq!(op.stats().indexed_probes, 0);
    }

    #[test]
    fn star_join_counts_match_enumeration() {
        // Q×4-shaped query at a small scale.
        let query = star_query();
        let mut counting = MswjOperator::new(query.clone());
        let mut enumerating = MswjOperator::enumerating(query);

        let anchor = |seq: u64, ts: u64, a1: i64, a2: i64, a3: i64| {
            Tuple::new(
                0.into(),
                seq,
                Timestamp::from_millis(ts),
                vec![Value::Int(a1), Value::Int(a2), Value::Int(a3)],
            )
        };
        let sat = |stream: usize, seq: u64, ts: u64, v: i64| tup(stream, seq, ts, v);

        let script = vec![
            sat(1, 0, 0, 1),
            sat(2, 0, 1, 2),
            sat(3, 0, 2, 3),
            anchor(0, 3, 1, 2, 3), // matches all satellites -> 1 result
            sat(1, 1, 4, 1),       // satellite probing anchor -> 1 result
            anchor(1, 5, 1, 2, 9), // a3 mismatch -> 0
            sat(3, 1, 6, 9),       // matches second anchor only -> 2 (two S2 with a1=1)
            sat(2, 1, 7, 2),       // probes both anchors
        ];
        for t in script {
            let a = counting.push(t.clone());
            let mut emitted = 0u64;
            let b = enumerating.push_with(t, &mut |_| emitted += 1);
            assert_eq!(a.n_join, b.n_join, "count vs enumeration disagreement");
            assert_eq!(emitted, b.n_join);
            assert!(a.indexed && b.indexed, "clean star workload stays indexed");
        }
        assert_eq!(counting.stats().results, enumerating.stats().results);
        assert!(counting.stats().results > 0);
        assert_eq!(counting.stats().fallback_probes, 0);
    }

    #[test]
    fn star_probes_match_forced_nested_loop() {
        let query = star_query();
        let mut indexed = MswjOperator::with_probe(query.clone(), ProbeStrategy::Auto, true);
        let mut scan = MswjOperator::with_probe(query, ProbeStrategy::NestedLoop, true);
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for s in 0..120u64 {
            let stream = (next() % 4) as usize;
            let ts = s * 5;
            let t = if stream == 0 {
                Tuple::new(
                    0.into(),
                    s,
                    Timestamp::from_millis(ts),
                    vec![
                        Value::Int((next() % 3) as i64),
                        Value::Int((next() % 3) as i64),
                        Value::Int((next() % 3) as i64),
                    ],
                )
            } else {
                tup(stream, s, ts, (next() % 3) as i64)
            };
            let mut a = Vec::new();
            let mut b = Vec::new();
            indexed.push_with(t.clone(), &mut |r| a.push(r.to_string()));
            scan.push_with(t, &mut |r| b.push(r.to_string()));
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
        assert!(indexed.stats().results > 0, "workload must derive results");
        assert_eq!(indexed.stats().fallback_probes, 0);
    }

    #[test]
    fn udf_condition_uses_nested_loop_counting() {
        let schema = Schema::new(vec![
            ("sID", FieldType::Int),
            ("xCoord", FieldType::Float),
            ("yCoord", FieldType::Float),
        ]);
        let streams = StreamSet::homogeneous(2, schema, 5_000).unwrap();
        let cond = Arc::new(DistanceWithin::new(&streams, "xCoord", "yCoord", 5.0).unwrap());
        let query = JoinQuery::new("dist", streams, cond).unwrap();
        let mut op = MswjOperator::new(query);
        assert_eq!(*op.probe_plan(), ProbePlan::NestedLoop);
        let pos = |stream: usize, seq: u64, ts: u64, x: f64, y: f64| {
            Tuple::new(
                stream.into(),
                seq,
                Timestamp::from_millis(ts),
                vec![Value::Int(seq as i64), Value::Float(x), Value::Float(y)],
            )
        };
        op.push(pos(0, 0, 0, 0.0, 0.0));
        op.push(pos(0, 1, 10, 50.0, 50.0));
        let r = op.push(pos(1, 0, 20, 1.0, 1.0)); // near the first only
        assert_eq!(r.n_join, 1);
        assert_eq!(r.n_cross, 2);
    }

    #[test]
    fn reset_clears_state_but_keeps_query() {
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        op.push(tup(0, 0, 100, 1));
        op.push(tup(1, 0, 200, 1));
        assert!(op.stats().results > 0);
        op.reset();
        assert_eq!(op.on_t(), Timestamp::ZERO);
        assert_eq!(op.stats(), OperatorStats::default());
        assert_eq!(op.window(StreamIndex(0)).len(), 0);
        // Operator is usable again after reset, index included.
        let r = op.push(tup(0, 0, 50, 1));
        assert!(r.in_order);
        assert!(op.probe_plan().is_indexed());
    }

    #[test]
    fn cross_size_saturates_instead_of_overflowing() {
        // Regression: `n_x(e)` is the headline quality quantity, and with 8
        // streams of 1 000 live tuples its cross-join size is 1000^7 = 10^21
        // — far past u64::MAX.  The old unchecked `.product()` panicked in
        // debug and wrapped in release; it must saturate.
        let query = equi_query(8, 10_000);
        let mut op = MswjOperator::new(query);
        for stream in 1..8usize {
            for s in 0..1_000u64 {
                // `adopt` fills windows without probing, so building the
                // state is O(n) instead of O(n^7).
                op.adopt(tup(stream, s, s % 100, 0));
            }
        }
        let r = op.push(tup(0, 0, 500, -1)); // absent key: no results
        assert!(r.in_order);
        assert_eq!(r.n_join, 0);
        assert_eq!(
            r.n_cross,
            u64::MAX,
            "an overflowing cross size must saturate"
        );
        assert_eq!(op.stats().cross_results, u64::MAX);
        assert_eq!(op.stats().adopted, 7_000);
    }

    #[test]
    fn probe_order_changes_access_path_not_results() {
        let query = equi_query(3, 10_000);
        let mut default_order = MswjOperator::enumerating(query.clone());
        let mut reordered = MswjOperator::enumerating(query);
        reordered.set_probe_order(vec![2, 0, 1]);
        assert_eq!(reordered.probe_order(), &[2, 0, 1]);
        for s in 0..60u64 {
            let t = tup((s % 3) as usize, s, s * 7, (s % 4) as i64);
            let mut a = Vec::new();
            let mut b = Vec::new();
            let ra = default_order.push_with(t.clone(), &mut |r| a.push(r.to_string()));
            let rb = reordered.push_with(t, &mut |r| b.push(r.to_string()));
            assert_eq!(ra.n_join, rb.n_join);
            assert_eq!(ra.indexed, rb.indexed);
            a.sort();
            b.sort();
            assert_eq!(a, b, "probe order must not change the result multiset");
        }
        assert!(default_order.stats().results > 0);
        assert_eq!(default_order.stats(), reordered.stats());
    }

    #[test]
    fn star_probe_order_changes_access_path_not_results() {
        let query = star_query();
        let mut default_order = MswjOperator::enumerating(query.clone());
        let mut reordered = MswjOperator::enumerating(query);
        reordered.set_probe_order(vec![3, 1, 0, 2]);
        for s in 0..80u64 {
            let stream = (s % 4) as usize;
            let t = if stream == 0 {
                Tuple::new(
                    0.into(),
                    s,
                    Timestamp::from_millis(s * 5),
                    vec![
                        Value::Int((s % 3) as i64),
                        Value::Int((s % 2) as i64),
                        Value::Int((s % 3) as i64),
                    ],
                )
            } else {
                tup(stream, s, s * 5, ((s * 7) % 3) as i64)
            };
            let mut a = Vec::new();
            let mut b = Vec::new();
            default_order.push_with(t.clone(), &mut |r| a.push(r.to_string()));
            reordered.push_with(t, &mut |r| b.push(r.to_string()));
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
        assert!(default_order.stats().results > 0);
        assert_eq!(default_order.stats(), reordered.stats());
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn probe_order_rejects_non_permutations() {
        let mut op = MswjOperator::new(equi_query(3, 1_000));
        op.set_probe_order(vec![0, 0, 1]);
    }

    #[test]
    fn demote_index_falls_back_with_identical_results() {
        let query = equi_query(2, 10_000);
        let mut indexed = MswjOperator::enumerating(query.clone());
        let mut demoted = MswjOperator::enumerating(query);
        demoted.demote_index();
        for s in 0..40u64 {
            let t = tup((s % 2) as usize, s, s * 9, (s % 3) as i64);
            let mut a = Vec::new();
            let mut b = Vec::new();
            let ra = indexed.push_with(t.clone(), &mut |r| a.push(r.to_string()));
            let rb = demoted.push_with(t, &mut |r| b.push(r.to_string()));
            assert_eq!(ra.n_join, rb.n_join);
            a.sort();
            b.sort();
            assert_eq!(a, b, "demotion must not change the result multiset");
        }
        assert!(indexed.stats().results > 0);
        assert_eq!(indexed.stats().fallback_probes, 0);
        assert_eq!(
            demoted.stats().indexed_probes,
            0,
            "every probe scans after demotion"
        );
    }

    #[test]
    fn first_tuple_is_always_in_order() {
        let query = equi_query(2, 1_000);
        let mut op = MswjOperator::new(query);
        let r = op.push(tup(0, 0, 999, 1));
        assert!(r.in_order);
        assert_eq!(r.n_cross, 0);
        assert_eq!(r.n_join, 0);
    }
}

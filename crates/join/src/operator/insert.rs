//! Window maintenance: expiry driven by probing arrivals, insertion of
//! in-order tuples, and the two out-of-order insertion paths — the
//! operator's own scope check (Alg. 2 / Sec. III-A) and the externally
//! decided [`MswjOperator::insert_late`] used by the sharded engine, whose
//! front-end performs the ordering and scope decisions against the *global*
//! high-water mark before any tuple reaches a shard.

use super::MswjOperator;
use mswj_types::{StreamIndex, Tuple};

impl MswjOperator {
    /// Invalidates expired tuples in the windows of every stream other than
    /// `i`, using the probing tuple's timestamp (Alg. 2, line 6).  Returns
    /// the number of expired tuples.
    pub(super) fn expire_others(&mut self, i: usize, tuple: &Tuple) -> usize {
        let mut expired = 0;
        for j in 0..self.windows.len() {
            if j != i {
                let w_j = self.query.window(StreamIndex(j));
                let bound = tuple.ts.saturating_sub_duration(w_j);
                expired += self.windows[j].expire_before(bound);
            }
        }
        expired
    }

    /// Handles an out-of-order tuple under the operator's *own* high-water
    /// mark: no probing; insert only if still within the window scope
    /// (`e.ts >= onT - W_i`, Sec. III-A).  Returns whether it was inserted.
    pub(super) fn insert_out_of_order(&mut self, tuple: Tuple) -> bool {
        self.stats.out_of_order += 1;
        let i = tuple.stream.as_usize();
        let w_i = self.query.window(StreamIndex(i));
        if tuple.ts >= self.on_t.saturating_sub_duration(w_i) {
            self.windows[i].insert(tuple);
            true
        } else {
            self.stats.dropped += 1;
            false
        }
    }

    /// Inserts an out-of-order tuple **without** probing and without the
    /// local scope check — the entry point for a sharded engine whose
    /// front-end already classified the tuple against the global `onT` and
    /// decided it must be kept.
    ///
    /// The distinction matters because a shard only sees the subsequence of
    /// tuples routed to it: a globally late tuple can look in-order to the
    /// shard (whose own `onT` lags the global one), and
    /// [`MswjOperator::push_with`] would then wrongly probe it.  This
    /// method imposes the global decision: the tuple lands in its window so
    /// it can contribute to *future* results, its own results stay lost,
    /// and the shard's `onT` is left untouched.
    ///
    /// Counted under [`OperatorStats::out_of_order`](super::OperatorStats).
    pub fn insert_late(&mut self, tuple: Tuple) {
        self.stats.out_of_order += 1;
        let i = tuple.stream.as_usize();
        debug_assert!(i < self.windows.len(), "tuple references unknown stream");
        self.windows[i].insert(tuple);
    }

    /// Adopts a tuple into its window without probing, scope checks or
    /// operator statistics — state *migration*, not stream ingestion.
    ///
    /// The sharded engine uses this when a key class switches to
    /// replicated-build / split-probe routing: the class's live build state
    /// is copied from its home shard into every other shard, and those
    /// copies must not perturb the per-shard in-order/out-of-order tallies
    /// that describe the *stream* each shard saw.  Counted under
    /// [`OperatorStats::adopted`](super::OperatorStats).
    pub fn adopt(&mut self, tuple: Tuple) {
        let i = tuple.stream.as_usize();
        debug_assert!(i < self.windows.len(), "tuple references unknown stream");
        self.stats.adopted += 1;
        self.windows[i].insert(tuple);
    }

    /// Surgically removes every live tuple of stream `i` for which `keep`
    /// returns `false`, maintaining the window's hash indexes; returns the
    /// number of removed tuples.  The inverse of [`MswjOperator::adopt`]:
    /// the sharded engine purges replicated build state from non-home
    /// shards when a split key class reverts to plain hash routing, and
    /// sheds re-homed window state on a partition-pair switch.  Counted
    /// under [`OperatorStats::evicted`](super::OperatorStats).
    pub fn evict_where(&mut self, i: StreamIndex, keep: impl FnMut(&Tuple) -> bool) -> usize {
        let removed = self.windows[i.as_usize()].retain_where(keep);
        self.stats.evicted += removed as u64;
        removed
    }
}

//! Per-push outcomes and lifetime counters of the join operator.
//!
//! Both records are small `Copy` structs: [`ProbeOutcome`] describes what a
//! single pushed tuple did, [`OperatorStats`] accumulates the same
//! quantities over an operator's lifetime.  In a sharded engine every shard
//! owns an operator and hence its own `OperatorStats` — the engine's
//! aggregate view merges them with [`OperatorStats::absorb`] next to the
//! globally-decided counters (ordering, drops, expiry).

/// What happened when one tuple was pushed into the operator.
///
/// Materialized results are not carried here: in enumerating mode they are
/// handed to the caller's emit callback one by one (see
/// [`MswjOperator::push_with`](super::MswjOperator::push_with)), so the
/// outcome itself stays allocation-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Whether the tuple arrived in timestamp order w.r.t. `onT`.
    pub in_order: bool,
    /// Whether the tuple was inserted into its window (out-of-order tuples
    /// that already fell out of the window scope are dropped).
    pub inserted: bool,
    /// Whether the probe was answered without scanning the other windows:
    /// through hash-index bucket lookups, or short-circuited because the
    /// probing key can never join (`Null`/missing).  `false` for
    /// nested-loop scans and for out-of-order (non-probing) arrivals.
    pub indexed: bool,
    /// Number of join results derived at this arrival (`n_on(e)`); zero for
    /// out-of-order tuples.
    pub n_join: u64,
    /// Size of the corresponding cross-join (`n_x(e)`), i.e. the product of
    /// the other windows' cardinalities at probe time; zero for out-of-order
    /// tuples.
    pub n_cross: u64,
    /// Number of tuples expired from other windows by this arrival.
    pub expired: usize,
}

/// Aggregate counters over the operator's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorStats {
    /// Tuples processed in timestamp order (probing arrivals).
    pub in_order: u64,
    /// Tuples processed out of timestamp order (non-probing arrivals).
    pub out_of_order: u64,
    /// Out-of-order tuples that were too old to be inserted into their
    /// window and were dropped entirely.
    pub dropped: u64,
    /// Probing arrivals answered through the hash-indexed probe path
    /// (bucket lookups or barren-key short-circuits).
    pub indexed_probes: u64,
    /// Probing arrivals that used the exhaustive nested-loop scan — either
    /// because the plan is
    /// [`ProbePlan::NestedLoop`](crate::planner::ProbePlan::NestedLoop) or
    /// because index soundness could not be guaranteed for that probe.
    pub fallback_probes: u64,
    /// Total join results produced.
    pub results: u64,
    /// Total cross-join combinations corresponding to probing arrivals.
    pub cross_results: u64,
    /// Total expired tuples across all windows.
    pub expired: u64,
    /// Tuples adopted into this operator's windows by state migration
    /// (hot-key splits and partition-pair switches), as opposed to stream
    /// ingestion — see [`MswjOperator::adopt`](super::MswjOperator::adopt).
    pub adopted: u64,
    /// Tuples surgically evicted from this operator's windows by state
    /// migration (split reverts and partition-pair switches), as opposed to
    /// window expiry — see
    /// [`MswjOperator::evict_where`](super::MswjOperator::evict_where).
    pub evicted: u64,
}

impl OperatorStats {
    /// Adds every counter of `other` into `self` — how a sharded engine
    /// folds per-shard counters into one aggregate view.
    pub fn absorb(&mut self, other: &OperatorStats) {
        self.in_order += other.in_order;
        self.out_of_order += other.out_of_order;
        self.dropped += other.dropped;
        self.indexed_probes += other.indexed_probes;
        self.fallback_probes += other.fallback_probes;
        self.results += other.results;
        self.cross_results += other.cross_results;
        self.expired += other.expired;
        self.adopted += other.adopted;
        self.evicted += other.evicted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_every_counter() {
        let mut a = OperatorStats {
            in_order: 1,
            out_of_order: 2,
            dropped: 3,
            indexed_probes: 4,
            fallback_probes: 5,
            results: 6,
            cross_results: 7,
            expired: 8,
            adopted: 9,
            evicted: 10,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(
            a,
            OperatorStats {
                in_order: 2,
                out_of_order: 4,
                dropped: 6,
                indexed_probes: 8,
                fallback_probes: 10,
                results: 12,
                cross_results: 14,
                expired: 16,
                adopted: 18,
                evicted: 20,
            }
        );
    }
}

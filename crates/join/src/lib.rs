//! # mswj-join — m-way sliding window join substrate
//!
//! This crate implements the join-side machinery the ICDE'16 paper builds
//! on: time-based sliding windows with value→tuple hash indexes on their
//! equi-join columns, join conditions ranging from cross joins to
//! user-defined predicates, and an MJoin-style m-way sliding window join
//! operator implementing Alg. 2 of the paper (in-order tuples probe the
//! windows of all other streams and produce results; out-of-order tuples
//! are inserted without probing and therefore lose their results).
//!
//! Probing is planned from the condition's [`EquiStructure`] (see
//! [`planner`]): common-key and star equi-joins look up only the matching
//! hash bucket in every other window, with an automatic per-probe fallback
//! to the exhaustive nested-loop scan whenever index soundness cannot be
//! guaranteed — so arbitrary conditions and mixed-type key columns remain
//! exactly as correct as before, just slower.
//!
//! The operator reports, for every processed tuple, both the number of
//! actual join results `n_on(e)` and the size of the corresponding
//! cross-join `n_x(e)` — exactly the two quantities the Tuple-Productivity
//! Profiler of the disorder-handling framework consumes (Sec. IV-B).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod condition;
pub mod operator;
pub mod partition;
pub mod planner;
pub mod query;
pub mod result;
pub mod window;

pub use condition::{
    BandJoin, CommonKeyEquiJoin, ConditionDescriptor, CrossJoin, DistanceWithin, EquiStructure,
    JoinCondition, PredicateFn, StarEquiJoin,
};
pub use operator::{MswjOperator, OperatorStats, ProbeOutcome};
pub use partition::{join_key_hash, Partitioner, Route, RoutingTable};
pub use planner::{ProbePlan, ProbeStrategy};
pub use query::JoinQuery;
pub use result::JoinResult;
pub use window::{set_default_segment_capacity, Window, WindowStats};

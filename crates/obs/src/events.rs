//! Bounded ring of recent structured runtime events.
//!
//! Checkpoints, skew split/unsplit transitions, plan revisions and
//! heavy-hitter warnings are *rare* (they only happen at adaptation
//! checkpoints and idle barriers), so the ring may lock a mutex and
//! allocate its message strings — none of that touches the per-event
//! ingestion hot path.  The ring keeps the most recent
//! [`EVENT_RING_CAPACITY`] events; older ones fall off the front.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Maximum number of events retained by the ring.
pub const EVENT_RING_CAPACITY: usize = 128;

/// What kind of runtime transition an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A periodic adaptation checkpoint was taken.
    Checkpoint,
    /// The skew detector split a hot key out of its pinned shard.
    SkewSplit,
    /// The skew detector folded a previously split key back.
    SkewUnsplit,
    /// The one-time heavy-hitter warning (a single shard holds > 50% of
    /// the routed volume and no splitting is possible or enabled).
    HeavyHitter,
    /// The runtime re-planner revised the probe plan (pair switch,
    /// reorder, or index demotion).
    PlanRevision,
}

impl EventKind {
    /// Stable lower-snake identifier used by both exporters.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::Checkpoint => "checkpoint",
            EventKind::SkewSplit => "skew_split",
            EventKind::SkewUnsplit => "skew_unsplit",
            EventKind::HeavyHitter => "heavy_hitter",
            EventKind::PlanRevision => "plan_revision",
        }
    }
}

/// One structured runtime event.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    /// Arrival-axis timestamp of the transition, in milliseconds.
    pub at_ms: u64,
    /// Transition category.
    pub kind: EventKind,
    /// Human-readable one-line description.
    pub message: String,
}

/// The bounded ring itself (interior-mutable, shared behind `Telemetry`).
#[derive(Debug, Default)]
pub(crate) struct EventRing {
    events: Mutex<VecDeque<TelemetryEvent>>,
}

impl EventRing {
    pub(crate) fn push(&self, event: TelemetryEvent) {
        let mut ring = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == EVENT_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    pub(crate) fn snapshot(&self) -> Vec<TelemetryEvent> {
        let ring = self.events.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().cloned().collect()
    }

    pub(crate) fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TelemetryEvent {
        TelemetryEvent {
            at_ms: i,
            kind: EventKind::Checkpoint,
            message: format!("event {i}"),
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let ring = EventRing::default();
        for i in 0..(EVENT_RING_CAPACITY as u64 + 10) {
            ring.push(ev(i));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), EVENT_RING_CAPACITY);
        assert_eq!(events.first().unwrap().at_ms, 10);
        assert_eq!(events.last().unwrap().at_ms, EVENT_RING_CAPACITY as u64 + 9);
    }

    #[test]
    fn kinds_have_stable_identifiers() {
        assert_eq!(EventKind::HeavyHitter.as_str(), "heavy_hitter");
        assert_eq!(EventKind::PlanRevision.as_str(), "plan_revision");
    }
}

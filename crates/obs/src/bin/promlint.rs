//! `promlint` — lint a Prometheus text-exposition-format document.
//!
//! Reads the file named as the first argument (or stdin when none is
//! given), validates metric-name / type-line / label well-formedness with
//! [`mswj_obs::check_prometheus_text`], and exits non-zero on the first
//! malformed line.  CI pipes a live `/metrics` scrape through this.

use std::io::Read;

fn main() {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("--help") || arg.as_deref() == Some("-h") {
        println!("usage: promlint [FILE]   (reads stdin when FILE is omitted)");
        return;
    }
    let input = match &arg {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("promlint: cannot read {path}: {e}");
            std::process::exit(2);
        }),
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("promlint: cannot read stdin: {e}");
                std::process::exit(2);
            }
            buf
        }
    };
    match mswj_obs::check_prometheus_text(&input) {
        Ok(samples) => println!("ok: {samples} well-formed samples"),
        Err(message) => {
            eprintln!("promlint: {message}");
            std::process::exit(1);
        }
    }
}

//! The embeddable metrics exporter: one background thread, plain HTTP
//! over a `std::net::TcpListener` — no external dependencies.
//!
//! Two endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition format 0.0.4
//! * `GET /metrics.json` — the same registry (plus the event ring) as JSON
//!
//! Requests are answered sequentially on the exporter thread; a scrape is
//! a few kilobytes, and per-connection read/write timeouts keep a stalled
//! client from wedging the exporter.  Dropping the handle (or calling
//! [`MetricsExporter::shutdown`]) stops the thread.

use crate::registry::Telemetry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection socket timeout: a scrape either completes quickly or is
/// abandoned.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(2);

/// Upper bound on an accepted request head; anything longer is rejected.
const MAX_REQUEST_BYTES: usize = 4096;

/// A running metrics endpoint serving a [`Telemetry`] registry.
#[derive(Debug)]
pub struct MetricsExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `telemetry` on a background thread.
    pub fn serve<A: ToSocketAddrs>(addr: A, telemetry: Telemetry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mswj-metrics".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Errors on one connection (timeout, disconnect) never
                    // take the exporter down.
                    let _ = handle_connection(stream, &telemetry);
                }
            })?;
        Ok(MetricsExporter {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the exporter thread and waits for it to exit.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect_timeout(&self.addr, CLIENT_TIMEOUT);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, telemetry: &Telemetry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 512];
    // Read until the end of the request head (we ignore any body).
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                telemetry.render_prometheus(),
            ),
            "/metrics.json" => (
                "200 OK",
                "application/json; charset=utf-8",
                telemetry.render_json(),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "try /metrics or /metrics.json\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("full response");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_prometheus_and_json_and_404() {
        let telemetry = Telemetry::new();
        telemetry.session().k_ms.set(321.0);
        let mut exporter = MetricsExporter::serve("127.0.0.1:0", telemetry.clone()).expect("bind");
        let addr = exporter.local_addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("mswj_k_ms 321"));
        crate::check_prometheus_text(&body).expect("scrape must lint clean");

        let (head, body) = http_get(addr, "/metrics.json");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.contains("\"mswj_k_ms\":321"));

        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        exporter.shutdown();
        // After shutdown the port stops answering (connect may succeed
        // briefly on some stacks, but a second shutdown must be a no-op).
        exporter.shutdown();
    }
}

//! The pre-registered instrument registry behind the [`Telemetry`] handle.
//!
//! Every instrument a session can ever touch is declared here as a named
//! struct field, not looked up in a map: registration happens when the
//! handle (or a shard scope) is built, so steady-state ingestion performs
//! zero allocation and zero hashing — recording is a direct field access
//! plus a relaxed atomic.  Per-shard scopes are the only dynamic part;
//! they are created once, at engine construction (or shard-server
//! connection) time, behind a briefly-held mutex.

use crate::events::{EventRing, TelemetryEvent};
use crate::instruments::{Counter, Gauge, Histogram};
use std::sync::{Arc, Mutex};

/// Callback invoked synchronously for every structured event, in the
/// thread that emitted it (always a barrier/checkpoint context, never the
/// per-event hot path).
pub type EventCallback = Arc<dyn Fn(&TelemetryEvent) + Send + Sync>;

/// Session-wide instruments, all pre-registered at handle construction.
///
/// The quality gauges mirror the paper's runtime signals: the buffer size
/// K currently in force, the instant recall requirement Γ′ (Eq. 7), the
/// model-estimated and the windowed *observed* recall, and the fraction of
/// tuples dropped as hopelessly late.
#[derive(Debug, Default)]
pub struct SessionInstruments {
    /// Buffer size K currently in force, milliseconds (`mswj_k_ms`).
    pub k_ms: Gauge,
    /// Instant recall requirement Γ′ of the last adaptation
    /// (`mswj_gamma_prime`); `NaN` for non-adaptive policies.
    pub gamma_prime: Gauge,
    /// Model-estimated recall at the chosen K (`mswj_recall_estimated`);
    /// `NaN` for non-model policies.
    pub recall_estimated: Gauge,
    /// Observed recall over the monitor window `P − L`
    /// (`mswj_recall_observed`); `NaN` until the first checkpoint.
    pub recall_observed: Gauge,
    /// Fraction of join-stage arrivals dropped as too late
    /// (`mswj_drop_rate`).
    pub drop_rate: Gauge,
    /// Adaptation checkpoints taken so far (`mswj_checkpoints_total`).
    pub checkpoints: Counter,
    /// Arrival events ingested (`mswj_events_ingested_total`).
    pub events_ingested: Counter,
    /// Join results produced (`mswj_results_total`).
    pub results_emitted: Counter,
    /// Tuples dropped by the join stage (`mswj_dropped_total`).
    pub tuples_dropped: Counter,
    /// Raw K-slack tuple delays, milliseconds (`mswj_kslack_delay_ms`).
    pub kslack_delay_ms: Histogram,
    /// Wall-clock ingest→emit latency per driven batch, nanoseconds
    /// (`mswj_ingest_emit_latency_nanos`).
    pub ingest_emit_latency_nanos: Histogram,
}

/// Per-shard instruments, registered when the engine (or a shard server
/// connection) comes up.  All values are republished at idle barriers and
/// checkpoints from the engine's runtime counters — the shard hot loops
/// never touch them.
#[derive(Debug, Default)]
pub struct ShardInstruments {
    /// High-water pending-epoch queue depth (`mswj_shard_queue_depth`).
    pub queue_depth: Gauge,
    /// Fraction of wall time this shard's executor spent busy since the
    /// previous publish (`mswj_shard_busy_share`).
    pub busy_share: Gauge,
    /// Estimated live window bytes held by the shard
    /// (`mswj_shard_window_bytes`).
    pub window_bytes: Gauge,
    /// Columnar storage segments held by the shard
    /// (`mswj_shard_window_segments`).
    pub window_segments: Gauge,
    /// Tuples routed to the shard so far (`mswj_shard_routed_total`).
    pub routed: Gauge,
    /// Epochs the shard has executed (`mswj_shard_epochs_total`).
    pub epochs_executed: Gauge,
    /// Wire frames sent to a remote shard (`mswj_shard_frames_sent`).
    pub frames_sent: Gauge,
    /// Wire frames received from a remote shard
    /// (`mswj_shard_frames_received`).
    pub frames_received: Gauge,
    /// Wire bytes sent to a remote shard (`mswj_shard_bytes_sent`).
    pub bytes_sent: Gauge,
    /// Wire bytes received from a remote shard
    /// (`mswj_shard_bytes_received`).
    pub bytes_received: Gauge,
    /// Smoothed request→reply round-trip time of the shard link,
    /// nanoseconds (`mswj_shard_rtt_nanos`).
    pub rtt_nanos: Gauge,
}

#[derive(Default)]
pub(crate) struct Inner {
    pub(crate) session: SessionInstruments,
    pub(crate) shards: Mutex<Vec<Arc<ShardInstruments>>>,
    pub(crate) events: EventRing,
    pub(crate) on_event: Mutex<Option<EventCallback>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("session", &self.session)
            .field("shards", &self.shard_len())
            .field("buffered_events", &self.events.len())
            .finish_non_exhaustive()
    }
}

impl Inner {
    fn shard_len(&self) -> usize {
        self.shards.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// The shared telemetry handle.
///
/// Cheap to clone (an `Arc`); every component of a session — builder,
/// pipeline, engine, transport, exporter — holds the same registry.
/// Telemetry is strictly observational: nothing read from or written to a
/// handle feeds back into join results, adaptation decisions, or the
/// sequential-equivalent merge order.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Telemetry {
    /// Creates a fresh registry with every session instrument
    /// pre-registered and zeroed.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// The session-wide instruments.
    pub fn session(&self) -> &SessionInstruments {
        &self.inner.session
    }

    /// The instrument scope of shard `index`, registering it (and any
    /// missing lower-indexed scopes) on first use.  The returned `Arc`
    /// can be stored and updated without further locking.
    pub fn shard(&self, index: usize) -> Arc<ShardInstruments> {
        let mut shards = self.inner.shards.lock().unwrap_or_else(|e| e.into_inner());
        while shards.len() <= index {
            shards.push(Arc::new(ShardInstruments::default()));
        }
        Arc::clone(&shards[index])
    }

    /// Number of registered shard scopes.
    pub fn shard_count(&self) -> usize {
        self.inner
            .shards
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    pub(crate) fn shards_snapshot(&self) -> Vec<Arc<ShardInstruments>> {
        self.inner
            .shards
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Installs (or replaces) the synchronous event callback.
    pub fn set_event_callback(&self, callback: EventCallback) {
        *self
            .inner
            .on_event
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(callback);
    }

    /// Pushes a structured event into the bounded ring and invokes the
    /// callback, if one is installed.  Called from barrier/checkpoint
    /// contexts only — it locks and may allocate.
    pub fn emit(&self, event: TelemetryEvent) {
        let callback = self
            .inner
            .on_event
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if let Some(cb) = callback {
            cb(&event);
        }
        self.inner.events.push(event);
    }

    /// The retained recent events, oldest first.
    pub fn recent_events(&self) -> Vec<TelemetryEvent> {
        self.inner.events.snapshot()
    }

    /// Number of events currently buffered in the ring.
    pub fn buffered_events(&self) -> usize {
        self.inner.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn shard_scopes_register_on_demand_and_are_shared() {
        let t = Telemetry::new();
        assert_eq!(t.shard_count(), 0);
        let s2 = t.shard(2);
        assert_eq!(t.shard_count(), 3);
        s2.queue_depth.set(7.0);
        // The same scope is returned on re-request, across clones.
        assert_eq!(t.clone().shard(2).queue_depth.get(), 7.0);
    }

    #[test]
    fn emit_invokes_the_callback_and_buffers() {
        let t = Telemetry::new();
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        t.set_event_callback(Arc::new(move |ev| {
            assert_eq!(ev.kind, EventKind::HeavyHitter);
            seen2.fetch_add(1, Ordering::SeqCst);
        }));
        t.emit(TelemetryEvent {
            at_ms: 42,
            kind: EventKind::HeavyHitter,
            message: "shard 1 holds 80% of routed volume".into(),
        });
        assert_eq!(seen.load(Ordering::SeqCst), 1);
        assert_eq!(t.buffered_events(), 1);
        assert_eq!(t.recent_events()[0].at_ms, 42);
    }
}

//! # mswj-obs — live telemetry for the m-way stream join
//!
//! The paper's contribution is a *runtime* quality/latency trade-off: the
//! buffer size K, the instant recall requirement Γ′, the observed recall
//! and the drop rate all evolve every adaptation interval.  This crate
//! makes those signals (plus the executor/transport runtime the parallel
//! backends add) observable **while the join runs**, without perturbing
//! it:
//!
//! * [`Telemetry`] — a cheap-to-clone handle over a lock-light registry of
//!   pre-registered [`Counter`]s, [`Gauge`]s and fixed-bucket log₂
//!   [`Histogram`]s.  Hot-path recording is a few relaxed atomics: no
//!   locks, no allocation, no map lookups.
//! * A bounded ring of recent structured [`TelemetryEvent`]s
//!   (checkpoints, skew and plan transitions, heavy-hitter warnings) with
//!   an optional synchronous callback — the replacement for ad-hoc
//!   `eprintln!` diagnostics.
//! * Renderers for the Prometheus text exposition format and JSON, and a
//!   dependency-free HTTP [`MetricsExporter`] serving both on a
//!   background thread (`GET /metrics`, `GET /metrics.json`).
//! * [`check_prometheus_text`] — a small text-format linter (also shipped
//!   as the `promlint` binary) used by CI to validate live scrapes.
//!
//! Telemetry is strictly observe-only: instruments are updated outside
//! the sequential-equivalent merge path, so enabling it cannot change a
//! single produced byte.
//!
//! ```
//! use mswj_obs::{MetricsExporter, Telemetry};
//!
//! let telemetry = Telemetry::new();
//! telemetry.session().k_ms.set(250.0);
//! telemetry.session().kslack_delay_ms.record(12);
//!
//! // Serve it (ephemeral port) and scrape once.
//! let exporter = MetricsExporter::serve("127.0.0.1:0", telemetry.clone()).unwrap();
//! assert!(telemetry.render_prometheus().contains("mswj_k_ms 250"));
//! drop(exporter); // stops the background thread
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod events;
mod exporter;
mod instruments;
mod promcheck;
mod registry;
mod render;

pub use events::{EventKind, TelemetryEvent, EVENT_RING_CAPACITY};
pub use exporter::MetricsExporter;
pub use instruments::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use promcheck::check_prometheus_text;
pub use registry::{EventCallback, SessionInstruments, ShardInstruments, Telemetry};

//! A small Prometheus text-exposition-format (0.0.4) checker.
//!
//! Used by CI to lint a live scrape of `/metrics` and by the test suite to
//! validate the renderer.  It checks structural well-formedness — metric
//! name syntax, `# HELP`/`# TYPE` comment shape, label syntax, sample
//! value parseability, and that samples of a `TYPE`d metric match the
//! declared type's naming (histogram series use the `_bucket`/`_sum`/
//! `_count` suffixes) — not semantic monotonicity.

use std::collections::HashMap;

/// Returns `Ok(sample_count)` if `input` is well-formed Prometheus text
/// exposition format, or a message naming the first offending line.
pub fn check_prometheus_text(input: &str) -> Result<usize, String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples = 0usize;
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim_end();
        let at = |msg: &str| format!("line {}: {msg}: {line:?}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(at("HELP line names an invalid metric"));
                }
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().unwrap_or("");
                let ty = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(at("TYPE line names an invalid metric"));
                }
                if !matches!(
                    ty,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(at("TYPE line declares an unknown type"));
                }
                if parts.next().is_some() {
                    return Err(at("TYPE line has trailing tokens"));
                }
                types.insert(name.to_string(), ty.to_string());
            }
            // Other comments are free-form and legal.
            continue;
        }
        // A sample: name[{labels}] value [timestamp]
        let (name_and_labels, rest) = match line.find([' ', '{']) {
            Some(i) if line.as_bytes()[i] == b'{' => {
                let close = line.find('}').ok_or_else(|| at("unterminated label set"))?;
                (line[..=close].to_string(), line[close + 1..].trim_start())
            }
            Some(i) => (line[..i].to_string(), line[i..].trim_start()),
            None => return Err(at("sample line has no value")),
        };
        let (name, labels) = match name_and_labels.find('{') {
            Some(i) => (
                &name_and_labels[..i],
                Some(&name_and_labels[i + 1..name_and_labels.len() - 1]),
            ),
            None => (name_and_labels.as_str(), None),
        };
        if !valid_metric_name(name) {
            return Err(at("invalid metric name"));
        }
        let label_names = match labels {
            Some(labels) => check_labels(labels).map_err(|m| at(&m))?,
            None => Vec::new(),
        };
        let mut value_parts = rest.split_whitespace();
        let value = value_parts.next().ok_or_else(|| at("missing value"))?;
        if !valid_sample_value(value) {
            return Err(at("unparseable sample value"));
        }
        if let Some(ts) = value_parts.next() {
            if ts.parse::<i64>().is_err() {
                return Err(at("unparseable timestamp"));
            }
        }
        if value_parts.next().is_some() {
            return Err(at("trailing tokens after sample"));
        }
        // A histogram-typed family must only be exposed through its
        // _bucket/_sum/_count series, and _bucket needs an `le` label.
        let base = histogram_base(name);
        if let Some(base_name) = base {
            if types.get(base_name).map(String::as_str) == Some("histogram")
                && name.ends_with("_bucket")
                && !label_names.iter().any(|n| n == "le")
            {
                return Err(at("histogram _bucket sample lacks an le label"));
            }
        } else if types.get(name).map(String::as_str) == Some("histogram") {
            return Err(at(
                "histogram family exposed without _bucket/_sum/_count suffix",
            ));
        }
        samples += 1;
    }
    Ok(samples)
}

fn histogram_base(name: &str) -> Option<&str> {
    name.strip_suffix("_bucket")
        .or_else(|| name.strip_suffix("_sum"))
        .or_else(|| name.strip_suffix("_count"))
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn valid_sample_value(value: &str) -> bool {
    matches!(value, "NaN" | "+Inf" | "-Inf" | "Inf") || value.parse::<f64>().is_ok()
}

/// Validates the label pairs and returns their names.
fn check_labels(labels: &str) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    if labels.is_empty() {
        return Ok(names);
    }
    // Split on commas outside quotes.
    let mut rest = labels;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| "label pair lacks '='".to_string())?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("invalid label name {name:?}"));
        }
        names.push(name.to_string());
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err("label value is not quoted".to_string());
        }
        // Find the closing quote, honouring backslash escapes.
        let bytes = after.as_bytes();
        let mut i = 1;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => break,
                _ => i += 1,
            }
        }
        if i >= bytes.len() {
            return Err("unterminated label value".to_string());
        }
        let tail = after[i + 1..].trim_start();
        if tail.is_empty() {
            return Ok(names);
        }
        rest = tail
            .strip_prefix(',')
            .ok_or_else(|| "label pairs not comma-separated".to_string())?
            .trim_start();
        if rest.is_empty() {
            // A trailing comma is tolerated by Prometheus parsers.
            return Ok(names);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_the_renderers_own_output() {
        let t = crate::Telemetry::new();
        t.session().k_ms.set(100.0);
        t.session().kslack_delay_ms.record(5);
        t.shard(0).queue_depth.set(3.0);
        let n = check_prometheus_text(&t.render_prometheus()).expect("well-formed");
        assert!(n > 30, "expected many samples, got {n}");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(check_prometheus_text("1bad_name 3\n").is_err());
        assert!(check_prometheus_text("ok_name notanumber\n").is_err());
        assert!(check_prometheus_text("ok{le=\"unterminated} 1\n").is_err());
        assert!(check_prometheus_text("ok{9bad=\"x\"} 1\n").is_err());
        assert!(check_prometheus_text("# TYPE ok widget\nok 1\n").is_err());
        assert!(
            check_prometheus_text("# TYPE h histogram\nh 1\n").is_err(),
            "histogram family must use _bucket/_sum/_count"
        );
        assert!(check_prometheus_text("# TYPE h histogram\nh_bucket{notle=\"1\"} 1\n").is_err());
    }

    #[test]
    fn accepts_specials_and_timestamps() {
        let ok = "g NaN\ng2 +Inf\ng3{a=\"b\",c=\"d\"} 1.5 1700000000\n";
        assert_eq!(check_prometheus_text(ok).unwrap(), 3);
    }
}

//! Snapshot rendering: Prometheus text exposition format and JSON.
//!
//! Both renderers read the registry with relaxed loads — a scrape observes
//! a near-instantaneous, not strictly atomic, picture of the instruments,
//! which is all a monitoring system expects.  Rendering allocates freely;
//! it runs on the exporter thread (or at process exit for
//! `--metrics-out`), never on the ingestion path.

use crate::instruments::{Histogram, HISTOGRAM_BUCKETS};
use crate::registry::{ShardInstruments, Telemetry};
use std::fmt::Write as _;

/// Formats one sample value the way the Prometheus text format expects:
/// integral values without a fractional part, specials as `NaN`/`+Inf`/
/// `-Inf`.
fn prom_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v == v.trunc() && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn prom_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {}", prom_value(value));
}

fn prom_counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn prom_histogram(out: &mut String, name: &str, help: &str, h: &Histogram) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let buckets = h.bucket_counts();
    let mut cumulative = 0u64;
    for (idx, count) in buckets.iter().enumerate() {
        cumulative += count;
        match Histogram::bucket_upper_bound(idx) {
            Some(le) => {
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            None => {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            }
        }
    }
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// One labelled per-shard gauge family.
fn prom_shard_gauge(
    out: &mut String,
    name: &str,
    help: &str,
    shards: &[std::sync::Arc<ShardInstruments>],
    get: impl Fn(&ShardInstruments) -> f64,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    for (i, s) in shards.iter().enumerate() {
        let _ = writeln!(out, "{name}{{shard=\"{i}\"}} {}", prom_value(get(s)));
    }
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON has no `NaN`/`Inf`: map non-finite gauges to `null`.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 9e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

fn json_histogram(h: &Histogram) -> String {
    let buckets = h.bucket_counts();
    let mut parts = Vec::with_capacity(HISTOGRAM_BUCKETS);
    for (idx, count) in buckets.iter().enumerate() {
        let le = match Histogram::bucket_upper_bound(idx) {
            Some(le) => le.to_string(),
            None => "null".to_string(),
        };
        parts.push(format!("{{\"le\":{le},\"count\":{count}}}"));
    }
    format!(
        "{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
        h.count(),
        h.sum(),
        parts.join(",")
    )
}

impl Telemetry {
    /// Renders the whole registry in the Prometheus text exposition
    /// format (version 0.0.4), the payload of `GET /metrics`.
    pub fn render_prometheus(&self) -> String {
        let s = self.session();
        let shards = self.shards_snapshot();
        let mut out = String::with_capacity(4096);
        prom_gauge(
            &mut out,
            "mswj_k_ms",
            "Buffer size K currently in force, in milliseconds.",
            s.k_ms.get(),
        );
        prom_gauge(
            &mut out,
            "mswj_gamma_prime",
            "Instant recall requirement Gamma' of the last adaptation (NaN for non-adaptive policies).",
            s.gamma_prime.get(),
        );
        prom_gauge(
            &mut out,
            "mswj_recall_estimated",
            "Model-estimated recall at the chosen K (NaN for non-model policies).",
            s.recall_estimated.get(),
        );
        prom_gauge(
            &mut out,
            "mswj_recall_observed",
            "Observed recall over the sliding monitor window P - L (NaN before the first checkpoint).",
            s.recall_observed.get(),
        );
        prom_gauge(
            &mut out,
            "mswj_drop_rate",
            "Fraction of join-stage arrivals dropped as too late.",
            s.drop_rate.get(),
        );
        prom_counter(
            &mut out,
            "mswj_checkpoints_total",
            "Adaptation checkpoints taken.",
            s.checkpoints.get(),
        );
        prom_counter(
            &mut out,
            "mswj_events_ingested_total",
            "Arrival events ingested by the pipeline.",
            s.events_ingested.get(),
        );
        prom_counter(
            &mut out,
            "mswj_results_total",
            "Join results produced.",
            s.results_emitted.get(),
        );
        prom_counter(
            &mut out,
            "mswj_dropped_total",
            "Tuples dropped by the join stage as hopelessly late.",
            s.tuples_dropped.get(),
        );
        prom_histogram(
            &mut out,
            "mswj_kslack_delay_ms",
            "Raw K-slack tuple delays, in milliseconds.",
            &s.kslack_delay_ms,
        );
        prom_histogram(
            &mut out,
            "mswj_ingest_emit_latency_nanos",
            "Wall-clock ingest-to-emit latency per driven batch, in nanoseconds.",
            &s.ingest_emit_latency_nanos,
        );
        if !shards.is_empty() {
            prom_shard_gauge(
                &mut out,
                "mswj_shard_queue_depth",
                "High-water pending-epoch queue depth of the shard.",
                &shards,
                |s| s.queue_depth.get(),
            );
            prom_shard_gauge(
                &mut out,
                "mswj_shard_busy_share",
                "Fraction of wall time the shard executor was busy since the previous publish.",
                &shards,
                |s| s.busy_share.get(),
            );
            prom_shard_gauge(
                &mut out,
                "mswj_shard_window_bytes",
                "Estimated live window bytes held by the shard.",
                &shards,
                |s| s.window_bytes.get(),
            );
            prom_shard_gauge(
                &mut out,
                "mswj_shard_window_segments",
                "Columnar storage segments held by the shard.",
                &shards,
                |s| s.window_segments.get(),
            );
            prom_shard_gauge(
                &mut out,
                "mswj_shard_routed_total",
                "Tuples routed to the shard so far.",
                &shards,
                |s| s.routed.get(),
            );
            prom_shard_gauge(
                &mut out,
                "mswj_shard_epochs_total",
                "Epochs the shard has executed.",
                &shards,
                |s| s.epochs_executed.get(),
            );
            prom_shard_gauge(
                &mut out,
                "mswj_shard_frames_sent",
                "Wire frames sent to the remote shard.",
                &shards,
                |s| s.frames_sent.get(),
            );
            prom_shard_gauge(
                &mut out,
                "mswj_shard_frames_received",
                "Wire frames received from the remote shard.",
                &shards,
                |s| s.frames_received.get(),
            );
            prom_shard_gauge(
                &mut out,
                "mswj_shard_bytes_sent",
                "Wire bytes sent to the remote shard.",
                &shards,
                |s| s.bytes_sent.get(),
            );
            prom_shard_gauge(
                &mut out,
                "mswj_shard_bytes_received",
                "Wire bytes received from the remote shard.",
                &shards,
                |s| s.bytes_received.get(),
            );
            prom_shard_gauge(
                &mut out,
                "mswj_shard_rtt_nanos",
                "Smoothed request-reply round-trip time of the shard link, in nanoseconds.",
                &shards,
                |s| s.rtt_nanos.get(),
            );
        }
        prom_gauge(
            &mut out,
            "mswj_events_buffered",
            "Structured events currently retained in the bounded ring.",
            self.buffered_events() as f64,
        );
        out
    }

    /// Renders the whole registry (including the event ring) as a single
    /// JSON object, the payload of `GET /metrics.json` and of
    /// `--metrics-out`.
    pub fn render_json(&self) -> String {
        let s = self.session();
        let shards = self.shards_snapshot();
        let mut out = String::with_capacity(4096);
        out.push('{');
        let _ = write!(
            out,
            "\"gauges\":{{\"mswj_k_ms\":{},\"mswj_gamma_prime\":{},\"mswj_recall_estimated\":{},\"mswj_recall_observed\":{},\"mswj_drop_rate\":{}}}",
            json_number(s.k_ms.get()),
            json_number(s.gamma_prime.get()),
            json_number(s.recall_estimated.get()),
            json_number(s.recall_observed.get()),
            json_number(s.drop_rate.get()),
        );
        let _ = write!(
            out,
            ",\"counters\":{{\"mswj_checkpoints_total\":{},\"mswj_events_ingested_total\":{},\"mswj_results_total\":{},\"mswj_dropped_total\":{}}}",
            s.checkpoints.get(),
            s.events_ingested.get(),
            s.results_emitted.get(),
            s.tuples_dropped.get(),
        );
        let _ = write!(
            out,
            ",\"histograms\":{{\"mswj_kslack_delay_ms\":{},\"mswj_ingest_emit_latency_nanos\":{}}}",
            json_histogram(&s.kslack_delay_ms),
            json_histogram(&s.ingest_emit_latency_nanos),
        );
        out.push_str(",\"shards\":[");
        for (i, sh) in shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"shard\":{i},\"queue_depth\":{},\"busy_share\":{},\"window_bytes\":{},\"window_segments\":{},\"routed\":{},\"epochs_executed\":{},\"frames_sent\":{},\"frames_received\":{},\"bytes_sent\":{},\"bytes_received\":{},\"rtt_nanos\":{}}}",
                json_number(sh.queue_depth.get()),
                json_number(sh.busy_share.get()),
                json_number(sh.window_bytes.get()),
                json_number(sh.window_segments.get()),
                json_number(sh.routed.get()),
                json_number(sh.epochs_executed.get()),
                json_number(sh.frames_sent.get()),
                json_number(sh.frames_received.get()),
                json_number(sh.bytes_sent.get()),
                json_number(sh.bytes_received.get()),
                json_number(sh.rtt_nanos.get()),
            );
        }
        out.push_str("],\"events\":[");
        for (i, ev) in self.recent_events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at_ms\":{},\"kind\":\"{}\",\"message\":\"{}\"}}",
                ev.at_ms,
                ev.kind.as_str(),
                json_escape(&ev.message),
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventKind, TelemetryEvent};

    #[test]
    fn prometheus_output_carries_the_quality_gauges() {
        let t = Telemetry::new();
        t.session().k_ms.set(250.0);
        t.session().gamma_prime.set(f64::NAN);
        t.session().recall_observed.set(0.97);
        t.session().kslack_delay_ms.record(12);
        t.shard(1).window_bytes.set(4096.0);
        let text = t.render_prometheus();
        assert!(text.contains("# TYPE mswj_k_ms gauge"));
        assert!(text.contains("mswj_k_ms 250"));
        assert!(text.contains("mswj_recall_observed 0.97"));
        assert!(text.contains("# TYPE mswj_kslack_delay_ms histogram"));
        assert!(text.contains("mswj_kslack_delay_ms_count 1"));
        assert!(text.contains("mswj_kslack_delay_ms_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("mswj_shard_window_bytes{shard=\"1\"} 4096"));
        // NaN quality gauges render as the text format's NaN literal.
        assert!(text.contains("mswj_gamma_prime NaN"));
    }

    #[test]
    fn json_output_is_parseable_shape_and_escapes_messages() {
        let t = Telemetry::new();
        t.session().gamma_prime.set(f64::NAN);
        t.emit(TelemetryEvent {
            at_ms: 7,
            kind: EventKind::SkewSplit,
            message: "split \"hot\" key\n".into(),
        });
        let json = t.render_json();
        assert!(json.contains("\"mswj_gamma_prime\":null"));
        assert!(json.contains("\"kind\":\"skew_split\""));
        assert!(json.contains("split \\\"hot\\\" key\\n"));
        assert!(json.starts_with('{') && json.ends_with('}'));
        // Balanced braces/brackets as a cheap structural check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn prom_value_formats_specials() {
        assert_eq!(prom_value(f64::NAN), "NaN");
        assert_eq!(prom_value(f64::INFINITY), "+Inf");
        assert_eq!(prom_value(1.0), "1");
        assert_eq!(prom_value(0.5), "0.5");
    }
}

//! The three instrument primitives: [`Counter`], [`Gauge`] and the fixed
//! log₂-bucket [`Histogram`].
//!
//! All three are plain clusters of [`AtomicU64`]s: updating any of them
//! from the ingestion hot path is a handful of relaxed atomic operations —
//! no locks, no allocation, no branching beyond the bucket index
//! computation.  Reads (snapshots, renderers) use the same relaxed loads;
//! telemetry is observational, so cross-instrument consistency is not
//! required and not promised.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` gauge (stored as raw bits in an [`AtomicU64`]).
///
/// Gauges start at `0.0`.  `NaN` is a legal value (the quality gauges of a
/// non-adaptive policy stay `NaN`); the JSON renderer maps it to `null`,
/// the Prometheus renderer emits the literal `NaN` the text format allows.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of buckets in every [`Histogram`], including the `0` bucket and
/// the unbounded overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket base-2 logarithmic histogram of `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values in
/// `[2^(i−1), 2^i − 1]`; the last bucket is unbounded (`+Inf`).  The bucket
/// layout is baked in at compile time, so [`Histogram::record`] is three
/// relaxed `fetch_add`s and never allocates — safe on the per-event hot
/// path.  Units are the caller's business: the registry names each
/// histogram with its unit (`_ms`, `_nanos`).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts, in bucket order.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Inclusive upper bound of bucket `idx`, or `None` for the unbounded
    /// overflow bucket.
    pub fn bucket_upper_bound(idx: usize) -> Option<u64> {
        if idx + 1 >= HISTOGRAM_BUCKETS {
            None
        } else {
            Some((1u64 << idx) - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn gauge_holds_last_value_including_nan() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(0.95);
        assert_eq!(g.get(), 0.95);
        g.set(f64::NAN);
        assert!(g.get().is_nan());
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1024); // bucket 11
        h.record(1 << 40); // overflow bucket
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[2], 2);
        assert_eq!(buckets[11], 1);
        assert_eq!(buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 2 + 3 + 1024 + (1 << 40));
    }

    #[test]
    fn bucket_bounds_cover_their_values() {
        // Every value in bucket i must be ≤ its upper bound and > the
        // previous bucket's bound.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 30] {
            let idx = if v == 0 {
                0
            } else {
                (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
            };
            if let Some(le) = Histogram::bucket_upper_bound(idx) {
                assert!(v <= le, "{v} > le {le} of its bucket {idx}");
            }
            if idx > 0 {
                let below = Histogram::bucket_upper_bound(idx - 1).unwrap();
                assert!(v > below, "{v} ≤ le {below} of the bucket below {idx}");
            }
        }
        assert_eq!(Histogram::bucket_upper_bound(0), Some(0));
        assert_eq!(Histogram::bucket_upper_bound(1), Some(1));
        assert_eq!(Histogram::bucket_upper_bound(2), Some(3));
        assert_eq!(Histogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1), None);
    }
}

//! Stream tuples and their delay annotations.
//!
//! A tuple `e_{i,j}` is the j-th arrival on stream `S_i`; it carries an
//! application timestamp `e.ts` and a vector of attribute values.  The
//! K-slack component later annotates each tuple with its observed delay
//! `delay(e) = iT - e.ts`, which the Tuple-Productivity Profiler uses to
//! learn the delay↔productivity correlation (Sec. IV-B).

use crate::stream::StreamIndex;
use crate::timestamp::{Duration, Timestamp};
use crate::value::{Schema, Value};
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A single stream tuple.
///
/// The attribute vector is shared behind an `Arc` so that cloning a tuple
/// while it travels through K-slack buffers, the synchronizer and join
/// windows never re-allocates the payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    /// The stream this tuple belongs to.
    pub stream: StreamIndex,
    /// Arrival sequence number within its stream (the `j` of `e_{i,j}`).
    pub seq: u64,
    /// Application timestamp assigned at the data source.
    pub ts: Timestamp,
    /// Attribute values (excluding the timestamp).
    values: Arc<Vec<Value>>,
    /// Delay annotation `delay(e) = iT - e.ts`, filled in by the K-slack
    /// component when the tuple is first observed (Sec. IV-B).
    delay: Option<Duration>,
}

impl Tuple {
    /// Creates a tuple with the given stream, sequence number, timestamp and
    /// attribute values.
    pub fn new(stream: StreamIndex, seq: u64, ts: Timestamp, values: Vec<Value>) -> Self {
        Tuple {
            stream,
            seq,
            ts,
            values: Arc::new(values),
            delay: None,
        }
    }

    /// Creates a tuple carrying no attributes (useful in unit tests that only
    /// exercise ordering logic).
    pub fn marker(stream: StreamIndex, seq: u64, ts: Timestamp) -> Self {
        Tuple::new(stream, seq, ts, Vec::new())
    }

    /// The attribute values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Whether `self` and `other` share the same attribute-value allocation,
    /// i.e. one is a clone of the other.  This is a pointer identity test:
    /// it distinguishes clones from independently built, value-equal tuples
    /// and — unlike comparing `values()` — is reliable even when attributes
    /// contain `Float(NaN)` (where `NaN != NaN` breaks deep equality).
    pub fn shares_values(&self, other: &Tuple) -> bool {
        Arc::ptr_eq(&self.values, &other.values)
    }

    /// Number of live references to this tuple's attribute-value allocation
    /// (its own included).  A memory-accounting diagnostic: a tuple held by
    /// exactly one window and one caller reports 2; anything higher means
    /// some structure cloned the tuple rather than referencing its row.
    pub fn payload_refs(&self) -> usize {
        Arc::strong_count(&self.values)
    }

    /// The attribute at position `idx`, if present.
    pub fn value(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// The attribute named `name` according to `schema`.
    pub fn value_by_name(&self, schema: &Schema, name: &str) -> Result<&Value> {
        let idx = schema.require(name)?;
        Ok(self.values.get(idx).unwrap_or(&Value::Null))
    }

    /// The delay annotation, if the tuple has passed a K-slack component.
    pub fn delay(&self) -> Option<Duration> {
        self.delay
    }

    /// The delay annotation, defaulting to zero for unannotated tuples.
    pub fn delay_or_zero(&self) -> Duration {
        self.delay.unwrap_or(0)
    }

    /// Annotates the tuple with its observed delay (builder style).
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = Some(delay);
        self
    }

    /// Annotates the tuple with its observed delay in place.
    pub fn set_delay(&mut self, delay: Duration) {
        self.delay = Some(delay);
    }

    /// Number of attribute values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}@{}(", self.stream, self.seq, self.ts)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Fluent builder for tuples, mostly used by workload generators and tests.
///
/// # Examples
///
/// ```
/// use mswj_types::{TupleBuilder, Timestamp, Value};
/// let t = TupleBuilder::new(0.into(), Timestamp::from_millis(40))
///     .seq(7)
///     .value(Value::Int(99))
///     .value(Value::Float(1.5))
///     .build();
/// assert_eq!(t.arity(), 2);
/// assert_eq!(t.seq, 7);
/// ```
#[derive(Debug, Clone)]
pub struct TupleBuilder {
    stream: StreamIndex,
    seq: u64,
    ts: Timestamp,
    values: Vec<Value>,
    delay: Option<Duration>,
}

impl TupleBuilder {
    /// Starts a builder for a tuple of `stream` with timestamp `ts`.
    pub fn new(stream: StreamIndex, ts: Timestamp) -> Self {
        TupleBuilder {
            stream,
            seq: 0,
            ts,
            values: Vec::new(),
            delay: None,
        }
    }

    /// Sets the arrival sequence number.
    pub fn seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Appends one attribute value.
    pub fn value(mut self, v: impl Into<Value>) -> Self {
        self.values.push(v.into());
        self
    }

    /// Appends several attribute values.
    pub fn values(mut self, vs: impl IntoIterator<Item = Value>) -> Self {
        self.values.extend(vs);
        self
    }

    /// Pre-sets the delay annotation.
    pub fn delay(mut self, d: Duration) -> Self {
        self.delay = Some(d);
        self
    }

    /// Finishes the tuple.
    pub fn build(self) -> Tuple {
        let mut t = Tuple::new(self.stream, self.seq, self.ts, self.values);
        if let Some(d) = self.delay {
            t.set_delay(d);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::FieldType;

    #[test]
    fn construction_and_accessors() {
        let t = Tuple::new(
            StreamIndex(1),
            3,
            Timestamp::from_millis(500),
            vec![Value::Int(7), Value::Float(0.25)],
        );
        assert_eq!(t.stream, StreamIndex(1));
        assert_eq!(t.seq, 3);
        assert_eq!(t.ts.as_millis(), 500);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.value(0), Some(&Value::Int(7)));
        assert_eq!(t.value(9), None);
        assert_eq!(t.delay(), None);
        assert_eq!(t.delay_or_zero(), 0);
    }

    #[test]
    fn delay_annotation() {
        let t = Tuple::marker(StreamIndex(0), 0, Timestamp::from_millis(10)).with_delay(250);
        assert_eq!(t.delay(), Some(250));
        assert_eq!(t.delay_or_zero(), 250);
        let mut t2 = Tuple::marker(StreamIndex(0), 1, Timestamp::ZERO);
        t2.set_delay(42);
        assert_eq!(t2.delay(), Some(42));
    }

    #[test]
    fn lookup_by_schema_name() {
        let schema = Schema::new(vec![("a1", FieldType::Int), ("x", FieldType::Float)]);
        let t = Tuple::new(
            StreamIndex(0),
            0,
            Timestamp::ZERO,
            vec![Value::Int(5), Value::Float(9.0)],
        );
        assert_eq!(t.value_by_name(&schema, "x").unwrap(), &Value::Float(9.0));
        assert!(t.value_by_name(&schema, "missing").is_err());
    }

    #[test]
    fn cloning_shares_payload() {
        let t = Tuple::new(
            StreamIndex(0),
            0,
            Timestamp::ZERO,
            vec![Value::Str("payload".into())],
        );
        let c = t.clone();
        assert!(Arc::ptr_eq(&t.values, &c.values));
    }

    #[test]
    fn builder_produces_equivalent_tuple() {
        let built = TupleBuilder::new(StreamIndex(2), Timestamp::from_millis(77))
            .seq(4)
            .value(1i64)
            .value(2.0f64)
            .delay(13)
            .build();
        assert_eq!(built.stream, StreamIndex(2));
        assert_eq!(built.seq, 4);
        assert_eq!(built.ts.as_millis(), 77);
        assert_eq!(built.values(), &[Value::Int(1), Value::Float(2.0)]);
        assert_eq!(built.delay(), Some(13));

        let multi = TupleBuilder::new(StreamIndex(0), Timestamp::ZERO)
            .values(vec![Value::Int(1), Value::Int(2)])
            .build();
        assert_eq!(multi.arity(), 2);
    }

    #[test]
    fn display_contains_stream_and_values() {
        let t = TupleBuilder::new(StreamIndex(0), Timestamp::from_millis(9))
            .value(3i64)
            .build();
        let s = t.to_string();
        assert!(s.contains("S1"));
        assert!(s.contains("9ms"));
        assert!(s.contains('3'));
    }
}

//! Stream progress tracking: local current times, delays and skews.
//!
//! Sec. II-A defines for every stream `S_i` the *local current time*
//! `iT = max { e.ts | e already arrived in S_i }`, the per-tuple *delay*
//! `delay(e) = iT - e.ts` (evaluated with the `iT` updated at e's arrival)
//! and the pairwise *time skew* `skew(S_i, S_j) = |iT - jT|`.  These
//! quantities drive both the K-slack buffers and the analytical model, so
//! they get their own small utilities here.

use crate::stream::StreamIndex;
use crate::timestamp::{Duration, Timestamp};
use serde::{Deserialize, Serialize};

/// Tracks the local current time `iT` of a single stream and computes tuple
/// delays against it.
///
/// # Examples
///
/// ```
/// use mswj_types::{LocalClock, Timestamp};
/// let mut clock = LocalClock::new();
/// assert_eq!(clock.observe(Timestamp::from_millis(10)), 0);   // in order
/// assert_eq!(clock.observe(Timestamp::from_millis(30)), 0);   // in order
/// assert_eq!(clock.observe(Timestamp::from_millis(25)), 5);   // 5 ms late
/// assert_eq!(clock.now(), Timestamp::from_millis(30));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalClock {
    now: Timestamp,
    started: bool,
    observed: u64,
    out_of_order: u64,
    max_delay: Duration,
}

impl LocalClock {
    /// A clock that has not yet seen any tuple.
    pub fn new() -> Self {
        LocalClock::default()
    }

    /// Observes the arrival of a tuple with timestamp `ts`, advances the
    /// local current time if needed and returns the tuple's delay
    /// `delay(e) = iT - e.ts` (zero for in-order tuples).
    pub fn observe(&mut self, ts: Timestamp) -> Duration {
        self.observed += 1;
        if !self.started || ts >= self.now {
            self.now = ts;
            self.started = true;
            0
        } else {
            let delay = self.now - ts;
            self.out_of_order += 1;
            if delay > self.max_delay {
                self.max_delay = delay;
            }
            delay
        }
    }

    /// The current local time `iT`; [`Timestamp::ZERO`] before any arrival.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Whether at least one tuple has been observed.
    pub fn started(&self) -> bool {
        self.started
    }

    /// Total number of observed tuples.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Number of observed tuples that were out of order.
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }

    /// Largest delay observed so far (zero if every tuple was in order).
    pub fn max_delay(&self) -> Duration {
        self.max_delay
    }
}

/// Tracks local current times for all `m` streams of a query and derives
/// skews and the implicit synchronizer buffer sizes `K_sync_i`.
///
/// Proposition 1 of the paper shows that, under the Same-K policy, the
/// skew between K-slack output streams equals the skew between the raw
/// inputs; the Statistics Manager therefore measures `K_sync_i` directly on
/// the raw inputs via this tracker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkewTracker {
    clocks: Vec<LocalClock>,
}

impl SkewTracker {
    /// Creates a tracker for `m` streams.
    pub fn new(m: usize) -> Self {
        SkewTracker {
            clocks: vec![LocalClock::new(); m],
        }
    }

    /// Number of tracked streams.
    pub fn arity(&self) -> usize {
        self.clocks.len()
    }

    /// Observes a tuple arrival on stream `i`, returning its delay.
    pub fn observe(&mut self, i: StreamIndex, ts: Timestamp) -> Duration {
        self.clocks[i.as_usize()].observe(ts)
    }

    /// The local current time of stream `i`.
    pub fn local_time(&self, i: StreamIndex) -> Timestamp {
        self.clocks[i.as_usize()].now()
    }

    /// Access to the per-stream clock.
    pub fn clock(&self, i: StreamIndex) -> &LocalClock {
        &self.clocks[i.as_usize()]
    }

    /// Pairwise skew `|iT - jT|` between two streams.
    pub fn skew(&self, i: StreamIndex, j: StreamIndex) -> Duration {
        self.local_time(i).abs_diff(self.local_time(j))
    }

    /// Local time of the slowest stream, `min_i iT` — the value the
    /// synchronizer's `T_sync` converges to when all K-slack buffers are
    /// empty (proof of Theorem 1).
    pub fn slowest(&self) -> Timestamp {
        self.clocks
            .iter()
            .map(LocalClock::now)
            .min()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Local time of the fastest (leading) stream, `max_i iT`.
    pub fn fastest(&self) -> Timestamp {
        self.clocks
            .iter()
            .map(LocalClock::now)
            .max()
            .unwrap_or(Timestamp::ZERO)
    }

    /// The implicit synchronizer buffer contribution for stream `i`,
    /// `K_sync_i = iT - min_j jT` (Sec. III-B).
    pub fn k_sync(&self, i: StreamIndex) -> Duration {
        self.local_time(i) - self.slowest()
    }

    /// All `K_sync_i` values in stream order.
    pub fn k_sync_all(&self) -> Vec<Duration> {
        let slowest = self.slowest();
        self.clocks.iter().map(|c| c.now() - slowest).collect()
    }

    /// Largest tuple delay observed on any stream.
    pub fn max_delay(&self) -> Duration {
        self.clocks
            .iter()
            .map(LocalClock::max_delay)
            .max()
            .unwrap_or(0)
    }

    /// Whether every stream has produced at least one tuple.
    pub fn all_started(&self) -> bool {
        self.clocks.iter().all(LocalClock::started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn local_clock_tracks_max_timestamp() {
        let mut c = LocalClock::new();
        assert!(!c.started());
        assert_eq!(c.now(), Timestamp::ZERO);
        c.observe(ts(10));
        c.observe(ts(5));
        c.observe(ts(20));
        assert_eq!(c.now(), ts(20));
        assert!(c.started());
        assert_eq!(c.observed(), 3);
    }

    #[test]
    fn local_clock_delays_match_paper_definition() {
        // Example of Fig. 3: tuple with ts 5 arriving when iT = 7 has delay 2.
        let mut c = LocalClock::new();
        assert_eq!(c.observe(ts(1)), 0);
        assert_eq!(c.observe(ts(4)), 0);
        assert_eq!(c.observe(ts(3)), 1);
        assert_eq!(c.observe(ts(7)), 0);
        assert_eq!(c.observe(ts(5)), 2);
        assert_eq!(c.out_of_order(), 2);
        assert_eq!(c.max_delay(), 2);
    }

    #[test]
    fn equal_timestamp_is_in_order() {
        let mut c = LocalClock::new();
        c.observe(ts(10));
        assert_eq!(c.observe(ts(10)), 0);
        assert_eq!(c.out_of_order(), 0);
    }

    #[test]
    fn skew_tracker_basic_quantities() {
        let mut sk = SkewTracker::new(3);
        assert_eq!(sk.arity(), 3);
        sk.observe(StreamIndex(0), ts(100));
        sk.observe(StreamIndex(1), ts(40));
        sk.observe(StreamIndex(2), ts(70));
        assert_eq!(sk.local_time(StreamIndex(0)), ts(100));
        assert_eq!(sk.skew(StreamIndex(0), StreamIndex(1)), 60);
        assert_eq!(sk.skew(StreamIndex(1), StreamIndex(0)), 60);
        assert_eq!(sk.slowest(), ts(40));
        assert_eq!(sk.fastest(), ts(100));
        assert_eq!(sk.k_sync(StreamIndex(0)), 60);
        assert_eq!(sk.k_sync(StreamIndex(1)), 0);
        assert_eq!(sk.k_sync(StreamIndex(2)), 30);
        assert_eq!(sk.k_sync_all(), vec![60, 0, 30]);
        assert!(sk.all_started());
    }

    #[test]
    fn skew_tracker_max_delay_across_streams() {
        let mut sk = SkewTracker::new(2);
        sk.observe(StreamIndex(0), ts(50));
        sk.observe(StreamIndex(0), ts(20)); // delay 30
        sk.observe(StreamIndex(1), ts(10));
        sk.observe(StreamIndex(1), ts(5)); // delay 5
        assert_eq!(sk.max_delay(), 30);
        assert_eq!(sk.clock(StreamIndex(1)).max_delay(), 5);
    }

    #[test]
    fn empty_tracker_defaults() {
        let sk = SkewTracker::new(2);
        assert_eq!(sk.slowest(), Timestamp::ZERO);
        assert_eq!(sk.fastest(), Timestamp::ZERO);
        assert!(!sk.all_started());
        assert_eq!(sk.max_delay(), 0);
    }
}

//! Arrival events, arrival logs and multi-stream interleaving.
//!
//! The framework is driven by the *arrival order* of tuples, which is what a
//! stream processing system actually observes: tuples of one stream may
//! arrive out of timestamp order and tuples of different streams arrive
//! interleaved.  An [`ArrivalEvent`] pairs a tuple with the wall-clock-like
//! instant at which it reaches the system; an [`ArrivalLog`] is a replayable
//! sequence of such events for one dataset, and [`Interleaver`] merges
//! per-stream arrival sequences into a single global arrival order.

use crate::stream::StreamIndex;
use crate::timestamp::Timestamp;
use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One tuple arrival at the stream processing system.
///
/// `arrival` is the instant (on a global, monotone axis shared by all
/// streams) at which the tuple becomes visible to the disorder-handling
/// framework.  For the synthetic datasets of Sec. VI this is the generation
/// time `iT` at which the tuple was emitted by the source; for the simulated
/// soccer dataset it is `e.ts + network delay`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalEvent {
    /// Global arrival instant.
    pub arrival: Timestamp,
    /// The arriving tuple.
    pub tuple: Tuple,
}

impl ArrivalEvent {
    /// Creates an arrival event.
    pub fn new(arrival: Timestamp, tuple: Tuple) -> Self {
        ArrivalEvent { arrival, tuple }
    }

    /// The stream the tuple belongs to.
    pub fn stream(&self) -> StreamIndex {
        self.tuple.stream
    }

    /// The tuple's application timestamp.
    pub fn ts(&self) -> Timestamp {
        self.tuple.ts
    }
}

/// A replayable, arrival-ordered sequence of tuple arrivals for a whole
/// dataset (all streams interleaved).
///
/// Generators produce `ArrivalLog`s; pipelines and metrics consume them.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ArrivalLog {
    events: Vec<ArrivalEvent>,
}

impl ArrivalLog {
    /// An empty log.
    pub fn new() -> Self {
        ArrivalLog::default()
    }

    /// Builds a log from events in any order, sorting by arrival instant
    /// with ties broken by `(stream index, sequence number)`.
    ///
    /// The tie-break makes the resulting order a pure function of the event
    /// *set*: two shuffles of the same events produce identical logs, and
    /// equal-arrival ties across streams follow the same stream-index order
    /// that [`Interleaver`] uses — so replays are deterministic.
    pub fn from_events(mut events: Vec<ArrivalEvent>) -> Self {
        events.sort_by_key(|e| (e.arrival, e.stream(), e.tuple.seq));
        ArrivalLog { events }
    }

    /// Appends an event; callers must append in non-decreasing arrival order
    /// (checked in debug builds).
    pub fn push(&mut self, event: ArrivalEvent) {
        debug_assert!(
            self.events
                .last()
                .map(|last| last.arrival <= event.arrival)
                .unwrap_or(true),
            "ArrivalLog::push called with out-of-order arrival instant"
        );
        self.events.push(event);
    }

    /// Number of arrivals in the log.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the log holds no arrivals.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the arrivals in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &ArrivalEvent> + '_ {
        self.events.iter()
    }

    /// The events as a slice.
    pub fn events(&self) -> &[ArrivalEvent] {
        &self.events
    }

    /// Number of arrivals belonging to stream `i`.
    pub fn count_for(&self, i: StreamIndex) -> usize {
        self.events.iter().filter(|e| e.stream() == i).count()
    }

    /// The largest tuple timestamp in the log (the dataset's event-time
    /// horizon), or [`Timestamp::ZERO`] for an empty log.
    pub fn max_ts(&self) -> Timestamp {
        self.events
            .iter()
            .map(|e| e.ts())
            .max()
            .unwrap_or(Timestamp::ZERO)
    }

    /// The largest arrival instant in the log.
    pub fn max_arrival(&self) -> Timestamp {
        self.events
            .last()
            .map(|e| e.arrival)
            .unwrap_or(Timestamp::ZERO)
    }

    /// Returns a new log containing the tuples of all streams sorted
    /// globally by application timestamp, with arrival instants equal to the
    /// timestamps.  This is the "sorted version" of a dataset used to obtain
    /// the true join results (Sec. VI, *Datasets and Queries*).
    pub fn sorted_by_timestamp(&self) -> ArrivalLog {
        let mut events: Vec<ArrivalEvent> = self
            .events
            .iter()
            .map(|e| ArrivalEvent::new(e.ts(), e.tuple.clone()))
            .collect();
        // Stable sort keeps the relative order of equal timestamps, matching
        // the paper's note that ties may be emitted in any fixed order.
        events.sort_by_key(|e| e.ts());
        ArrivalLog { events }
    }
}

impl IntoIterator for ArrivalLog {
    type Item = ArrivalEvent;
    type IntoIter = std::vec::IntoIter<ArrivalEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a ArrivalLog {
    type Item = &'a ArrivalEvent;
    type IntoIter = std::slice::Iter<'a, ArrivalEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// Merges several per-stream arrival sequences (each already ordered by
/// arrival instant) into one global arrival order.
///
/// Ties between streams are broken by stream index so that interleaving is
/// deterministic and replayable.
#[derive(Debug, Default)]
pub struct Interleaver {
    per_stream: Vec<Vec<ArrivalEvent>>,
}

#[derive(PartialEq, Eq)]
struct HeapEntry {
    arrival: Timestamp,
    stream: usize,
    pos: usize,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get the earliest arrival first.
        other
            .arrival
            .cmp(&self.arrival)
            .then_with(|| other.stream.cmp(&self.stream))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Interleaver {
    /// Creates an empty interleaver.
    pub fn new() -> Self {
        Interleaver::default()
    }

    /// Adds the arrival sequence of one stream.  The sequence must already be
    /// ordered by arrival instant (checked in debug builds).
    pub fn add_stream(&mut self, events: Vec<ArrivalEvent>) -> &mut Self {
        debug_assert!(
            events.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "per-stream arrival sequence must be ordered by arrival instant"
        );
        self.per_stream.push(events);
        self
    }

    /// Merges all added streams into a single [`ArrivalLog`].
    pub fn merge(self) -> ArrivalLog {
        let mut heap = BinaryHeap::new();
        for (s, events) in self.per_stream.iter().enumerate() {
            if let Some(first) = events.first() {
                heap.push(HeapEntry {
                    arrival: first.arrival,
                    stream: s,
                    pos: 0,
                });
            }
        }
        let total: usize = self.per_stream.iter().map(Vec::len).sum();
        let mut merged = Vec::with_capacity(total);
        while let Some(HeapEntry { stream, pos, .. }) = heap.pop() {
            merged.push(self.per_stream[stream][pos].clone());
            let next = pos + 1;
            if let Some(ev) = self.per_stream[stream].get(next) {
                heap.push(HeapEntry {
                    arrival: ev.arrival,
                    stream,
                    pos: next,
                });
            }
        }
        ArrivalLog { events: merged }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(stream: usize, seq: u64, ts: u64, arrival: u64) -> ArrivalEvent {
        ArrivalEvent::new(
            Timestamp::from_millis(arrival),
            Tuple::marker(StreamIndex(stream), seq, Timestamp::from_millis(ts)),
        )
    }

    #[test]
    fn arrival_event_accessors() {
        let e = ev(1, 2, 30, 40);
        assert_eq!(e.stream(), StreamIndex(1));
        assert_eq!(e.ts(), Timestamp::from_millis(30));
        assert_eq!(e.arrival, Timestamp::from_millis(40));
    }

    #[test]
    fn log_from_events_sorts_by_arrival() {
        let log = ArrivalLog::from_events(vec![ev(0, 1, 5, 50), ev(0, 0, 3, 10)]);
        let arrivals: Vec<u64> = log.iter().map(|e| e.arrival.as_millis()).collect();
        assert_eq!(arrivals, vec![10, 50]);
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn from_events_breaks_arrival_ties_by_stream_then_seq() {
        // Same arrival instant everywhere, scrambled input order.
        let scrambled = vec![
            ev(2, 0, 1, 10),
            ev(0, 1, 1, 10),
            ev(1, 0, 1, 10),
            ev(0, 0, 1, 10),
        ];
        let log = ArrivalLog::from_events(scrambled.clone());
        let order: Vec<(usize, u64)> = log
            .iter()
            .map(|e| (e.stream().as_usize(), e.tuple.seq))
            .collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (2, 0)]);
        // Any permutation of the same events yields the identical log.
        let mut reversed = scrambled;
        reversed.reverse();
        assert_eq!(ArrivalLog::from_events(reversed), log);
    }

    #[test]
    fn log_push_and_counts() {
        let mut log = ArrivalLog::new();
        log.push(ev(0, 0, 1, 1));
        log.push(ev(1, 0, 2, 2));
        log.push(ev(0, 1, 3, 3));
        assert_eq!(log.count_for(StreamIndex(0)), 2);
        assert_eq!(log.count_for(StreamIndex(1)), 1);
        assert_eq!(log.count_for(StreamIndex(2)), 0);
        assert_eq!(log.max_ts(), Timestamp::from_millis(3));
        assert_eq!(log.max_arrival(), Timestamp::from_millis(3));
    }

    #[test]
    fn empty_log_defaults() {
        let log = ArrivalLog::new();
        assert!(log.is_empty());
        assert_eq!(log.max_ts(), Timestamp::ZERO);
        assert_eq!(log.max_arrival(), Timestamp::ZERO);
    }

    #[test]
    fn sorted_by_timestamp_orders_globally() {
        // Out-of-order arrivals across two streams.
        let log = ArrivalLog::from_events(vec![
            ev(0, 0, 40, 10),
            ev(1, 0, 10, 20),
            ev(0, 1, 20, 30),
            ev(1, 1, 30, 40),
        ]);
        let sorted = log.sorted_by_timestamp();
        let ts: Vec<u64> = sorted.iter().map(|e| e.ts().as_millis()).collect();
        assert_eq!(ts, vec![10, 20, 30, 40]);
        // In the sorted log arrival instants coincide with timestamps.
        assert!(sorted.iter().all(|e| e.arrival == e.ts()));
        // The original log is untouched.
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn interleaver_merges_by_arrival_instant() {
        let mut il = Interleaver::new();
        il.add_stream(vec![ev(0, 0, 1, 10), ev(0, 1, 2, 30), ev(0, 2, 3, 50)]);
        il.add_stream(vec![ev(1, 0, 1, 20), ev(1, 1, 2, 40)]);
        let log = Interleaver::merge(std::mem::take(&mut il));
        let arrivals: Vec<u64> = log.iter().map(|e| e.arrival.as_millis()).collect();
        assert_eq!(arrivals, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn interleaver_breaks_ties_by_stream_index() {
        let mut il = Interleaver::new();
        il.add_stream(vec![ev(0, 0, 1, 10)]);
        il.add_stream(vec![ev(1, 0, 1, 10)]);
        il.add_stream(vec![ev(2, 0, 1, 10)]);
        let log = Interleaver::merge(std::mem::take(&mut il));
        let streams: Vec<usize> = log.iter().map(|e| e.stream().as_usize()).collect();
        assert_eq!(streams, vec![0, 1, 2]);
    }

    #[test]
    fn interleaver_handles_empty_streams() {
        let mut il = Interleaver::new();
        il.add_stream(vec![]);
        il.add_stream(vec![ev(1, 0, 1, 5)]);
        let log = Interleaver::merge(std::mem::take(&mut il));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn into_iterator_yields_owned_events() {
        let log = ArrivalLog::from_events(vec![ev(0, 0, 1, 1), ev(0, 1, 2, 2)]);
        let owned: Vec<ArrivalEvent> = log.clone().into_iter().collect();
        assert_eq!(owned.len(), 2);
        let borrowed: Vec<&ArrivalEvent> = (&log).into_iter().collect();
        assert_eq!(borrowed.len(), 2);
    }
}

//! # mswj-types — stream substrate types
//!
//! Foundational types shared by every other crate in the workspace:
//! timestamps, attribute values, schemas, stream tuples, arrival events and
//! stream sources.  They model the data-stream environment of Sec. II-A of
//! *"Quality-Driven Disorder Handling for M-way Sliding Window Stream
//! Joins"* (ICDE 2016):
//!
//! * every tuple carries an **application timestamp** assigned at the data
//!   source ([`Timestamp`], milliseconds),
//! * tuples reach the system in an **arrival order** that may disagree with
//!   the timestamp order (intra-stream disorder) and in which different
//!   streams may progress at different speeds (inter-stream disorder),
//! * the **delay** of a tuple is the difference between the local current
//!   time of its stream observed at its arrival and its own timestamp.
//!
//! The crate is deliberately free of any join or disorder-handling logic so
//! that the substrate can be reused by generators, operators and metrics
//! alike.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod error;
pub mod progress;
pub mod stream;
pub mod timestamp;
pub mod tuple;
pub mod value;

pub use arrival::{ArrivalEvent, ArrivalLog, Interleaver};
pub use error::{Error, Result};
pub use progress::{LocalClock, SkewTracker};
pub use stream::{StreamIndex, StreamSet, StreamSpec};
pub use timestamp::{Duration, Timestamp};
pub use tuple::{Tuple, TupleBuilder};
pub use value::{FieldType, Schema, Value};

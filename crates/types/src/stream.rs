//! Stream identities and per-query stream metadata.
//!
//! An m-way sliding window join has `m ≥ 2` input streams `S_1 … S_m`, each
//! with its own schema and user-specified window size `W_i` (Sec. II-A).
//! [`StreamSpec`] captures that per-stream metadata and [`StreamSet`] the
//! full query-side view of all inputs.

use crate::timestamp::Duration;
use crate::value::Schema;
use crate::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an input stream within a query (`0 ..= m-1`).
///
/// The paper numbers streams `S_1 … S_m`; we use zero-based indices
/// internally and render them one-based in [`fmt::Display`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct StreamIndex(pub usize);

impl StreamIndex {
    /// Returns the underlying zero-based index.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0
    }
}

impl fmt::Display for StreamIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0 + 1)
    }
}

impl From<usize> for StreamIndex {
    fn from(i: usize) -> Self {
        StreamIndex(i)
    }
}

/// Static description of one input stream of an MSWJ query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Human-readable stream name (`"S1"`, `"team_a"`, …).
    pub name: String,
    /// Schema of the non-timestamp attributes.
    pub schema: Schema,
    /// User-specified sliding window size `W_i` in milliseconds.
    pub window: Duration,
}

impl StreamSpec {
    /// Creates a stream description.
    pub fn new(name: impl Into<String>, schema: Schema, window: Duration) -> Self {
        StreamSpec {
            name: name.into(),
            schema,
            window,
        }
    }
}

/// The ordered collection of all input streams of one query.
///
/// # Examples
///
/// ```
/// use mswj_types::{StreamSet, StreamSpec, Schema, FieldType};
/// let set = StreamSet::new(vec![
///     StreamSpec::new("S1", Schema::new(vec![("a1", FieldType::Int)]), 5_000),
///     StreamSpec::new("S2", Schema::new(vec![("a1", FieldType::Int)]), 5_000),
/// ]).unwrap();
/// assert_eq!(set.arity(), 2);
/// assert_eq!(set.window(0.into()).unwrap(), 5_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSet {
    specs: Vec<StreamSpec>,
}

impl StreamSet {
    /// Builds a stream set; a join needs at least two input streams with
    /// pairwise-distinct names.
    pub fn new(specs: Vec<StreamSpec>) -> Result<Self> {
        if specs.len() < 2 {
            return Err(Error::InvalidConfig(format!(
                "an m-way join needs at least 2 input streams, got {}",
                specs.len()
            )));
        }
        for (i, a) in specs.iter().enumerate() {
            if specs[..i].iter().any(|b| b.name == a.name) {
                return Err(Error::InvalidConfig(format!(
                    "duplicate stream name `{}`",
                    a.name
                )));
            }
        }
        Ok(StreamSet { specs })
    }

    /// Builds a stream set of `m` identical streams, convenient for tests and
    /// synthetic workloads.
    pub fn homogeneous(m: usize, schema: Schema, window: Duration) -> Result<Self> {
        StreamSet::new(
            (0..m)
                .map(|i| StreamSpec::new(format!("S{}", i + 1), schema.clone(), window))
                .collect(),
        )
    }

    /// Number of input streams `m`.
    pub fn arity(&self) -> usize {
        self.specs.len()
    }

    /// The specification of stream `i`.
    pub fn spec(&self, i: StreamIndex) -> Result<&StreamSpec> {
        self.specs.get(i.as_usize()).ok_or(Error::UnknownStream {
            index: i.as_usize(),
            streams: self.specs.len(),
        })
    }

    /// The window size `W_i` of stream `i`.
    pub fn window(&self, i: StreamIndex) -> Result<Duration> {
        Ok(self.spec(i)?.window)
    }

    /// All window sizes in stream order.
    pub fn windows(&self) -> Vec<Duration> {
        self.specs.iter().map(|s| s.window).collect()
    }

    /// Iterates over `(index, spec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StreamIndex, &StreamSpec)> + '_ {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, s)| (StreamIndex(i), s))
    }

    /// Iterates over all stream indices.
    pub fn indices(&self) -> impl Iterator<Item = StreamIndex> {
        (0..self.specs.len()).map(StreamIndex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::FieldType;

    fn schema() -> Schema {
        Schema::new(vec![("a1", FieldType::Int)])
    }

    #[test]
    fn stream_index_display_is_one_based() {
        assert_eq!(StreamIndex(0).to_string(), "S1");
        assert_eq!(StreamIndex(3).to_string(), "S4");
        assert_eq!(StreamIndex::from(2).as_usize(), 2);
    }

    #[test]
    fn stream_set_requires_two_streams() {
        let err = StreamSet::new(vec![StreamSpec::new("S1", schema(), 100)]);
        assert!(err.is_err());
        let ok = StreamSet::homogeneous(2, schema(), 100);
        assert!(ok.is_ok());
    }

    #[test]
    fn stream_set_rejects_duplicate_names() {
        let err = StreamSet::new(vec![
            StreamSpec::new("S1", schema(), 100),
            StreamSpec::new("S2", schema(), 100),
            StreamSpec::new("S1", schema(), 100),
        ]);
        assert!(matches!(
            err,
            Err(Error::InvalidConfig(msg)) if msg.contains("duplicate stream name `S1`")
        ));
    }

    #[test]
    fn homogeneous_set_has_identical_windows() {
        let set = StreamSet::homogeneous(4, schema(), 3_000).unwrap();
        assert_eq!(set.arity(), 4);
        assert_eq!(set.windows(), vec![3_000; 4]);
        for (i, spec) in set.iter() {
            assert_eq!(spec.name, format!("S{}", i.as_usize() + 1));
        }
        assert_eq!(set.indices().count(), 4);
    }

    #[test]
    fn out_of_range_lookup_errors() {
        let set = StreamSet::homogeneous(2, schema(), 100).unwrap();
        assert!(set.spec(StreamIndex(0)).is_ok());
        assert!(matches!(
            set.spec(StreamIndex(2)),
            Err(Error::UnknownStream {
                index: 2,
                streams: 2
            })
        ));
        assert!(set.window(StreamIndex(5)).is_err());
    }

    #[test]
    fn heterogeneous_windows_are_preserved() {
        let set = StreamSet::new(vec![
            StreamSpec::new("A", schema(), 5_000),
            StreamSpec::new("B", schema(), 2_000),
            StreamSpec::new("C", schema(), 7_000),
        ])
        .unwrap();
        assert_eq!(set.window(StreamIndex(1)).unwrap(), 2_000);
        assert_eq!(set.windows(), vec![5_000, 2_000, 7_000]);
    }
}

//! Attribute values and stream schemas.
//!
//! Join conditions in the paper range from simple equality predicates
//! (`S1.a1 = S2.a1`) to user-defined functions over several attributes
//! (`dist(x1, y1, x2, y2) < 5`).  Tuples therefore carry a small dynamic
//! value vector described by a [`Schema`].

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A single attribute value carried by a stream tuple.
///
/// The variants cover everything the paper's queries need: integer join
/// attributes (`a1`, `a2`, `a3`, `sID`), floating-point coordinates
/// (`xCoord`, `yCoord`) and free-form labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A 64-bit signed integer attribute.
    Int(i64),
    /// A 64-bit floating-point attribute.
    Float(f64),
    /// A string attribute.
    Str(String),
    /// A boolean attribute.
    Bool(bool),
    /// An explicitly missing attribute.
    Null,
}

impl Value {
    /// Returns the integer content, if this value is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the floating-point content, coercing integers as needed.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string content, if this value is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the boolean content, if this value is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The [`FieldType`] this value conforms to.
    pub fn field_type(&self) -> FieldType {
        match self {
            Value::Int(_) => FieldType::Int,
            Value::Float(_) => FieldType::Float,
            Value::Str(_) => FieldType::Str,
            Value::Bool(_) => FieldType::Bool,
            Value::Null => FieldType::Null,
        }
    }

    /// Equality for join predicates: integers and floats compare numerically,
    /// everything else compares structurally, and `Null` never equals
    /// anything (SQL-style semantics).
    pub fn join_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => false,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// The declared type of a schema field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Missing / untyped.
    Null,
}

impl FieldType {
    /// Whether a value of type `other` may be stored in a field of this type.
    ///
    /// `Null` is accepted by every field, and integers may be widened into
    /// float fields; everything else must match exactly.
    pub fn accepts(self, other: FieldType) -> bool {
        self == other
            || other == FieldType::Null
            || (self == FieldType::Float && other == FieldType::Int)
    }
}

/// An ordered list of named, typed fields describing the non-timestamp
/// attributes carried by the tuples of one stream.
///
/// Schemas are cheap to clone (`Arc` internally) because every tuple source
/// and operator holds one.
///
/// # Examples
///
/// ```
/// use mswj_types::{Schema, FieldType};
/// let schema = Schema::new(vec![
///     ("sID", FieldType::Int),
///     ("xCoord", FieldType::Float),
///     ("yCoord", FieldType::Float),
/// ]);
/// assert_eq!(schema.len(), 3);
/// assert_eq!(schema.index_of("xCoord"), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Arc<Vec<(String, FieldType)>>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new<N: Into<String>>(fields: Vec<(N, FieldType)>) -> Self {
        Schema {
            fields: Arc::new(fields.into_iter().map(|(n, t)| (n.into(), t)).collect()),
        }
    }

    /// An empty schema (tuples carrying only a timestamp).
    pub fn empty() -> Self {
        Schema {
            fields: Arc::new(Vec::new()),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The position of the field called `name`, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| n == name)
    }

    /// The position of the field called `name`, or an [`Error::UnknownField`].
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| Error::UnknownField(name.to_owned()))
    }

    /// Name and type of the field at `index`.
    pub fn field(&self, index: usize) -> Option<(&str, FieldType)> {
        self.fields.get(index).map(|(n, t)| (n.as_str(), *t))
    }

    /// Iterates over `(name, type)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, FieldType)> + '_ {
        self.fields.iter().map(|(n, t)| (n.as_str(), *t))
    }

    /// Checks that `values` conforms to this schema (arity and types).
    pub fn validate(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.fields.len() {
            return Err(Error::ArityMismatch {
                expected: self.fields.len(),
                got: values.len(),
            });
        }
        for (i, ((name, ty), v)) in self.fields.iter().zip(values).enumerate() {
            if !ty.accepts(v.field_type()) {
                return Err(Error::TypeMismatch {
                    field: name.clone(),
                    index: i,
                    expected: *ty,
                    got: v.field_type(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Str("a".into()).as_int(), None);
    }

    #[test]
    fn join_eq_semantics() {
        assert!(Value::Int(4).join_eq(&Value::Int(4)));
        assert!(Value::Int(4).join_eq(&Value::Float(4.0)));
        assert!(Value::Float(4.0).join_eq(&Value::Int(4)));
        assert!(!Value::Int(4).join_eq(&Value::Int(5)));
        assert!(!Value::Null.join_eq(&Value::Null));
        assert!(!Value::Int(1).join_eq(&Value::Str("1".into())));
        assert!(Value::from("abc").join_eq(&Value::from("abc")));
    }

    #[test]
    fn value_conversions_and_display() {
        assert_eq!(Value::from(7i32), Value::Int(7));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(String::from("s")), Value::Str("s".into()));
        assert_eq!(Value::Int(9).to_string(), "9");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn field_type_accepts() {
        assert!(FieldType::Int.accepts(FieldType::Int));
        assert!(FieldType::Float.accepts(FieldType::Int));
        assert!(!FieldType::Int.accepts(FieldType::Float));
        assert!(FieldType::Str.accepts(FieldType::Null));
    }

    #[test]
    fn schema_lookup() {
        let schema = Schema::new(vec![("a1", FieldType::Int), ("x", FieldType::Float)]);
        assert_eq!(schema.len(), 2);
        assert!(!schema.is_empty());
        assert_eq!(schema.index_of("x"), Some(1));
        assert_eq!(schema.index_of("nope"), None);
        assert!(schema.require("a1").is_ok());
        assert!(matches!(
            schema.require("nope"),
            Err(Error::UnknownField(_))
        ));
        assert_eq!(schema.field(0), Some(("a1", FieldType::Int)));
        assert_eq!(schema.field(5), None);
        assert!(Schema::empty().is_empty());
    }

    #[test]
    fn schema_validation() {
        let schema = Schema::new(vec![("a1", FieldType::Int), ("x", FieldType::Float)]);
        assert!(schema.validate(&[Value::Int(1), Value::Float(0.5)]).is_ok());
        // Int is accepted where Float is declared.
        assert!(schema.validate(&[Value::Int(1), Value::Int(2)]).is_ok());
        // Null accepted anywhere.
        assert!(schema.validate(&[Value::Null, Value::Null]).is_ok());
        assert!(matches!(
            schema.validate(&[Value::Int(1)]),
            Err(Error::ArityMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            schema.validate(&[Value::Float(1.0), Value::Float(2.0)]),
            Err(Error::TypeMismatch { index: 0, .. })
        ));
    }

    #[test]
    fn schema_iter_order() {
        let schema = Schema::new(vec![("a", FieldType::Int), ("b", FieldType::Bool)]);
        let names: Vec<_> = schema.iter().map(|(n, _)| n.to_owned()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}

//! Application-time timestamps and durations.
//!
//! The paper's datasets use millisecond-granularity timestamps assigned at
//! the data source.  We model application time as an unsigned number of
//! milliseconds since the start of the stream.  All disorder-handling
//! arithmetic (delays, K-slack buffer sizes, window scopes) is done in this
//! unit.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A span of application time in milliseconds.
///
/// Window sizes `W_i`, the K-slack buffer size `K`, the adaptation interval
/// `L`, the result-quality measurement period `P`, the basic-window size `b`
/// and the K-search granularity `g` are all [`Duration`]s.
pub type Duration = u64;

/// A point in application time, measured in milliseconds since stream start.
///
/// `Timestamp` is a thin, `Copy` newtype over `u64`; ordering and equality
/// follow the numeric value.  Subtraction saturates at zero because the
/// paper's formulas only ever need non-negative differences (delays, skews).
///
/// # Examples
///
/// ```
/// use mswj_types::Timestamp;
/// let a = Timestamp::from_millis(5_000);
/// let b = Timestamp::from_millis(3_000);
/// assert_eq!(a - b, 2_000);
/// assert_eq!(b.saturating_sub_duration(5_000), Timestamp::ZERO);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The origin of application time.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The largest representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from a number of milliseconds since stream start.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        Timestamp(millis)
    }

    /// Creates a timestamp from a number of whole seconds since stream start.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000)
    }

    /// Returns the timestamp as milliseconds since stream start.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the timestamp as (possibly fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Adds a duration, saturating at [`Timestamp::MAX`].
    #[inline]
    pub fn saturating_add_duration(self, d: Duration) -> Self {
        Timestamp(self.0.saturating_add(d))
    }

    /// Subtracts a duration, saturating at [`Timestamp::ZERO`].
    #[inline]
    pub fn saturating_sub_duration(self, d: Duration) -> Self {
        Timestamp(self.0.saturating_sub(d))
    }

    /// Returns `self - other` as a [`Duration`], or zero when `other > self`.
    #[inline]
    pub fn saturating_duration_since(self, other: Timestamp) -> Duration {
        self.0.saturating_sub(other.0)
    }

    /// Absolute difference between two timestamps; used for time skews
    /// `skew(S_i, S_j) = |iT - jT|` (Sec. II-A).
    #[inline]
    pub fn abs_diff(self, other: Timestamp) -> Duration {
        self.0.abs_diff(other.0)
    }

    /// Rounds the timestamp down to a multiple of `granularity` milliseconds.
    ///
    /// Returns `self` unchanged when `granularity` is zero.
    #[inline]
    pub fn align_down(self, granularity: Duration) -> Self {
        if granularity == 0 {
            self
        } else {
            Timestamp(self.0 - self.0 % granularity)
        }
    }

    /// Returns the later of two timestamps.
    #[inline]
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two timestamps.
    #[inline]
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(millis: u64) -> Self {
        Timestamp(millis)
    }
}

impl From<Timestamp> for u64 {
    fn from(ts: Timestamp) -> Self {
        ts.0
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl AddAssign<Duration> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(rhs))
    }
}

impl SubAssign<Duration> for Timestamp {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_sub(rhs);
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Timestamp) -> Duration {
        self.0.saturating_sub(rhs.0)
    }
}

/// Converts whole seconds to a [`Duration`] in milliseconds.
#[inline]
pub const fn secs(s: u64) -> Duration {
    s * 1_000
}

/// Converts milliseconds to a [`Duration`] (identity; provided for symmetry).
#[inline]
pub const fn millis(ms: u64) -> Duration {
    ms
}

/// Converts minutes to a [`Duration`] in milliseconds.
#[inline]
pub const fn minutes(m: u64) -> Duration {
    m * 60_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Timestamp::from_secs(3);
        assert_eq!(t.as_millis(), 3_000);
        assert_eq!(Timestamp::from_millis(1_500).as_secs_f64(), 1.5);
        assert_eq!(Timestamp::ZERO.as_millis(), 0);
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(Timestamp::from_millis(5) > Timestamp::from_millis(4));
        assert_eq!(Timestamp::from_millis(7), Timestamp::from(7u64));
        assert_eq!(
            Timestamp::from_millis(9).max(Timestamp::from_millis(2)),
            Timestamp::from_millis(9)
        );
        assert_eq!(
            Timestamp::from_millis(9).min(Timestamp::from_millis(2)),
            Timestamp::from_millis(2)
        );
    }

    #[test]
    fn arithmetic_saturates() {
        let t = Timestamp::from_millis(100);
        assert_eq!(t + 50, Timestamp::from_millis(150));
        assert_eq!(t - 150, Timestamp::ZERO);
        assert_eq!(t - Timestamp::from_millis(150), 0);
        assert_eq!(t.saturating_sub_duration(1_000), Timestamp::ZERO);
        assert_eq!(Timestamp::MAX.saturating_add_duration(10), Timestamp::MAX);
        assert_eq!(t.saturating_duration_since(Timestamp::from_millis(30)), 70);
        assert_eq!(t.saturating_duration_since(Timestamp::from_millis(300)), 0);
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = Timestamp::from_millis(10);
        let b = Timestamp::from_millis(25);
        assert_eq!(a.abs_diff(b), 15);
        assert_eq!(b.abs_diff(a), 15);
        assert_eq!(a.abs_diff(a), 0);
    }

    #[test]
    fn align_down_rounds_to_granularity() {
        let t = Timestamp::from_millis(1_234);
        assert_eq!(t.align_down(100), Timestamp::from_millis(1_200));
        assert_eq!(t.align_down(1), t);
        assert_eq!(t.align_down(0), t);
        assert_eq!(Timestamp::from_millis(99).align_down(100), Timestamp::ZERO);
    }

    #[test]
    fn assign_ops() {
        let mut t = Timestamp::from_millis(10);
        t += 5;
        assert_eq!(t.as_millis(), 15);
        t -= 20;
        assert_eq!(t, Timestamp::ZERO);
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(secs(2), 2_000);
        assert_eq!(millis(7), 7);
        assert_eq!(minutes(1), 60_000);
    }

    #[test]
    fn display_and_millis_roundtrip() {
        // The vendored serde stub does not serialize, so the transparent
        // representation is checked via the raw-millis round-trip instead of
        // a serde_json round-trip.
        let t = Timestamp::from_millis(42);
        assert_eq!(t.to_string(), "42ms");
        let raw = t.as_millis();
        assert_eq!(raw, 42);
        assert_eq!(Timestamp::from_millis(raw), t);
    }
}

//! Error type shared across the workspace's substrate layer.

use crate::value::FieldType;
use std::fmt;

/// Convenience alias for results produced by the substrate layer.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while constructing or validating stream data.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A field name was not present in the schema.
    UnknownField(String),
    /// A tuple carried the wrong number of values for its schema.
    ArityMismatch {
        /// Number of fields declared by the schema.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A value's type did not match the schema field's declared type.
    TypeMismatch {
        /// Name of the offending field.
        field: String,
        /// Position of the offending field.
        index: usize,
        /// Declared type.
        expected: FieldType,
        /// Supplied type.
        got: FieldType,
    },
    /// A stream index referenced a stream that does not exist in the query.
    UnknownStream {
        /// The out-of-range index.
        index: usize,
        /// Number of streams in the query.
        streams: usize,
    },
    /// A configuration parameter had an invalid value.
    InvalidConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownField(name) => write!(f, "unknown field `{name}`"),
            Error::ArityMismatch { expected, got } => {
                write!(f, "tuple arity mismatch: schema has {expected} fields, got {got}")
            }
            Error::TypeMismatch {
                field,
                index,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for field `{field}` (index {index}): expected {expected:?}, got {got:?}"
            ),
            Error::UnknownStream { index, streams } => {
                write!(f, "stream index {index} out of range (query has {streams} streams)")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::UnknownField("a1".into());
        assert!(e.to_string().contains("a1"));
        let e = Error::ArityMismatch {
            expected: 3,
            got: 1,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('1'));
        let e = Error::TypeMismatch {
            field: "x".into(),
            index: 2,
            expected: FieldType::Float,
            got: FieldType::Str,
        };
        assert!(e.to_string().contains("x"));
        let e = Error::UnknownStream {
            index: 5,
            streams: 3,
        };
        assert!(e.to_string().contains('5'));
        let e = Error::InvalidConfig("gamma out of range".into());
        assert!(e.to_string().contains("gamma"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&Error::UnknownField("f".into()));
    }
}

//! Plain-text table formatting for the experiment binaries.
//!
//! The experiment harness prints the same rows and series the paper's
//! tables and figures report; this module keeps that formatting in one
//! place so every binary produces consistent output.

use serde::Serialize;

/// One row of an experiment table: a label plus named numeric cells.
#[derive(Debug, Clone, Serialize)]
pub struct TableRow {
    /// Row label (e.g. a dataset or a parameter value).
    pub label: String,
    /// `(column name, value)` pairs in display order.
    pub cells: Vec<(String, f64)>,
}

impl TableRow {
    /// Creates a row with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        TableRow {
            label: label.into(),
            cells: Vec::new(),
        }
    }

    /// Appends one cell.
    pub fn cell(mut self, name: impl Into<String>, value: f64) -> Self {
        self.cells.push((name.into(), value));
        self
    }
}

/// Formats rows as an aligned plain-text table with a title line.
///
/// All rows should carry the same columns (the header is taken from the
/// first row); missing cells are rendered as `-`.
pub fn format_table(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if rows.is_empty() {
        out.push_str("(no rows)\n");
        return out;
    }
    let columns: Vec<String> = rows[0].cells.iter().map(|(n, _)| n.clone()).collect();
    let label_width = rows
        .iter()
        .map(|r| r.label.len())
        .chain(std::iter::once("".len()))
        .max()
        .unwrap_or(0)
        .max(12);
    let col_width = columns.iter().map(|c| c.len()).max().unwrap_or(8).max(12);

    // Header.
    out.push_str(&format!("{:<label_width$}", ""));
    for c in &columns {
        out.push_str(&format!(" | {c:>col_width$}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(label_width + columns.len() * (col_width + 3)));
    out.push('\n');

    for row in rows {
        out.push_str(&format!("{:<label_width$}", row.label));
        for c in &columns {
            match row.cells.iter().find(|(n, _)| n == c) {
                Some((_, v)) => out.push_str(&format!(" | {:>col_width$}", format_number(*v))),
                None => out.push_str(&format!(" | {:>col_width$}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Human-friendly number formatting: integers stay integral, small values
/// keep four significant decimals.
fn format_number(v: f64) -> String {
    if !v.is_finite() {
        return "NaN".to_owned();
    }
    if (v.fract()).abs() < 1e-9 && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_builder_accumulates_cells() {
        let row = TableRow::new("Dx3syn")
            .cell("avg K (s)", 1.5)
            .cell("phi", 97.0);
        assert_eq!(row.label, "Dx3syn");
        assert_eq!(row.cells.len(), 2);
        assert_eq!(row.cells[0].0, "avg K (s)");
    }

    #[test]
    fn table_formatting_is_aligned_and_complete() {
        let rows = vec![
            TableRow::new("Gamma=0.9")
                .cell("avg K (s)", 0.25)
                .cell("Phi(G) %", 100.0),
            TableRow::new("Gamma=0.999")
                .cell("avg K (s)", 12.0)
                .cell("Phi(G) %", 96.5),
        ];
        let text = format_table("Fig. 7 — effectiveness", &rows);
        assert!(text.contains("Fig. 7"));
        assert!(text.contains("avg K (s)"));
        assert!(text.contains("Gamma=0.999"));
        assert!(text.contains("0.2500"));
        assert!(text.contains("96.5"));
        // Every data line has the same number of separators.
        let lines: Vec<&str> = text.lines().skip(1).collect();
        let seps: Vec<usize> = lines
            .iter()
            .filter(|l| l.contains('|'))
            .map(|l| l.matches('|').count())
            .collect();
        assert!(seps.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn empty_table_and_missing_cells() {
        assert!(format_table("empty", &[]).contains("(no rows)"));
        let rows = vec![
            TableRow::new("a").cell("x", 1.0).cell("y", 2.0),
            TableRow::new("b").cell("x", 3.0),
        ];
        let text = format_table("t", &rows);
        assert!(text.contains(" -"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(5.0), "5");
        assert_eq!(format_number(0.12345), "0.1235"); // rounded to 4 decimals
        assert_eq!(format_number(123.456), "123.5");
        assert_eq!(format_number(f64::NAN), "NaN");
    }
}

//! Period-based recall `γ(P)` and requirement fulfilment `Φ(Γ)` (Sec. II-B
//! and Sec. VI, *Metrics*).
//!
//! `γ(P)` is measured "right before each adaptation of K": at every pipeline
//! checkpoint we compare the number of produced results whose timestamps lie
//! within the last `P` time units against the corresponding ground-truth
//! count.  Measurements obtained during the first quality measurement period
//! are excluded, as in the paper.

use crate::ground_truth::CountSeries;
use mswj_core::{Checkpoint, RunReport};
use mswj_types::{Duration, Timestamp};
use serde::Serialize;

/// One `γ(P)` measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RecallSample {
    /// The measurement instant (result-timestamp domain).
    pub at: Timestamp,
    /// Produced results with timestamps in `(at - P, at]`.
    pub produced: u64,
    /// True results with timestamps in `(at - P, at]`.
    pub true_results: u64,
    /// The recall `γ(P)`; 1.0 when there are no true results in the period.
    pub recall: f64,
}

/// Aggregated recall evaluation of one pipeline run.
#[derive(Debug, Clone, Serialize)]
pub struct RecallEvaluation {
    /// Individual `γ(P)` measurements (first period excluded).
    pub samples: Vec<RecallSample>,
    /// Average `γ(P)` over all measurements.
    pub avg_recall: f64,
    /// Overall recall (total produced / total true over the whole run).
    pub overall_recall: f64,
    /// Time-weighted average buffer size of the run (ms).
    pub avg_k_ms: f64,
    /// Mean adaptation-step time (ms); 0 for non-adaptive policies.
    pub avg_adaptation_ms: f64,
}

impl RecallEvaluation {
    /// The requirement fulfilment percentage `Φ(Γ)`: the share of `γ(P)`
    /// measurements that are not lower than `gamma`, in percent.
    pub fn fulfilment_pct(&self, gamma: f64) -> f64 {
        if self.samples.is_empty() {
            return 100.0;
        }
        let ok = self
            .samples
            .iter()
            .filter(|s| s.recall + 1e-12 >= gamma)
            .count();
        100.0 * ok as f64 / self.samples.len() as f64
    }

    /// The relaxed fulfilment `Φ(.99Γ)` the paper also reports.
    pub fn fulfilment_pct_relaxed(&self, gamma: f64) -> f64 {
        self.fulfilment_pct(gamma * 0.99)
    }

    /// Minimum observed `γ(P)` (1.0 for an empty sample set).
    pub fn min_recall(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.recall)
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }
}

/// Measures `γ(P)` at every checkpoint of `report` against the ground truth.
///
/// Checkpoints whose measurement instant lies within the first `P` time
/// units of the run are excluded, mirroring the paper's methodology.
pub fn evaluate_recall(
    report: &RunReport,
    truth: &CountSeries,
    period_p: Duration,
) -> RecallEvaluation {
    let produced = CountSeries::new(report.produced.clone());
    let start = truth
        .max_ts()
        .map(|_| Timestamp::ZERO)
        .unwrap_or(Timestamp::ZERO);
    let warmup_end = start.saturating_add_duration(period_p);
    let samples: Vec<RecallSample> = report
        .checkpoints
        .iter()
        .filter(|c| c.measure_ts > warmup_end)
        .map(|c| sample_at(c, &produced, truth, period_p))
        .collect();
    let avg_recall = if samples.is_empty() {
        1.0
    } else {
        samples.iter().map(|s| s.recall).sum::<f64>() / samples.len() as f64
    };
    let overall_recall = if truth.total() == 0 {
        1.0
    } else {
        (produced.total() as f64 / truth.total() as f64).min(1.0)
    };
    RecallEvaluation {
        samples,
        avg_recall,
        overall_recall,
        avg_k_ms: report.avg_k_ms,
        avg_adaptation_ms: report.avg_adaptation_millis(),
    }
}

fn sample_at(
    checkpoint: &Checkpoint,
    produced: &CountSeries,
    truth: &CountSeries,
    period_p: Duration,
) -> RecallSample {
    let at = checkpoint.measure_ts;
    let from = at.saturating_sub_duration(period_p);
    let produced_in = produced.count_in(from, at);
    let true_in = truth.count_in(from, at);
    let recall = if true_in == 0 {
        1.0
    } else {
        (produced_in as f64 / true_in as f64).min(1.0)
    };
    RecallSample {
        at,
        produced: produced_in,
        true_results: true_in,
        recall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_core::Checkpoint;
    use mswj_join::OperatorStats;

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn checkpoint(at: u64) -> Checkpoint {
        Checkpoint {
            at: ts(at),
            measure_ts: ts(at),
            k: 0,
            gamma_prime: f64::NAN,
            estimated_recall: f64::NAN,
            adaptation_nanos: 0,
            steps: 0,
        }
    }

    fn report(produced: Vec<(Timestamp, u64)>, checkpoints: Vec<Checkpoint>) -> RunReport {
        RunReport {
            policy: "test".into(),
            produced,
            checkpoints,
            avg_k_ms: 123.0,
            operator_stats: OperatorStats::default(),
            shard_stats: vec![mswj_core::ShardStats::default()],
            total_produced: 0,
            kslack_residual_out_of_order: 0,
            max_observed_delay: 0,
            duration_ms: 10_000,
            avg_adaptation_nanos: 2_000_000.0,
            skew_transitions: Vec::new(),
            plan_transitions: Vec::new(),
        }
    }

    #[test]
    fn recall_samples_match_hand_computation() {
        // True results: 10 at t=1_500, 10 at t=2_500.  Produced: 10 at 1_500,
        // 5 at 2_500.  P = 1_000.
        let truth = CountSeries::new(vec![(ts(1_500), 10), (ts(2_500), 10)]);
        let rep = report(
            vec![(ts(1_500), 10), (ts(2_500), 5)],
            vec![checkpoint(1_600), checkpoint(2_600)],
        );
        let eval = evaluate_recall(&rep, &truth, 1_000);
        assert_eq!(eval.samples.len(), 2);
        assert!((eval.samples[0].recall - 1.0).abs() < 1e-12);
        assert!((eval.samples[1].recall - 0.5).abs() < 1e-12);
        assert!((eval.avg_recall - 0.75).abs() < 1e-12);
        assert!((eval.overall_recall - 0.75).abs() < 1e-12);
        assert_eq!(eval.samples[1].produced, 5);
        assert_eq!(eval.samples[1].true_results, 10);
        assert!((eval.avg_k_ms - 123.0).abs() < 1e-12);
        assert!((eval.avg_adaptation_ms - 2.0).abs() < 1e-12);
        assert!((eval.min_recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn warmup_period_is_excluded() {
        let truth = CountSeries::new(vec![(ts(500), 10), (ts(5_000), 10)]);
        let rep = report(
            vec![(ts(5_000), 10)],
            vec![checkpoint(800), checkpoint(5_500)],
        );
        let eval = evaluate_recall(&rep, &truth, 1_000);
        // The checkpoint at 800 lies within the first P = 1_000 ms: excluded.
        assert_eq!(eval.samples.len(), 1);
        assert_eq!(eval.samples[0].at, ts(5_500));
    }

    #[test]
    fn fulfilment_percentages() {
        let truth = CountSeries::new(vec![(ts(2_000), 100), (ts(3_000), 200), (ts(4_000), 100)]);
        let rep = report(
            vec![(ts(2_000), 100), (ts(3_000), 197), (ts(4_000), 80)],
            vec![checkpoint(2_100), checkpoint(3_100), checkpoint(4_100)],
        );
        let eval = evaluate_recall(&rep, &truth, 1_000);
        // Recalls: 1.0, 0.985, 0.8.
        assert!((eval.fulfilment_pct(0.99) - 33.333).abs() < 0.1);
        // Φ(.99Γ) with Γ = 0.99 accepts anything >= 0.9801: 1.0 and 0.985.
        assert!((eval.fulfilment_pct_relaxed(0.99) - 66.666).abs() < 0.1);
        assert!((eval.fulfilment_pct(0.5) - 100.0).abs() < 1e-9);
        assert!((eval.fulfilment_pct(1.0) - 33.333).abs() < 0.1);
    }

    #[test]
    fn empty_period_counts_as_perfect_recall() {
        let truth = CountSeries::new(vec![(ts(10_000), 5)]);
        let rep = report(vec![], vec![checkpoint(5_000)]);
        let eval = evaluate_recall(&rep, &truth, 1_000);
        assert_eq!(eval.samples.len(), 1);
        assert!((eval.samples[0].recall - 1.0).abs() < 1e-12);
        assert_eq!(eval.fulfilment_pct(0.999), 100.0);
    }

    #[test]
    fn no_samples_defaults() {
        let truth = CountSeries::new(vec![]);
        let rep = report(vec![], vec![]);
        let eval = evaluate_recall(&rep, &truth, 1_000);
        assert!(eval.samples.is_empty());
        assert_eq!(eval.avg_recall, 1.0);
        assert_eq!(eval.overall_recall, 1.0);
        assert_eq!(eval.fulfilment_pct(0.9), 100.0);
        assert_eq!(eval.min_recall(), 1.0);
    }
}

//! Ground-truth (true) result sizes and time-bucketed count series.
//!
//! "For each dataset, we generated a sorted version where tuples of all
//! streams are globally ordered according to their timestamps.  By
//! evaluating Q×x on the corresponding sorted dataset, we can obtain the
//! true join results" (Sec. VI).  This module does exactly that: it replays
//! the arrival log in timestamp order through the same [`MswjOperator`] and
//! records how many results carry each timestamp.

use mswj_join::{JoinQuery, MswjOperator};
use mswj_types::{ArrivalLog, Timestamp};

/// A series of `(timestamp, count)` pairs ordered by timestamp, with prefix
/// sums for O(log n) range-count queries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CountSeries {
    entries: Vec<(Timestamp, u64)>,
    prefix: Vec<u64>,
}

impl CountSeries {
    /// Builds a series from unordered `(timestamp, count)` pairs.
    pub fn new(mut entries: Vec<(Timestamp, u64)>) -> Self {
        entries.retain(|&(_, c)| c > 0);
        entries.sort_by_key(|&(ts, _)| ts);
        let mut prefix = Vec::with_capacity(entries.len());
        let mut acc = 0u64;
        for &(_, c) in &entries {
            acc += c;
            prefix.push(acc);
        }
        CountSeries { entries, prefix }
    }

    /// Total count over the whole series.
    pub fn total(&self) -> u64 {
        self.prefix.last().copied().unwrap_or(0)
    }

    /// Number of distinct timestamps with a nonzero count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the series is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Count of results with timestamps in the half-open interval
    /// `(from, to]` — the shape of the paper's "last `P` time units".
    pub fn count_in(&self, from_exclusive: Timestamp, to_inclusive: Timestamp) -> u64 {
        if to_inclusive <= from_exclusive {
            return 0;
        }
        self.cumulative_upto(to_inclusive) - self.cumulative_upto(from_exclusive)
    }

    /// Count of results with timestamps `<= ts`.
    fn cumulative_upto(&self, ts: Timestamp) -> u64 {
        // partition_point returns the number of entries with timestamp <= ts.
        let idx = self.entries.partition_point(|&(t, _)| t <= ts);
        if idx == 0 {
            0
        } else {
            self.prefix[idx - 1]
        }
    }

    /// Largest timestamp present in the series.
    pub fn max_ts(&self) -> Option<Timestamp> {
        self.entries.last().map(|&(ts, _)| ts)
    }
}

/// Computes the true result counts of `query` over `log` by replaying the
/// log in global timestamp order through the join operator.
///
/// Returns a [`CountSeries`] keyed by result timestamp.
pub fn ground_truth_counts(query: &JoinQuery, log: &ArrivalLog) -> CountSeries {
    let sorted = log.sorted_by_timestamp();
    let mut operator = MswjOperator::new(query.clone());
    let mut entries = Vec::new();
    for event in sorted.iter() {
        let ts = event.ts();
        let outcome = operator.push(event.tuple.clone());
        debug_assert!(outcome.in_order, "sorted replay must be fully in order");
        if outcome.n_join > 0 {
            entries.push((ts, outcome.n_join));
        }
    }
    CountSeries::new(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_join::CommonKeyEquiJoin;
    use mswj_types::{ArrivalEvent, FieldType, Schema, StreamSet, Tuple, Value};
    use std::sync::Arc;

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn count_series_range_queries() {
        let s = CountSeries::new(vec![(ts(10), 2), (ts(30), 0), (ts(20), 3), (ts(40), 1)]);
        assert_eq!(s.total(), 6);
        assert_eq!(s.len(), 3, "zero counts are dropped");
        assert!(!s.is_empty());
        assert_eq!(s.count_in(ts(0), ts(40)), 6);
        assert_eq!(s.count_in(ts(10), ts(40)), 4, "(10, 40] excludes ts=10");
        assert_eq!(s.count_in(ts(15), ts(20)), 3);
        assert_eq!(s.count_in(ts(40), ts(10)), 0, "inverted range is empty");
        assert_eq!(s.count_in(ts(41), ts(100)), 0);
        assert_eq!(s.max_ts(), Some(ts(40)));
        assert!(CountSeries::default().is_empty());
    }

    #[test]
    fn ground_truth_matches_hand_computed_join() {
        // 2-way equi-join, windows of 100 ms; all tuples share key 1.
        let streams =
            StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), 100).unwrap();
        let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
        let query = mswj_join::JoinQuery::new("t", streams, cond).unwrap();

        // Stream 0 at t = 10, 50; stream 1 at t = 40, 200 (arrival order is
        // deliberately scrambled — ground truth must not depend on it).
        let mk = |stream: usize, seq: u64, t: u64| {
            ArrivalEvent::new(
                ts(1_000 + seq),
                Tuple::new(stream.into(), seq, ts(t), vec![Value::Int(1)]),
            )
        };
        let log = ArrivalLog::from_events(vec![
            mk(1, 1, 200),
            mk(0, 0, 10),
            mk(1, 0, 40),
            mk(0, 1, 50),
        ]);
        let truth = ground_truth_counts(&query, &log);
        // Sorted order: 10(S1), 40(S2) joins 10 -> 1, 50(S1) joins 40 -> 1,
        // 200(S2) joins nothing (10 and 50 expired).
        assert_eq!(truth.total(), 2);
        assert_eq!(truth.count_in(ts(0), ts(45)), 1);
        assert_eq!(truth.count_in(ts(45), ts(300)), 1);
    }

    #[test]
    fn ground_truth_is_arrival_order_invariant() {
        let streams =
            StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), 500).unwrap();
        let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
        let query = mswj_join::JoinQuery::new("t", streams, cond).unwrap();
        let mk = |stream: usize, seq: u64, t: u64, arrival: u64| {
            ArrivalEvent::new(
                ts(arrival),
                Tuple::new(stream.into(), seq, ts(t), vec![Value::Int(1)]),
            )
        };
        let ordered = ArrivalLog::from_events(vec![
            mk(0, 0, 10, 10),
            mk(1, 0, 20, 20),
            mk(0, 1, 30, 30),
            mk(1, 1, 40, 40),
        ]);
        let scrambled = ArrivalLog::from_events(vec![
            mk(1, 1, 40, 5),
            mk(0, 0, 10, 6),
            mk(1, 0, 20, 7),
            mk(0, 1, 30, 8),
        ]);
        assert_eq!(
            ground_truth_counts(&query, &ordered),
            ground_truth_counts(&query, &scrambled)
        );
    }
}

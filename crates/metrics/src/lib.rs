//! # mswj-metrics — result-quality metrics and reporting
//!
//! The paper evaluates disorder handling with two metrics (Sec. VI):
//!
//! * the **average K-slack buffer size** (a direct proxy for the result
//!   latency incurred by disorder handling), reported by the pipeline
//!   itself; and
//! * the **period-based recall** `γ(P)` — the fraction of true join results
//!   (those produced when the streams are perfectly ordered and
//!   synchronized) whose timestamps fall within the last `P` time units
//!   that were actually produced — aggregated into the *requirement
//!   fulfilment percentage* `Φ(Γ)` and its relaxed variant `Φ(.99Γ)`.
//!
//! This crate computes the ground-truth result counts by replaying a
//! dataset in sorted order through the same join operator, measures `γ(P)`
//! at every pipeline checkpoint and formats the text tables printed by the
//! experiment binaries.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ground_truth;
pub mod recall;
pub mod report;

pub use ground_truth::{ground_truth_counts, CountSeries};
pub use recall::{evaluate_recall, RecallEvaluation, RecallSample};
pub use report::{format_table, TableRow};

//! # mswj-adwin — adaptive windowing (ADWIN) for change detection
//!
//! The Statistics Manager of the disorder-handling framework (Sec. IV-A of
//! the ICDE'16 paper) approximates the per-stream tuple-delay distribution
//! from a window `R_stat_i` over the stream's recent history.  A fixed
//! window size is hard to choose without a-priori knowledge of the disorder
//! pattern, so the paper adopts the **adaptive window** approach of Bifet &
//! Gavaldà (SIAM SDM 2007, "Learning from time-changing data with adaptive
//! windowing") — reference \[25\] — which grows the window while the data is
//! stationary and shrinks it when a change in the mean of the monitored
//! quantity (here: tuple delays) is detected.
//!
//! This crate is a standalone implementation of ADWIN2, the bucket-based
//! variant of the algorithm: observations are summarised in exponentially
//! growing buckets, and after each insertion the algorithm checks every
//! bucket boundary as a candidate cut point using the Hoeffding-style bound
//! of the original paper.  When a significant difference between the means
//! of the two sub-windows is found, the older sub-window is dropped.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::VecDeque;

/// Default confidence parameter δ used by the paper's reference setup.
pub const DEFAULT_DELTA: f64 = 0.002;

/// Default number of buckets per exponential row (the `M` of ADWIN2).
pub const DEFAULT_MAX_BUCKETS: usize = 5;

/// A summary bucket holding `count ≈ 2^row` observations.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Bucket {
    sum: f64,
    sum_sq: f64,
    count: u64,
}

impl Bucket {
    fn single(value: f64) -> Self {
        Bucket {
            sum: value,
            sum_sq: value * value,
            count: 1,
        }
    }

    fn merge(self, other: Bucket) -> Bucket {
        Bucket {
            sum: self.sum + other.sum,
            sum_sq: self.sum_sq + other.sum_sq,
            count: self.count + other.count,
        }
    }
}

/// Adaptive sliding window with automatic change detection (ADWIN2).
///
/// # Examples
///
/// ```
/// use mswj_adwin::Adwin;
/// let mut adwin = Adwin::new(0.002);
/// // A long stationary phase followed by a jump in the mean.
/// for _ in 0..1_000 { adwin.insert(1.0); }
/// let mut shrunk = false;
/// for _ in 0..1_000 {
///     if adwin.insert(50.0) { shrunk = true; }
/// }
/// assert!(shrunk, "ADWIN must detect the change in the mean");
/// assert!(adwin.mean() > 25.0, "old regime must have been dropped");
/// ```
#[derive(Debug, Clone)]
pub struct Adwin {
    delta: f64,
    max_buckets: usize,
    /// `rows[r]` holds buckets of capacity `2^r`, newest first.
    rows: Vec<VecDeque<Bucket>>,
    total: Bucket,
    /// Observations seen over the whole stream (not just the window).
    observed: u64,
    /// Number of detected changes (window shrinks).
    changes: u64,
    /// Check for cuts only every `check_period` insertions (1 = every time).
    check_period: u64,
}

impl Adwin {
    /// Creates an ADWIN detector with confidence parameter `delta`
    /// (smaller δ ⇒ fewer false alarms, slower reaction).
    pub fn new(delta: f64) -> Self {
        Self::with_params(delta, DEFAULT_MAX_BUCKETS, 1)
    }

    /// Creates an ADWIN detector with the default δ of 0.002.
    pub fn default_detector() -> Self {
        Self::new(DEFAULT_DELTA)
    }

    /// Full-control constructor: `max_buckets` buckets per exponential row
    /// and a cut check every `check_period` insertions.
    pub fn with_params(delta: f64, max_buckets: usize, check_period: u64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        assert!(max_buckets >= 2, "need at least two buckets per row");
        assert!(check_period >= 1, "check_period must be at least 1");
        Adwin {
            delta,
            max_buckets,
            rows: vec![VecDeque::new()],
            total: Bucket {
                sum: 0.0,
                sum_sq: 0.0,
                count: 0,
            },
            observed: 0,
            changes: 0,
            check_period,
        }
    }

    /// Number of observations currently inside the adaptive window.
    pub fn len(&self) -> u64 {
        self.total.count
    }

    /// `true` when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.total.count == 0
    }

    /// Total number of observations ever inserted.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Number of change detections (window shrinks) so far.
    pub fn changes(&self) -> u64 {
        self.changes
    }

    /// Mean of the observations inside the window (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total.count == 0 {
            0.0
        } else {
            self.total.sum / self.total.count as f64
        }
    }

    /// Variance of the observations inside the window (0.0 when < 2 items).
    pub fn variance(&self) -> f64 {
        if self.total.count < 2 {
            return 0.0;
        }
        let n = self.total.count as f64;
        let mean = self.total.sum / n;
        (self.total.sum_sq / n - mean * mean).max(0.0)
    }

    /// Inserts an observation; returns `true` if a change was detected and
    /// the window was shrunk as a consequence.
    pub fn insert(&mut self, value: f64) -> bool {
        self.observed += 1;
        self.rows[0].push_front(Bucket::single(value));
        self.total = self.total.merge(Bucket::single(value));
        self.compress();
        if self.observed.is_multiple_of(self.check_period) {
            self.detect_and_shrink()
        } else {
            false
        }
    }

    /// Merges overflowing buckets into the next exponential row.
    fn compress(&mut self) {
        let mut row = 0;
        while row < self.rows.len() {
            if self.rows[row].len() > self.max_buckets {
                let b1 = self.rows[row].pop_back().expect("len checked");
                let b2 = self.rows[row].pop_back().expect("len checked");
                if row + 1 == self.rows.len() {
                    self.rows.push(VecDeque::new());
                }
                self.rows[row + 1].push_front(b2.merge(b1));
            }
            row += 1;
        }
    }

    /// Scans candidate cut points from the oldest bucket towards the newest
    /// and drops the oldest buckets while a significant difference in means
    /// is detected.  Returns `true` if anything was dropped.
    fn detect_and_shrink(&mut self) -> bool {
        if self.total.count < 2 {
            return false;
        }
        let mut shrunk = false;
        let mut reduced = true;
        while reduced {
            reduced = false;
            // Accumulate the "old" side starting from the oldest bucket.
            let mut old = Bucket {
                sum: 0.0,
                sum_sq: 0.0,
                count: 0,
            };
            'outer: for row in (0..self.rows.len()).rev() {
                for idx in (0..self.rows[row].len()).rev() {
                    let bucket = self.rows[row][idx];
                    old = old.merge(bucket);
                    let recent_count = self.total.count - old.count;
                    if recent_count == 0 {
                        break 'outer;
                    }
                    let recent_sum = self.total.sum - old.sum;
                    let mean_old = old.sum / old.count as f64;
                    let mean_recent = recent_sum / recent_count as f64;
                    if self.cut_detected(old.count, recent_count, mean_old, mean_recent) {
                        self.drop_oldest_bucket();
                        self.changes += 1;
                        shrunk = true;
                        reduced = self.total.count > 2;
                        break 'outer;
                    }
                }
            }
        }
        shrunk
    }

    /// The ADWIN cut condition: `|μ_old - μ_recent| >= ε_cut`, with the
    /// variance-aware bound of Bifet & Gavaldà (Theorem 3.2).
    fn cut_detected(&self, n0: u64, n1: u64, mean0: f64, mean1: f64) -> bool {
        let n0 = n0 as f64;
        let n1 = n1 as f64;
        let n = n0 + n1;
        // Harmonic mean of the two sub-window sizes.
        let m = 1.0 / (1.0 / n0 + 1.0 / n1);
        let delta_prime = self.delta / n.max(1.0);
        let ln_term = (2.0 / delta_prime).ln();
        let variance = self.variance();
        let eps = (2.0 / m * variance * ln_term).sqrt() + 2.0 / (3.0 * m) * ln_term;
        (mean0 - mean1).abs() >= eps
    }

    /// Removes the single oldest bucket from the window.
    fn drop_oldest_bucket(&mut self) {
        for row in (0..self.rows.len()).rev() {
            if let Some(b) = self.rows[row].pop_back() {
                self.total.sum -= b.sum;
                self.total.sum_sq -= b.sum_sq;
                self.total.count -= b.count;
                if self.total.count == 0 {
                    self.total.sum = 0.0;
                    self.total.sum_sq = 0.0;
                }
                return;
            }
        }
    }
}

impl Default for Adwin {
    fn default() -> Self {
        Adwin::default_detector()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn rejects_invalid_delta() {
        let _ = Adwin::new(0.0);
    }

    #[test]
    #[should_panic(expected = "need at least two buckets")]
    fn rejects_too_few_buckets() {
        let _ = Adwin::with_params(0.01, 1, 1);
    }

    #[test]
    fn empty_window_defaults() {
        let a = Adwin::default();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.observed(), 0);
        assert_eq!(a.changes(), 0);
    }

    #[test]
    fn stationary_stream_grows_the_window() {
        let mut a = Adwin::new(0.002);
        for i in 0..5_000 {
            // Small bounded noise around a constant mean.
            let v = 10.0 + ((i % 7) as f64 - 3.0) * 0.01;
            a.insert(v);
        }
        // Window should retain (nearly) all observations: allow a small
        // number of spurious drops but not systematic shrinking.
        assert!(a.len() > 4_000, "window shrank too much: {}", a.len());
        assert!((a.mean() - 10.0).abs() < 0.1);
    }

    #[test]
    fn abrupt_change_is_detected_and_old_data_dropped() {
        let mut a = Adwin::new(0.002);
        for _ in 0..2_000 {
            a.insert(1.0);
        }
        let mut detected = false;
        for _ in 0..2_000 {
            if a.insert(100.0) {
                detected = true;
            }
        }
        assert!(detected);
        assert!(a.changes() > 0);
        // After the drift finishes the window mean must reflect the new regime.
        assert!(
            a.mean() > 60.0,
            "mean still dominated by old data: {}",
            a.mean()
        );
    }

    #[test]
    fn gradual_change_eventually_detected() {
        let mut a = Adwin::new(0.01);
        for i in 0..6_000 {
            let v = if i < 3_000 {
                5.0
            } else {
                5.0 + (i - 3_000) as f64 * 0.01
            };
            a.insert(v);
        }
        assert!(a.changes() > 0, "gradual drift never detected");
        assert!(a.mean() > 10.0);
    }

    #[test]
    fn variance_is_nonnegative_and_sensible() {
        let mut a = Adwin::new(0.002);
        for i in 0..1_000 {
            a.insert(if i % 2 == 0 { 0.0 } else { 10.0 });
        }
        assert!(a.variance() > 0.0);
        assert!((a.mean() - 5.0).abs() < 0.5);
    }

    #[test]
    fn observed_counts_everything_inserted() {
        let mut a = Adwin::new(0.002);
        for _ in 0..100 {
            a.insert(3.0);
        }
        assert_eq!(a.observed(), 100);
        assert!(a.len() <= 100);
    }

    #[test]
    fn check_period_skips_detection() {
        let mut a = Adwin::with_params(0.002, 5, 10_000);
        for _ in 0..500 {
            a.insert(1.0);
        }
        for _ in 0..500 {
            a.insert(100.0);
        }
        // With an enormous check period nothing is ever cut.
        assert_eq!(a.changes(), 0);
        assert_eq!(a.len(), 1_000);
    }

    #[test]
    fn bucket_compression_keeps_totals_consistent() {
        let mut a = Adwin::with_params(0.002, 2, 1_000_000);
        let mut expected_sum = 0.0;
        for i in 0..257 {
            let v = i as f64;
            expected_sum += v;
            a.insert(v);
        }
        assert_eq!(a.len(), 257);
        assert!((a.mean() - expected_sum / 257.0).abs() < 1e-9);
    }
}

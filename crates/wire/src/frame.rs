//! The frame layer: message types, header layout, and framed I/O.
//!
//! ## Frame layout
//!
//! ```text
//! ┌─────────────┬──────────────┬────────────┬──────────┬───────────────┬─────────┐
//! │ magic (u32) │ version(u16) │ type (u8)  │ reserved │ payload (u32) │ payload │
//! │ "MSWJ" LE   │ PROTOCOL_VER │ FrameType  │ 0x00     │ length, LE    │ bytes   │
//! └─────────────┴──────────────┴────────────┴──────────┴───────────────┴─────────┘
//!   4 bytes       2 bytes        1 byte       1 byte     4 bytes         ≤ 64 MiB
//! ```
//!
//! The header is validated before any payload byte is trusted: bad magic
//! and unknown types are [`WireError::Corrupt`], a foreign version is
//! [`WireError::VersionMismatch`] (so incompatible peers are rejected on
//! the very first frame), and a length above [`MAX_PAYLOAD`] is
//! [`WireError::TooLarge`].  Payloads must decode to exactly their declared
//! length — trailing bytes are corruption, never silently ignored.

use crate::codec::{
    get_field_type, get_value, put_bool, put_f64, put_field_type, put_len, put_str, put_u32,
    put_u64, put_u8, put_value, Cursor,
};
use crate::error::WireError;
use mswj_join::{ConditionDescriptor, JoinResult, OperatorStats, ProbeStrategy};
use mswj_types::{FieldType, StreamIndex, Timestamp, Tuple};
use std::io::{Read, Write};

/// Protocol revision; bumped on any incompatible layout change.
///
/// v2: `BarrierAck` stats grew the `adopted`/`evicted` migration counters,
/// and the runtime re-planning frames (`FetchWindow`/`Retain`/`Revise`)
/// joined the protocol.
///
/// v3: `BarrierAck` grew the shard's live window footprint
/// (`window_bytes`/`window_segments`), so remote shard stats report the
/// same window gauges as local ones.
pub const PROTOCOL_VERSION: u16 = 3;

/// Frame magic: the ASCII bytes `MSWJ`, read little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"MSWJ");

/// Fixed frame header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Hard cap on a single frame payload; decoding refuses anything larger.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

const FT_HELLO: u8 = 0x01;
const FT_HELLO_ACK: u8 = 0x02;
const FT_SETUP: u8 = 0x03;
const FT_SETUP_ACK: u8 = 0x04;
const FT_TASK: u8 = 0x05;
const FT_OUTPUT: u8 = 0x06;
const FT_BARRIER: u8 = 0x07;
const FT_BARRIER_ACK: u8 = 0x08;
const FT_FETCH_CLASS: u8 = 0x09;
const FT_CLASS_DATA: u8 = 0x0A;
const FT_ADOPT: u8 = 0x0B;
const FT_PURGE_CLASS: u8 = 0x0C;
const FT_ACK: u8 = 0x0D;
const FT_ERROR: u8 = 0x0E;
const FT_SHUTDOWN: u8 = 0x0F;
const FT_SHUTDOWN_ACK: u8 = 0x10;
const FT_FETCH_WINDOW: u8 = 0x11;
const FT_RETAIN: u8 = 0x12;
const FT_REVISE: u8 = 0x13;

/// One routed tuple inside a [`WireTask`]: the front-end's staging sequence
/// number, whether this shard should probe (vs. silently index), and the
/// tuple itself.
#[derive(Debug, Clone, PartialEq)]
pub struct WireItem {
    /// Position in the epoch's staging order (drives deterministic merge).
    pub seq: u32,
    /// `true` → probe and produce results; `false` → index-only insert.
    pub probe: bool,
    /// The routed tuple.
    pub tuple: Tuple,
}

/// One epoch of routed work for a single shard.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTask {
    /// Monotonic epoch number assigned by the front-end.
    pub epoch: u64,
    /// Routing-table epoch the batch was routed under.
    pub routing_epoch: u64,
    /// Routed items in staging order.
    pub items: Vec<WireItem>,
}

/// Per-item probe outcome inside a [`WireOutput`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSub {
    /// Staging sequence number this outcome belongs to.
    pub seq: u32,
    /// Join results produced by this shard for that item.
    pub n_join: u64,
    /// Whether the probe was answered through the hash-index path.
    pub indexed: bool,
}

/// A shard's reply to one [`WireTask`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireOutput {
    /// Echo of the task's epoch.
    pub epoch: u64,
    /// Echo of the task's routing epoch.
    pub routing_epoch: u64,
    /// Wall-clock nanoseconds the shard spent draining the epoch.
    pub busy_nanos: u64,
    /// Per-item outcomes in staging order.
    pub sub: Vec<WireSub>,
    /// Materialized results tagged with their staging sequence number
    /// (empty when the session runs in counting mode).
    pub mat: Vec<(u32, JoinResult)>,
}

/// One input stream of a [`WireQuery`]: name, schema and window size.
#[derive(Debug, Clone, PartialEq)]
pub struct WireStream {
    /// Stream name.
    pub name: String,
    /// Schema fields as `(name, type)` pairs in attribute order.
    pub fields: Vec<(String, FieldType)>,
    /// Window size in milliseconds.
    pub window: u64,
}

/// Everything a shard server needs to instantiate its join operator.
#[derive(Debug, Clone, PartialEq)]
pub struct WireQuery {
    /// Query name (diagnostics only).
    pub name: String,
    /// The input streams in index order.
    pub streams: Vec<WireStream>,
    /// Serializable description of the join condition.
    pub condition: ConditionDescriptor,
    /// Probe strategy (`Auto` or `NestedLoop`).
    pub strategy: ProbeStrategy,
    /// Whether results are materialized (enumerating mode) or counted.
    pub enumerate: bool,
}

/// Every message that crosses a shard boundary.
///
/// `Hello`/`HelloAck` open a connection (the header's version field does
/// the compatibility check), `Setup`/`SetupAck` instantiate the remote
/// operator, `Task`/`Output` carry the epoch pipeline, `Barrier`/
/// `BarrierAck` fence it and return operator statistics, the class frames
/// move replicated build state for hot-key splitting, and `Error` carries
/// remote panics. `Shutdown`/`ShutdownAck` are the clean close handshake.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client greeting; the header carries the protocol version.
    Hello,
    /// Server acceptance of a [`Frame::Hello`].
    HelloAck,
    /// Operator instantiation request.
    Setup(WireQuery),
    /// Acknowledges a successful [`Frame::Setup`].
    SetupAck,
    /// One epoch of routed work.
    Task(WireTask),
    /// The shard's reply to a [`Frame::Task`].
    Output(WireOutput),
    /// Pipeline fence; `token` is echoed in the ack.
    Barrier {
        /// Caller-chosen token echoed by the ack.
        token: u64,
    },
    /// Reply to [`Frame::Barrier`], carrying the shard's operator counters
    /// and its live window footprint.
    BarrierAck {
        /// Echo of the barrier token.
        token: u64,
        /// The shard operator's lifetime counters.
        stats: OperatorStats,
        /// Estimated live window bytes held by the shard operator.
        window_bytes: u64,
        /// Columnar storage segments held across the shard's windows.
        window_segments: u64,
    },
    /// Requests every window tuple of one key class (split preparation).
    FetchClass {
        /// Stream whose window is read.
        stream: u64,
        /// Equi-join column of that stream.
        column: u64,
        /// `join_key_hash` of the class.
        key_hash: u64,
    },
    /// Reply to [`Frame::FetchClass`].
    ClassData {
        /// The matching tuples in window order.
        tuples: Vec<Tuple>,
    },
    /// Installs replicated build state into a shard's windows.
    Adopt {
        /// Tuples to insert (index-only, no probing, no stats).
        tuples: Vec<Tuple>,
    },
    /// Evicts a key class from one stream's window (split teardown).
    PurgeClass {
        /// Stream whose window is purged.
        stream: u64,
        /// Equi-join column of that stream.
        column: u64,
        /// `join_key_hash` of the class to evict.
        key_hash: u64,
    },
    /// Requests every live tuple of one stream's window (partition-pair
    /// migration reads whole windows, not single key classes).  Replied to
    /// with [`Frame::ClassData`].
    FetchWindow {
        /// Stream whose window is read.
        stream: u64,
    },
    /// Keeps only the tuples of one stream's window whose routing key
    /// hashes home to `keep` under `shards`-way partitioning; evicts the
    /// rest.  The wire form of the engine's re-homing predicate
    /// `join_key_hash(t.value(column)) % shards == keep`.
    Retain {
        /// Stream whose window is filtered.
        stream: u64,
        /// Column whose value is the routing key.
        column: u64,
        /// Modulus of the home-shard computation (the shard count).
        shards: u64,
        /// The home shard whose tuples survive.
        keep: u64,
    },
    /// Applies a probe-plan revision to the remote operator: a probe-chain
    /// reorder (empty = unchanged) and/or a hash-index demotion.
    Revise {
        /// New probe order (a permutation of `0..m`), or empty to keep the
        /// current order.
        order: Vec<usize>,
        /// Whether to demote the hash index to the nested-loop scan.
        demote: bool,
    },
    /// Generic acknowledgement for `Adopt`/`PurgeClass`/`Retain`/`Revise`.
    Ack,
    /// A remote failure — typically a panic caught in the shard worker.
    Error {
        /// Human-readable failure description (panic payload text).
        message: String,
    },
    /// Clean-close request.
    Shutdown,
    /// Acknowledges [`Frame::Shutdown`]; the connection closes after it.
    ShutdownAck,
}

fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    put_u64(buf, t.stream.as_usize() as u64);
    put_u64(buf, t.seq);
    put_u64(buf, t.ts.as_millis());
    put_len(buf, t.values().len());
    for v in t.values() {
        put_value(buf, v);
    }
    match t.delay() {
        Some(d) => {
            put_u8(buf, 1);
            put_u64(buf, d);
        }
        None => put_u8(buf, 0),
    }
}

fn get_tuple(c: &mut Cursor<'_>) -> Result<Tuple, WireError> {
    let stream = c.u64()?;
    let stream = usize::try_from(stream)
        .map_err(|_| WireError::Corrupt(format!("stream index {stream} overflows usize")))?;
    let seq = c.u64()?;
    let ts = Timestamp::from_millis(c.u64()?);
    let n = c.len(1)?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(get_value(c)?);
    }
    let mut tuple = Tuple::new(StreamIndex(stream), seq, ts, values);
    match c.u8()? {
        0 => {}
        1 => tuple.set_delay(c.u64()?),
        tag => {
            return Err(WireError::Corrupt(format!(
                "invalid delay-option tag {tag:#04x}"
            )))
        }
    }
    Ok(tuple)
}

fn put_tuples(buf: &mut Vec<u8>, tuples: &[Tuple]) {
    put_len(buf, tuples.len());
    for t in tuples {
        put_tuple(buf, t);
    }
}

fn get_tuples(c: &mut Cursor<'_>) -> Result<Vec<Tuple>, WireError> {
    // A tuple takes at least 25 bytes (3×u64 + count + delay tag).
    let n = c.len(25)?;
    let mut tuples = Vec::with_capacity(n);
    for _ in 0..n {
        tuples.push(get_tuple(c)?);
    }
    Ok(tuples)
}

fn put_result(buf: &mut Vec<u8>, r: &JoinResult) {
    put_u64(buf, r.ts.as_millis());
    put_tuples(buf, &r.components);
}

fn get_result(c: &mut Cursor<'_>) -> Result<JoinResult, WireError> {
    let ts = Timestamp::from_millis(c.u64()?);
    let components = get_tuples(c)?;
    Ok(JoinResult { ts, components })
}

fn put_stats(buf: &mut Vec<u8>, s: &OperatorStats) {
    put_u64(buf, s.in_order);
    put_u64(buf, s.out_of_order);
    put_u64(buf, s.dropped);
    put_u64(buf, s.indexed_probes);
    put_u64(buf, s.fallback_probes);
    put_u64(buf, s.results);
    put_u64(buf, s.cross_results);
    put_u64(buf, s.expired);
    put_u64(buf, s.adopted);
    put_u64(buf, s.evicted);
}

fn get_stats(c: &mut Cursor<'_>) -> Result<OperatorStats, WireError> {
    Ok(OperatorStats {
        in_order: c.u64()?,
        out_of_order: c.u64()?,
        dropped: c.u64()?,
        indexed_probes: c.u64()?,
        fallback_probes: c.u64()?,
        results: c.u64()?,
        cross_results: c.u64()?,
        expired: c.u64()?,
        adopted: c.u64()?,
        evicted: c.u64()?,
    })
}

fn put_cols(buf: &mut Vec<u8>, cols: &[usize]) {
    put_len(buf, cols.len());
    for &c in cols {
        put_u64(buf, c as u64);
    }
}

fn get_cols(c: &mut Cursor<'_>) -> Result<Vec<usize>, WireError> {
    let n = c.len(8)?;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let raw = c.u64()?;
        cols.push(
            usize::try_from(raw)
                .map_err(|_| WireError::Corrupt(format!("column index {raw} overflows usize")))?,
        );
    }
    Ok(cols)
}

const COND_CROSS: u8 = 0;
const COND_COMMON_KEY: u8 = 1;
const COND_STAR: u8 = 2;
const COND_BAND: u8 = 3;
const COND_DISTANCE: u8 = 4;

fn put_condition(buf: &mut Vec<u8>, d: &ConditionDescriptor) {
    match d {
        ConditionDescriptor::Cross { arity } => {
            put_u8(buf, COND_CROSS);
            put_u64(buf, *arity as u64);
        }
        ConditionDescriptor::CommonKey { columns } => {
            put_u8(buf, COND_COMMON_KEY);
            put_cols(buf, columns);
        }
        ConditionDescriptor::Star {
            anchor,
            anchor_cols,
            other_cols,
        } => {
            put_u8(buf, COND_STAR);
            put_u64(buf, *anchor as u64);
            put_cols(buf, anchor_cols);
            put_cols(buf, other_cols);
        }
        ConditionDescriptor::Band { columns, band } => {
            put_u8(buf, COND_BAND);
            put_cols(buf, columns);
            put_f64(buf, *band);
        }
        ConditionDescriptor::DistanceWithin {
            x_cols,
            y_cols,
            threshold,
        } => {
            put_u8(buf, COND_DISTANCE);
            put_u64(buf, x_cols[0] as u64);
            put_u64(buf, x_cols[1] as u64);
            put_u64(buf, y_cols[0] as u64);
            put_u64(buf, y_cols[1] as u64);
            put_f64(buf, *threshold);
        }
    }
}

fn get_usize(c: &mut Cursor<'_>) -> Result<usize, WireError> {
    let raw = c.u64()?;
    usize::try_from(raw).map_err(|_| WireError::Corrupt(format!("index {raw} overflows usize")))
}

fn get_condition(c: &mut Cursor<'_>) -> Result<ConditionDescriptor, WireError> {
    match c.u8()? {
        COND_CROSS => Ok(ConditionDescriptor::Cross {
            arity: get_usize(c)?,
        }),
        COND_COMMON_KEY => Ok(ConditionDescriptor::CommonKey {
            columns: get_cols(c)?,
        }),
        COND_STAR => Ok(ConditionDescriptor::Star {
            anchor: get_usize(c)?,
            anchor_cols: get_cols(c)?,
            other_cols: get_cols(c)?,
        }),
        COND_BAND => Ok(ConditionDescriptor::Band {
            columns: get_cols(c)?,
            band: c.f64()?,
        }),
        COND_DISTANCE => Ok(ConditionDescriptor::DistanceWithin {
            x_cols: [get_usize(c)?, get_usize(c)?],
            y_cols: [get_usize(c)?, get_usize(c)?],
            threshold: c.f64()?,
        }),
        tag => Err(WireError::Corrupt(format!(
            "unknown condition-descriptor tag {tag:#04x}"
        ))),
    }
}

fn put_strategy(buf: &mut Vec<u8>, s: ProbeStrategy) {
    put_u8(
        buf,
        match s {
            ProbeStrategy::Auto => 0,
            ProbeStrategy::NestedLoop => 1,
        },
    );
}

fn get_strategy(c: &mut Cursor<'_>) -> Result<ProbeStrategy, WireError> {
    match c.u8()? {
        0 => Ok(ProbeStrategy::Auto),
        1 => Ok(ProbeStrategy::NestedLoop),
        tag => Err(WireError::Corrupt(format!(
            "unknown probe-strategy tag {tag:#04x}"
        ))),
    }
}

impl Frame {
    /// The one-byte frame type written into the header.
    pub fn frame_type(&self) -> u8 {
        match self {
            Frame::Hello => FT_HELLO,
            Frame::HelloAck => FT_HELLO_ACK,
            Frame::Setup(_) => FT_SETUP,
            Frame::SetupAck => FT_SETUP_ACK,
            Frame::Task(_) => FT_TASK,
            Frame::Output(_) => FT_OUTPUT,
            Frame::Barrier { .. } => FT_BARRIER,
            Frame::BarrierAck { .. } => FT_BARRIER_ACK,
            Frame::FetchClass { .. } => FT_FETCH_CLASS,
            Frame::ClassData { .. } => FT_CLASS_DATA,
            Frame::Adopt { .. } => FT_ADOPT,
            Frame::PurgeClass { .. } => FT_PURGE_CLASS,
            Frame::FetchWindow { .. } => FT_FETCH_WINDOW,
            Frame::Retain { .. } => FT_RETAIN,
            Frame::Revise { .. } => FT_REVISE,
            Frame::Ack => FT_ACK,
            Frame::Error { .. } => FT_ERROR,
            Frame::Shutdown => FT_SHUTDOWN,
            Frame::ShutdownAck => FT_SHUTDOWN_ACK,
        }
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Frame::Hello
            | Frame::HelloAck
            | Frame::SetupAck
            | Frame::Ack
            | Frame::Shutdown
            | Frame::ShutdownAck => {}
            Frame::Setup(q) => {
                put_str(buf, &q.name);
                put_len(buf, q.streams.len());
                for s in &q.streams {
                    put_str(buf, &s.name);
                    put_len(buf, s.fields.len());
                    for (name, ty) in &s.fields {
                        put_str(buf, name);
                        put_field_type(buf, *ty);
                    }
                    put_u64(buf, s.window);
                }
                put_condition(buf, &q.condition);
                put_strategy(buf, q.strategy);
                put_bool(buf, q.enumerate);
            }
            Frame::Task(t) => {
                put_u64(buf, t.epoch);
                put_u64(buf, t.routing_epoch);
                put_len(buf, t.items.len());
                for item in &t.items {
                    put_u32(buf, item.seq);
                    put_bool(buf, item.probe);
                    put_tuple(buf, &item.tuple);
                }
            }
            Frame::Output(o) => {
                put_u64(buf, o.epoch);
                put_u64(buf, o.routing_epoch);
                put_u64(buf, o.busy_nanos);
                put_len(buf, o.sub.len());
                for s in &o.sub {
                    put_u32(buf, s.seq);
                    put_u64(buf, s.n_join);
                    put_bool(buf, s.indexed);
                }
                put_len(buf, o.mat.len());
                for (seq, r) in &o.mat {
                    put_u32(buf, *seq);
                    put_result(buf, r);
                }
            }
            Frame::Barrier { token } => put_u64(buf, *token),
            Frame::BarrierAck {
                token,
                stats,
                window_bytes,
                window_segments,
            } => {
                put_u64(buf, *token);
                put_stats(buf, stats);
                put_u64(buf, *window_bytes);
                put_u64(buf, *window_segments);
            }
            Frame::FetchClass {
                stream,
                column,
                key_hash,
            }
            | Frame::PurgeClass {
                stream,
                column,
                key_hash,
            } => {
                put_u64(buf, *stream);
                put_u64(buf, *column);
                put_u64(buf, *key_hash);
            }
            Frame::ClassData { tuples } | Frame::Adopt { tuples } => put_tuples(buf, tuples),
            Frame::FetchWindow { stream } => put_u64(buf, *stream),
            Frame::Retain {
                stream,
                column,
                shards,
                keep,
            } => {
                put_u64(buf, *stream);
                put_u64(buf, *column);
                put_u64(buf, *shards);
                put_u64(buf, *keep);
            }
            Frame::Revise { order, demote } => {
                put_cols(buf, order);
                put_bool(buf, *demote);
            }
            Frame::Error { message } => put_str(buf, message),
        }
    }

    fn decode_payload(frame_type: u8, payload: &[u8]) -> Result<Frame, WireError> {
        let mut c = Cursor::new(payload);
        let frame = match frame_type {
            FT_HELLO => Frame::Hello,
            FT_HELLO_ACK => Frame::HelloAck,
            FT_SETUP_ACK => Frame::SetupAck,
            FT_ACK => Frame::Ack,
            FT_SHUTDOWN => Frame::Shutdown,
            FT_SHUTDOWN_ACK => Frame::ShutdownAck,
            FT_SETUP => {
                let name = c.str()?;
                let n = c.len(1)?;
                let mut streams = Vec::with_capacity(n);
                for _ in 0..n {
                    let sname = c.str()?;
                    let nf = c.len(1)?;
                    let mut fields = Vec::with_capacity(nf);
                    for _ in 0..nf {
                        let fname = c.str()?;
                        let ty = get_field_type(&mut c)?;
                        fields.push((fname, ty));
                    }
                    let window = c.u64()?;
                    streams.push(WireStream {
                        name: sname,
                        fields,
                        window,
                    });
                }
                let condition = get_condition(&mut c)?;
                let strategy = get_strategy(&mut c)?;
                let enumerate = c.bool()?;
                Frame::Setup(WireQuery {
                    name,
                    streams,
                    condition,
                    strategy,
                    enumerate,
                })
            }
            FT_TASK => {
                let epoch = c.u64()?;
                let routing_epoch = c.u64()?;
                // An item takes at least 30 bytes (u32 + bool + minimal tuple).
                let n = c.len(30)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let seq = c.u32()?;
                    let probe = c.bool()?;
                    let tuple = get_tuple(&mut c)?;
                    items.push(WireItem { seq, probe, tuple });
                }
                Frame::Task(WireTask {
                    epoch,
                    routing_epoch,
                    items,
                })
            }
            FT_OUTPUT => {
                let epoch = c.u64()?;
                let routing_epoch = c.u64()?;
                let busy_nanos = c.u64()?;
                let n = c.len(13)?;
                let mut sub = Vec::with_capacity(n);
                for _ in 0..n {
                    let seq = c.u32()?;
                    let n_join = c.u64()?;
                    let indexed = c.bool()?;
                    sub.push(WireSub {
                        seq,
                        n_join,
                        indexed,
                    });
                }
                let nm = c.len(20)?;
                let mut mat = Vec::with_capacity(nm);
                for _ in 0..nm {
                    let seq = c.u32()?;
                    let r = get_result(&mut c)?;
                    mat.push((seq, r));
                }
                Frame::Output(WireOutput {
                    epoch,
                    routing_epoch,
                    busy_nanos,
                    sub,
                    mat,
                })
            }
            FT_BARRIER => Frame::Barrier { token: c.u64()? },
            FT_BARRIER_ACK => Frame::BarrierAck {
                token: c.u64()?,
                stats: get_stats(&mut c)?,
                window_bytes: c.u64()?,
                window_segments: c.u64()?,
            },
            FT_FETCH_CLASS => Frame::FetchClass {
                stream: c.u64()?,
                column: c.u64()?,
                key_hash: c.u64()?,
            },
            FT_PURGE_CLASS => Frame::PurgeClass {
                stream: c.u64()?,
                column: c.u64()?,
                key_hash: c.u64()?,
            },
            FT_CLASS_DATA => Frame::ClassData {
                tuples: get_tuples(&mut c)?,
            },
            FT_ADOPT => Frame::Adopt {
                tuples: get_tuples(&mut c)?,
            },
            FT_FETCH_WINDOW => Frame::FetchWindow { stream: c.u64()? },
            FT_RETAIN => Frame::Retain {
                stream: c.u64()?,
                column: c.u64()?,
                shards: c.u64()?,
                keep: c.u64()?,
            },
            FT_REVISE => Frame::Revise {
                order: get_cols(&mut c)?,
                demote: c.bool()?,
            },
            FT_ERROR => Frame::Error { message: c.str()? },
            tag => return Err(WireError::Corrupt(format!("unknown frame type {tag:#04x}"))),
        };
        c.finish()?;
        Ok(frame)
    }

    /// Appends the fully framed encoding (header + payload) to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let header_at = buf.len();
        put_u32(buf, MAGIC);
        crate::codec::put_u16(buf, PROTOCOL_VERSION);
        put_u8(buf, self.frame_type());
        put_u8(buf, 0); // reserved
        put_u32(buf, 0); // payload length back-patched below
        let payload_at = buf.len();
        self.encode_payload(buf);
        let len = (buf.len() - payload_at) as u32;
        buf[header_at + 8..header_at + 12].copy_from_slice(&len.to_le_bytes());
    }

    /// Decodes one frame from the front of `bytes`, returning it together
    /// with the number of bytes consumed.
    ///
    /// [`WireError::Truncated`] means more bytes are needed; every other
    /// error is terminal for the connection. Never panics and never reads
    /// past the declared payload length.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
        if bytes.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                available: bytes.len(),
            });
        }
        let mut header = Cursor::new(&bytes[..HEADER_LEN]);
        let (frame_type, len) = decode_header(&mut header)?;
        let total = HEADER_LEN + len;
        if bytes.len() < total {
            return Err(WireError::Truncated {
                needed: total,
                available: bytes.len(),
            });
        }
        let frame = Frame::decode_payload(frame_type, &bytes[HEADER_LEN..total])?;
        Ok((frame, total))
    }
}

fn decode_header(header: &mut Cursor<'_>) -> Result<(u8, usize), WireError> {
    let magic = header.u32()?;
    if magic != MAGIC {
        return Err(WireError::Corrupt(format!(
            "bad magic {magic:#010x}, expected {MAGIC:#010x}"
        )));
    }
    let version = header.u16()?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::VersionMismatch {
            ours: PROTOCOL_VERSION,
            theirs: version,
        });
    }
    let frame_type = header.u8()?;
    let _reserved = header.u8()?;
    let len = header.u32()?;
    if len > MAX_PAYLOAD {
        return Err(WireError::TooLarge {
            len: u64::from(len),
            max: u64::from(MAX_PAYLOAD),
        });
    }
    Ok((frame_type, len as usize))
}

/// Encodes `frame` into `scratch` and writes it to `w`, returning the
/// number of bytes written.
pub fn write_frame<W: Write>(
    w: &mut W,
    frame: &Frame,
    scratch: &mut Vec<u8>,
) -> Result<usize, WireError> {
    scratch.clear();
    frame.encode(scratch);
    w.write_all(scratch)?;
    w.flush()?;
    Ok(scratch.len())
}

/// Reads exactly one frame from `r` (blocking, honouring any read timeout
/// configured on the stream), returning it with its total encoded size.
pub fn read_frame<R: Read>(r: &mut R, scratch: &mut Vec<u8>) -> Result<(Frame, usize), WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let mut cursor = Cursor::new(&header);
    let (frame_type, len) = decode_header(&mut cursor)?;
    scratch.clear();
    scratch.resize(len, 0);
    r.read_exact(scratch)?;
    let frame = Frame::decode_payload(frame_type, scratch)?;
    Ok((frame, HEADER_LEN + len))
}

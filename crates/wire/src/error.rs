//! Decode and I/O failures of the wire protocol.
//!
//! Every decoding path returns one of these instead of panicking: a frame
//! assembled from a hostile or corrupted peer must never crash the process,
//! over-read the buffer, or allocate unbounded memory.

use std::fmt;

/// Why a frame could not be encoded, decoded or exchanged.
#[derive(Debug)]
pub enum WireError {
    /// The input ended before a complete header or payload was available.
    ///
    /// For streaming decoders this is recoverable — read more bytes and
    /// retry; for a complete, length-delimited payload it means the peer
    /// lied about the length and the frame must be rejected.
    Truncated {
        /// Bytes the decoder needed to make progress.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The bytes do not describe a well-formed frame: bad magic, an unknown
    /// frame type or enum tag, invalid UTF-8, an impossible collection
    /// length, or trailing garbage after the payload.
    Corrupt(String),
    /// The peer speaks a different protocol revision.
    VersionMismatch {
        /// The locally supported [`PROTOCOL_VERSION`](crate::PROTOCOL_VERSION).
        ours: u16,
        /// The version announced in the peer's frame header.
        theirs: u16,
    },
    /// The declared payload length exceeds the hard cap
    /// ([`MAX_PAYLOAD`](crate::MAX_PAYLOAD)); decoding refuses to allocate.
    TooLarge {
        /// The declared payload length.
        len: u64,
        /// The maximum accepted payload length.
        max: u64,
    },
    /// An underlying socket or pipe error while reading or writing a frame.
    Io(std::io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => write!(
                f,
                "truncated frame: needed {needed} bytes, only {available} available"
            ),
            WireError::Corrupt(detail) => write!(f, "corrupt frame: {detail}"),
            WireError::VersionMismatch { ours, theirs } => write!(
                f,
                "protocol version mismatch: we speak v{ours}, peer sent v{theirs}"
            ),
            WireError::TooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// Whether this error means the peer went away (EOF / reset / broken
    /// pipe) rather than sending malformed data.
    pub fn is_disconnect(&self) -> bool {
        match self {
            WireError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
            ),
            _ => false,
        }
    }

    /// Whether this error is a read-deadline expiry rather than a protocol
    /// or connection failure.
    pub fn is_timeout(&self) -> bool {
        match self {
            WireError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }
}

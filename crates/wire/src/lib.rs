//! # mswj-wire — the shard-boundary wire protocol
//!
//! A hand-rolled, versioned, length-prefixed binary codec for everything
//! that crosses a shard boundary in the partitioned join engine: routed
//! task batches ([`WireTask`]) with their routing-table epochs, epoch
//! results and statistics ([`WireOutput`]), and the control plane —
//! barriers, hot-key class migration, error/panic propagation and the
//! shutdown handshake ([`Frame`]).
//!
//! Design constraints (see `docs/ARCHITECTURE.md` for the full contract):
//!
//! * **Versioned.** Every frame header carries [`PROTOCOL_VERSION`]; a
//!   peer speaking another revision is rejected on its first frame with
//!   [`WireError::VersionMismatch`] — never interpreted.
//! * **Bounded.** Payload lengths are capped at [`MAX_PAYLOAD`] and every
//!   collection length is validated against the bytes actually present
//!   before allocation, so hostile input cannot trigger OOM.
//! * **Total decoding.** `decode ∘ encode = id` for every frame (pinned by
//!   a proptest suite), and decoding arbitrary bytes returns an error —
//!   it never panics and never reads past the declared payload.
//! * **Bit-exact.** Floats travel as IEEE-754 bit patterns, so results
//!   computed by a remote shard are byte-identical to local execution.
//!
//! The crate deliberately knows nothing about sockets or threads; framed
//! I/O over any `Read + Write` pair is provided by [`read_frame`] /
//! [`write_frame`], and the execution engine layers its `Transport`
//! abstraction on top.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod error;
pub mod frame;

pub use error::WireError;
pub use frame::{
    read_frame, write_frame, Frame, WireItem, WireOutput, WireQuery, WireStream, WireSub, WireTask,
    HEADER_LEN, MAGIC, MAX_PAYLOAD, PROTOCOL_VERSION,
};

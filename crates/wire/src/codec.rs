//! Primitive byte-level encoders and the bounds-checked [`Cursor`] reader.
//!
//! Everything is little-endian and hand-rolled on purpose: the shard
//! boundary must not depend on `serde` layouts or platform byte order, and
//! the decoder must be auditable for the "never panic, never over-read"
//! property the adversarial test-suite pins down.
//!
//! Floats cross the wire as raw IEEE-754 bit patterns
//! ([`f64::to_bits`]/[`f64::from_bits`]) so results are byte-identical on
//! both sides of a socket — including NaN payloads and signed zeros.

use crate::error::WireError;
use mswj_types::{FieldType, Value};

/// Appends a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a `u16` little-endian.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64` little-endian (two's complement).
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its raw bit pattern (bit-exact, NaN-preserving).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a `bool` as one byte (`0`/`1`).
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

/// Appends a `usize` widened to `u64` (no truncation on any platform).
pub fn put_len(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_len(buf, v.len());
    buf.extend_from_slice(v.as_bytes());
}

/// A bounds-checked forward reader over one complete frame payload.
///
/// Every read either returns the decoded value or a [`WireError`]; the
/// cursor can never advance past the end of the slice, and collection
/// lengths are validated against the remaining bytes *before* any
/// allocation so a hostile length prefix cannot trigger an out-of-memory.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16` little-endian.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32` little-endian.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` little-endian.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    /// Reads an `i64` little-endian.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`; any byte other than `0`/`1` is corrupt.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Corrupt(format!(
                "invalid bool byte {other:#04x}"
            ))),
        }
    }

    /// Reads a collection length, validating it against the bytes that are
    /// actually left (`min_elem_bytes` per element) before the caller
    /// allocates.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let raw = self.u64()?;
        let len = usize::try_from(raw)
            .map_err(|_| WireError::Corrupt(format!("length {raw} overflows usize")))?;
        let floor = len.saturating_mul(min_elem_bytes.max(1));
        if floor > self.remaining() {
            return Err(WireError::Corrupt(format!(
                "declared length {len} needs at least {floor} bytes, only {} remain",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Corrupt("string payload is not valid UTF-8".into()))
    }

    /// Asserts the whole payload was consumed — trailing bytes mean the
    /// peer's encoder and our decoder disagree, which is corruption.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

const VALUE_INT: u8 = 0;
const VALUE_FLOAT: u8 = 1;
const VALUE_STR: u8 = 2;
const VALUE_BOOL: u8 = 3;
const VALUE_NULL: u8 = 4;

/// Encodes one tuple attribute value (tagged union).
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            put_u8(buf, VALUE_INT);
            put_i64(buf, *i);
        }
        Value::Float(x) => {
            put_u8(buf, VALUE_FLOAT);
            put_f64(buf, *x);
        }
        Value::Str(s) => {
            put_u8(buf, VALUE_STR);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            put_u8(buf, VALUE_BOOL);
            put_bool(buf, *b);
        }
        Value::Null => put_u8(buf, VALUE_NULL),
    }
}

/// Decodes one tuple attribute value.
pub fn get_value(c: &mut Cursor<'_>) -> Result<Value, WireError> {
    match c.u8()? {
        VALUE_INT => Ok(Value::Int(c.i64()?)),
        VALUE_FLOAT => Ok(Value::Float(c.f64()?)),
        VALUE_STR => Ok(Value::Str(c.str()?)),
        VALUE_BOOL => Ok(Value::Bool(c.bool()?)),
        VALUE_NULL => Ok(Value::Null),
        tag => Err(WireError::Corrupt(format!("unknown value tag {tag:#04x}"))),
    }
}

/// Encodes a schema field type as one byte.
pub fn put_field_type(buf: &mut Vec<u8>, t: FieldType) {
    let tag = match t {
        FieldType::Int => VALUE_INT,
        FieldType::Float => VALUE_FLOAT,
        FieldType::Str => VALUE_STR,
        FieldType::Bool => VALUE_BOOL,
        FieldType::Null => VALUE_NULL,
    };
    put_u8(buf, tag);
}

/// Decodes a schema field type.
pub fn get_field_type(c: &mut Cursor<'_>) -> Result<FieldType, WireError> {
    match c.u8()? {
        VALUE_INT => Ok(FieldType::Int),
        VALUE_FLOAT => Ok(FieldType::Float),
        VALUE_STR => Ok(FieldType::Str),
        VALUE_BOOL => Ok(FieldType::Bool),
        VALUE_NULL => Ok(FieldType::Null),
        tag => Err(WireError::Corrupt(format!(
            "unknown field-type tag {tag:#04x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_f64(&mut buf, -0.0);
        put_bool(&mut buf, true);
        put_str(&mut buf, "héllo");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u8().unwrap(), 0xAB);
        assert_eq!(c.u16().unwrap(), 0xBEEF);
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.i64().unwrap(), -42);
        assert_eq!(c.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(c.bool().unwrap());
        assert_eq!(c.str().unwrap(), "héllo");
        c.finish().unwrap();
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let mut buf = Vec::new();
        put_f64(&mut buf, weird);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.f64().unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn truncated_reads_error_without_panicking() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 7);
        for cut in 0..buf.len() {
            let mut c = Cursor::new(&buf[..cut]);
            assert!(matches!(c.u64(), Err(WireError::Truncated { .. })));
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX); // absurd element count
        let mut c = Cursor::new(&buf);
        assert!(matches!(c.len(1), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn invalid_utf8_and_bool_bytes_are_corrupt() {
        let mut buf = Vec::new();
        put_len(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            Cursor::new(&buf).str(),
            Err(WireError::Corrupt(_))
        ));
        assert!(matches!(
            Cursor::new(&[7u8]).bool(),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let buf = [1u8, 2, 3];
        let mut c = Cursor::new(&buf);
        c.u8().unwrap();
        assert!(matches!(c.finish(), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn values_roundtrip() {
        let values = vec![
            Value::Int(i64::MIN),
            Value::Float(std::f64::consts::PI),
            Value::Str("a₁".into()),
            Value::Bool(false),
            Value::Null,
        ];
        let mut buf = Vec::new();
        for v in &values {
            put_value(&mut buf, v);
        }
        let mut c = Cursor::new(&buf);
        for v in &values {
            assert_eq!(&get_value(&mut c).unwrap(), v);
        }
        c.finish().unwrap();
    }
}

//! Codec correctness: `decode ∘ encode = id` over every frame kind, plus
//! adversarial decoding — truncated, corrupted, hostile-length and
//! wrong-version inputs must return errors, never panic, and never read
//! past the declared payload.

use mswj_join::{ConditionDescriptor, JoinResult, OperatorStats, ProbeStrategy};
use mswj_types::{FieldType, StreamIndex, Timestamp, Tuple, Value};
use mswj_wire::{
    read_frame, write_frame, Frame, WireError, WireItem, WireOutput, WireQuery, WireStream,
    WireSub, WireTask, HEADER_LEN, PROTOCOL_VERSION,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0usize..5) {
        0 => Value::Int(rng.gen::<u64>() as i64),
        // Finite floats only: NaN breaks `PartialEq`-based comparison, and
        // its bit-exactness is pinned by a dedicated test below.
        1 => Value::Float(rng.gen::<f64>() * 2e9 - 1e9),
        2 => {
            let len = rng.gen_range(0usize..6);
            Value::Str(
                (0..len)
                    .map(|_| (b'a' + rng.gen_range(0u64..26) as u8) as char)
                    .collect(),
            )
        }
        3 => Value::Bool(rng.gen::<bool>()),
        _ => Value::Null,
    }
}

fn arb_tuple(rng: &mut StdRng) -> Tuple {
    let arity = rng.gen_range(0usize..4);
    let values = (0..arity).map(|_| arb_value(rng)).collect();
    let mut t = Tuple::new(
        StreamIndex(rng.gen_range(0usize..8)),
        rng.gen::<u64>(),
        Timestamp::from_millis(rng.gen_range(0u64..1 << 40)),
        values,
    );
    if rng.gen_bool(0.5) {
        t.set_delay(rng.gen_range(0u64..100_000));
    }
    t
}

fn arb_result(rng: &mut StdRng) -> JoinResult {
    let m = rng.gen_range(1usize..4);
    let components: Vec<Tuple> = (0..m).map(|_| arb_tuple(rng)).collect();
    JoinResult {
        ts: Timestamp::from_millis(rng.gen_range(0u64..1 << 40)),
        components,
    }
}

fn arb_stats(rng: &mut StdRng) -> OperatorStats {
    OperatorStats {
        in_order: rng.gen(),
        out_of_order: rng.gen(),
        dropped: rng.gen(),
        indexed_probes: rng.gen(),
        fallback_probes: rng.gen(),
        results: rng.gen(),
        cross_results: rng.gen(),
        expired: rng.gen(),
        adopted: rng.gen(),
        evicted: rng.gen(),
    }
}

fn arb_cols(rng: &mut StdRng) -> Vec<usize> {
    (0..rng.gen_range(1usize..5))
        .map(|_| rng.gen_range(0usize..16))
        .collect()
}

fn arb_condition(rng: &mut StdRng) -> ConditionDescriptor {
    match rng.gen_range(0usize..5) {
        0 => ConditionDescriptor::Cross {
            arity: rng.gen_range(2usize..6),
        },
        1 => ConditionDescriptor::CommonKey {
            columns: arb_cols(rng),
        },
        2 => ConditionDescriptor::Star {
            anchor: rng.gen_range(0usize..4),
            anchor_cols: arb_cols(rng),
            other_cols: arb_cols(rng),
        },
        3 => ConditionDescriptor::Band {
            columns: arb_cols(rng),
            band: rng.gen::<f64>() * 100.0,
        },
        _ => ConditionDescriptor::DistanceWithin {
            x_cols: [rng.gen_range(0usize..8), rng.gen_range(0usize..8)],
            y_cols: [rng.gen_range(0usize..8), rng.gen_range(0usize..8)],
            threshold: rng.gen::<f64>() * 50.0,
        },
    }
}

fn arb_query(rng: &mut StdRng) -> WireQuery {
    let m = rng.gen_range(2usize..5);
    let streams = (0..m)
        .map(|i| WireStream {
            name: format!("S{i}"),
            fields: (0..rng.gen_range(1usize..4))
                .map(|f| {
                    let ty = match rng.gen_range(0usize..5) {
                        0 => FieldType::Int,
                        1 => FieldType::Float,
                        2 => FieldType::Str,
                        3 => FieldType::Bool,
                        _ => FieldType::Null,
                    };
                    (format!("a{f}"), ty)
                })
                .collect(),
            window: rng.gen_range(1u64..1 << 30),
        })
        .collect();
    WireQuery {
        name: format!("q{}", rng.gen_range(0u64..1000)),
        streams,
        condition: arb_condition(rng),
        strategy: if rng.gen::<bool>() {
            ProbeStrategy::Auto
        } else {
            ProbeStrategy::NestedLoop
        },
        enumerate: rng.gen(),
    }
}

fn arb_task(rng: &mut StdRng) -> WireTask {
    WireTask {
        epoch: rng.gen(),
        routing_epoch: rng.gen(),
        items: (0..rng.gen_range(0usize..6))
            .map(|_| WireItem {
                seq: rng.gen_range(0u64..1 << 32) as u32,
                probe: rng.gen(),
                tuple: arb_tuple(rng),
            })
            .collect(),
    }
}

fn arb_output(rng: &mut StdRng) -> WireOutput {
    WireOutput {
        epoch: rng.gen(),
        routing_epoch: rng.gen(),
        busy_nanos: rng.gen(),
        sub: (0..rng.gen_range(0usize..6))
            .map(|_| WireSub {
                seq: rng.gen_range(0u64..1 << 32) as u32,
                n_join: rng.gen(),
                indexed: rng.gen(),
            })
            .collect(),
        mat: (0..rng.gen_range(0usize..4))
            .map(|_| (rng.gen_range(0u64..1 << 32) as u32, arb_result(rng)))
            .collect(),
    }
}

fn arb_frame(rng: &mut StdRng) -> Frame {
    match rng.gen_range(0usize..19) {
        0 => Frame::Hello,
        1 => Frame::HelloAck,
        2 => Frame::Setup(arb_query(rng)),
        3 => Frame::SetupAck,
        4 => Frame::Task(arb_task(rng)),
        5 => Frame::Output(arb_output(rng)),
        6 => Frame::Barrier { token: rng.gen() },
        7 => Frame::BarrierAck {
            token: rng.gen(),
            stats: arb_stats(rng),
            window_bytes: rng.gen(),
            window_segments: rng.gen(),
        },
        8 => Frame::FetchClass {
            stream: rng.gen_range(0u64..8),
            column: rng.gen_range(0u64..8),
            key_hash: rng.gen(),
        },
        9 => Frame::ClassData {
            tuples: (0..rng.gen_range(0usize..4))
                .map(|_| arb_tuple(rng))
                .collect(),
        },
        10 => Frame::Adopt {
            tuples: (0..rng.gen_range(0usize..4))
                .map(|_| arb_tuple(rng))
                .collect(),
        },
        11 => Frame::PurgeClass {
            stream: rng.gen_range(0u64..8),
            column: rng.gen_range(0u64..8),
            key_hash: rng.gen(),
        },
        12 => Frame::Ack,
        13 => Frame::Error {
            message: format!("panic #{}", rng.gen_range(0u64..1000)),
        },
        14 => Frame::Shutdown,
        15 => Frame::FetchWindow {
            stream: rng.gen_range(0u64..8),
        },
        16 => Frame::Retain {
            stream: rng.gen_range(0u64..8),
            column: rng.gen_range(0u64..8),
            shards: rng.gen_range(1u64..16),
            keep: rng.gen_range(0u64..16),
        },
        17 => {
            let m = rng.gen_range(0usize..6);
            let mut order: Vec<usize> = (0..m).collect();
            for i in (1..m).rev() {
                order.swap(i, rng.gen_range(0usize..i + 1));
            }
            Frame::Revise {
                order,
                demote: rng.gen(),
            }
        }
        _ => Frame::ShutdownAck,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_then_decode_is_identity(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = arb_frame(&mut rng);
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        let (decoded, consumed) = Frame::decode(&buf).expect("valid frame must decode");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn decode_never_reads_past_one_frame(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let first = arb_frame(&mut rng);
        let second = arb_frame(&mut rng);
        let mut buf = Vec::new();
        first.encode(&mut buf);
        let first_len = buf.len();
        second.encode(&mut buf);
        // Decoding from the front of the concatenation must consume exactly
        // the first frame; the remainder must decode to the second.
        let (a, consumed) = Frame::decode(&buf).expect("first frame");
        prop_assert_eq!(consumed, first_len);
        prop_assert_eq!(a, first);
        let (b, rest) = Frame::decode(&buf[consumed..]).expect("second frame");
        prop_assert_eq!(rest, buf.len() - first_len);
        prop_assert_eq!(b, second);
    }

    #[test]
    fn every_truncation_errors_and_never_panics(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = arb_frame(&mut rng);
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        for cut in 0..buf.len() {
            match Frame::decode(&buf[..cut]) {
                Err(WireError::Truncated { needed, available }) => {
                    prop_assert!(available < needed);
                    prop_assert!(needed <= buf.len());
                }
                other => panic!("prefix of {cut} bytes must be Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_bytes_error_or_decode_but_never_panic(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = arb_frame(&mut rng);
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        let pos = rng.gen_range(0usize..buf.len());
        let flip = 1u8 << rng.gen_range(0u64..8) as u8;
        buf[pos] ^= flip;
        // Whatever the corruption hits — magic, version, type, length or
        // payload — decoding must return, not panic or over-read.
        let _ = Frame::decode(&buf);
    }

    #[test]
    fn arbitrary_garbage_never_panics(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0usize..96);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect();
        let _ = Frame::decode(&bytes);
    }
}

#[test]
fn foreign_version_is_rejected_cleanly() {
    let mut buf = Vec::new();
    Frame::Hello.encode(&mut buf);
    // Patch the version field (bytes 4..6) to a future revision.
    let future = (PROTOCOL_VERSION + 1).to_le_bytes();
    buf[4..6].copy_from_slice(&future);
    match Frame::decode(&buf) {
        Err(WireError::VersionMismatch { ours, theirs }) => {
            assert_eq!(ours, PROTOCOL_VERSION);
            assert_eq!(theirs, PROTOCOL_VERSION + 1);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn oversized_payload_declaration_is_rejected_before_allocation() {
    let mut buf = Vec::new();
    Frame::Ack.encode(&mut buf);
    buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Frame::decode(&buf),
        Err(WireError::TooLarge { .. })
    ));
}

#[test]
fn bad_magic_is_corrupt() {
    let mut buf = Vec::new();
    Frame::Ack.encode(&mut buf);
    buf[0] ^= 0xFF;
    assert!(matches!(Frame::decode(&buf), Err(WireError::Corrupt(_))));
}

#[test]
fn trailing_payload_bytes_are_corrupt() {
    let mut buf = Vec::new();
    Frame::Ack.encode(&mut buf);
    // Declare one payload byte and append it: Ack has an empty payload, so
    // the decoder must flag the excess instead of ignoring it.
    buf[8..12].copy_from_slice(&1u32.to_le_bytes());
    buf.push(0xAA);
    assert!(matches!(Frame::decode(&buf), Err(WireError::Corrupt(_))));
}

#[test]
fn nan_and_negative_zero_floats_cross_bit_exactly() {
    let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
    let tuple = Tuple::new(
        StreamIndex(0),
        1,
        Timestamp::from_millis(5),
        vec![Value::Float(weird), Value::Float(-0.0)],
    );
    let frame = Frame::Adopt {
        tuples: vec![tuple],
    };
    let mut buf = Vec::new();
    frame.encode(&mut buf);
    let (decoded, _) = Frame::decode(&buf).unwrap();
    let Frame::Adopt { tuples } = decoded else {
        panic!("frame type changed in flight");
    };
    match (&tuples[0].values()[0], &tuples[0].values()[1]) {
        (Value::Float(a), Value::Float(b)) => {
            assert_eq!(a.to_bits(), weird.to_bits());
            assert_eq!(b.to_bits(), (-0.0f64).to_bits());
        }
        other => panic!("values changed type: {other:?}"),
    }
}

#[test]
fn framed_io_roundtrips_over_read_write() {
    let mut rng = StdRng::seed_from_u64(0xF4A3);
    let frames: Vec<Frame> = (0..32).map(|_| arb_frame(&mut rng)).collect();
    let mut pipe = Vec::new();
    let mut scratch = Vec::new();
    for f in &frames {
        write_frame(&mut pipe, f, &mut scratch).unwrap();
    }
    let mut reader = std::io::Cursor::new(pipe);
    for f in &frames {
        let (got, size) = read_frame(&mut reader, &mut scratch).unwrap();
        assert!(size >= HEADER_LEN);
        assert_eq!(&got, f);
    }
    // EOF at a frame boundary is a disconnect, not corruption.
    match read_frame(&mut reader, &mut scratch) {
        Err(e) => assert!(e.is_disconnect(), "expected disconnect, got {e:?}"),
        Ok(f) => panic!("read past the last frame: {f:?}"),
    }
}

//! Fig. 11 at micro-benchmark precision: the time of one model-based
//! adaptation step (Alg. 3) as a function of the K-search granularity `g`
//! and the recall requirement `Γ`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mswj_core::{
    BufferSizeManager, DisorderConfig, ProductivityProfiler, ResultSizeMonitor, StatisticsManager,
};
use mswj_types::Timestamp;

/// Builds statistics resembling the synthetic workloads: three streams with
/// mostly in-order tuples and a heavy tail of delays up to 20 s.
fn build_statistics(granularity: u64) -> StatisticsManager {
    let mut stats = StatisticsManager::new(3, granularity);
    for stream in 0..3usize {
        let mut t = 0u64;
        for i in 0..5_000u64 {
            t += 10;
            let delay = if i % 10 == 0 { (i % 2_000) * 10 } else { 0 };
            stats.observe(
                stream.into(),
                Timestamp::from_millis(t.saturating_sub(delay)),
            );
        }
    }
    stats
}

fn build_profiler(granularity: u64) -> ProductivityProfiler {
    let mut profiler = ProductivityProfiler::new(granularity);
    for i in 0..2_000u64 {
        let delay = if i % 10 == 0 { (i % 2_000) * 10 } else { 0 };
        profiler.record_processed(delay, 100, (i % 7) + 1);
    }
    profiler.roll_interval();
    profiler
}

fn adaptation_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptation_step");
    for &g in &[1u64, 10, 100, 1_000] {
        for &gamma in &[0.9f64, 0.99, 0.999] {
            let stats = build_statistics(g);
            let profiler = build_profiler(g);
            let config = DisorderConfig::with_gamma(gamma).granularity(g);
            let manager = BufferSizeManager::new(config, vec![5_000; 3]);
            group.bench_with_input(
                BenchmarkId::new(format!("g={g}ms"), format!("gamma={gamma}")),
                &gamma,
                |b, _| {
                    b.iter(|| {
                        let mut monitor = ResultSizeMonitor::new(59_000);
                        let outcome = manager.adapt(
                            &stats,
                            &profiler,
                            &mut monitor,
                            Timestamp::from_millis(50_000),
                        );
                        black_box(outcome.k)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = adaptation_step
}
criterion_main!(benches);

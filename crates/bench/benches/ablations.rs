//! Ablation benchmarks for the design choices called out in `DESIGN.md` §8:
//! EqSel vs NonEqSel selectivity modelling, the basic-window size `b`, the
//! Same-K policy vs fixed configurations, and index-assisted vs nested-loop
//! probing in the join operator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mswj_bench::{bench_config, bench_d3, run_for_avg_k};
use mswj_core::{BufferPolicy, SelectivityStrategy};
use mswj_experiments::ground_truth;
use mswj_join::{CrossJoin, JoinQuery, MswjOperator};
use mswj_types::{FieldType, Schema, StreamSet, Timestamp, Tuple, Value};
use std::sync::Arc;

fn eqsel_vs_noneqsel(c: &mut Criterion) {
    let d3 = bench_d3();
    let truth = ground_truth(&d3);
    let mut group = c.benchmark_group("ablation_selectivity_strategy");
    for strategy in [SelectivityStrategy::EqSel, SelectivityStrategy::NonEqSel] {
        group.bench_function(format!("{strategy}"), |b| {
            b.iter(|| {
                let config = bench_config(0.95).selectivity_strategy(strategy);
                black_box(run_for_avg_k(
                    &d3,
                    BufferPolicy::QualityDriven(config),
                    &truth,
                ))
            })
        });
    }
    group.finish();
}

fn basic_window_size(c: &mut Criterion) {
    let d3 = bench_d3();
    let truth = ground_truth(&d3);
    let mut group = c.benchmark_group("ablation_basic_window");
    for b_ms in [10u64, 100, 5_000] {
        group.bench_function(format!("b={b_ms}ms"), |b| {
            b.iter(|| {
                let config = bench_config(0.95).basic_window(b_ms);
                black_box(run_for_avg_k(
                    &d3,
                    BufferPolicy::QualityDriven(config),
                    &truth,
                ))
            })
        });
    }
    group.finish();
}

fn probe_strategy(c: &mut Criterion) {
    // Index-assisted counting (equi structure) vs generic nested-loop
    // counting (a cross join forced through the enumeration path).
    let mut group = c.benchmark_group("ablation_probe_strategy");
    group.bench_function("equi_indexed_counting", |b| {
        b.iter(|| {
            let mut op = MswjOperator::new(mswj_datasets::q3_query(2_000));
            let mut acc = 0u64;
            for i in 0..600u64 {
                let t = Tuple::new(
                    ((i % 3) as usize).into(),
                    i,
                    Timestamp::from_millis(i * 10),
                    vec![Value::Int((i % 20) as i64)],
                );
                acc += op.push(t).n_join;
            }
            black_box(acc)
        })
    });
    group.bench_function("nested_loop_counting", |b| {
        let streams =
            StreamSet::homogeneous(3, Schema::new(vec![("a1", FieldType::Int)]), 2_000).unwrap();
        let query = JoinQuery::new("cross", streams, Arc::new(CrossJoin::new(3))).unwrap();
        b.iter(|| {
            let mut op = MswjOperator::new(query.clone());
            let mut acc = 0u64;
            for i in 0..600u64 {
                let t = Tuple::new(
                    ((i % 3) as usize).into(),
                    i,
                    Timestamp::from_millis(i * 10),
                    vec![Value::Int((i % 20) as i64)],
                );
                acc += op.push(t).n_join;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn same_k_vs_fixed(c: &mut Criterion) {
    // The Same-K policy says one common adaptive K suffices; this ablation
    // contrasts the quality-driven common K with the two fixed extremes.
    let d3 = bench_d3();
    let truth = ground_truth(&d3);
    let mut group = c.benchmark_group("ablation_same_k");
    group.bench_function("quality_driven_common_k", |b| {
        b.iter(|| {
            black_box(run_for_avg_k(
                &d3,
                BufferPolicy::QualityDriven(bench_config(0.95)),
                &truth,
            ))
        })
    });
    group.bench_function("fixed_k_2s", |b| {
        b.iter(|| black_box(run_for_avg_k(&d3, BufferPolicy::FixedK(2_000), &truth)))
    });
    group.bench_function("fixed_k_0", |b| {
        b.iter(|| black_box(run_for_avg_k(&d3, BufferPolicy::NoKSlack, &truth)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = eqsel_vs_noneqsel, basic_window_size, probe_strategy, same_k_vs_fixed
}
criterion_main!(benches);

//! Bench-scale versions of the paper's experiments: one benchmark per table
//! or figure (Fig. 6, Table II, Fig. 7, Fig. 8, Fig. 9, Fig. 10; Fig. 11 is
//! covered by the dedicated `adaptation_step` bench).
//!
//! Each benchmark runs the corresponding policy sweep over a reduced-scale
//! workload and returns the average K, so the numbers are comparable to the
//! experiment binaries in `mswj-experiments` (which run at larger scale).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mswj_bench::{bench_config, bench_d2, bench_d3, run_for_avg_k};
use mswj_core::BufferPolicy;
use mswj_experiments::ground_truth;

fn fig6_no_k_slack(c: &mut Criterion) {
    let d3 = bench_d3();
    let truth = ground_truth(&d3);
    c.bench_function("fig6_no_k_slack_d3", |b| {
        b.iter(|| black_box(run_for_avg_k(&d3, BufferPolicy::NoKSlack, &truth)))
    });
}

fn table2_max_k_slack(c: &mut Criterion) {
    let d3 = bench_d3();
    let truth = ground_truth(&d3);
    c.bench_function("table2_max_k_slack_d3", |b| {
        b.iter(|| black_box(run_for_avg_k(&d3, BufferPolicy::MaxKSlack, &truth)))
    });
}

fn fig7_quality_driven_gamma_sweep(c: &mut Criterion) {
    let d3 = bench_d3();
    let truth = ground_truth(&d3);
    let mut group = c.benchmark_group("fig7_quality_driven_d3");
    for gamma in [0.9, 0.99] {
        group.bench_function(format!("gamma={gamma}"), |b| {
            b.iter(|| {
                let policy = BufferPolicy::QualityDriven(bench_config(gamma));
                black_box(run_for_avg_k(&d3, policy, &truth))
            })
        });
    }
    group.finish();
}

fn fig8_period_sweep(c: &mut Criterion) {
    let d2 = bench_d2();
    let truth = ground_truth(&d2);
    let mut group = c.benchmark_group("fig8_period_d2");
    for period in [5_000u64, 10_000] {
        group.bench_function(format!("P={}s", period / 1_000), |b| {
            b.iter(|| {
                let policy = BufferPolicy::QualityDriven(bench_config(0.95).period(period));
                black_box(run_for_avg_k(&d2, policy, &truth))
            })
        });
    }
    group.finish();
}

fn fig9_interval_sweep(c: &mut Criterion) {
    let d3 = bench_d3();
    let truth = ground_truth(&d3);
    let mut group = c.benchmark_group("fig9_interval_d3");
    for interval in [500u64, 1_000, 5_000] {
        group.bench_function(format!("L={interval}ms"), |b| {
            b.iter(|| {
                let policy = BufferPolicy::QualityDriven(bench_config(0.95).interval(interval));
                black_box(run_for_avg_k(&d3, policy, &truth))
            })
        });
    }
    group.finish();
}

fn fig10_granularity_sweep(c: &mut Criterion) {
    let d3 = bench_d3();
    let truth = ground_truth(&d3);
    let mut group = c.benchmark_group("fig10_granularity_d3");
    for g in [10u64, 100, 1_000] {
        group.bench_function(format!("g={g}ms"), |b| {
            b.iter(|| {
                let policy = BufferPolicy::QualityDriven(bench_config(0.95).granularity(g));
                black_box(run_for_avg_k(&d3, policy, &truth))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = fig6_no_k_slack, table2_max_k_slack, fig7_quality_driven_gamma_sweep,
              fig8_period_sweep, fig9_interval_sweep, fig10_granularity_sweep
}
criterion_main!(benches);

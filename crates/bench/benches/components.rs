//! Component micro-benchmarks: K-slack, Synchronizer, join operator (hash
//! -indexed vs nested-loop scan probes) and the analytical recall model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mswj_core::{
    CountingSink, DelayHistogram, EngineEvent, ExecutionBackend, JoinEngine, KSlack, ModelInputs,
    Pipeline, RecallModel, Synchronizer,
};
use mswj_datasets::{q3_query, Zipf};
use mswj_join::{CommonKeyEquiJoin, JoinQuery, MswjOperator, ProbeStrategy};
use mswj_types::{ArrivalEvent, FieldType, Schema, StreamSet, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn kslack_throughput(c: &mut Criterion) {
    c.bench_function("kslack_push_1k", |b| {
        b.iter(|| {
            let mut ks = KSlack::new(500);
            for i in 0..1_000u64 {
                let ts = if i % 5 == 0 {
                    i * 10
                } else {
                    (i * 10).saturating_sub(300)
                };
                ks.push(Tuple::marker(0.into(), i, Timestamp::from_millis(ts)));
            }
            black_box(ks.flush().len())
        })
    });
}

fn synchronizer_throughput(c: &mut Criterion) {
    c.bench_function("synchronizer_push_1k", |b| {
        b.iter(|| {
            let mut sync = Synchronizer::new(3);
            let mut emitted = 0usize;
            for i in 0..1_000u64 {
                let stream = (i % 3) as usize;
                let ts = Timestamp::from_millis(i * 7 + stream as u64 * 100);
                emitted += sync.push(Tuple::marker(stream.into(), i, ts)).len();
            }
            black_box(emitted + sync.flush().len())
        })
    });
}

fn operator_throughput(c: &mut Criterion) {
    c.bench_function("mswj_operator_equi_push_1k", |b| {
        b.iter(|| {
            let mut op = MswjOperator::new(q3_query(5_000));
            let mut results = 0u64;
            for i in 0..1_000u64 {
                let stream = (i % 3) as usize;
                let t = Tuple::new(
                    stream.into(),
                    i,
                    Timestamp::from_millis(i * 10),
                    vec![Value::Int((i % 50) as i64)],
                );
                results += op.push(t).n_join;
            }
            black_box(results)
        })
    });
}

/// Hash-indexed bucket probes vs the forced nested-loop scan on a 2-way
/// equi-join with Zipf-skewed keys (skew 1.0 over 1 000 distinct values),
/// at steady-state window sizes of 1 k and 10 k live tuples per stream.
///
/// The operator persists across iterations: one tuple per stream per
/// millisecond keeps each window at its steady-state size, so every
/// measured push probes a full window.  `count_*` benches run the counting
/// mode (bucket-length products vs exhaustive enumeration); `enum_*`
/// benches additionally materialize every result on both sides.
fn indexed_vs_scan(c: &mut Criterion) {
    fn equi2(window_ms: u64) -> JoinQuery {
        let streams =
            StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), window_ms)
                .unwrap();
        let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
        JoinQuery::new("bench-equi2", streams, cond).unwrap()
    }
    let zipf = Zipf::new(1_000, 1.0);
    let mut rng = StdRng::seed_from_u64(42);
    let keys: Vec<i64> = (0..16_384).map(|_| zipf.sample(&mut rng) as i64).collect();

    let mut group = c.benchmark_group("indexed_vs_scan");
    let cases = [
        ("count", false, 1_000u64),
        ("count", false, 10_000),
        ("enum", true, 10_000),
    ];
    for &(mode, enumerate, window_tuples) in &cases {
        for (label, strategy) in [
            ("indexed", ProbeStrategy::Auto),
            ("scan", ProbeStrategy::NestedLoop),
        ] {
            group.bench_function(format!("{mode}_{label}_w{window_tuples}"), |b| {
                let mut op = MswjOperator::with_probe(equi2(window_tuples), strategy, enumerate);
                let mut t = 0u64;
                let key_at = {
                    let keys = keys.clone();
                    move |i: u64| keys[(i as usize) % keys.len()]
                };
                // Prefill both windows to their steady-state population.
                while t < window_tuples {
                    for stream in 0..2usize {
                        let ts = Timestamp::from_millis(t);
                        op.push(Tuple::new(
                            stream.into(),
                            t,
                            ts,
                            vec![Value::Int(key_at(t * 2 + stream as u64))],
                        ));
                    }
                    t += 1;
                }
                b.iter(|| {
                    let mut results = 0u64;
                    for _ in 0..64 {
                        for stream in 0..2usize {
                            let ts = Timestamp::from_millis(t);
                            let outcome = op.push(Tuple::new(
                                stream.into(),
                                t,
                                ts,
                                vec![Value::Int(key_at(t * 2 + stream as u64))],
                            ));
                            results += outcome.n_join;
                        }
                        t += 1;
                    }
                    black_box(results)
                })
            });
        }
    }
    group.finish();
}

fn pipeline_push_into_throughput(c: &mut Criterion) {
    // The end-to-end counting hot path: builder-assembled session, events
    // streamed through `push_into` with a zero-allocation sink.
    let events: Vec<ArrivalEvent> = (0..1_000u64)
        .map(|i| {
            let stream = (i % 3) as usize;
            let arrival = Timestamp::from_millis(i * 10);
            let ts = if i % 5 == 0 {
                Timestamp::from_millis((i * 10).saturating_sub(300))
            } else {
                arrival
            };
            ArrivalEvent::new(
                arrival,
                Tuple::new(stream.into(), i, ts, vec![Value::Int((i % 50) as i64)]),
            )
        })
        .collect();
    c.bench_function("pipeline_push_into_1k", |b| {
        b.iter(|| {
            let mut pipeline = Pipeline::builder()
                .query(q3_query(5_000))
                .quality_driven(0.95)
                .period(5_000)
                .interval(1_000)
                .build()
                .unwrap();
            let mut sink = CountingSink::default();
            for e in &events {
                pipeline.push_into(e.clone(), &mut sink);
            }
            black_box(pipeline.finish().total_produced)
        })
    });
}

/// Throughput of the key-partitioned join engine at 1/2/4/8 shards on
/// Zipf-skewed keys (skew 1.0 over 1 000 distinct values), in counting and
/// materializing mode, recorded next to `indexed_vs_scan`.
///
/// The workload mixes one non-integral float key per ~1 000 tuples into the
/// Zipf stream — the realistic "dirty column" case.  A live float disables
/// the hash index of the window it sits in (join_eq coercion, see the probe
/// planner), so the unsharded engine degrades to O(|W|) fallback scans
/// while any float is live.  Sharding wins twice here, on any core count:
/// a float only poisons the shard its key routes to (the other shards keep
/// answering through their indexes), and a poisoned shard's fallback scan
/// covers only its ~1/n slice of the window.  On multi-core hardware the
/// `Threads(n)` workers additionally run the shards in parallel.
///
/// The engine is driven directly (no K-slack/synchronizer front-end), so
/// the numbers isolate the sharded join stage; batches of 512 tuple pairs
/// amortize the per-batch routing and thread fan-out.
fn sharded_scaling(c: &mut Criterion) {
    fn equi2(window_ms: u64) -> JoinQuery {
        let streams =
            StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), window_ms)
                .unwrap();
        let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
        JoinQuery::new("bench-sharded", streams, cond).unwrap()
    }

    const POISON_EVERY: u64 = 1_000;
    let zipf = Zipf::new(1_000, 1.0);
    let mut rng = StdRng::seed_from_u64(7);
    let keys: Vec<i64> = (0..32_768).map(|_| zipf.sample(&mut rng) as i64).collect();
    let value_at = |global: u64| -> Value {
        let key = keys[(global as usize) % keys.len()];
        if global.is_multiple_of(POISON_EVERY) {
            // Joins nothing (non-integral), but disables the hash index of
            // whichever shard window it lives in until it expires.
            Value::Float(key as f64 + 0.5)
        } else {
            Value::Int(key)
        }
    };
    let batch_of = |from: u64, pairs: u64| -> Vec<Tuple> {
        (from..from + pairs)
            .flat_map(|t| {
                (0..2usize).map(move |stream| {
                    Tuple::new(
                        stream.into(),
                        t,
                        Timestamp::from_millis(t),
                        vec![value_at(t * 2 + stream as u64)],
                    )
                })
            })
            .collect()
    };

    let mut group = c.benchmark_group("sharded_scaling");
    // Counting mode: 4 k live tuples per stream; materializing mode: 1 k
    // (every probe also clones its ~|bucket| result tuples).
    let cases = [
        ("count", false, 4_000u64, 512u64),
        ("enum", true, 1_000, 256),
    ];
    for &(mode, enumerate, window, pairs) in &cases {
        for &n in &[1usize, 2, 4, 8] {
            group.bench_function(format!("{mode}_shards_{n}"), |b| {
                let mut engine = JoinEngine::new(
                    equi2(window),
                    ProbeStrategy::Auto,
                    enumerate,
                    ExecutionBackend::Threads(n),
                );
                // Prefill to the steady-state window population.
                let mut t = 0u64;
                engine.push_batch(batch_of(0, window), &mut |_| {});
                t += window;
                b.iter(|| {
                    let mut results = 0u64;
                    engine.push_batch(batch_of(t, pairs), &mut |ev| {
                        if let EngineEvent::Done(o) = ev {
                            results += o.n_join;
                        }
                    });
                    t += pairs;
                    black_box(results)
                })
            });
        }
    }
    group.finish();
}

fn model_evaluation(c: &mut Criterion) {
    let delays: Vec<u64> = (0..5_000)
        .map(|i| if i % 4 == 0 { (i % 200) * 10 } else { 0 })
        .collect();
    let inputs = ModelInputs {
        windows: vec![5_000; 3],
        histograms: (0..3)
            .map(|_| DelayHistogram::from_delays(10, delays.clone()))
            .collect(),
        k_sync: vec![0, 50, 120],
        basic_window: 10,
        granularity: 10,
    };
    let model = RecallModel::new(inputs);
    c.bench_function("recall_model_sweep_200_candidates", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in (0..2_000).step_by(10) {
                acc += model.estimate_recall(black_box(k), 1.0);
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = kslack_throughput, synchronizer_throughput, operator_throughput, indexed_vs_scan, sharded_scaling, pipeline_push_into_throughput, model_evaluation
}
criterion_main!(benches);

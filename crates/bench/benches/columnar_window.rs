//! Columnar segmented window vs the row-oriented baseline it replaced.
//!
//! Three scenarios, matching the costs the segmentation targets:
//!
//! * **expiry** (stream): a steady stream slides a 10 000-tuple window
//!   forward one tuple at a time — the worst case for segmentation, since
//!   each expiry call retires a single row through the boundary segment
//!   and the drop path never batches anything.
//! * **expiry_drop**: a whole window goes out of scope in one call (a
//!   stream stall, a window shrink, a lagging slow stream).  The row
//!   baseline pays per-tuple bucket maintenance for all 10 000 tuples; the
//!   segmented window forgets each sealed segment in O(distinct keys),
//!   regardless of row count — the amortized-constant segment-drop path.
//! * **scan**: fallback probes (a float key defeats the hash index) over
//!   time-correlated keys, so each sealed segment covers a narrow key
//!   range.  The row baseline walks all 10 000 tuples per probe; the
//!   segmented window consults the zone maps and touches only the
//!   segments whose range contains the probe key's numeric image.
//!
//! `RowWindow` below is a faithful miniature of the pre-segmentation
//! storage — `VecDeque<Tuple>` plus `HashMap<i64, VecDeque<Tuple>>` buckets
//! holding *clones* — so the comparison isolates the storage layout.
//!
//! Reference numbers (containerized CI host, release, default sampling):
//!
//! | group       | row baseline | columnar | ratio |
//! |-------------|--------------|----------|-------|
//! | expiry      | 121 µs       | 126 µs   | ~1×   |
//! | expiry_drop | 584 µs       | 171 µs   | 3.4×  |
//! | scan        | 439 µs       | 49 µs    | 8.9×  |
//!
//! (expiry = 1 000 push+expire cycles; expiry_drop = one expiry of all
//! 10 000 tuples, input rebuilt outside the timing; scan = 16 fallback
//! probes.  The stream numbers bounce ±15% run to run on this host —
//! read them as parity: per-tuple maintenance costs the same as the row
//! layout, while drops and scans are several times cheaper.  The scan
//! ratio is layout-dependent: time-correlated keys prune ~62/64 of the
//! candidate rows; uniform keys would prune nothing and tie the
//! baseline.)

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use mswj_join::Window;
use mswj_types::{Timestamp, Tuple, Value};
use std::collections::{HashMap, VecDeque};

const WINDOW_TUPLES: u64 = 10_000;
const WINDOW_MS: u64 = WINDOW_TUPLES; // one tuple per millisecond

/// Faithful miniature of the row-oriented storage this PR replaced: a
/// timestamp-ordered `VecDeque<Tuple>` plus per-key buckets holding full
/// tuple clones, maintained tuple-at-a-time on insert and expiry.
#[derive(Clone)]
struct RowWindow {
    tuples: VecDeque<Tuple>,
    buckets: HashMap<i64, VecDeque<Tuple>>,
}

impl RowWindow {
    fn new() -> Self {
        RowWindow {
            tuples: VecDeque::new(),
            buckets: HashMap::new(),
        }
    }

    fn insert(&mut self, tuple: Tuple) {
        if let Some(Value::Int(k)) = tuple.value(0) {
            self.buckets.entry(*k).or_default().push_back(tuple.clone());
        }
        self.tuples.push_back(tuple); // bench feed is in order
    }

    fn expire_before(&mut self, bound: Timestamp) -> usize {
        let mut n = 0;
        while let Some(front) = self.tuples.front() {
            if front.ts >= bound {
                break;
            }
            let t = self.tuples.pop_front().unwrap();
            if let Some(Value::Int(k)) = t.value(0) {
                if let Some(bucket) = self.buckets.get_mut(k) {
                    bucket.pop_front();
                    if bucket.is_empty() {
                        self.buckets.remove(k);
                    }
                }
            }
            n += 1;
        }
        n
    }

    fn scan_matching(&self, key: &Value) -> usize {
        self.tuples
            .iter()
            .filter(|t| t.value(0).map(|v| v.join_eq(key)).unwrap_or(false))
            .count()
    }
}

fn tuple_at(t: u64) -> Tuple {
    // Time-correlated keys: consecutive tuples carry nearby keys, so each
    // sealed segment covers a narrow key range — the zone maps' best case,
    // and the realistic shape for monotone-ish attributes (ids, counters).
    Tuple::new(
        0.into(),
        t,
        Timestamp::from_millis(t),
        vec![Value::Int((t / 4) as i64)],
    )
}

/// Slides the window forward by `steps` tuples, expiring as it goes.
fn slide_columnar(w: &mut Window, from: u64, steps: u64) -> usize {
    let mut expired = 0;
    for t in from..from + steps {
        w.insert(tuple_at(t));
        expired += w.expire_before(Timestamp::from_millis(t.saturating_sub(WINDOW_MS)));
    }
    expired
}

fn slide_row(w: &mut RowWindow, from: u64, steps: u64) -> usize {
    let mut expired = 0;
    for t in from..from + steps {
        w.insert(tuple_at(t));
        expired += w.expire_before(Timestamp::from_millis(t.saturating_sub(WINDOW_MS)));
    }
    expired
}

fn expiry_heavy(c: &mut Criterion) {
    const STEPS: u64 = 1_000;
    let mut group = c.benchmark_group("columnar_window/expiry");

    let mut row = RowWindow::new();
    let mut columnar = Window::with_indexed_columns(WINDOW_MS, &[0]);
    // Pre-fill to steady state: every measured push expires one tuple.
    let mut clock = WINDOW_TUPLES;
    slide_row(&mut row, 0, WINDOW_TUPLES);
    slide_columnar(&mut columnar, 0, WINDOW_TUPLES);

    group.bench_function("row", |b| {
        b.iter(|| {
            let expired = slide_row(&mut row, clock, STEPS);
            clock += STEPS;
            black_box(expired)
        })
    });
    group.bench_function("columnar", |b| {
        b.iter(|| {
            let expired = slide_columnar(&mut columnar, clock, STEPS);
            clock += STEPS;
            black_box(expired)
        })
    });
    group.finish();
}

fn expiry_drop(c: &mut Criterion) {
    // Pure expiry of a whole out-of-scope window in one call — what a
    // stream stall, a window shrink or a lagging slow stream does.  The
    // row baseline pays per-tuple bucket maintenance for all 10 000
    // tuples; the segmented window drops ten sealed segments, each
    // forgotten in O(distinct keys) regardless of how many rows carried
    // them — the amortized-constant segment-drop path.  Setup (rebuilding
    // the full window by clone) is excluded from the measurement.
    let mut group = c.benchmark_group("columnar_window/expiry_drop");

    let mut row = RowWindow::new();
    let mut columnar = Window::with_indexed_columns(WINDOW_MS, &[0]);
    slide_row(&mut row, 0, WINDOW_TUPLES);
    slide_columnar(&mut columnar, 0, WINDOW_TUPLES);
    let horizon = Timestamp::from_millis(2 * WINDOW_TUPLES);

    group.bench_function("row", |b| {
        b.iter_batched(
            || row.clone(),
            |mut w| {
                black_box(w.expire_before(horizon));
                w
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("columnar", |b| {
        b.iter_batched(
            || columnar.clone(),
            |mut w| {
                black_box(w.expire_before(horizon));
                w
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn scan_heavy(c: &mut Criterion) {
    const PROBES: u64 = 16;
    let mut group = c.benchmark_group("columnar_window/scan");

    let mut row = RowWindow::new();
    let mut columnar = Window::with_indexed_columns(WINDOW_MS, &[0]);
    slide_row(&mut row, 0, WINDOW_TUPLES);
    slide_columnar(&mut columnar, 0, WINDOW_TUPLES);

    // Float probe keys: joinable numerically but not answerable from the
    // i64 buckets — exactly the fallback-scan case.
    let probe_keys: Vec<Value> = (0..PROBES)
        .map(|i| Value::Float(((i * 149) % (WINDOW_TUPLES / 4)) as f64))
        .collect();

    group.bench_function("row", |b| {
        b.iter(|| {
            let mut matches = 0usize;
            for key in &probe_keys {
                matches += row.scan_matching(key);
            }
            black_box(matches)
        })
    });
    group.bench_function("columnar", |b| {
        b.iter(|| {
            let mut matches = 0usize;
            for key in &probe_keys {
                matches += columnar
                    .scan_candidates(0, key)
                    .filter(|t| t.value(0).map(|v| v.join_eq(key)).unwrap_or(false))
                    .count();
            }
            black_box(matches)
        })
    });
    group.finish();
}

criterion_group!(benches, expiry_heavy, expiry_drop, scan_heavy);
criterion_main!(benches);

//! Runtime probe re-planning vs the static blind plan on a star workload.
//!
//! The question this bench answers: *what does re-selecting the star
//! partition pair at runtime buy when the planner's blind pick is wrong?*
//! Star partitioning key-routes the anchor with one satellite and
//! broadcasts the rest — and a broadcast stream pays insert, index
//! maintenance and expiry on **every** shard.  The planner pairs the
//! anchor with the first satellite (S2) before seeing a single tuple; in
//! this workload S2 trickles while S3 floods at 16× its rate, so the
//! static plan replicates the flood to all four shards.  The re-planned
//! session observes the live cardinalities at the first idle barrier and
//! switches the pair to S3, key-routing the flood and broadcasting only
//! the trickle — an `n×` reduction in build-side work for the dominant
//! stream, so the gap shows on any machine.
//!
//! Both variants are prefilled to steady state with barriers (the switch
//! fires during prefill, before measurement starts) and the pairing is
//! asserted, so `b.iter` measures pure steady-state throughput of the two
//! plans on identical input.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mswj_core::{EngineEvent, ExecutionBackend, JoinEngine, ReplanConfig};
use mswj_join::{JoinQuery, ProbeStrategy, StarEquiJoin};
use mswj_types::{FieldType, Schema, StreamSet, StreamSpec, Timestamp, Tuple, Value};
use std::sync::Arc;

const WINDOW_MS: u64 = 4_000;
const PREFILL_CHUNK: u64 = 512;
const MEASURED_ROUNDS: u64 = 128;
/// Wide key domains keep per-probe match counts small, so the measured
/// gap is the build-side (insert/index/expiry) cost of the broadcast
/// flood — the cost the pair switch removes — not probe amplification.
const A1_KEYS: i64 = 256;
const A2_KEYS: i64 = 256;

/// 3-way star: anchor S1(a1, a2) joined with S2(a1) and S3(a2).  The
/// blind default partitions the (S1, S2) pair, broadcasting S3.
fn star3(window_ms: u64) -> JoinQuery {
    let streams = StreamSet::new(vec![
        StreamSpec::new(
            "S1",
            Schema::new(vec![("a1", FieldType::Int), ("a2", FieldType::Int)]),
            window_ms,
        ),
        StreamSpec::new("S2", Schema::new(vec![("a1", FieldType::Int)]), window_ms),
        StreamSpec::new("S3", Schema::new(vec![("a2", FieldType::Int)]), window_ms),
    ])
    .unwrap();
    let cond =
        Arc::new(StarEquiJoin::new(&streams, 0, &[(1, "a1", "a1"), (2, "a2", "a2")]).unwrap());
    JoinQuery::new("bench-replan-star", streams, cond).unwrap()
}

fn replan_config() -> ReplanConfig {
    ReplanConfig {
        min_probes: 256,
        switch_ratio: 1.5,
        demote_fallback_share: 0.5,
        reorder_margin: 1.5,
    }
}

/// One round per millisecond: the anchor S1 arrives every round, the
/// satellite S2 every fourth round, and the satellite S3 four times per
/// round — a 16× rate gap between the two satellites.
fn rounds(from: u64, n: u64, seqs: &mut [u64; 3]) -> Vec<Tuple> {
    let mut batch = Vec::new();
    for round in from..from + n {
        let ts = Timestamp::from_millis(round);
        let a1 = (round as i64) % A1_KEYS;
        let a2 = (round as i64) % A2_KEYS;
        batch.push(Tuple::new(
            0usize.into(),
            seqs[0],
            ts,
            vec![Value::Int(a1), Value::Int(a2)],
        ));
        seqs[0] += 1;
        if round % 4 == 0 {
            batch.push(Tuple::new(1usize.into(), seqs[1], ts, vec![Value::Int(a1)]));
            seqs[1] += 1;
        }
        for burst in 0..4i64 {
            batch.push(Tuple::new(
                2usize.into(),
                seqs[2],
                ts,
                vec![Value::Int((a2 + burst * 61) % A2_KEYS)],
            ));
            seqs[2] += 1;
        }
    }
    batch
}

fn replan_vs_static(c: &mut Criterion) {
    let mut group = c.benchmark_group("replan_vs_static");
    let variants = [
        ("threads4_static", ExecutionBackend::Threads(4), None),
        (
            "threads4_replanned",
            ExecutionBackend::Threads(4),
            Some(replan_config()),
        ),
        ("pool4_static", ExecutionBackend::Pool { workers: 4 }, None),
        (
            "pool4_replanned",
            ExecutionBackend::Pool { workers: 4 },
            Some(replan_config()),
        ),
    ];
    for (label, backend, replan) in variants {
        group.bench_function(label, |b| {
            let mut engine = JoinEngine::try_with_policies(
                star3(WINDOW_MS),
                ProbeStrategy::Auto,
                false,
                backend.clone(),
                None,
                replan,
            )
            .unwrap();
            // Prefill past one full window in chunks with a barrier after
            // each, so the re-planner has evaluated (and, when armed,
            // switched the pair) well before measurement starts.
            let mut seqs = [0u64; 3];
            let mut t = 0u64;
            while t < WINDOW_MS + PREFILL_CHUNK {
                engine.push_batch(rounds(t, PREFILL_CHUNK, &mut seqs), &mut |_| {});
                engine.sync(&mut |_| {});
                t += PREFILL_CHUNK;
            }
            let expected = if replan.is_some() { Some(2) } else { Some(1) };
            assert_eq!(
                engine.star_partner(),
                expected,
                "the re-planned variant must key-route the flooding satellite \
                 (and the static one must still broadcast it) during measurement"
            );
            let mut results = 0u64;
            b.iter(|| {
                // Per measured iteration: 128 rounds (~672 in-order tuples)
                // through the steady-state windows, no barrier inside the
                // loop — routing is frozen, so this measures the per-tuple
                // build + probe work of the plan in force.
                engine.push_batch(rounds(t, MEASURED_ROUNDS, &mut seqs), &mut |ev| {
                    if let EngineEvent::Done(o) = ev {
                        results += o.n_join;
                    }
                });
                t += MEASURED_ROUNDS;
                black_box(results)
            });
            engine.sync(&mut |_| {});
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = replan_vs_static
}
criterion_main!(benches);

//! Hot-key splitting vs pinned hash routing under a Zipf-skewed workload.
//!
//! The question this bench answers: *what does replicated-build /
//! split-probe routing buy when one key class dominates?*  Plain hash
//! routing pins a hot key's build state **and all of its probe work** to
//! one shard; `skew_splitting` replicates the class and spreads its probes
//! round-robin.
//!
//! Workload: 2-way equi-join, Zipf(10, skew 1.2) keys — the top class
//! takes ~40% of the traffic — at 4 shards, counting mode, steady-state
//! windows of 8 000 live tuples per stream.  One non-integral float key
//! per ~1 000 tuples is chosen to hash into the *hot class's home shard*,
//! degrading that shard's index to exhaustive fallback scans (an
//! unindexable value only poisons the shard it lands in).  That is the
//! worst case splitting addresses: pinned, the hot class's ~40% of probes
//! all scan the poisoned shard's full window; split, those probes spread
//! across four shards, three of which answer from intact hash indexes, so
//! only ~¼ of the hot traffic still pays the scan.  The effect is a
//! *work* reduction per probe, not mere parallelism, so it shows on any
//! machine — the measured gap at 4 shards is well above 2×.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mswj_core::{ExecutionBackend, JoinEngine, SkewConfig};
use mswj_datasets::Zipf;
use mswj_join::{join_key_hash, CommonKeyEquiJoin, JoinQuery, ProbeStrategy};
use mswj_types::{FieldType, Schema, StreamSet, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

const WINDOW_TUPLES: u64 = 8_000;
const POISON_EVERY: u64 = 1_000;
const SHARDS: u64 = 4;
const MEASURED_PAIRS: u64 = 512;

fn equi2(window_ms: u64) -> JoinQuery {
    let streams =
        StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), window_ms).unwrap();
    let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
    JoinQuery::new("bench-skewed", streams, cond).unwrap()
}

/// Only the top key's ~40% share crosses the split threshold; splitting
/// *more* classes would bloat the poisoned shard's scanned window with
/// their replicas, so the thresholds deliberately isolate the top class.
fn split_config() -> SkewConfig {
    SkewConfig {
        split_share: 0.3,
        unsplit_share: 0.15,
        min_routed: 2_048,
    }
}

/// A non-integral float (joins nothing, can never be indexed) whose key
/// class hashes into the hot key's home shard — the adversarial "dirty
/// column" value that turns that one shard's probes into fallback scans.
fn poison_for(hot_home: u64) -> Value {
    (0..)
        .map(|i| Value::Float(1_000_000.5 + i as f64))
        .find(|v| join_key_hash(Some(v)) % SHARDS == hot_home)
        .expect("a quarter of all floats lands on any given shard")
}

fn skewed_scaling(c: &mut Criterion) {
    let zipf = Zipf::new(10, 1.2);
    let mut rng = StdRng::seed_from_u64(17);
    let keys: Vec<i64> = (0..32_768).map(|_| zipf.sample(&mut rng) as i64).collect();
    let mut freq: HashMap<i64, u64> = HashMap::new();
    for &k in &keys {
        *freq.entry(k).or_default() += 1;
    }
    let (&hot, _) = freq.iter().max_by_key(|(_, &n)| n).expect("non-empty");
    let hot_home = join_key_hash(Some(&Value::Int(hot))) % SHARDS;
    let poison = poison_for(hot_home);

    let value_at = |keys: &[i64], global: u64| -> Value {
        if global.is_multiple_of(POISON_EVERY) {
            poison.clone()
        } else {
            Value::Int(keys[(global as usize) % keys.len()])
        }
    };
    let batch_of = |keys: &[i64], from: u64, pairs: u64| -> Vec<Tuple> {
        (from..from + pairs)
            .flat_map(|t| {
                (0..2usize).map(move |stream| {
                    Tuple::new(
                        stream.into(),
                        t,
                        Timestamp::from_millis(t),
                        vec![value_at(keys, t * 2 + stream as u64)],
                    )
                })
            })
            .collect()
    };

    let mut group = c.benchmark_group("skewed_scaling");
    let variants = [
        ("threads4_pinned", ExecutionBackend::Threads(4), None),
        (
            "threads4_split",
            ExecutionBackend::Threads(4),
            Some(split_config()),
        ),
        ("pool4_pinned", ExecutionBackend::Pool { workers: 4 }, None),
        (
            "pool4_split",
            ExecutionBackend::Pool { workers: 4 },
            Some(split_config()),
        ),
    ];
    for (label, backend, skew) in variants {
        group.bench_function(label, |b| {
            let mut engine = JoinEngine::with_skew(
                equi2(WINDOW_TUPLES),
                ProbeStrategy::Auto,
                false,
                backend.clone(),
                skew,
            );
            // Prefill to the steady-state window population in chunks with
            // a barrier after each, so the detector's windows close and the
            // hot class is already split before measurement starts.
            let mut t = 0u64;
            for _ in 0..(WINDOW_TUPLES / 1_024) {
                engine.push_batch(batch_of(&keys, t, 1_024), &mut |_| {});
                engine.sync(&mut |_| {});
                t += 1_024;
            }
            assert_eq!(
                engine.skew_splitting_enabled() && !engine.split_classes().is_empty(),
                skew.is_some(),
                "the hot class must be split during measurement iff splitting is armed"
            );
            let mut results = 0u64;
            b.iter(|| {
                // Per measured iteration: 512 in-order tuple pairs through
                // the steady-state windows.  No barrier inside the loop —
                // routing is frozen, so this measures pure probe work.
                engine.push_batch(batch_of(&keys, t, MEASURED_PAIRS), &mut |ev| {
                    if let mswj_core::EngineEvent::Done(o) = ev {
                        results += o.n_join;
                    }
                });
                t += MEASURED_PAIRS;
                black_box(results)
            });
            engine.sync(&mut |_| {});
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = skewed_scaling
}
criterion_main!(benches);

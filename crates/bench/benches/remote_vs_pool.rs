//! The price of the wire: remote shard execution vs the resident pool.
//!
//! The remote backend reuses the pool's depth-1 epoch pipeline but moves
//! every routed item, sub-outcome and barrier through the versioned frame
//! codec — and, for socket endpoints, through the kernel.  This bench
//! isolates that cost on identical workloads:
//!
//! * `pool4` — the resident in-process pool, the baseline.
//! * `remote_inproc4` — shard servers on local threads behind in-memory
//!   duplex pipes: pure serialization overhead, no syscalls.
//! * `remote_uds4` — shard servers behind a Unix-domain socket served by
//!   an in-process accept loop (the same code path `mswj-shardd` runs):
//!   serialization plus socket I/O and scheduler handoffs.
//!
//! Workload: 2-way equi-join, Zipf-skewed keys over 1 000 values,
//! steady-state windows of 4 000 live tuples per stream, counting mode,
//! driven in batches of 32 and 512 tuple pairs (the remote backend has no
//! inline small-batch path, so small batches show the per-epoch round-trip
//! floor).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mswj_core::engine::transport::{serve_uds, Endpoint};
use mswj_core::{EngineEvent, ExecutionBackend, JoinEngine};
use mswj_datasets::Zipf;
use mswj_join::{CommonKeyEquiJoin, JoinQuery, ProbeStrategy};
use mswj_types::{FieldType, Schema, StreamSet, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const WINDOW_TUPLES: u64 = 4_000;

fn equi2(window_ms: u64) -> JoinQuery {
    let streams =
        StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), window_ms).unwrap();
    let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
    JoinQuery::new("bench-remote", streams, cond).unwrap()
}

/// Starts an in-process Unix-domain shard server (the accept loop
/// `mswj-shardd` runs) and returns the socket path.  The listener thread
/// lives for the rest of the process — criterion owns process exit.
fn spawn_uds_server() -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("mswj-bench-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let serve_path = path.clone();
    std::thread::Builder::new()
        .name("mswj-bench-uds".into())
        .spawn(move || {
            let _ = serve_uds(&serve_path);
        })
        .expect("spawning the uds server thread");
    path
}

fn remote_vs_pool(c: &mut Criterion) {
    let zipf = Zipf::new(1_000, 1.0);
    let mut rng = StdRng::seed_from_u64(17);
    let keys: Vec<i64> = (0..32_768).map(|_| zipf.sample(&mut rng) as i64).collect();
    let batch_of = |keys: &[i64], from: u64, pairs: u64| -> Vec<Tuple> {
        (from..from + pairs)
            .flat_map(|t| {
                (0..2usize).map(move |stream| {
                    let key = keys[((t * 2 + stream as u64) as usize) % keys.len()];
                    Tuple::new(
                        stream.into(),
                        t,
                        Timestamp::from_millis(t),
                        vec![Value::Int(key)],
                    )
                })
            })
            .collect()
    };

    let uds = spawn_uds_server();
    let mut group = c.benchmark_group("remote_vs_pool");
    let backends = [
        ("pool4", ExecutionBackend::Pool { workers: 4 }),
        ("remote_inproc4", ExecutionBackend::remote_inproc(4)),
        (
            "remote_uds4",
            ExecutionBackend::Remote {
                endpoints: vec![Endpoint::Uds(uds.clone()); 4],
            },
        ),
    ];
    for &pairs in &[32u64, 512] {
        for (label, backend) in &backends {
            group.bench_function(format!("b{pairs}_{label}"), |b| {
                let mut engine = JoinEngine::new(
                    equi2(WINDOW_TUPLES),
                    ProbeStrategy::Auto,
                    false,
                    backend.clone(),
                );
                // Prefill to the steady-state window population.
                let mut t = 0u64;
                engine.push_batch(batch_of(&keys, 0, WINDOW_TUPLES), &mut |_| {});
                engine.sync(&mut |_| {});
                t += WINDOW_TUPLES;
                let mut results = 0u64;
                b.iter(|| {
                    engine.push_batch(batch_of(&keys, t, pairs), &mut |ev| {
                        if let EngineEvent::Done(o) = ev {
                            results += o.n_join;
                        }
                    });
                    t += pairs;
                    black_box(results)
                });
                // Epochs in flight must not leak out of the measurement.
                engine.sync(&mut |_| {});
            });
        }
    }
    group.finish();
    let _ = std::fs::remove_file(&uds);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = remote_vs_pool
}
criterion_main!(benches);

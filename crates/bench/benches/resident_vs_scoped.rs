//! Resident pool vs scoped threads vs sequential, across ingestion batch
//! sizes.
//!
//! The question this bench answers: *when does each execution backend pay
//! off?*  `Threads(n)` spawns scoped workers per batch — amortized fine at
//! 512-pair batches, pure overhead at single-pair ingestion.  The resident
//! `Pool { workers: n }` spawns once, feeds bounded per-shard queues, and
//! pipelines epoch *t + 1*'s routing against epoch *t*'s execution; below
//! the inline threshold it degrades to the sequential path, so tiny batches
//! are never worse than `Sequential` by more than an uncontended mutex
//! lock.
//!
//! Workload: 2-way equi-join, Zipf-skewed keys (skew 1.0 over 1 000
//! values) with one non-integral float key per ~1 000 tuples (the "dirty
//! column" that degrades the poisoned shard to fallback scans — see
//! `sharded_scaling` in `components.rs`), steady-state windows of 4 000
//! live tuples per stream, counting mode.  The engine is driven directly so
//! the numbers isolate the join stage; batch sizes 1 / 32 / 512 tuple
//! *pairs* span single-event `push_into` up to the bulk-ingestion sweet
//! spot of the scoped backend.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mswj_core::{EngineEvent, ExecutionBackend, JoinEngine, Telemetry};
use mswj_datasets::Zipf;
use mswj_join::{CommonKeyEquiJoin, JoinQuery, ProbeStrategy};
use mswj_types::{FieldType, Schema, StreamSet, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const WINDOW_TUPLES: u64 = 4_000;
const POISON_EVERY: u64 = 1_000;

fn equi2(window_ms: u64) -> JoinQuery {
    let streams =
        StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), window_ms).unwrap();
    let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
    JoinQuery::new("bench-resident", streams, cond).unwrap()
}

fn resident_vs_scoped(c: &mut Criterion) {
    let zipf = Zipf::new(1_000, 1.0);
    let mut rng = StdRng::seed_from_u64(11);
    let keys: Vec<i64> = (0..32_768).map(|_| zipf.sample(&mut rng) as i64).collect();
    let value_at = |keys: &[i64], global: u64| -> Value {
        let key = keys[(global as usize) % keys.len()];
        if global.is_multiple_of(POISON_EVERY) {
            Value::Float(key as f64 + 0.5)
        } else {
            Value::Int(key)
        }
    };
    let batch_of = |keys: &[i64], from: u64, pairs: u64| -> Vec<Tuple> {
        (from..from + pairs)
            .flat_map(|t| {
                (0..2usize).map(move |stream| {
                    Tuple::new(
                        stream.into(),
                        t,
                        Timestamp::from_millis(t),
                        vec![value_at(keys, t * 2 + stream as u64)],
                    )
                })
            })
            .collect()
    };

    let mut group = c.benchmark_group("resident_vs_scoped");
    let backends = [
        ("sequential", ExecutionBackend::Sequential),
        ("threads4", ExecutionBackend::Threads(4)),
        ("pool4", ExecutionBackend::Pool { workers: 4 }),
    ];
    for &pairs in &[1u64, 32, 512] {
        for (label, backend) in &backends {
            // The `_telemetry` twin runs the identical workload with live
            // instruments attached — the observe-only contract says it must
            // stay within a few percent of the plain run.
            for (suffix, telemetry) in [("", false), ("_telemetry", true)] {
                group.bench_function(format!("b{pairs}_{label}{suffix}"), |b| {
                    let mut engine = JoinEngine::new(
                        equi2(WINDOW_TUPLES),
                        ProbeStrategy::Auto,
                        false,
                        backend.clone(),
                    );
                    if telemetry {
                        engine.attach_telemetry(Telemetry::new());
                    }
                    // Prefill to the steady-state window population (and,
                    // for the pool, warm the epoch buffers).
                    let mut t = 0u64;
                    engine.push_batch(batch_of(&keys, 0, WINDOW_TUPLES), &mut |_| {});
                    engine.sync(&mut |_| {});
                    t += WINDOW_TUPLES;
                    let mut results = 0u64;
                    b.iter(|| {
                        // Per measured iteration: ingest `pairs` tuple
                        // pairs.  The pool overlaps this batch's routing
                        // with the previous batch's shard execution;
                        // Threads pays one scope fan-out per batch;
                        // Sequential runs inline.
                        engine.push_batch(batch_of(&keys, t, pairs), &mut |ev| {
                            if let EngineEvent::Done(o) = ev {
                                results += o.n_join;
                            }
                        });
                        t += pairs;
                        black_box(results)
                    });
                    // Epochs in flight must not leak out of the measurement.
                    engine.sync(&mut |_| {});
                });
            }
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = resident_vs_scoped
}
criterion_main!(benches);

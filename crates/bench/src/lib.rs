//! # mswj-bench — shared fixtures for the Criterion benchmarks
//!
//! The benches regenerate the paper's tables and figures at a reduced,
//! bench-friendly scale (seconds of simulated time instead of tens of
//! minutes) and additionally micro-benchmark the framework's components
//! (K-slack, Synchronizer, recall model, adaptation step).  This module
//! centralises the workload fixtures so every bench file uses identical
//! inputs.

use mswj_core::{BufferPolicy, DisorderConfig};
use mswj_datasets::Dataset;
use mswj_experiments::{dataset_d2, dataset_d3, dataset_d4, Scale};
use mswj_metrics::CountSeries;

/// The scale used by every benchmark workload (kept small so that a full
/// `cargo bench` run finishes in minutes).
pub fn bench_scale() -> Scale {
    Scale {
        duration_secs: 20,
        seed: 42,
    }
}

/// A bench-scale D×2real (simulated soccer) workload.
pub fn bench_d2() -> Dataset {
    dataset_d2(bench_scale())
}

/// A bench-scale D×3syn workload.
pub fn bench_d3() -> Dataset {
    dataset_d3(bench_scale())
}

/// A bench-scale D×4syn workload.
pub fn bench_d4() -> Dataset {
    dataset_d4(bench_scale())
}

/// A disorder-handling configuration suitable for the bench scale
/// (P = 10 s so that recall measurements exist within 20 s of data).
pub fn bench_config(gamma: f64) -> DisorderConfig {
    DisorderConfig::with_gamma(gamma).period(10_000)
}

/// Runs `policy` over `dataset` (bench-scale period) and returns the average
/// K in seconds — a cheap scalar to keep Criterion from optimising the run
/// away.
pub fn run_for_avg_k(dataset: &Dataset, policy: BufferPolicy, truth: &CountSeries) -> f64 {
    let eval = mswj_experiments::run_policy_with_truth(dataset, policy, 10_000, truth);
    eval.avg_k_secs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_generated() {
        assert_eq!(bench_scale().duration_secs, 20);
        assert!(!bench_d3().is_empty());
        assert!(bench_config(0.9).validate().is_ok());
    }
}

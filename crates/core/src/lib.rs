//! # mswj-core — quality-driven disorder handling for m-way stream joins
//!
//! This crate is the reproduction of the primary contribution of
//! *"Quality-Driven Disorder Handling for M-way Sliding Window Stream
//! Joins"* (Ji et al., ICDE 2016): a buffer-based disorder-handling
//! framework that minimizes the result latency of an m-way sliding window
//! join while honouring a user-specified requirement `Γ` on the recall of
//! the produced join results.
//!
//! ## Components (Fig. 2 of the paper)
//!
//! | Module | Paper concept |
//! |---|---|
//! | [`kslack`] | K-slack intra-stream sorting buffers (Sec. III-A) |
//! | [`synchronizer`] | Inter-stream Synchronizer, Alg. 1 |
//! | [`statistics`] | Statistics Manager: delay histograms, `K_sync`, rates (Sec. IV-A) |
//! | [`profiler`] | Tuple-Productivity Profiler: DPcorr, Eq. 6 (Sec. IV-B) |
//! | [`result_monitor`] | Result-Size Monitor feeding Eq. 7 (Sec. IV-C) |
//! | [`model`] | Analytical recall model `γ(L, K)`, Eqs. 1–5 |
//! | [`adaptation`] | Buffer-Size Manager, model-based K search, Alg. 3 |
//! | [`policy`] | Quality-driven policy plus the paper's baselines |
//! | [`engine`] | Key-partitioned sharded join stage behind the sequential front-end |
//! | [`pipeline`] | End-to-end wiring driven by arrival events |
//! | [`builder`] | Fluent [`SessionBuilder`] assembling a whole session |
//! | [`output`] | Typed [`OutputEvent`]s, [`Checkpoint`], [`RunReport`] |
//! | [`sink`] | [`Sink`] trait and the built-in event sinks |
//!
//! ## Quick example
//!
//! ```
//! use mswj_core::{CountingSink, Pipeline};
//! use mswj_types::{ArrivalEvent, FieldType, Schema, Timestamp, Tuple, Value};
//!
//! // A 2-way equi-join with 1-second windows and quality-driven disorder
//! // handling targeting 95% recall, declared in one chain.
//! let mut pipeline = Pipeline::builder()
//!     .name("example")
//!     .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 1_000)
//!     .on_common_key("a1")
//!     .quality_driven(0.95)
//!     .period(5_000)
//!     .interval(1_000)
//!     .build()
//!     .unwrap();
//!
//! // Drive it event by event; the sink observes checkpoints and progress.
//! let mut sink = CountingSink::default();
//! for i in 1..=100u64 {
//!     let ts = Timestamp::from_millis(i * 10);
//!     pipeline.push_into(ArrivalEvent::new(ts, Tuple::new(0.into(), i, ts, vec![Value::Int(1)])), &mut sink);
//!     pipeline.push_into(ArrivalEvent::new(ts, Tuple::new(1.into(), i, ts, vec![Value::Int(1)])), &mut sink);
//! }
//! let report = pipeline.finish();
//! assert!(report.total_produced > 0);
//! assert!(sink.last_progress.is_some());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptation;
pub mod builder;
pub mod config;
pub mod engine;
pub mod kslack;
mod minheap;
pub mod model;
pub mod output;
pub mod pipeline;
pub mod policy;
pub mod profiler;
pub mod result_monitor;
pub mod sink;
pub mod statistics;
pub mod synchronizer;

pub use adaptation::{AdaptationOutcome, BufferSizeManager};
pub use builder::SessionBuilder;
pub use config::{DisorderConfig, ProbePlan, ProbeStrategy, SelectivityStrategy};
pub use engine::{
    Endpoint, EngineError, EngineEvent, ExecutionBackend, JoinEngine, PlanAction, PlanTransition,
    ReplanConfig, ShardGuard, ShardRuntimeStats, ShardStats, SkewConfig, SkewTransition,
};
pub use kslack::{KSlack, KSlackStats};
pub use model::{ModelInputs, RecallModel};
pub use mswj_obs::{
    check_prometheus_text, EventCallback, EventKind, MetricsExporter, Telemetry, TelemetryEvent,
};
pub use output::{Checkpoint, OutputEvent, RunReport};
pub use pipeline::Pipeline;
pub use policy::{BufferPolicy, PdGains, PdState};
pub use profiler::{ProductivityProfiler, SelectivityTable};
pub use result_monitor::ResultSizeMonitor;
pub use sink::{sink_fn, CollectSink, CountingSink, FnSink, NullSink, Sink};
pub use statistics::{DelayHistogram, StatisticsManager};
pub use synchronizer::{Synchronizer, SynchronizerStats};

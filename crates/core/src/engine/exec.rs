//! Execution backends: how a routed batch of shard work actually runs.
//!
//! All executors consume the same per-shard queues produced by the engine's
//! routing phase and deliver the same event stream:
//!
//! * [`run_inline`] processes the batch on the calling thread, tuple by
//!   tuple in staging order — the [`Sequential`](super::ExecutionBackend)
//!   backend, the degenerate single-shard case of the parallel backends,
//!   and the sub-threshold fallback both parallel backends take for small
//!   batches.  It is generic over [`ShardAccess`] so the same loop serves
//!   engine-owned shards (`Sequential`/`Threads`) and the mutex-held shards
//!   of the resident pool.
//! * [`run_threaded`] fans the queues out to one scoped worker per shard
//!   (`std::thread::scope`), each draining its queue via [`drain_queue`]
//!   into `(seq, …)`-tagged buffers.
//! * The resident [`pool`](super::pool) workers run [`drain_queue`] too —
//!   same inner loop, persistent threads.
//!
//! Whatever filled the buffers, [`merge_epoch`] replays them **in staging
//! order, shard order within a tuple**, so the emitted event stream is
//! deterministic regardless of thread scheduling.

use super::replan::StreamTally;
use super::{Decision, EngineEvent, Item, Placement, ShardRuntimeStats, SubOutcome};
use mswj_join::{JoinResult, MswjOperator, OperatorStats, ProbeOutcome};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Uniform mutable access to the shard operators, whether the engine owns
/// them directly or they sit behind the pool's mutexes (uncontended at
/// fallback time — workers only lock while executing an epoch, and the
/// engine runs inline only when no epoch is in flight).
pub(super) trait ShardAccess {
    /// Runs `f` with exclusive access to shard `s`.
    fn with<R>(&mut self, s: usize, f: impl FnOnce(&mut MswjOperator) -> R) -> R;
    /// Number of shards.
    fn count(&self) -> usize;
}

impl ShardAccess for [MswjOperator] {
    fn with<R>(&mut self, s: usize, f: impl FnOnce(&mut MswjOperator) -> R) -> R {
        f(&mut self[s])
    }

    fn count(&self) -> usize {
        self.len()
    }
}

impl ShardAccess for [Arc<Mutex<MswjOperator>>] {
    fn with<R>(&mut self, s: usize, f: impl FnOnce(&mut MswjOperator) -> R) -> R {
        f(&mut self[s].lock().unwrap_or_else(|e| e.into_inner()))
    }

    fn count(&self) -> usize {
        self.len()
    }
}

/// Folds one finished tuple into the aggregate stats and emits its
/// [`EngineEvent::Done`].  This is the single place where the engine's
/// sequential-equivalent accounting happens, shared by every executor.
fn finish_tuple(
    d: Decision,
    n_join: u64,
    indexed: bool,
    stats: &mut OperatorStats,
    tally: &mut [StreamTally],
    f: &mut dyn FnMut(EngineEvent<'_>),
) {
    let outcome = ProbeOutcome {
        in_order: d.in_order,
        inserted: d.inserted,
        indexed: d.in_order && indexed,
        n_join,
        n_cross: d.n_cross,
        expired: d.expired,
    };
    if d.in_order {
        let t = &mut tally[d.stream];
        t.probes += 1;
        t.matches += n_join;
        stats.in_order += 1;
        if outcome.indexed {
            stats.indexed_probes += 1;
        } else {
            stats.fallback_probes += 1;
        }
        stats.results += n_join;
        stats.cross_results += d.n_cross;
        stats.expired += d.expired as u64;
    } else {
        stats.out_of_order += 1;
        if !d.inserted {
            stats.dropped += 1;
        }
    }
    f(EngineEvent::Done(outcome));
}

/// Runs one queued item against its shard, forwarding materialized results
/// straight into `f` and folding the probe sub-outcome into the
/// accumulators.
fn run_item(
    shard: &mut MswjOperator,
    item: Item,
    n_join: &mut u64,
    indexed: &mut bool,
    f: &mut dyn FnMut(EngineEvent<'_>),
) {
    if item.probe {
        let o = shard.push_with(item.tuple, &mut |r| f(EngineEvent::Result(&r)));
        *n_join += o.n_join;
        *indexed &= o.indexed;
    } else {
        shard.insert_late(item.tuple);
    }
}

/// Single-threaded execution: items run in staging order (broadcast tuples
/// visit their shards in shard order), streaming events into `f` with no
/// intermediate buffering.
pub(super) fn run_inline<S: ShardAccess + ?Sized>(
    shards: &mut S,
    queues: &mut [VecDeque<Item>],
    decisions: &[Decision],
    stats: &mut OperatorStats,
    tally: &mut [StreamTally],
    f: &mut dyn FnMut(EngineEvent<'_>),
) {
    for &d in decisions {
        let mut n_join = 0u64;
        let mut indexed = true;
        match d.placement {
            Placement::None => {}
            Placement::One(s) => {
                let s = s as usize;
                let item = queues[s].pop_front().expect("routed item");
                shards.with(s, |shard| {
                    run_item(shard, item, &mut n_join, &mut indexed, f)
                });
            }
            Placement::All => {
                for (s, queue) in queues.iter_mut().enumerate().take(shards.count()) {
                    let item = queue.pop_front().expect("broadcast item");
                    shards.with(s, |shard| {
                        run_item(shard, item, &mut n_join, &mut indexed, f)
                    });
                }
            }
        }
        finish_tuple(d, n_join, indexed, stats, tally, f);
    }
}

/// Drains one shard's queue in order, collecting `(seq, …)`-tagged
/// sub-outcomes and materialized results — the inner loop shared by the
/// scoped `Threads` workers and the resident pool workers.  Workers never
/// touch the caller's sink; determinism is restored by [`merge_epoch`].
pub(super) fn drain_queue(
    shard: &mut MswjOperator,
    items: &mut VecDeque<Item>,
    sub: &mut Vec<SubOutcome>,
    mat: &mut Vec<(u32, JoinResult)>,
) {
    while let Some(item) = items.pop_front() {
        if item.probe {
            let seq = item.seq;
            let o = shard.push_with(item.tuple, &mut |r| mat.push((seq, r)));
            sub.push(SubOutcome {
                seq,
                n_join: o.n_join,
                indexed: o.indexed,
            });
        } else {
            shard.insert_late(item.tuple);
        }
    }
}

/// Parallel execution: one scoped worker per non-empty shard queue drains
/// its queue into that shard's buffers, recording the worker's busy time in
/// the shard's runtime counters.
pub(super) fn run_threaded(
    shards: &mut [MswjOperator],
    queues: &mut [VecDeque<Item>],
    sub: &mut [Vec<SubOutcome>],
    mat: &mut [Vec<(u32, JoinResult)>],
    runtime: &mut [ShardRuntimeStats],
) {
    std::thread::scope(|scope| {
        for (((shard, queue), (sub_s, mat_s)), rt) in shards
            .iter_mut()
            .zip(queues.iter_mut())
            .zip(sub.iter_mut().zip(mat.iter_mut()))
            .zip(runtime.iter_mut())
        {
            if queue.is_empty() {
                continue;
            }
            rt.epochs_enqueued += 1;
            scope.spawn(move || {
                let started = Instant::now();
                drain_queue(shard, queue, sub_s, mat_s);
                rt.busy_nanos += started.elapsed().as_nanos() as u64;
                rt.epochs_executed += 1;
            });
        }
    });
}

/// Replays the per-shard buffers filled by [`run_threaded`] or collected
/// from the resident pool in staging order (shard order within each tuple),
/// emitting the same event stream [`run_inline`] would have produced.
pub(super) fn merge_epoch(
    decisions: &[Decision],
    sub: &mut [Vec<SubOutcome>],
    mat: &mut [Vec<(u32, JoinResult)>],
    stats: &mut OperatorStats,
    tally: &mut [StreamTally],
    f: &mut dyn FnMut(EngineEvent<'_>),
) {
    let n = sub.len();
    let mut sub_cur = vec![0usize; n];
    let mut mat_cur = vec![0usize; n];
    for (seq, &d) in decisions.iter().enumerate() {
        let seq = seq as u32;
        let mut n_join = 0u64;
        let mut indexed = true;
        for s in 0..n {
            while mat_cur[s] < mat[s].len() && mat[s][mat_cur[s]].0 == seq {
                f(EngineEvent::Result(&mat[s][mat_cur[s]].1));
                mat_cur[s] += 1;
            }
            if sub_cur[s] < sub[s].len() && sub[s][sub_cur[s]].seq == seq {
                let o = sub[s][sub_cur[s]];
                sub_cur[s] += 1;
                n_join += o.n_join;
                indexed &= o.indexed;
            }
        }
        finish_tuple(d, n_join, indexed, stats, tally, f);
    }
    for s in 0..n {
        debug_assert_eq!(sub_cur[s], sub[s].len(), "unconsumed shard outcomes");
        sub[s].clear();
        mat[s].clear();
    }
}

//! Execution backends: how a routed batch of shard work actually runs.
//!
//! Both executors consume the same per-shard queues produced by the
//! engine's routing phase and deliver the same event stream:
//!
//! * [`run_inline`] processes the batch on the calling thread, tuple by
//!   tuple in staging order — the [`Sequential`](super::ExecutionBackend)
//!   backend, and the degenerate single-shard case of `Threads`.
//! * [`run_threaded`] + [`merge_threaded`] fan the queues out to one scoped
//!   worker per shard (`std::thread::scope`), then merge the collected
//!   sub-outcomes and materialized results back **in staging order, shard
//!   order within a tuple** — so the emitted event stream is deterministic
//!   regardless of thread scheduling.

use super::{Decision, EngineEvent, Item, Placement, SubOutcome};
use mswj_join::{JoinResult, MswjOperator, OperatorStats, ProbeOutcome};
use std::collections::VecDeque;

/// Folds one finished tuple into the aggregate stats and emits its
/// [`EngineEvent::Done`].  This is the single place where the engine's
/// sequential-equivalent accounting happens, shared by both executors.
fn finish_tuple(
    d: Decision,
    n_join: u64,
    indexed: bool,
    stats: &mut OperatorStats,
    f: &mut dyn FnMut(EngineEvent<'_>),
) {
    let outcome = ProbeOutcome {
        in_order: d.in_order,
        inserted: d.inserted,
        indexed: d.in_order && indexed,
        n_join,
        n_cross: d.n_cross,
        expired: d.expired,
    };
    if d.in_order {
        stats.in_order += 1;
        if outcome.indexed {
            stats.indexed_probes += 1;
        } else {
            stats.fallback_probes += 1;
        }
        stats.results += n_join;
        stats.cross_results += d.n_cross;
        stats.expired += d.expired as u64;
    } else {
        stats.out_of_order += 1;
        if !d.inserted {
            stats.dropped += 1;
        }
    }
    f(EngineEvent::Done(outcome));
}

/// Runs one queued item against its shard, forwarding materialized results
/// straight into `f` and folding the probe sub-outcome into the
/// accumulators.
fn run_item(
    shard: &mut MswjOperator,
    item: Item,
    n_join: &mut u64,
    indexed: &mut bool,
    f: &mut dyn FnMut(EngineEvent<'_>),
) {
    if item.probe {
        let o = shard.push_with(item.tuple, &mut |r| f(EngineEvent::Result(&r)));
        *n_join += o.n_join;
        *indexed &= o.indexed;
    } else {
        shard.insert_late(item.tuple);
    }
}

/// Single-threaded execution: items run in staging order (broadcast tuples
/// visit their shards in shard order), streaming events into `f` with no
/// intermediate buffering.
pub(super) fn run_inline(
    shards: &mut [MswjOperator],
    queues: &mut [VecDeque<Item>],
    decisions: &[Decision],
    stats: &mut OperatorStats,
    f: &mut dyn FnMut(EngineEvent<'_>),
) {
    for &d in decisions {
        let mut n_join = 0u64;
        let mut indexed = true;
        match d.placement {
            Placement::None => {}
            Placement::One(s) => {
                let item = queues[s as usize].pop_front().expect("routed item");
                run_item(&mut shards[s as usize], item, &mut n_join, &mut indexed, f);
            }
            Placement::All => {
                for (shard, queue) in shards.iter_mut().zip(queues.iter_mut()) {
                    let item = queue.pop_front().expect("broadcast item");
                    run_item(shard, item, &mut n_join, &mut indexed, f);
                }
            }
        }
        finish_tuple(d, n_join, indexed, stats, f);
    }
}

/// Parallel execution: one scoped worker per non-empty shard queue drains
/// its queue in order, collecting `(seq, …)`-tagged sub-outcomes and
/// materialized results into that shard's buffers.  Workers never touch the
/// caller's sink — determinism is restored by [`merge_threaded`].
pub(super) fn run_threaded(
    shards: &mut [MswjOperator],
    queues: &mut [VecDeque<Item>],
    sub: &mut [Vec<SubOutcome>],
    mat: &mut [Vec<(u32, JoinResult)>],
) {
    std::thread::scope(|scope| {
        for ((shard, queue), (sub_s, mat_s)) in shards
            .iter_mut()
            .zip(queues.iter_mut())
            .zip(sub.iter_mut().zip(mat.iter_mut()))
        {
            if queue.is_empty() {
                continue;
            }
            scope.spawn(move || {
                while let Some(item) = queue.pop_front() {
                    if item.probe {
                        let seq = item.seq;
                        let o = shard.push_with(item.tuple, &mut |r| mat_s.push((seq, r)));
                        sub_s.push(SubOutcome {
                            seq,
                            n_join: o.n_join,
                            indexed: o.indexed,
                        });
                    } else {
                        shard.insert_late(item.tuple);
                    }
                }
            });
        }
    });
}

/// Replays the per-shard buffers filled by [`run_threaded`] in staging
/// order (shard order within each tuple), emitting the same event stream
/// [`run_inline`] would have produced.
pub(super) fn merge_threaded(
    decisions: &[Decision],
    sub: &mut [Vec<SubOutcome>],
    mat: &mut [Vec<(u32, JoinResult)>],
    stats: &mut OperatorStats,
    f: &mut dyn FnMut(EngineEvent<'_>),
) {
    let n = sub.len();
    let mut sub_cur = vec![0usize; n];
    let mut mat_cur = vec![0usize; n];
    for (seq, &d) in decisions.iter().enumerate() {
        let seq = seq as u32;
        let mut n_join = 0u64;
        let mut indexed = true;
        for s in 0..n {
            while mat_cur[s] < mat[s].len() && mat[s][mat_cur[s]].0 == seq {
                f(EngineEvent::Result(&mat[s][mat_cur[s]].1));
                mat_cur[s] += 1;
            }
            if sub_cur[s] < sub[s].len() && sub[s][sub_cur[s]].seq == seq {
                let o = sub[s][sub_cur[s]];
                sub_cur[s] += 1;
                n_join += o.n_join;
                indexed &= o.indexed;
            }
        }
        finish_tuple(d, n_join, indexed, stats, f);
    }
    for s in 0..n {
        debug_assert_eq!(sub_cur[s], sub[s].len(), "unconsumed shard outcomes");
        sub[s].clear();
        mat[s].clear();
    }
}

//! Runtime probe re-planning for the sharded join stage.
//!
//! The probe plan is chosen once, from the query shape alone — before a
//! single tuple has been seen.  Three of its decisions can turn out wrong
//! at runtime:
//!
//! * **The star partition pair.**  Star partitioning key-routes the anchor
//!   with *one* satellite and broadcasts the rest — and a broadcast
//!   stream pays for every tuple on every shard (insert, index
//!   maintenance, expiry, replicated window state).  The planner picks the
//!   first satellite blindly; once the engine has observed live window
//!   cardinalities (through the global occupancy tracker), the satellite
//!   that deserves the key-routed slot is the *heaviest* one, leaving only
//!   light streams on the broadcast path.
//! * **The probe chain order.**  The m-way probe visits windows in stream
//!   order.  Visiting the least-productive window first exits empty
//!   probes earliest, and observed per-stream match rates are the signal.
//! * **The hash index itself.**  Index maintenance only pays while probes
//!   actually take the indexed path; a workload stuck on the fallback
//!   scan (an unindexable key column, say) pays maintenance for nothing.
//!
//! The engine evaluates a **plan revision** for each of these at the same
//! idle barriers the skew layer uses — no work in flight, decisions taken
//! from engine-global (backend-invariant) statistics, every transition
//! recorded.  Like skew detection, evaluation is **windowed** with an
//! evidence floor ([`ReplanConfig::min_probes`]), and every action is
//! guarded by hysteresis so a borderline signal cannot flap the plan:
//! pair switches need a [`ReplanConfig::switch_ratio`] cardinality gap,
//! reorders a [`ReplanConfig::reorder_margin`] rate gap on every inverted
//! pair, and index demotion is one-way by construction (the dropped index
//! is never rebuilt).

use mswj_types::Timestamp;

/// Thresholds of runtime probe re-planning, set through
/// `SessionBuilder::runtime_replanning` /
/// `SessionBuilder::runtime_replanning_with`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplanConfig {
    /// Minimum in-order probes in an evaluation window before any revision
    /// is judged; thinner windows carry forward to the next barrier.
    /// Default 1024.
    pub min_probes: u64,
    /// A pair switch needs the heaviest satellite's live cardinality to
    /// exceed `switch_ratio` times the current partner's — the hysteresis
    /// band that keeps near-equal satellites from trading places.  Must be
    /// above 1.  Default 2.0.
    pub switch_ratio: f64,
    /// The hash index is demoted to the nested-loop scan once the
    /// evaluation window's fallback share (`fallback / (indexed +
    /// fallback)`) reaches this.  In `(0, 1]`; default 0.5.
    pub demote_fallback_share: f64,
    /// A probe reorder is adopted only if every stream pair it inverts
    /// differs in observed match rate by at least this factor.  Must be
    /// above 1.  Default 1.5.
    pub reorder_margin: f64,
}

impl Default for ReplanConfig {
    fn default() -> Self {
        ReplanConfig {
            min_probes: 1_024,
            switch_ratio: 2.0,
            demote_fallback_share: 0.5,
            reorder_margin: 1.5,
        }
    }
}

impl ReplanConfig {
    /// Validates the thresholds: `min_probes` positive, `switch_ratio` and
    /// `reorder_margin` strictly above 1 (they are hysteresis bands), and
    /// `demote_fallback_share` in `(0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_probes == 0 {
            return Err("replan min_probes must be at least 1".into());
        }
        // `x > 1.0` written positively so NaN (incomparable) also fails.
        if !matches!(
            self.switch_ratio.partial_cmp(&1.0),
            Some(std::cmp::Ordering::Greater)
        ) {
            return Err(format!(
                "replan switch_ratio must be above 1, got {}",
                self.switch_ratio
            ));
        }
        if !(self.demote_fallback_share > 0.0 && self.demote_fallback_share <= 1.0) {
            return Err(format!(
                "replan demote_fallback_share must be in (0, 1], got {}",
                self.demote_fallback_share
            ));
        }
        if !matches!(
            self.reorder_margin.partial_cmp(&1.0),
            Some(std::cmp::Ordering::Greater)
        ) {
            return Err(format!(
                "replan reorder_margin must be above 1, got {}",
                self.reorder_margin
            ));
        }
        Ok(())
    }
}

/// What one plan revision did.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanAction {
    /// The star partition pair was re-selected: the satellite key-routed
    /// with the anchor changed from stream `from` to stream `to`, and the
    /// affected window state migrated between shards at the barrier.
    PairSwitch {
        /// The satellite previously paired with the anchor.
        from: usize,
        /// The satellite now paired with the anchor (the highest observed
        /// live cardinality — key-routing it takes its volume off the
        /// broadcast path).
        to: usize,
    },
    /// The m-way probe chain was reordered by observed match rates
    /// (ascending — least productive stream probed first).
    Reorder {
        /// The new probe order, a permutation of the stream indices.
        order: Vec<usize>,
    },
    /// The hash indexes were dropped on every shard: probes scan from now
    /// on, and inserts/expiry stop paying index maintenance.  One-way.
    DemoteIndex,
}

/// One plan revision taken by the runtime re-planner, in decision order.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanTransition {
    /// What changed.
    pub action: PlanAction,
    /// The engine's global high-water mark `onT` at the decision barrier.
    pub at: Timestamp,
}

/// Engine-global per-stream probe productivity: how many in-order tuples
/// of the stream probed, and how many results those probes produced.
/// Accounted at the single sequential-equivalent merge point, so every
/// backend observes identical tallies.
#[derive(Debug, Default, Clone, Copy)]
pub(super) struct StreamTally {
    /// In-order probes by tuples of this stream.
    pub(super) probes: u64,
    /// Join results those probes produced.
    pub(super) matches: u64,
}

impl StreamTally {
    /// Smoothed observed match rate (`(matches + 1) / (probes + 1)`), so
    /// streams with no probes yet compare as rate 1 instead of dividing by
    /// zero.
    pub(super) fn rate(&self) -> f64 {
        (self.matches + 1) as f64 / (self.probes + 1) as f64
    }
}

/// The re-planner's mutable state: the config plus the bases of the
/// current evaluation window and the revisions already in force.
#[derive(Debug)]
pub(super) struct ReplanState {
    pub(super) config: ReplanConfig,
    /// Total in-order probes at the last window reset.
    pub(super) probes_base: u64,
    /// `stats.indexed_probes` at the last window reset.
    pub(super) indexed_base: u64,
    /// `stats.fallback_probes` at the last window reset.
    pub(super) fallback_base: u64,
    /// Whether the one-way index demotion has been taken.
    pub(super) demoted: bool,
    /// The probe order currently in force on every shard.
    pub(super) order: Vec<usize>,
}

impl ReplanState {
    pub(super) fn new(config: ReplanConfig, m: usize) -> Self {
        debug_assert!(config.validate().is_ok(), "unvalidated replan config");
        ReplanState {
            config,
            probes_base: 0,
            indexed_base: 0,
            fallback_base: 0,
            demoted: false,
            order: (0..m).collect(),
        }
    }
}

/// The probe order the observed rates ask for: streams ascending by match
/// rate (least productive first — its window is the likeliest to cut a
/// probe short), ties broken by stream index so the candidate is
/// deterministic.
pub(super) fn reorder_candidate(tallies: &[StreamTally]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..tallies.len()).collect();
    order.sort_by(|&a, &b| {
        tallies[a]
            .rate()
            .partial_cmp(&tallies[b].rate())
            .expect("smoothed rates are finite")
            .then(a.cmp(&b))
    });
    order
}

/// Whether adopting `cand` over `cur` is decisive: every stream pair the
/// candidate inverts must differ in rate by at least `margin`.  A single
/// borderline inversion vetoes the whole reorder — the hysteresis that
/// keeps near-equal streams from swapping at every barrier.
pub(super) fn reorder_is_decisive(
    cur: &[usize],
    cand: &[usize],
    tallies: &[StreamTally],
    margin: f64,
) -> bool {
    let mut pos = vec![0usize; cur.len()];
    for (p, &s) in cur.iter().enumerate() {
        pos[s] = p;
    }
    for i in 0..cand.len() {
        for k in i + 1..cand.len() {
            let (a, b) = (cand[i], cand[k]);
            if pos[a] > pos[b] && tallies[b].rate() < margin * tallies[a].rate() {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tally(probes: u64, matches: u64) -> StreamTally {
        StreamTally { probes, matches }
    }

    #[test]
    fn default_config_validates_and_bad_ones_do_not() {
        assert!(ReplanConfig::default().validate().is_ok());
        let c = ReplanConfig {
            min_probes: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ReplanConfig {
            switch_ratio: 1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err(), "switch_ratio 1 has no hysteresis");
        let c = ReplanConfig {
            demote_fallback_share: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ReplanConfig {
            reorder_margin: 0.9,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn reorder_candidate_sorts_ascending_by_rate_with_stable_ties() {
        // rates: 1.0 (untouched), ~0.01, ~2.0 → candidate [1, 0, 2].
        let t = [tally(0, 0), tally(99, 0), tally(99, 199)];
        assert_eq!(reorder_candidate(&t), vec![1, 0, 2]);
        // All equal: stream-index order, deterministically.
        let t = [tally(10, 10); 3];
        assert_eq!(reorder_candidate(&t), vec![0, 1, 2]);
    }

    #[test]
    fn borderline_inversions_are_vetoed() {
        // Streams 0 and 1 differ by under the margin; candidate swaps them.
        let t = [tally(99, 119), tally(99, 99), tally(99, 999)];
        let cur = [0, 1, 2];
        let cand = reorder_candidate(&t);
        assert_eq!(cand, vec![1, 0, 2]);
        assert!(
            !reorder_is_decisive(&cur, &cand, &t, 1.5),
            "a 1.2x gap must not clear a 1.5x margin"
        );
        assert!(
            reorder_is_decisive(&cur, &cand, &t, 1.1),
            "the same gap clears a 1.1x margin"
        );
        // Pairs the candidate keeps in place never veto.
        assert!(reorder_is_decisive(&cand, &cand, &t, 10.0));
    }
}

//! The in-process transport: a shard server on a local thread, reached
//! through in-memory duplex byte pipes.
//!
//! Every frame still travels through the full wire codec — encode, length
//! prefix, header validation, decode — so running the existing test matrix
//! over [`InProc`] proves the serialization layer on realistic workloads
//! without opening a socket.  The pipe is a pair of condvar-guarded byte
//! rings; dropping either end closes both directions, which the peer
//! observes as EOF (reads) and `BrokenPipe` (writes), exactly like a
//! hung-up socket.

use super::{server, Framed, Transport, TransportCounters, DEFAULT_READ_TIMEOUT};
use mswj_wire::{Frame, WireError};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

#[derive(Default)]
struct RingState {
    buf: VecDeque<u8>,
    closed: bool,
}

/// One direction of the pipe: a byte ring plus the condvar readers park on.
#[derive(Default)]
struct Ring {
    state: Mutex<RingState>,
    readable: Condvar,
}

impl Ring {
    fn lock(&self) -> MutexGuard<'_, RingState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn close(&self) {
        self.lock().closed = true;
        self.readable.notify_all();
    }
}

/// One end of an in-memory duplex byte pipe (see [`duplex`]).  Implements
/// blocking `Read`/`Write` with an optional read timeout, mirroring socket
/// semantics: EOF (`Ok(0)`) once the peer is gone and the ring is drained,
/// `BrokenPipe` on writes to a hung-up peer, `TimedOut` when a read waits
/// past the configured deadline.
pub struct PipeEnd {
    read: Arc<Ring>,
    write: Arc<Ring>,
    read_timeout: Option<Duration>,
}

impl PipeEnd {
    /// Sets the read timeout; `None` blocks indefinitely.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
    }

    /// Closes both directions, as dropping this end would.
    pub fn close(&self) {
        self.read.close();
        self.write.close();
    }
}

/// Creates a connected pair of in-memory byte pipes; bytes written to one
/// end are read from the other.
pub fn duplex() -> (PipeEnd, PipeEnd) {
    let a = Arc::new(Ring::default());
    let b = Arc::new(Ring::default());
    (
        PipeEnd {
            read: Arc::clone(&a),
            write: Arc::clone(&b),
            read_timeout: None,
        },
        PipeEnd {
            read: b,
            write: a,
            read_timeout: None,
        },
    )
}

impl Read for PipeEnd {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut st = self.read.lock();
        loop {
            if !st.buf.is_empty() {
                let n = out.len().min(st.buf.len());
                for slot in out[..n].iter_mut() {
                    *slot = st.buf.pop_front().expect("n is bounded by the ring length");
                }
                return Ok(n);
            }
            if st.closed {
                return Ok(0);
            }
            st = match self.read_timeout {
                None => self
                    .read
                    .readable
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner()),
                Some(t) => {
                    let (guard, timeout) = self
                        .read
                        .readable
                        .wait_timeout(st, t)
                        .unwrap_or_else(|e| e.into_inner());
                    if timeout.timed_out() && guard.buf.is_empty() && !guard.closed {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "in-process pipe read timed out",
                        ));
                    }
                    guard
                }
            };
        }
    }
}

impl Write for PipeEnd {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut st = self.write.lock();
        if st.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer closed the in-process pipe",
            ));
        }
        st.buf.extend(data);
        self.write.readable.notify_all();
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeEnd {
    fn drop(&mut self) {
        self.close();
    }
}

/// A [`Transport`] whose shard server runs on a thread of this process,
/// connected through [`duplex`] pipes.
pub struct InProc {
    framed: Framed<PipeEnd>,
    server: Option<JoinHandle<()>>,
}

impl InProc {
    /// Spawns a shard-server thread and connects to it.
    pub fn spawn() -> Self {
        let (mut client, server_end) = duplex();
        client.set_read_timeout(Some(DEFAULT_READ_TIMEOUT));
        let handle = std::thread::Builder::new()
            .name("mswj-inproc-shard".into())
            .spawn(move || {
                let _ = server::serve_stream(server_end);
            })
            .expect("spawning the in-process shard server");
        InProc {
            framed: Framed::new(client),
            server: Some(handle),
        }
    }
}

impl Transport for InProc {
    fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        self.framed.send(frame)
    }

    fn recv(&mut self) -> Result<Frame, WireError> {
        self.framed.recv()
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), WireError> {
        self.framed.stream_mut().set_read_timeout(timeout);
        Ok(())
    }

    fn counters(&self) -> TransportCounters {
        self.framed.counters()
    }

    fn describe(&self) -> String {
        "inproc".into()
    }
}

impl Drop for InProc {
    fn drop(&mut self) {
        // Closing the pipes unblocks the server (EOF), so the join below
        // cannot hang; a panicking server thread is swallowed — the engine
        // already surfaced its failure as an error frame, if any.
        self.framed.stream_mut().close();
        if let Some(handle) = self.server.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_moves_bytes_and_signals_eof() {
        let (mut a, mut b) = duplex();
        a.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        drop(a);
        assert_eq!(b.read(&mut buf).unwrap(), 0, "EOF after peer drop");
        assert_eq!(b.write(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn pipe_read_times_out() {
        let (_a, mut b) = duplex();
        b.set_read_timeout(Some(Duration::from_millis(20)));
        let mut buf = [0u8; 1];
        assert_eq!(
            b.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
    }
}

//! Socket transports: Unix-domain and TCP links to an `mswj-shardd`
//! shard-server process.
//!
//! Connection establishment retries until the deadline passes (covering
//! the race against a server that is still binding its socket) and counts
//! the extra attempts as reconnects.  Reads carry the configured timeout
//! down to the OS socket, so a silent peer surfaces as `TimedOut` rather
//! than blocking the engine forever; a killed peer surfaces immediately as
//! EOF or `BrokenPipe`.

use super::{Endpoint, Framed, Transport, TransportCounters, DEFAULT_READ_TIMEOUT};
use mswj_wire::{Frame, WireError};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

enum SocketStream {
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            SocketStream::Uds(s) => s.read(buf),
            SocketStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            SocketStream::Uds(s) => s.write(buf),
            SocketStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            SocketStream::Uds(s) => s.flush(),
            SocketStream::Tcp(s) => s.flush(),
        }
    }
}

/// A socket-backed [`Transport`] to one `mswj-shardd` shard server.
pub struct Socket {
    framed: Framed<SocketStream>,
    endpoint: Endpoint,
    reconnects: u64,
}

impl Socket {
    /// Connects to a [`Endpoint::Uds`] or [`Endpoint::Tcp`] endpoint,
    /// retrying until `timeout` expires; the read timeout starts at
    /// [`DEFAULT_READ_TIMEOUT`].
    pub fn connect(endpoint: &Endpoint, timeout: Duration) -> Result<Self, WireError> {
        let deadline = Instant::now() + timeout;
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            let stream = match endpoint {
                Endpoint::Uds(path) => UnixStream::connect(path).map(SocketStream::Uds),
                Endpoint::Tcp(addr) => TcpStream::connect(addr).map(SocketStream::Tcp),
                Endpoint::InProc => {
                    return Err(WireError::Io(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "in-process endpoints do not use sockets",
                    )))
                }
            };
            match stream {
                Ok(stream) => {
                    let mut socket = Socket {
                        framed: Framed::new(stream),
                        endpoint: endpoint.clone(),
                        reconnects: attempts - 1,
                    };
                    socket.set_read_timeout(Some(DEFAULT_READ_TIMEOUT))?;
                    return Ok(socket);
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(WireError::Io(e)),
            }
        }
    }
}

impl Transport for Socket {
    fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        self.framed.send(frame)
    }

    fn recv(&mut self) -> Result<Frame, WireError> {
        self.framed.recv()
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), WireError> {
        match self.framed.stream_mut() {
            SocketStream::Uds(s) => s.set_read_timeout(timeout)?,
            SocketStream::Tcp(s) => s.set_read_timeout(timeout)?,
        }
        Ok(())
    }

    fn counters(&self) -> TransportCounters {
        let mut c = self.framed.counters();
        c.reconnects = self.reconnects;
        c
    }

    fn describe(&self) -> String {
        self.endpoint.to_string()
    }
}

//! The shard-server side of the wire protocol: one shard operator per
//! connection, driven entirely by frames.
//!
//! A connection's lifecycle is `Hello → Setup → (Task | Barrier | class
//! frames)* → Shutdown`.  The server is passive — it never initiates — and
//! every request gets exactly one reply, so the client can keep at most
//! one epoch in flight per connection and collect deterministically.  An
//! operator panic while draining a task is caught and shipped back as an
//! error frame (the connection then closes: after a panic the shard state
//! is unreliable, exactly like a retired pool worker).
//!
//! [`serve_stream`] serves one connection over any byte stream — the
//! in-process transport drives it over memory pipes, the `mswj-shardd`
//! binary and benches drive it over sockets via [`serve_uds`] /
//! [`serve_tcp`], one thread per accepted connection.

use super::Framed;
use crate::engine::{exec, Item};
use mswj_join::{join_key_hash, JoinQuery, MswjOperator};
use mswj_obs::{ShardInstruments, Telemetry};
use mswj_types::{Schema, StreamIndex, StreamSet, StreamSpec, Tuple};
use mswj_wire::{Frame, WireError, WireOutput, WireQuery, WireSub};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Per-connection telemetry accumulated between barriers and published at
/// every [`Frame::Barrier`] — the server-side mirror of the engine's
/// barrier-time gauge publication.  Strictly observe-only.
struct ConnScope {
    scope: Arc<ShardInstruments>,
    /// Epochs drained since the connection opened.
    epochs: u64,
    /// Items routed into this connection since it opened.
    routed: u64,
    /// Largest single-epoch queue observed since the last barrier.
    queue_high: u64,
    /// Busy nanoseconds accumulated since the last barrier.
    busy_nanos: u64,
    /// Wall-clock anchor of the last barrier (busy-share denominator).
    since: Instant,
}

impl ConnScope {
    fn new(scope: Arc<ShardInstruments>) -> Self {
        ConnScope {
            scope,
            epochs: 0,
            routed: 0,
            queue_high: 0,
            busy_nanos: 0,
            since: Instant::now(),
        }
    }

    fn record_epoch(&mut self, queued: u64, busy_nanos: u64) {
        self.epochs += 1;
        self.routed += queued;
        self.queue_high = self.queue_high.max(queued);
        self.busy_nanos += busy_nanos;
    }

    fn publish(&mut self, window_bytes: u64, window_segments: u64) {
        let wall = self.since.elapsed().as_nanos() as u64;
        let busy_share = if wall == 0 {
            0.0
        } else {
            (self.busy_nanos as f64 / wall as f64).min(1.0)
        };
        self.scope.window_bytes.set(window_bytes as f64);
        self.scope.window_segments.set(window_segments as f64);
        self.scope.epochs_executed.set(self.epochs as f64);
        self.scope.routed.set(self.routed as f64);
        self.scope.queue_depth.set(self.queue_high as f64);
        self.scope.busy_share.set(busy_share);
        self.queue_high = 0;
        self.busy_nanos = 0;
        self.since = Instant::now();
    }
}

/// Renders a caught panic payload the way `std::thread` would print it.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "shard operator panicked (non-string payload)".to_string()
    }
}

/// Instantiates the shard operator a [`Frame::Setup`] describes.
fn build_operator(q: &WireQuery) -> Result<MswjOperator, String> {
    let specs: Vec<StreamSpec> = q
        .streams
        .iter()
        .map(|s| StreamSpec::new(s.name.clone(), Schema::new(s.fields.clone()), s.window))
        .collect();
    let streams = StreamSet::new(specs).map_err(|e| e.to_string())?;
    let condition = q.condition.instantiate();
    let query = JoinQuery::new(q.name.clone(), streams, condition).map_err(|e| e.to_string())?;
    Ok(MswjOperator::with_probe(query, q.strategy, q.enumerate))
}

fn stream_and_column(stream: u64, column: u64) -> Result<(StreamIndex, usize), String> {
    let s = usize::try_from(stream).map_err(|_| format!("stream index {stream} overflows"))?;
    let c = usize::try_from(column).map_err(|_| format!("column index {column} overflows"))?;
    Ok((StreamIndex(s), c))
}

/// Collects one key class out of a window, in window (timestamp) order.
fn class_of(op: &MswjOperator, stream: StreamIndex, column: usize, key_hash: u64) -> Vec<Tuple> {
    op.window(stream)
        .iter()
        .filter(|t| join_key_hash(t.value(column)) == key_hash)
        .cloned()
        .collect()
}

/// Serves one client connection until a shutdown handshake, EOF, or a
/// terminal protocol error.  Returns `Ok(())` on every orderly close
/// (including after reporting a client error or an operator panic as an
/// error frame); `Err` only for transport-level failures mid-reply.
pub fn serve_stream<S: Read + Write>(stream: S) -> Result<(), WireError> {
    serve_stream_with(stream, None)
}

/// [`serve_stream`] with an optional telemetry scope: when present, the
/// connection publishes its operator's window footprint and its runtime
/// counters (epochs, routed items, queue high-water, busy share) into the
/// scope's gauges at every barrier frame.  Pure observation — the framing
/// and replies are identical with and without it.
pub fn serve_stream_with<S: Read + Write>(
    stream: S,
    scope: Option<Arc<ShardInstruments>>,
) -> Result<(), WireError> {
    let mut conn_scope = scope.map(ConnScope::new);
    let mut framed = Framed::new(stream);
    let mut op: Option<MswjOperator> = None;
    // Recycled epoch buffers, mirroring the pool worker's steady state.
    let mut items: VecDeque<Item> = VecDeque::new();
    let mut sub = Vec::new();
    let mut mat = Vec::new();
    loop {
        let frame = match framed.recv() {
            Ok(frame) => frame,
            Err(e) if e.is_disconnect() => return Ok(()),
            Err(WireError::VersionMismatch { ours, theirs }) => {
                // Our reply frame carries *our* version, which the foreign
                // peer will reject in turn — but the message text gets
                // through to same-version clients talking to a stale file
                // and is invaluable in logs.
                let _ = framed.send(&Frame::Error {
                    message: format!(
                        "protocol version mismatch: server speaks {ours}, client sent {theirs}"
                    ),
                });
                return Err(WireError::VersionMismatch { ours, theirs });
            }
            Err(e) => {
                let _ = framed.send(&Frame::Error {
                    message: format!("undecodable frame: {e}"),
                });
                return Err(e);
            }
        };
        match frame {
            Frame::Hello => framed.send(&Frame::HelloAck)?,
            Frame::Setup(q) => match build_operator(&q) {
                Ok(built) => {
                    op = Some(built);
                    framed.send(&Frame::SetupAck)?;
                }
                Err(message) => {
                    framed.send(&Frame::Error { message })?;
                    return Ok(());
                }
            },
            Frame::Task(task) => {
                let Some(op) = op.as_mut() else {
                    framed.send(&Frame::Error {
                        message: "task before setup".into(),
                    })?;
                    return Ok(());
                };
                items.clear();
                items.extend(task.items.into_iter().map(|w| Item {
                    seq: w.seq,
                    probe: w.probe,
                    tuple: w.tuple,
                }));
                sub.clear();
                mat.clear();
                let queued = items.len() as u64;
                let started = Instant::now();
                let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    exec::drain_queue(op, &mut items, &mut sub, &mut mat);
                }))
                .err();
                let busy_nanos = started.elapsed().as_nanos() as u64;
                if let Some(scope) = &mut conn_scope {
                    scope.record_epoch(queued, busy_nanos);
                }
                match panicked {
                    Some(payload) => {
                        framed.send(&Frame::Error {
                            message: panic_text(payload.as_ref()),
                        })?;
                        return Ok(());
                    }
                    None => framed.send(&Frame::Output(WireOutput {
                        epoch: task.epoch,
                        routing_epoch: task.routing_epoch,
                        busy_nanos,
                        sub: sub
                            .iter()
                            .map(|o| WireSub {
                                seq: o.seq,
                                n_join: o.n_join,
                                indexed: o.indexed,
                            })
                            .collect(),
                        mat: std::mem::take(&mut mat),
                    }))?,
                }
            }
            Frame::Barrier { token } => {
                let stats = op.as_ref().map(MswjOperator::stats).unwrap_or_default();
                let window_bytes = op.as_ref().map(MswjOperator::window_bytes).unwrap_or(0);
                let window_segments = op.as_ref().map(MswjOperator::window_segments).unwrap_or(0);
                if let Some(scope) = &mut conn_scope {
                    scope.publish(window_bytes, window_segments);
                }
                framed.send(&Frame::BarrierAck {
                    token,
                    stats,
                    window_bytes,
                    window_segments,
                })?;
            }
            Frame::FetchClass {
                stream,
                column,
                key_hash,
            } => {
                let reply = match (op.as_ref(), stream_and_column(stream, column)) {
                    (Some(op), Ok((s, c))) => Frame::ClassData {
                        tuples: class_of(op, s, c, key_hash),
                    },
                    (None, _) => Frame::Error {
                        message: "fetch-class before setup".into(),
                    },
                    (_, Err(message)) => Frame::Error { message },
                };
                let terminal = matches!(reply, Frame::Error { .. });
                framed.send(&reply)?;
                if terminal {
                    return Ok(());
                }
            }
            Frame::Adopt { tuples } => {
                let Some(op) = op.as_mut() else {
                    framed.send(&Frame::Error {
                        message: "adopt before setup".into(),
                    })?;
                    return Ok(());
                };
                for t in tuples {
                    op.adopt(t);
                }
                framed.send(&Frame::Ack)?;
            }
            Frame::PurgeClass {
                stream,
                column,
                key_hash,
            } => {
                let reply = match (op.as_mut(), stream_and_column(stream, column)) {
                    (Some(op), Ok((s, c))) => {
                        op.evict_where(s, |t| join_key_hash(t.value(c)) != key_hash);
                        Frame::Ack
                    }
                    (None, _) => Frame::Error {
                        message: "purge-class before setup".into(),
                    },
                    (_, Err(message)) => Frame::Error { message },
                };
                let terminal = matches!(reply, Frame::Error { .. });
                framed.send(&reply)?;
                if terminal {
                    return Ok(());
                }
            }
            Frame::FetchWindow { stream } => {
                let reply = match (op.as_ref(), usize::try_from(stream)) {
                    (Some(op), Ok(s)) => Frame::ClassData {
                        tuples: op.window(StreamIndex(s)).iter().cloned().collect(),
                    },
                    (None, _) => Frame::Error {
                        message: "fetch-window before setup".into(),
                    },
                    (_, Err(_)) => Frame::Error {
                        message: format!("stream index {stream} overflows"),
                    },
                };
                let terminal = matches!(reply, Frame::Error { .. });
                framed.send(&reply)?;
                if terminal {
                    return Ok(());
                }
            }
            Frame::Retain {
                stream,
                column,
                shards,
                keep,
            } => {
                let reply = match (op.as_mut(), stream_and_column(stream, column)) {
                    (Some(_), _) if shards == 0 => Frame::Error {
                        message: "retain with zero shards".into(),
                    },
                    (Some(op), Ok((s, c))) => {
                        op.evict_where(s, |t| join_key_hash(t.value(c)) % shards == keep);
                        Frame::Ack
                    }
                    (None, _) => Frame::Error {
                        message: "retain before setup".into(),
                    },
                    (_, Err(message)) => Frame::Error { message },
                };
                let terminal = matches!(reply, Frame::Error { .. });
                framed.send(&reply)?;
                if terminal {
                    return Ok(());
                }
            }
            Frame::Revise { order, demote } => {
                let Some(op) = op.as_mut() else {
                    framed.send(&Frame::Error {
                        message: "revise before setup".into(),
                    })?;
                    return Ok(());
                };
                if !order.is_empty() {
                    op.set_probe_order(order);
                }
                if demote {
                    op.demote_index();
                }
                framed.send(&Frame::Ack)?;
            }
            Frame::Shutdown => {
                framed.send(&Frame::ShutdownAck)?;
                return Ok(());
            }
            other => {
                framed.send(&Frame::Error {
                    message: format!(
                        "unexpected frame type {:#04x} on the server side",
                        other.frame_type()
                    ),
                })?;
                return Ok(());
            }
        }
    }
}

fn spawn_connection<S>(index: usize, stream: S, scope: Option<Arc<ShardInstruments>>)
where
    S: Read + Write + Send + 'static,
{
    let _ = std::thread::Builder::new()
        .name(format!("mswj-shardd-conn-{index}"))
        .spawn(move || {
            if let Err(e) = serve_stream_with(stream, scope) {
                eprintln!("mswj-shardd: connection {index} failed: {e}");
            }
        });
}

/// Binds a Unix-domain socket (replacing any stale socket file) and serves
/// every incoming connection on its own thread.  Never returns except on a
/// bind/accept error — this is the `mswj-shardd --uds` main loop.
pub fn serve_uds(path: &Path) -> Result<(), WireError> {
    serve_uds_with(path, None)
}

/// [`serve_uds`] with optional daemon telemetry: connection `i` publishes
/// into `telemetry.shard(i)`, so an exporter scraping the handle sees one
/// gauge set per accepted connection.
pub fn serve_uds_with(path: &Path, telemetry: Option<Telemetry>) -> Result<(), WireError> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    eprintln!("mswj-shardd: listening on uds {}", path.display());
    for (index, conn) in listener.incoming().enumerate() {
        let scope = telemetry.as_ref().map(|t| t.shard(index));
        spawn_connection(index, conn?, scope);
    }
    Ok(())
}

/// Binds a TCP listener and serves every incoming connection on its own
/// thread.  Never returns except on a bind/accept error — this is the
/// `mswj-shardd --tcp` main loop.
pub fn serve_tcp(addr: &str) -> Result<(), WireError> {
    serve_tcp_with(addr, None)
}

/// [`serve_tcp`] with optional daemon telemetry — see [`serve_uds_with`].
pub fn serve_tcp_with(addr: &str, telemetry: Option<Telemetry>) -> Result<(), WireError> {
    let listener = std::net::TcpListener::bind(addr)?;
    eprintln!(
        "mswj-shardd: listening on tcp {}",
        listener.local_addr().map_err(WireError::Io)?
    );
    for (index, conn) in listener.incoming().enumerate() {
        let scope = telemetry.as_ref().map(|t| t.shard(index));
        spawn_connection(index, conn?, scope);
    }
    Ok(())
}

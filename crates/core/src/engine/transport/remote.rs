//! The engine-facing side of the transport: one link per shard, speaking
//! the request/reply protocol that `server` answers.
//!
//! `RemoteShards` plugs into the same depth-1 epoch pipeline as the
//! resident pool — `submit` ships a routed queue as a task frame, `collect`
//! blocks for the matching output frame — so the engine's staging-order
//! merge replays results identically whether shards are local or remote.
//! Mid-stream failures are raised as panics carrying
//! [`EngineError`](super::EngineError), mirroring the pool's
//! `resume_unwind` surface.

use super::{Endpoint, EngineError, Transport, SHUTDOWN_TIMEOUT};
use crate::engine::{Item, ShardRuntimeStats, SubOutcome};
use mswj_join::{JoinQuery, JoinResult, OperatorStats, ProbeStrategy};
use mswj_types::{Error, Tuple};
use mswj_wire::{Frame, WireError, WireItem, WireQuery, WireStream, WireTask};
use std::collections::VecDeque;
use std::panic::panic_any;
use std::sync::Mutex;
use std::time::Instant;

/// What `collect` hands back to the engine alongside the filled `sub` /
/// `mat` buffers.
pub(in crate::engine) struct CollectedEpoch {
    /// Nanoseconds the remote operator spent draining the task.
    pub(in crate::engine) busy_nanos: u64,
    /// Routing-table epoch the peer echoed back (pipeline sanity check).
    pub(in crate::engine) routing_epoch: u64,
}

struct Link {
    transport: Box<dyn Transport>,
    endpoint: String,
    /// Cumulative submit→collect wall time, the epoch round-trip counter.
    rtt_nanos: u64,
    submitted_at: Option<Instant>,
    barrier_token: u64,
}

impl Link {
    /// Raises a transport failure as the matching typed panic.
    fn raise(&self, shard: usize, err: WireError) -> ! {
        match err {
            WireError::VersionMismatch { ours, theirs } => {
                panic_any(EngineError::VersionMismatch { ours, theirs })
            }
            e if e.is_disconnect() || e.is_timeout() => panic_any(EngineError::ShardLost {
                shard,
                detail: format!("{}: {e}", self.endpoint),
            }),
            e => panic_any(EngineError::Protocol {
                shard,
                detail: format!("{}: {e}", self.endpoint),
            }),
        }
    }

    fn send(&mut self, shard: usize, frame: &Frame) {
        if let Err(e) = self.transport.send(frame) {
            self.raise(shard, e);
        }
    }

    /// Receives a reply; an error frame (remote panic or protocol
    /// complaint) is re-raised on this thread like a pool-worker panic.
    fn reply(&mut self, shard: usize) -> Frame {
        match self.transport.recv() {
            Ok(Frame::Error { message }) => panic_any(EngineError::RemotePanic { shard, message }),
            Ok(frame) => frame,
            Err(e) => self.raise(shard, e),
        }
    }

    /// Raises a protocol violation for a reply of the wrong type.
    fn unexpected(&self, shard: usize, want: &str, got: &Frame) -> ! {
        panic_any(EngineError::Protocol {
            shard,
            detail: format!(
                "{}: expected {want}, got frame type {:#04x}",
                self.endpoint,
                got.frame_type()
            ),
        })
    }
}

/// The set of transport links backing `ExecutionBackend::Remote` — the
/// engine's counterpart to the resident `ShardPool`.
///
/// Links live behind per-shard mutexes so read-only engine surfaces
/// (barrier stats, runtime folding) can reach them through `&self` the way
/// `ShardPool::lock_shard` does.
pub(in crate::engine) struct RemoteShards {
    links: Vec<Mutex<Link>>,
}

impl RemoteShards {
    /// Connects to every endpoint and runs the hello/setup handshake,
    /// leaving each peer with an instantiated shard operator.
    pub(in crate::engine) fn connect(
        endpoints: &[Endpoint],
        query: &JoinQuery,
        descriptor: &mswj_join::ConditionDescriptor,
        strategy: ProbeStrategy,
        enumerate: bool,
    ) -> Result<Self, Error> {
        let wire_query = WireQuery {
            name: query.name().to_string(),
            streams: query
                .streams()
                .iter()
                .map(|(_, spec)| WireStream {
                    name: spec.name.clone(),
                    fields: spec
                        .schema
                        .iter()
                        .map(|(n, t)| (n.to_string(), t))
                        .collect(),
                    window: spec.window,
                })
                .collect(),
            condition: descriptor.clone(),
            strategy,
            enumerate,
        };
        let mut links = Vec::with_capacity(endpoints.len());
        for (shard, endpoint) in endpoints.iter().enumerate() {
            let link = handshake(endpoint, &wire_query).map_err(|msg| {
                Error::InvalidConfig(format!("remote shard {shard} ({endpoint}): {msg}"))
            })?;
            links.push(Mutex::new(link));
        }
        Ok(RemoteShards { links })
    }

    fn link(&self, shard: usize) -> std::sync::MutexGuard<'_, Link> {
        self.links[shard].lock().unwrap_or_else(|e| e.into_inner())
    }

    fn link_mut(&mut self, shard: usize) -> &mut Link {
        self.links[shard]
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Ships a routed item queue to `shard` as one task frame, draining the
    /// queue (its capacity is preserved for recycling).
    pub(in crate::engine) fn submit(
        &mut self,
        shard: usize,
        epoch: u64,
        routing_epoch: u64,
        queue: &mut VecDeque<Item>,
    ) {
        let items: Vec<WireItem> = queue
            .drain(..)
            .map(|item| WireItem {
                seq: item.seq,
                probe: item.probe,
                tuple: item.tuple,
            })
            .collect();
        let link = self.link_mut(shard);
        link.submitted_at = Some(Instant::now());
        link.send(
            shard,
            &Frame::Task(WireTask {
                epoch,
                routing_epoch,
                items,
            }),
        );
    }

    /// Blocks for the output of the epoch previously submitted to `shard`,
    /// appending its sub-outcomes and materialized results to `sub` / `mat`.
    pub(in crate::engine) fn collect(
        &mut self,
        shard: usize,
        expected_epoch: u64,
        sub: &mut Vec<SubOutcome>,
        mat: &mut Vec<(u32, JoinResult)>,
    ) -> CollectedEpoch {
        let link = self.link_mut(shard);
        let out = match link.reply(shard) {
            Frame::Output(out) => out,
            other => link.unexpected(shard, "output", &other),
        };
        if let Some(at) = link.submitted_at.take() {
            link.rtt_nanos += at.elapsed().as_nanos() as u64;
        }
        debug_assert_eq!(out.epoch, expected_epoch, "epochs collect in submit order");
        sub.extend(out.sub.into_iter().map(|w| SubOutcome {
            seq: w.seq,
            n_join: w.n_join,
            indexed: w.indexed,
        }));
        mat.extend(out.mat);
        CollectedEpoch {
            busy_nanos: out.busy_nanos,
            routing_epoch: out.routing_epoch,
        }
    }

    /// Runs a barrier round-trip against `shard` and returns its operator
    /// counters plus the live window footprint (estimated bytes and
    /// columnar segment count) held in the server process.  Only valid
    /// between epochs (nothing outstanding).
    pub(in crate::engine) fn barrier_stats(&self, shard: usize) -> (OperatorStats, u64, u64) {
        let mut link = self.link(shard);
        link.barrier_token += 1;
        let token = link.barrier_token;
        link.send(shard, &Frame::Barrier { token });
        match link.reply(shard) {
            Frame::BarrierAck {
                token: acked,
                stats,
                window_bytes,
                window_segments,
            } => {
                if acked != token {
                    panic_any(EngineError::Protocol {
                        shard,
                        detail: format!("barrier token mismatch: sent {token}, acked {acked}"),
                    });
                }
                (stats, window_bytes, window_segments)
            }
            other => link.unexpected(shard, "barrier-ack", &other),
        }
    }

    /// Fetches one key class from a stream window of `shard` (the remote
    /// equivalent of scanning the home shard's window during a hot-key
    /// split).
    pub(in crate::engine) fn fetch_class(
        &mut self,
        shard: usize,
        stream: u64,
        column: u64,
        key_hash: u64,
    ) -> Vec<Tuple> {
        let link = self.link_mut(shard);
        link.send(
            shard,
            &Frame::FetchClass {
                stream,
                column,
                key_hash,
            },
        );
        match link.reply(shard) {
            Frame::ClassData { tuples } => tuples,
            other => link.unexpected(shard, "class-data", &other),
        }
    }

    /// Replicates build-side tuples into `shard`'s windows.
    pub(in crate::engine) fn adopt(&mut self, shard: usize, tuples: &[Tuple]) {
        let link = self.link_mut(shard);
        link.send(
            shard,
            &Frame::Adopt {
                tuples: tuples.to_vec(),
            },
        );
        match link.reply(shard) {
            Frame::Ack => {}
            other => link.unexpected(shard, "ack", &other),
        }
    }

    /// Evicts a previously replicated key class from `shard`'s window.
    pub(in crate::engine) fn purge_class(
        &mut self,
        shard: usize,
        stream: u64,
        column: u64,
        key_hash: u64,
    ) {
        let link = self.link_mut(shard);
        link.send(
            shard,
            &Frame::PurgeClass {
                stream,
                column,
                key_hash,
            },
        );
        match link.reply(shard) {
            Frame::Ack => {}
            other => link.unexpected(shard, "ack", &other),
        }
    }

    /// Fetches the entire live window of one stream from `shard` — the
    /// bulk counterpart of `fetch_class`, used when a plan revision moves
    /// a whole stream between routing modes.
    pub(in crate::engine) fn fetch_window(&mut self, shard: usize, stream: u64) -> Vec<Tuple> {
        let link = self.link_mut(shard);
        link.send(shard, &Frame::FetchWindow { stream });
        match link.reply(shard) {
            Frame::ClassData { tuples } => tuples,
            other => link.unexpected(shard, "class-data", &other),
        }
    }

    /// Keeps only the tuples of `stream` whose join-key hash (over
    /// `column`) lands on shard `keep` of `shards` — the remote form of
    /// the retain pass a pair switch runs on every local shard.
    pub(in crate::engine) fn retain(
        &mut self,
        shard: usize,
        stream: u64,
        column: u64,
        shards: u64,
        keep: u64,
    ) {
        let link = self.link_mut(shard);
        link.send(
            shard,
            &Frame::Retain {
                stream,
                column,
                shards,
                keep,
            },
        );
        match link.reply(shard) {
            Frame::Ack => {}
            other => link.unexpected(shard, "ack", &other),
        }
    }

    /// Applies a probe-plan revision (probe reorder and/or index demotion)
    /// to `shard`'s operator.
    pub(in crate::engine) fn revise(&mut self, shard: usize, order: &[usize], demote: bool) {
        let link = self.link_mut(shard);
        link.send(
            shard,
            &Frame::Revise {
                order: order.to_vec(),
                demote,
            },
        );
        match link.reply(shard) {
            Frame::Ack => {}
            other => link.unexpected(shard, "ack", &other),
        }
    }

    /// Folds the link's transport counters into a shard's runtime stats.
    pub(in crate::engine) fn fold_runtime(&self, shard: usize, rt: &mut ShardRuntimeStats) {
        let link = self.link(shard);
        let c = link.transport.counters();
        rt.frames_sent = c.frames_sent;
        rt.frames_received = c.frames_received;
        rt.bytes_sent = c.bytes_sent;
        rt.bytes_received = c.bytes_received;
        rt.reconnects = c.reconnects;
        rt.epoch_rtt_nanos = link.rtt_nanos;
    }
}

/// Connects one endpoint and runs hello + setup, mapping every failure to
/// a human-readable message (connection time is the one phase where remote
/// failures are `Result`s, not panics).
fn handshake(endpoint: &Endpoint, query: &WireQuery) -> Result<Link, String> {
    let mut transport = super::connect(endpoint).map_err(|e| e.to_string())?;
    let mut exchange = |send: Frame, want: &str, want_type: u8| -> Result<(), String> {
        transport.send(&send).map_err(|e| e.to_string())?;
        match transport.recv().map_err(|e| e.to_string())? {
            Frame::Error { message } => Err(message),
            frame if frame.frame_type() == want_type => Ok(()),
            other => Err(format!(
                "expected {want}, got frame type {:#04x}",
                other.frame_type()
            )),
        }
    };
    exchange(Frame::Hello, "hello-ack", Frame::HelloAck.frame_type())?;
    exchange(
        Frame::Setup(query.clone()),
        "setup-ack",
        Frame::SetupAck.frame_type(),
    )?;
    Ok(Link {
        transport,
        endpoint: endpoint.to_string(),
        rtt_nanos: 0,
        submitted_at: None,
        barrier_token: 0,
    })
}

impl Drop for RemoteShards {
    fn drop(&mut self) {
        // Best-effort shutdown handshake; every failure is swallowed — the
        // peer may already be gone, and panicking in drop would abort.
        for cell in &mut self.links {
            let link = cell.get_mut().unwrap_or_else(|e| e.into_inner());
            let _ = link.transport.set_read_timeout(Some(SHUTDOWN_TIMEOUT));
            if link.transport.send(&Frame::Shutdown).is_err() {
                continue;
            }
            for _ in 0..4 {
                match link.transport.recv() {
                    Ok(Frame::ShutdownAck) | Err(_) => break,
                    Ok(_) => continue,
                }
            }
        }
    }
}

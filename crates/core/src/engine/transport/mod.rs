//! The shard transport subsystem: how epochs, barriers and hot-key state
//! migrations cross a shard boundary.
//!
//! The resident pool (`ExecutionBackend::Pool`) moves epoch-tagged tasks
//! through in-memory SPSC channels; this module generalizes that exchange to a
//! peer that lives behind a byte stream, using the versioned frame codec
//! of the `mswj-wire` crate.  Three layers:
//!
//! * [`Transport`] — a blocking, bidirectional frame channel to one shard
//!   server, with [`TransportCounters`] (frames/bytes both ways, reconnect
//!   count) maintained by every implementation.  [`Framed`] adapts any
//!   `Read + Write` byte stream into the frame layer and is the shared
//!   substance of both implementations:
//!   - [`inproc::InProc`] hosts the shard server on a **local thread**
//!     connected through in-memory duplex pipes — every message still
//!     round-trips through the full encode/decode path, which is what lets
//!     the differential test matrix prove serialization without sockets.
//!   - [`socket::Socket`] connects over a Unix-domain socket or TCP to an
//!     `mswj-shardd` shard-server process, with connect retry (bounded by
//!     [`CONNECT_TIMEOUT`]) and a [`DEFAULT_READ_TIMEOUT`] so a silent
//!     peer surfaces as an error, never as a hang.
//! * [`server`] — the passive side: one [`MswjOperator`] per connection,
//!   driven by Setup/Task/Barrier/class frames (the `mswj-shardd` binary
//!   is a thin accept-loop around [`server::serve_stream`]).
//! * `remote` (engine-internal) — the active side: one link per shard,
//!   reusing the engine's epoch/barrier pipeline so checkpoints, K-changes
//!   and skew transitions stay byte-identical to local execution.
//!
//! ## Failure model
//!
//! A remote panic travels back as an error frame and is re-raised on the
//! caller thread as [`EngineError::RemotePanic`] — the same surface the
//! pool gives via `resume_unwind`.  A dead or silent peer becomes
//! [`EngineError::ShardLost`] within the read timeout; a peer speaking a
//! different protocol revision is rejected on its first frame with
//! [`EngineError::VersionMismatch`].  See `docs/ARCHITECTURE.md` for the
//! full contract.
//!
//! [`MswjOperator`]: mswj_join::MswjOperator

pub mod inproc;
pub mod server;
pub mod socket;

mod remote;

pub(in crate::engine) use remote::RemoteShards;
pub use server::{
    serve_stream, serve_stream_with, serve_tcp, serve_tcp_with, serve_uds, serve_uds_with,
};

use mswj_wire::{read_frame, write_frame, Frame, WireError};
use std::io::{Read, Write};
use std::time::Duration;

/// How long a transport waits for the peer's next frame before declaring
/// the shard lost.  Epoch execution is bounded by batch size, so a silent
/// peer past this deadline is gone, not slow.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Deadline for establishing a socket connection, including retries —
/// generous enough to cover a shard server that is still binding.
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Read timeout applied to the best-effort shutdown handshake; a peer that
/// never acks is abandoned rather than waited on.
pub(in crate::engine) const SHUTDOWN_TIMEOUT: Duration = Duration::from_secs(1);

/// Where a remote shard lives.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A shard server hosted on a thread of this process, connected
    /// through in-memory duplex buffers.  Frames still travel through the
    /// full wire codec, so this proves serialization on any workload
    /// without touching the network stack.
    InProc,
    /// A Unix-domain socket path served by `mswj-shardd --uds <path>`.
    Uds(std::path::PathBuf),
    /// A TCP address (`host:port`) served by `mswj-shardd --tcp <addr>`.
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::InProc => write!(f, "inproc"),
            Endpoint::Uds(path) => write!(f, "uds:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// Typed failures of the remote execution backend.
///
/// Mid-stream failures are raised as panics carrying this type (mirroring
/// how the resident pool re-raises a worker panic via `resume_unwind`), so
/// a harness can `catch_unwind` and downcast to tell a lost shard from a
/// remote operator panic.  Connection-time failures surface as
/// `Error::InvalidConfig` from the engine constructor instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The peer disconnected, timed out or sent undecodable bytes while an
    /// operation was in flight.
    ShardLost {
        /// Index of the affected shard.
        shard: usize,
        /// Human-readable cause (endpoint plus the transport error).
        detail: String,
    },
    /// The remote shard operator panicked; the panic text crossed the wire
    /// as an error frame.
    RemotePanic {
        /// Index of the affected shard.
        shard: usize,
        /// The remote panic payload, rendered to text.
        message: String,
    },
    /// The peer speaks a different protocol revision.
    VersionMismatch {
        /// The protocol version this build speaks.
        ours: u16,
        /// The version the peer declared.
        theirs: u16,
    },
    /// The peer answered with a frame the protocol does not allow in the
    /// current state.
    Protocol {
        /// Index of the affected shard.
        shard: usize,
        /// What was expected and what arrived.
        detail: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ShardLost { shard, detail } => {
                write!(f, "shard {shard} lost: {detail}")
            }
            EngineError::RemotePanic { shard, message } => {
                write!(f, "shard {shard} panicked remotely: {message}")
            }
            EngineError::VersionMismatch { ours, theirs } => write!(
                f,
                "protocol version mismatch: we speak {ours}, the peer speaks {theirs}"
            ),
            EngineError::Protocol { shard, detail } => {
                write!(f, "protocol violation on shard {shard}: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Frame and byte counters every [`Transport`] maintains, surfaced through
/// the engine's per-shard `ShardRuntimeStats`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportCounters {
    /// Frames written to the peer.
    pub frames_sent: u64,
    /// Frames read from the peer.
    pub frames_received: u64,
    /// Encoded bytes written, headers included.
    pub bytes_sent: u64,
    /// Encoded bytes read, headers included.
    pub bytes_received: u64,
    /// Connection attempts beyond the first while establishing the link.
    pub reconnects: u64,
}

/// A blocking, bidirectional frame channel to one shard server.
pub trait Transport: Send {
    /// Writes one frame and flushes it.
    fn send(&mut self, frame: &Frame) -> Result<(), WireError>;
    /// Reads the next frame, honouring the configured read timeout.
    fn recv(&mut self) -> Result<Frame, WireError>;
    /// (Re)configures the read timeout; `None` blocks indefinitely.
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), WireError>;
    /// Snapshot of the frame/byte counters.
    fn counters(&self) -> TransportCounters;
    /// Human-readable endpoint description for diagnostics.
    fn describe(&self) -> String;
}

/// Frame-layer adapter over any blocking byte stream: encodes into (and
/// decodes out of) one reused scratch buffer and counts traffic.  Both
/// transport implementations and the shard server are built on it.
pub struct Framed<S> {
    stream: S,
    scratch: Vec<u8>,
    counters: TransportCounters,
}

impl<S: Read + Write> Framed<S> {
    /// Wraps a connected byte stream.
    pub fn new(stream: S) -> Self {
        Framed {
            stream,
            scratch: Vec::new(),
            counters: TransportCounters::default(),
        }
    }

    /// Writes one frame and flushes the stream.
    pub fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        let n = write_frame(&mut self.stream, frame, &mut self.scratch)?;
        self.counters.frames_sent += 1;
        self.counters.bytes_sent += n as u64;
        Ok(())
    }

    /// Reads exactly one frame.
    pub fn recv(&mut self) -> Result<Frame, WireError> {
        let (frame, n) = read_frame(&mut self.stream, &mut self.scratch)?;
        self.counters.frames_received += 1;
        self.counters.bytes_received += n as u64;
        Ok(frame)
    }

    /// Snapshot of the traffic counters.
    pub fn counters(&self) -> TransportCounters {
        self.counters
    }

    /// Mutable access to the underlying stream (timeout configuration).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }
}

/// Opens a transport to `endpoint`: an [`inproc::InProc`] server thread for
/// [`Endpoint::InProc`], a retrying [`socket::Socket`] otherwise.  The
/// protocol handshake (hello + setup) is the caller's job.
pub fn connect(endpoint: &Endpoint) -> Result<Box<dyn Transport>, WireError> {
    match endpoint {
        Endpoint::InProc => Ok(Box::new(inproc::InProc::spawn())),
        Endpoint::Uds(_) | Endpoint::Tcp(_) => Ok(Box::new(socket::Socket::connect(
            endpoint,
            CONNECT_TIMEOUT,
        )?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_wire::{WireTask, PROTOCOL_VERSION};

    #[test]
    fn inproc_transport_answers_hello_and_counts_traffic() {
        let mut t = connect(&Endpoint::InProc).unwrap();
        t.send(&Frame::Hello).unwrap();
        assert!(matches!(t.recv().unwrap(), Frame::HelloAck));
        let c = t.counters();
        assert_eq!((c.frames_sent, c.frames_received), (1, 1));
        assert!(c.bytes_sent >= 12 && c.bytes_received >= 12, "{c:?}");
        assert_eq!(t.describe(), "inproc");
    }

    #[test]
    fn server_rejects_a_foreign_protocol_version() {
        let (mut client, server_end) = inproc::duplex();
        let handle = std::thread::spawn(move || serve_stream(server_end));
        // A hand-built hello header claiming a protocol version one past ours.
        let foreign = PROTOCOL_VERSION + 1;
        let mut raw = Vec::new();
        raw.extend_from_slice(b"MSWJ");
        raw.extend_from_slice(&foreign.to_le_bytes());
        raw.push(0x01); // hello
        raw.push(0);
        raw.extend_from_slice(&0u32.to_le_bytes());
        client.write_all(&raw).unwrap();
        let mut framed = Framed::new(client);
        match framed.recv().unwrap() {
            Frame::Error { message } => {
                assert!(message.contains("version mismatch"), "{message}");
                assert!(
                    message.contains(&format!("client sent {foreign}")),
                    "{message}"
                );
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
        match handle.join().unwrap() {
            Err(WireError::VersionMismatch { ours, theirs }) => {
                assert_eq!(ours, PROTOCOL_VERSION);
                assert_eq!(theirs, foreign);
            }
            other => panic!("expected a version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn server_errors_on_a_task_before_setup() {
        let (client, server_end) = inproc::duplex();
        let handle = std::thread::spawn(move || serve_stream(server_end));
        let mut framed = Framed::new(client);
        framed
            .send(&Frame::Task(WireTask {
                epoch: 1,
                routing_epoch: 0,
                items: Vec::new(),
            }))
            .unwrap();
        match framed.recv().unwrap() {
            Frame::Error { message } => assert!(message.contains("before setup"), "{message}"),
            other => panic!("expected an error frame, got {other:?}"),
        }
        assert!(
            handle.join().unwrap().is_ok(),
            "client errors close cleanly"
        );
    }

    #[test]
    fn shutdown_handshake_ends_the_session() {
        let mut t = connect(&Endpoint::InProc).unwrap();
        t.send(&Frame::Shutdown).unwrap();
        assert!(matches!(t.recv().unwrap(), Frame::ShutdownAck));
    }
}

//! Epoch-tagged work and result types exchanged with resident workers.
//!
//! One **epoch** is one routed batch submitted by the engine front: every
//! participating shard receives exactly one [`Task`] per epoch and answers
//! with exactly one [`EpochOutput`].  Epoch ids are strictly increasing and
//! each worker processes its tasks in submission order, so the engine can
//! collect an epoch's outputs **in shard order** and merge them into the
//! same deterministic event stream the inline executor would have produced.
//!
//! All buffers travel both ways: the task carries the routed items plus the
//! (empty, capacity-retaining) sub-outcome and materialization buffers, and
//! the output returns all three so the engine can recycle them — a
//! steady-state epoch round-trip allocates nothing beyond what the join
//! itself materializes.

use super::super::{Item, SubOutcome};
use mswj_join::JoinResult;
use std::any::Any;
use std::collections::VecDeque;

/// Identifier of one routed batch; strictly increasing, starting at 1
/// (0 means "nothing submitted yet").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub(in crate::engine) struct Epoch(pub(in crate::engine) u64);

/// One shard's work for one epoch.
pub(in crate::engine) struct Task {
    /// The batch this work belongs to.
    pub(in crate::engine) epoch: Epoch,
    /// Routed items, in staging order.
    pub(in crate::engine) items: VecDeque<Item>,
    /// Empty sub-outcome buffer for the worker to fill (recycled).
    pub(in crate::engine) sub: Vec<SubOutcome>,
    /// Empty materialization buffer for the worker to fill (recycled).
    pub(in crate::engine) mat: Vec<(u32, JoinResult)>,
    /// The [`RoutingTable`](mswj_join::RoutingTable) epoch the items were
    /// routed under; echoed back so collection can assert that routing
    /// never changed while the epoch was in flight.
    pub(in crate::engine) routing_epoch: u64,
}

/// One shard's answer for one epoch.
pub(in crate::engine) struct EpochOutput {
    /// Echo of the task's epoch (collection asserts it matches).
    pub(in crate::engine) epoch: Epoch,
    /// The drained item queue, returned so its capacity can be reused.
    pub(in crate::engine) items: VecDeque<Item>,
    /// Per-probing-tuple sub-outcomes, in staging order.
    pub(in crate::engine) sub: Vec<SubOutcome>,
    /// Materialized results tagged with their staging sequence.
    pub(in crate::engine) mat: Vec<(u32, JoinResult)>,
    /// Wall-clock nanoseconds the worker spent executing this epoch.
    pub(in crate::engine) busy_nanos: u64,
    /// Echo of the task's routing-table epoch (collection asserts it).
    pub(in crate::engine) routing_epoch: u64,
    /// The panic payload if the shard operator panicked mid-epoch; the
    /// engine resumes the unwind on the caller thread, exactly as
    /// `std::thread::scope` would have.
    pub(in crate::engine) panic: Option<Box<dyn Any + Send>>,
}

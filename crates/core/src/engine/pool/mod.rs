//! Resident shard workers: the executor behind
//! [`ExecutionBackend::Pool`](super::ExecutionBackend::Pool).
//!
//! `Threads(n)` spawns one scoped worker per shard *per batch* — cheap at
//! 512-event batches, wasteful at small ones, and the per-batch
//! `thread::scope` is a hard barrier between front-end routing and shard
//! execution.  The pool removes both costs: one worker thread per shard is
//! spawned **once** (at `Pipeline::construct`) and stays resident, fed
//! through a bounded per-shard SPSC [`channel`] of epoch-tagged [`Task`]s.
//!
//! ## Protocol
//!
//! * The engine submits one epoch — one routed batch — as at most one task
//!   per shard, then returns to its caller while the workers crunch; the
//!   *next* flush collects the epoch's outputs in shard order and merges
//!   them deterministically (see `exec::merge_epoch`).  At most one epoch
//!   is in flight, which is exactly the two-stage pipeline: the front-end
//!   routes batch *t + 1* while the shards execute batch *t*.
//! * Shard operators live in `Arc<Mutex<_>>` cells.  A worker locks its
//!   shard only while executing an epoch; between epochs the engine may
//!   lock any shard for inspection ([`ShardPool::lock_shard`]) or run
//!   sub-threshold batches inline on the caller thread without paying the
//!   enqueue round-trip.
//! * Shutdown is `Drop`: closing the task channels makes every worker drain
//!   and exit, and the pool joins them — no detached threads survive the
//!   engine.  A worker that panics mid-epoch ships the payload back through
//!   its result channel; the engine re-raises it on the caller thread at
//!   collection, so a poisoned run surfaces as a panic, never as a hang.

mod channel;
mod task;

pub(super) use task::{Epoch, EpochOutput, Task};

use super::exec;
use mswj_join::MswjOperator;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// In-flight epochs per shard the task channel can hold.  The engine keeps
/// at most one epoch outstanding, so 2 means submission never blocks.
const TASK_CAPACITY: usize = 2;
/// Result-channel slack; sized so a worker finishing its last epoch during
/// shutdown can always park the output and exit.
const RESULT_CAPACITY: usize = TASK_CAPACITY + 2;

/// Progress a worker publishes outside its channels, so the engine can wait
/// for quiescence (`&self` inspection) without consuming result buffers.
#[derive(Debug, Default, Clone, Copy)]
struct WorkerState {
    /// Last epoch this worker finished (executed or abandoned by panic).
    completed: Epoch,
    /// The worker is gone or will produce no further outputs.
    poisoned: bool,
}

struct PoolShared {
    state: Mutex<Vec<WorkerState>>,
    idle: Condvar,
}

impl PoolShared {
    fn lock(&self) -> MutexGuard<'_, Vec<WorkerState>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Marks the worker poisoned even if it dies outside the `catch_unwind`
/// window (e.g. a send on a closed channel during teardown), so that
/// `wait_idle` can never block on a thread that will not report back.
struct PoisonOnExit<'a> {
    shared: &'a PoolShared,
    index: usize,
    armed: bool,
}

impl Drop for PoisonOnExit<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.shared.lock()[self.index].poisoned = true;
            self.shared.idle.notify_all();
        }
    }
}

struct Worker {
    /// `Some` while the pool accepts work; taken (closed) at shutdown.
    tasks: Option<channel::Sender<Task>>,
    results: channel::Receiver<EpochOutput>,
    handle: Option<JoinHandle<()>>,
}

/// The resident executor: one worker thread per shard, each owning exclusive
/// runtime access to its shard operator.
pub(super) struct ShardPool {
    shards: Vec<Arc<Mutex<MswjOperator>>>,
    workers: Vec<Worker>,
    shared: Arc<PoolShared>,
    /// Last epoch submitted per shard — what quiescence waits for.
    submitted: Vec<Epoch>,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("workers", &self.workers.len())
            .field("submitted", &self.submitted)
            .finish()
    }
}

impl ShardPool {
    /// Spawns one resident worker per shard operator.
    pub(super) fn new(operators: Vec<MswjOperator>) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(vec![WorkerState::default(); operators.len()]),
            idle: Condvar::new(),
        });
        let shards: Vec<Arc<Mutex<MswjOperator>>> = operators
            .into_iter()
            .map(|op| Arc::new(Mutex::new(op)))
            .collect();
        let workers = shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let (task_tx, task_rx) = channel::bounded::<Task>(TASK_CAPACITY);
                let (result_tx, result_rx) = channel::bounded::<EpochOutput>(RESULT_CAPACITY);
                let shard = Arc::clone(shard);
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name(format!("mswj-shard-{index}"))
                    .spawn(move || worker_loop(index, shard, task_rx, result_tx, shared))
                    .expect("spawning a shard worker");
                Worker {
                    tasks: Some(task_tx),
                    results: result_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        let submitted = vec![Epoch::default(); shards.len()];
        ShardPool {
            shards,
            workers,
            shared,
            submitted,
        }
    }

    /// Number of shards (== resident workers).
    pub(super) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Mutable access to the shard cells, for the engine's sub-threshold
    /// inline fallback.  Only sound when no epoch is in flight (the engine
    /// collects before it falls back), so every lock is uncontended.
    pub(super) fn shards_mut(&mut self) -> &mut [Arc<Mutex<MswjOperator>>] {
        &mut self.shards
    }

    /// Locks shard `s` for caller-thread use, waiting first until its worker
    /// has finished every submitted epoch (workers lock only while
    /// executing, so this never waits on an idle pool).
    pub(super) fn lock_shard(&self, s: usize) -> MutexGuard<'_, MswjOperator> {
        self.wait_shard_idle(s);
        self.shards[s].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until shard `s` has executed (or abandoned, on panic) every
    /// epoch submitted to it.
    fn wait_shard_idle(&self, s: usize) {
        let target = self.submitted[s];
        let mut state = self.shared.lock();
        while state[s].completed < target && !state[s].poisoned {
            state = self
                .shared
                .idle
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Submits one epoch task to shard `s`.  The caller must collect every
    /// submitted task (in shard order per epoch) before submitting the next
    /// epoch; with at most one epoch in flight this never blocks.
    pub(super) fn submit(&mut self, s: usize, task: Task) {
        debug_assert!(task.epoch > self.submitted[s], "epochs must increase");
        self.submitted[s] = task.epoch;
        let sender = self.workers[s]
            .tasks
            .as_ref()
            .expect("submit after shutdown");
        if sender.send(task).is_err() {
            // The worker is gone; its parting output (with the panic
            // payload) is parked in the result channel — re-raise it.
            self.raise_worker_failure(s);
        }
    }

    /// Receives shard `s`'s output for `expected` — blocking until the
    /// worker delivers it.  A dead worker surfaces as a panic (with the
    /// original payload when one was captured), never as a hang.
    pub(super) fn collect(&mut self, s: usize, expected: Epoch) -> EpochOutput {
        match self.workers[s].results.recv() {
            Some(output) => {
                debug_assert_eq!(output.epoch, expected, "epochs collect in order");
                output
            }
            None => panic!("shard worker {s} terminated before delivering epoch {expected:?}"),
        }
    }

    /// Re-raises the failure that killed worker `s`.
    fn raise_worker_failure(&mut self, s: usize) -> ! {
        if let Some(output) = self.workers[s].results.recv() {
            if let Some(payload) = output.panic {
                std::panic::resume_unwind(payload);
            }
        }
        panic!("shard worker {s} terminated unexpectedly");
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Close every task channel first (workers drain and exit), then
        // join.  Joining never panics — a worker's own panic was either
        // already re-raised at collection or is deliberately swallowed here
        // because the stream is being torn down.
        for worker in &mut self.workers {
            worker.tasks = None;
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// The resident worker: drains epoch tasks in submission order against its
/// shard operator until the task channel closes.
fn worker_loop(
    index: usize,
    shard: Arc<Mutex<MswjOperator>>,
    tasks: channel::Receiver<Task>,
    results: channel::Sender<EpochOutput>,
    shared: Arc<PoolShared>,
) {
    let mut exit_guard = PoisonOnExit {
        shared: &shared,
        index,
        armed: true,
    };
    while let Some(mut task) = tasks.recv() {
        let started = Instant::now();
        let panic = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut op = shard.lock().unwrap_or_else(|e| e.into_inner());
            exec::drain_queue(&mut op, &mut task.items, &mut task.sub, &mut task.mat);
        }))
        .err();
        let poisoned = panic.is_some();
        let busy_nanos = started.elapsed().as_nanos() as u64;
        {
            let mut state = shared.lock();
            state[index].completed = task.epoch;
            state[index].poisoned |= poisoned;
            shared.idle.notify_all();
        }
        let output = EpochOutput {
            epoch: task.epoch,
            items: task.items,
            sub: task.sub,
            mat: task.mat,
            busy_nanos,
            routing_epoch: task.routing_epoch,
            panic,
        };
        // A failed send means the engine is gone (mid-stream drop): just
        // exit.  After a panic the shard state is unreliable, so the worker
        // retires either way — the engine re-raises at collection.
        if results.send(output).is_err() || poisoned {
            break;
        }
    }
    // Normal exit path: quiescence bookkeeping is complete, disarm the
    // poison marker (the sender drop below closes the result channel).
    exit_guard.armed = false;
    drop(exit_guard);
}

//! A minimal bounded SPSC channel for the worker pool.
//!
//! `std::sync::mpsc` would mostly do, but the pool's shutdown protocol needs
//! semantics the std channel only gives implicitly: *either* side closing
//! must wake the other immediately (a worker blocked on a full result queue
//! must observe the engine dropping its receiver, or `Drop` would deadlock
//! the join), and a panicking worker must never strand the producer.  A
//! hand-rolled `Mutex` + two-`Condvar` ring keeps those rules explicit and
//! unit-tested here, with no dependency beyond std.
//!
//! The channel is used strictly single-producer/single-consumer (one routing
//! front-end, one worker per shard), though nothing in the implementation
//! depends on that beyond capacity tuning.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

struct State<T> {
    buf: VecDeque<T>,
    cap: usize,
    sender_alive: bool,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when the buffer gains an item or the sender goes away.
    not_empty: Condvar,
    /// Signalled when the buffer loses an item or the receiver goes away.
    not_full: Condvar,
}

impl<T> Shared<T> {
    /// Locks the state, shrugging off poison: the channel's invariants are
    /// all re-checked under the lock, so a panic elsewhere must not cascade
    /// into the shutdown path.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Producer half; dropping it closes the channel for the receiver.
pub(in crate::engine) struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer half; dropping it unblocks and fails all future sends.
pub(in crate::engine) struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel holding at most `cap` in-flight values.
pub(in crate::engine) fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "a zero-capacity channel could never transfer");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(cap),
            cap,
            sender_alive: true,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until there is room, then enqueues `value`.  Returns the value
    /// back as `Err` when the receiver is gone — the caller decides whether
    /// that is shutdown (worker exiting) or a hard error (engine submitting
    /// to a dead worker).
    pub(in crate::engine) fn send(&self, value: T) -> Result<(), T> {
        let mut state = self.shared.lock();
        loop {
            if !state.receiver_alive {
                return Err(value);
            }
            if state.buf.len() < state.cap {
                state.buf.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.shared.lock().sender_alive = false;
        self.shared.not_empty.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives; `None` once the sender is gone *and*
    /// the buffer is drained (every value sent before the close is still
    /// delivered).
    pub(in crate::engine) fn recv(&self) -> Option<T> {
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.buf.pop_front() {
                self.shared.not_full.notify_one();
                return Some(value);
            }
            if !state.sender_alive {
                return None;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.lock().receiver_alive = false;
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn values_arrive_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        tx.send(4).unwrap();
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        assert_eq!(rx.recv(), Some(4));
    }

    #[test]
    fn send_blocks_at_capacity_until_a_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let sender = thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the main thread drains.
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        sender.join().unwrap();
    }

    #[test]
    fn dropping_the_sender_drains_then_closes() {
        let (tx, rx) = bounded(4);
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some("a"));
        assert_eq!(rx.recv(), Some("b"));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None, "closed stays closed");
    }

    #[test]
    fn dropping_the_receiver_fails_sends_even_when_blocked() {
        let (tx, rx) = bounded(1);
        tx.send(1u8).unwrap();
        let sender = thread::spawn(move || tx.send(2));
        // The spawned send blocks on the full buffer; dropping the receiver
        // must wake it with an error rather than leave it parked forever.
        thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(sender.join().unwrap(), Err(2));
    }
}

//! Global window occupancy: the engine's authoritative view of how many
//! tuples are live per stream.
//!
//! A sharded engine cannot read "the window size of stream `j`" off any
//! single shard — each shard holds only its partition (or a broadcast
//! copy).  The cross-join size `n_x(e)` reported per probing tuple, which
//! feeds the Tuple-Productivity Profiler and hence the buffer-size
//! adaptation, must nevertheless equal the unsharded operator's value
//! exactly — otherwise adaptive policies would diverge between backends.
//!
//! This module tracks, per stream, the multiset of live tuple timestamps
//! in a min-heap and replays the operator's exact expiry rule
//! (`ts < probe.ts - W_j`, evaluated lazily at each probing arrival).
//! Because probing timestamps are monotone, lazy draining observes
//! precisely the same counts the unsharded windows would.

use mswj_types::Timestamp;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-stream live-timestamp multisets mirroring the unsharded windows.
#[derive(Debug, Default)]
pub(super) struct Occupancy {
    heaps: Vec<BinaryHeap<Reverse<Timestamp>>>,
}

impl Occupancy {
    /// Tracks `m` streams, all initially empty.
    pub(super) fn new(m: usize) -> Self {
        Occupancy {
            heaps: (0..m).map(|_| BinaryHeap::new()).collect(),
        }
    }

    /// Records one inserted tuple of stream `i` (in-order or late — both
    /// occupy the window until expiry).
    pub(super) fn insert(&mut self, i: usize, ts: Timestamp) {
        self.heaps[i].push(Reverse(ts));
    }

    /// Removes every timestamp of stream `j` strictly below `bound`
    /// (the operator's `expire_before` rule) and returns how many.
    pub(super) fn expire(&mut self, j: usize, bound: Timestamp) -> usize {
        let heap = &mut self.heaps[j];
        let mut expired = 0;
        while let Some(Reverse(front)) = heap.peek() {
            if *front < bound {
                heap.pop();
                expired += 1;
            } else {
                break;
            }
        }
        expired
    }

    /// Number of live tuples of stream `j` (`|S_j[W_j]|` under the lazily
    /// applied expiry bound).
    pub(super) fn len(&self, j: usize) -> usize {
        self.heaps[j].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry_mirrors_the_window_rule() {
        let mut occ = Occupancy::new(2);
        for ts in [100u64, 200, 300, 250] {
            occ.insert(0, Timestamp::from_millis(ts));
        }
        occ.insert(1, Timestamp::from_millis(50));
        assert_eq!(occ.len(0), 4);
        // Bound is exclusive: ts == bound survives.
        assert_eq!(occ.expire(0, Timestamp::from_millis(250)), 2);
        assert_eq!(occ.len(0), 2);
        assert_eq!(occ.len(1), 1);
        // Draining with an older bound is a no-op, like `expire_before`.
        assert_eq!(occ.expire(0, Timestamp::from_millis(100)), 0);
    }

    #[test]
    fn out_of_order_inserts_are_absorbed() {
        let mut occ = Occupancy::new(1);
        occ.insert(0, Timestamp::from_millis(500));
        occ.insert(0, Timestamp::from_millis(100)); // late arrival
        assert_eq!(occ.expire(0, Timestamp::from_millis(200)), 1);
        assert_eq!(occ.len(0), 1);
    }
}

//! The key-partitioned join engine: sharded windows behind the sequential
//! disorder-handling front-end.
//!
//! The paper's pipeline (Fig. 2) is inherently sequential *per stream* on
//! its control path — K-slack buffering, synchronization, statistics and
//! the PD/model-based adaptation of K are global decisions.  The expensive
//! stage is not: window insertion and the m-way probe only ever combine
//! tuples that agree on the equi-join key, so the join state can be
//! hash-partitioned by key across `n` independent **shards**, each owning a
//! full [`MswjOperator`] (windows + hash indexes) over its key slice.
//!
//! ```text
//!                         ┌──────────────── JoinEngine ────────────────┐
//!  front-end (sequential) │  route by key   ┌─ shard 0: MswjOperator ─┐│
//!  K-slack → Synchronizer ┼────────────────►├─ shard 1: MswjOperator ─┤├─► merged
//!  onT / expiry / n_x(e)  │  (broadcast for ├─ …                      ─┤│   events
//!  decided **globally**   │   star sats)    └─ shard n-1 ─────────────┘│
//!                         └────────────────────────────────────────────┘
//! ```
//!
//! ## Division of labour
//!
//! The engine front (this module) makes every decision that requires the
//! global picture, exactly as the unsharded operator would: the in-order /
//! out-of-order classification against the **global** high-water mark
//! `onT`, the out-of-order scope check, and the per-probe expiry counts and
//! cross-join sizes `n_x(e)` (via a global occupancy tracker, so adaptive
//! policies see identical statistics on every backend).  Shards only maintain
//! their windows and answer probes; a shard's own `onT` may lag the global
//! one, which is why late tuples reach it through
//! [`MswjOperator::insert_late`] instead of `push_with`.
//!
//! ## Executors
//!
//! Four backends share the routing front and the shard operators:
//!
//! * [`ExecutionBackend::Sequential`] — one shard on the calling thread,
//!   byte-identical to the pre-engine pipeline.
//! * [`ExecutionBackend::Threads`]`(n)` — `n` scoped workers spawned per
//!   batch (`std::thread::scope`); simple, but the spawn cost and the
//!   per-batch barrier only pay off at large batches.
//! * [`ExecutionBackend::Pool`] — `n` **resident** workers spawned once at
//!   construction (the `pool` submodule), fed through bounded per-shard
//!   queues of epoch-tagged tasks.  Batches are *pipelined*: [`JoinEngine::flush`]
//!   submits an epoch and returns while the workers crunch, so the caller
//!   (the sequential front-end) routes batch *t + 1* while the shards
//!   execute batch *t*.  The deferred epoch is collected — and its events
//!   delivered — at the next `flush` or [`JoinEngine::sync`]; the pipeline
//!   places a `sync` barrier at checkpoints, buffer-size changes and
//!   end-of-stream, which keeps the adaptation statistics byte-identical to
//!   `Sequential`.
//! * [`ExecutionBackend::Remote`] — one shard *server* per endpoint, each
//!   reached through the versioned wire protocol (the [`transport`]
//!   submodule): an in-process server thread, or an external `mswj-shardd`
//!   process over a Unix-domain or TCP socket.  Reuses the pool's depth-1
//!   epoch/barrier pipeline, so every determinism guarantee carries over
//!   unchanged; failures surface as typed [`EngineError`] panics, never as
//!   hangs.
//!
//! The `Threads` and `Pool` backends fall back to the inline executor for
//! batches below [`JoinEngine::SMALL_BATCH_THRESHOLD`] routed items, so
//! single-event ingestion never pays a spawn or an enqueue round-trip.
//! (`Remote` has no inline path — the operators live behind the
//! transport.)
//!
//! Picking a backend and reading the per-shard counters:
//!
//! ```
//! use mswj_core::{EngineEvent, ExecutionBackend, JoinEngine};
//! use mswj_join::{CommonKeyEquiJoin, JoinQuery, ProbeStrategy};
//! use mswj_types::{FieldType, Schema, StreamSet, Timestamp, Tuple, Value};
//! use std::sync::Arc;
//!
//! let streams =
//!     StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), 1_000).unwrap();
//! let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
//! let query = JoinQuery::new("doc", streams, cond).unwrap();
//!
//! // Threads(4): four shards, scoped workers per batch — best for large,
//! // bursty batches.  Pool { workers: 4 } keeps resident workers and
//! // pipelines batches instead; Sequential is the single-shard reference.
//! let backend = ExecutionBackend::Threads(4);
//! let mut engine = JoinEngine::new(query, ProbeStrategy::Auto, false, backend);
//! assert_eq!(engine.shard_count(), 4);
//!
//! let mut matches = 0u64;
//! engine.push_batch(
//!     (0..100u64).map(|i| {
//!         let (stream, key) = ((i % 2) as usize, (i / 2 % 8) as i64);
//!         Tuple::new(stream.into(), i, Timestamp::from_millis(i * 10), vec![Value::Int(key)])
//!     }),
//!     &mut |ev| {
//!         if let EngineEvent::Done(outcome) = ev {
//!             matches += outcome.n_join;
//!         }
//!     },
//! );
//! engine.sync(&mut |_| {});
//! assert!(matches > 0);
//!
//! // ShardRuntimeStats: routing volume and queue pressure per shard — the
//! // raw signal behind skew detection.
//! for s in 0..engine.shard_count() {
//!     let rt = engine.runtime_stats(s);
//!     assert!(rt.routed > 0, "8 keys spread over 4 shards");
//!     assert!(rt.max_queue_depth as u64 <= rt.routed);
//! }
//! assert_eq!(engine.heavy_hitter(), None, "this workload is balanced");
//! ```
//!
//! ## Determinism
//!
//! Events are emitted in staging order; a broadcast tuple's results are
//! merged in shard order.  The [`ExecutionBackend::Sequential`] backend is
//! byte-identical to the pre-engine pipeline; `Threads(n)`,
//! `Pool { workers: n }` and `Remote` produce the same result multiset
//! (and, because `n_x(e)` is computed globally, the same adaptation
//! trajectory) for any `n` — pinned by `tests/differential_backends.rs`.
//!
//! ## Skew: detection and hot-key splitting
//!
//! Hash routing pins each key class to one shard, so a hot key turns "n
//! shards" into one.  Two mechanisms respond, both driven by the windowed
//! per-shard routing counters (see [`JoinEngine::heavy_hitter`] and the
//! [`skew`] module):
//!
//! * **Detection** is always on: when one shard takes the majority of an
//!   evaluation window's routed items, a warning is logged (re-armed once
//!   the imbalance clears, so late-emerging hot keys are reported too).
//! * **Splitting** is opt-in ([`JoinEngine::with_skew`], or
//!   `SessionBuilder::skew_splitting` through the pipeline): a detected hot
//!   key class switches to *replicated build / split probe* routing — its
//!   inserts fan out to every shard's build state, each of its probes runs
//!   on one shard round-robin, and the deterministic shard-order merge
//!   keeps output byte-identical to the single-shard path.  Transitions
//!   only happen at epoch barriers (no work in flight), the live build
//!   state of the class is migrated/purged at the same barrier, and every
//!   transition is recorded in [`JoinEngine::skew_transitions`].
//!
//! See `docs/ARCHITECTURE.md` for the full contract.
//!
//! ## Fallback
//!
//! Conditions without a partitionable equi structure (cross joins, band
//! joins, UDFs, or an explicitly forced nested-loop probe) degrade to one
//! broadcast shard: same semantics, no parallelism.

mod exec;
mod occupancy;
mod pool;
pub mod replan;
pub mod skew;
pub mod transport;

use mswj_join::{
    join_key_hash, JoinQuery, JoinResult, MswjOperator, OperatorStats, Partitioner, ProbeOutcome,
    ProbePlan, ProbeStrategy, Route, RoutingTable,
};
use mswj_obs::{EventKind, ShardInstruments, Telemetry, TelemetryEvent};
use mswj_types::{Error, StreamIndex, Timestamp, Tuple};
use occupancy::Occupancy;
use pool::{Epoch, ShardPool, Task};
use replan::{reorder_candidate, reorder_is_decisive, ReplanState, StreamTally};
pub use replan::{PlanAction, PlanTransition, ReplanConfig};
use skew::SkewDetector;
pub use skew::{SkewConfig, SkewTransition};
use std::collections::VecDeque;
use transport::RemoteShards;
pub use transport::{Endpoint, EngineError};

/// How the sharded join stage executes a routed batch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ExecutionBackend {
    /// One shard on the calling thread — byte-identical to the pre-engine
    /// pipeline, and the default.
    #[default]
    Sequential,
    /// `n` shards executed by `n` scoped worker threads per batch
    /// (`std::thread::scope`), outputs merged in deterministic shard order.
    /// `Threads(1)` exercises the sharded machinery on a single shard and
    /// is equivalent to `Sequential`.
    Threads(usize),
    /// `workers` shards executed by `workers` **resident** worker threads
    /// spawned once at construction and fed through bounded per-shard work
    /// queues, with batches pipelined against front-end routing.  Same
    /// output as `Sequential` for any worker count; preferable to
    /// [`ExecutionBackend::Threads`] whenever batches are small or arrive
    /// continuously.
    Pool {
        /// Number of resident shard workers (and shards).
        workers: usize,
    },
    /// One shard per endpoint, each a shard *server* reached through the
    /// versioned wire protocol (`mswj-wire`): an in-process server thread
    /// per [`Endpoint::InProc`] entry, an external `mswj-shardd` process per
    /// socket endpoint.  Reuses the pool's depth-1 epoch/barrier pipeline,
    /// so output stays byte-identical to [`ExecutionBackend::Sequential`];
    /// requires a wire-expressible join condition (no closure predicates).
    /// Construct through [`JoinEngine::try_new`] / `SessionBuilder` to get
    /// connection errors as `Result`s.
    Remote {
        /// Where each shard server lives; one shard per entry.
        endpoints: Vec<Endpoint>,
    },
}

impl ExecutionBackend {
    /// One in-process remote shard server per shard: every epoch
    /// round-trips through the full wire codec without opening a socket.
    /// The cheapest way to exercise [`ExecutionBackend::Remote`].
    pub fn remote_inproc(shards: usize) -> Self {
        ExecutionBackend::Remote {
            endpoints: vec![Endpoint::InProc; shards.max(1)],
        }
    }

    /// The number of shards this backend asks for (before the plan-driven
    /// fallback to one broadcast shard).
    pub fn requested_shards(&self) -> usize {
        match self {
            ExecutionBackend::Sequential => 1,
            ExecutionBackend::Threads(n) => (*n).max(1),
            ExecutionBackend::Pool { workers } => (*workers).max(1),
            ExecutionBackend::Remote { endpoints } => endpoints.len().max(1),
        }
    }
}

impl std::fmt::Display for ExecutionBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionBackend::Sequential => write!(f, "sequential"),
            ExecutionBackend::Threads(n) => write!(f, "threads({n})"),
            ExecutionBackend::Pool { workers } => write!(f, "pool({workers})"),
            ExecutionBackend::Remote { endpoints } => write!(f, "remote({})", endpoints.len()),
        }
    }
}

/// One event of the engine's output stream, delivered to the callback
/// passed to [`JoinEngine::flush`].
#[derive(Debug)]
pub enum EngineEvent<'a> {
    /// One materialized join result of the tuple currently finishing
    /// (enumerating engines only).
    Result(&'a JoinResult),
    /// A staged tuple finished processing: all of its results (if any) have
    /// been emitted, and this is its sequential-equivalent outcome.
    Done(ProbeOutcome),
}

/// One queued unit of shard work.
struct Item {
    /// Index of the staged tuple this item belongs to (its position in the
    /// current batch).
    seq: u32,
    /// `true` → in-order: expire, probe, insert (`push_with`);
    /// `false` → globally late: absorb without probing (`insert_late`).
    probe: bool,
    /// The tuple itself (a cheap clone per extra shard for broadcasts).
    tuple: Tuple,
}

/// Where a staged tuple's work was queued.
#[derive(Debug, Clone, Copy)]
enum Placement {
    /// Dropped by the global scope check: no shard work at all.
    None,
    /// Owned by one shard.
    One(u32),
    /// Broadcast to every shard.
    All,
}

/// The globally decided part of one staged tuple's outcome.
#[derive(Debug, Clone, Copy)]
struct Decision {
    /// The tuple's stream — keyed per-stream probe/match tallies at the
    /// sequential-equivalent merge point.
    stream: usize,
    in_order: bool,
    inserted: bool,
    n_cross: u64,
    expired: usize,
    placement: Placement,
}

/// A shard's contribution to one probing tuple's outcome.
#[derive(Debug, Clone, Copy)]
struct SubOutcome {
    seq: u32,
    n_join: u64,
    indexed: bool,
}

/// Executor runtime counters for one shard, beyond the shard operator's own
/// [`OperatorStats`] — the first visibility layer for key skew and queue
/// pressure.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardRuntimeStats {
    /// Work items routed to this shard over the engine's lifetime
    /// (broadcast tuples count once per shard).
    pub routed: u64,
    /// High-water mark of the shard's work queue: the most items ever
    /// staged for this shard before an executor drained them.
    pub max_queue_depth: usize,
    /// Epochs (routed batches) handed to this shard's worker — resident
    /// pool tasks or scoped `Threads` batches.  Inline execution (the
    /// `Sequential` backend and sub-threshold fallbacks) enqueues nothing.
    pub epochs_enqueued: u64,
    /// Epochs the shard's worker finished executing.
    pub epochs_executed: u64,
    /// Wall-clock nanoseconds the shard's worker spent executing epochs —
    /// worker busy time, not caller-thread time.
    pub busy_nanos: u64,
    /// Frames sent to this shard's server (`Remote` backend; zero
    /// otherwise).
    pub frames_sent: u64,
    /// Frames received from this shard's server (`Remote` backend).
    pub frames_received: u64,
    /// Encoded bytes sent to this shard's server, headers included
    /// (`Remote` backend).
    pub bytes_sent: u64,
    /// Encoded bytes received from this shard's server, headers included
    /// (`Remote` backend).
    pub bytes_received: u64,
    /// Cumulative submit→collect wall time across this shard's epochs
    /// (`Remote` backend): transport round-trip plus remote execution.
    pub epoch_rtt_nanos: u64,
    /// Connection attempts beyond the first while establishing the link
    /// (`Remote` backend).
    pub reconnects: u64,
    /// Plan revisions (pair switches, probe reorders, index demotions) the
    /// runtime re-planner applied to this shard's operator.
    pub plan_revisions: u64,
    /// Tuples adopted into this shard's windows by pair-switch state
    /// migration.
    pub migrated_tuples: u64,
    /// Estimated live heap bytes of this shard's window state (segment
    /// arenas, payload vectors and string bytes), sampled when the stats
    /// were taken.  On the `Remote` backend the figure is reported by the
    /// server process over the barrier reply, so local and remote shards
    /// agree.
    pub window_bytes: u64,
    /// Columnar storage segments held across this shard's windows, sampled
    /// when the stats were taken (remote shards report theirs over the
    /// barrier reply, like `window_bytes`).
    pub window_segments: u64,
}

/// One shard's complete statistics: the shard operator's lifetime counters
/// plus the executor's runtime counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard operator's own counters — probes, inserts, expirations and
    /// results that this shard performed.
    pub operator: OperatorStats,
    /// Executor runtime counters: routing volume, queue depth, epoch counts
    /// and worker busy time.
    pub runtime: ShardRuntimeStats,
}

/// Read access to one shard operator, independent of where the backend
/// keeps it: borrowed directly from the engine (`Sequential`/`Threads`) or
/// locked out of a resident pool worker's cell (`Pool`, waiting for the
/// shard's submitted epochs to finish first).
pub struct ShardGuard<'a>(GuardInner<'a>);

enum GuardInner<'a> {
    Direct(&'a MswjOperator),
    Locked(std::sync::MutexGuard<'a, MswjOperator>),
}

impl std::ops::Deref for ShardGuard<'_> {
    type Target = MswjOperator;

    fn deref(&self) -> &MswjOperator {
        match &self.0 {
            GuardInner::Direct(op) => op,
            GuardInner::Locked(guard) => guard,
        }
    }
}

impl std::fmt::Debug for ShardGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// One submitted-but-uncollected epoch of the resident pool.
struct PendingEpoch {
    epoch: Epoch,
    /// The epoch's routing decisions, in staging order (consumed by the
    /// deterministic merge at collection).
    decisions: Vec<Decision>,
    /// Which shards received a task for this epoch.
    mask: Vec<bool>,
    /// The [`RoutingTable`] epoch the items were routed under.  Routing
    /// transitions only happen at barriers, so this must still be the
    /// table's epoch when the tasks come back — asserted at collection.
    routing_epoch: u64,
}

/// The sharded join stage: routing front plus `n` shard operators.
pub struct JoinEngine {
    /// Engine-owned shard operators (`Sequential`/`Threads`); empty when
    /// the resident pool owns them instead.
    shards: Vec<MswjOperator>,
    /// The resident executor (`Pool` backend only).
    pool: Option<ShardPool>,
    /// The transport links to remote shard servers (`Remote` backend only).
    remote: Option<RemoteShards>,
    partitioner: Partitioner,
    backend: ExecutionBackend,
    query: JoinQuery,
    plan: ProbePlan,
    enumerate: bool,
    on_t: Timestamp,
    started: bool,
    occupancy: Occupancy,
    stats: OperatorStats,
    runtime: Vec<ShardRuntimeStats>,
    /// Which key classes are currently replicated-build / split-probe.
    table: RoutingTable,
    /// The windowed hot-key detector; `None` unless splitting was opted
    /// into *and* the plan supports it (every stream key-routed).
    detector: Option<SkewDetector>,
    /// Every split/unsplit transition taken, in decision order.
    transitions: Vec<SkewTransition>,
    /// The runtime re-planner; `None` unless re-planning was opted into.
    replan: Option<ReplanState>,
    /// Engine-global per-stream probe/match tallies — the observed match
    /// rates behind probe reordering.  Maintained unconditionally (a few
    /// adds per finished tuple) so arming re-planning never changes what
    /// the engine observes.
    tally: Vec<StreamTally>,
    /// The satellite stream currently key-routed with the star anchor
    /// (`None` for non-star plans).
    star_partner: Option<usize>,
    /// Every plan revision taken, in decision order.
    plan_transitions: Vec<PlanTransition>,
    /// Round-robin cursor choosing the probe shard of split-routed tuples.
    split_rr: u64,
    /// Per-shard `routed` snapshot at the last skew-evaluation window
    /// reset: `routed - hh_base` is the windowed routing volume.
    hh_base: Vec<u64>,
    /// The shard last warned about as a heavy hitter; cleared (re-armed)
    /// when an evaluation window comes back balanced.
    hh_warned: Option<usize>,
    /// Staged tuples awaiting the next [`JoinEngine::flush`].
    pending: Vec<Tuple>,
    /// Reusable routing / execution buffers (capacity persists across
    /// batches, so a steady-state flush allocates nothing on the
    /// sequential and sub-threshold inline paths).
    decisions: Vec<Decision>,
    queues: Vec<VecDeque<Item>>,
    sub: Vec<Vec<SubOutcome>>,
    mat: Vec<Vec<(u32, JoinResult)>>,
    /// The deferred epoch of the pipelined `Pool` path, if any.
    outstanding: Option<PendingEpoch>,
    next_epoch: u64,
    /// Recycled buffers for the depth-1 epoch pipeline.
    spare_decisions: Vec<Decision>,
    spare_mask: Vec<bool>,
    spare_items: Vec<VecDeque<Item>>,
    /// The attached telemetry registry, if any.  Strictly observe-only:
    /// nothing the engine reads from it feeds back into routing, merging
    /// or plan decisions, so an attached handle cannot change a produced
    /// byte.  Instruments are only touched at idle barriers (events,
    /// gauge publication) — never inside the per-tuple execution path.
    telemetry: Option<Telemetry>,
    /// Pre-registered per-shard instrument scopes (one per shard, resolved
    /// once at attach time so publication does no registry locking).
    shard_scopes: Vec<std::sync::Arc<ShardInstruments>>,
    /// Wall-clock instant of the previous gauge publication, the baseline
    /// for the per-shard busy-share gauges.
    last_publish: Option<std::time::Instant>,
    /// Per-shard `busy_nanos` at the previous publication.
    last_busy: Vec<u64>,
}

impl std::fmt::Debug for JoinEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinEngine")
            .field("backend", &self.backend)
            .field("shards", &self.shard_count())
            .field("plan", &self.plan.describe())
            .field("on_t", &self.on_t)
            .field("outstanding", &self.outstanding.is_some())
            .field("stats", &self.stats)
            .finish()
    }
}

impl JoinEngine {
    /// Routed-item count below which the parallel backends execute a batch
    /// inline on the calling thread: spawning (`Threads`) or enqueueing
    /// (`Pool`) costs more than it buys on tiny batches, and the inline
    /// path is allocation-free in steady state.
    pub const SMALL_BATCH_THRESHOLD: usize = 32;

    /// Minimum routed-item count in a detection window before skew
    /// detection speaks up; thinner windows carry forward.
    const SKEW_MIN_ROUTED: u64 = 1_024;

    /// Builds the engine for a query: plans the probe path, derives the
    /// partitioning rules and instantiates one [`MswjOperator`] per shard.
    /// The `Pool` backend also spawns its resident workers here — they live
    /// until the engine is dropped.
    ///
    /// Unpartitionable plans (nested-loop probes) always get exactly one
    /// shard, whatever the backend requests.
    pub fn new(
        query: JoinQuery,
        strategy: ProbeStrategy,
        enumerate: bool,
        backend: ExecutionBackend,
    ) -> Self {
        Self::with_skew(query, strategy, enumerate, backend, None)
    }

    /// Fallible form of [`JoinEngine::new`] — the only way remote-backend
    /// connection and validation failures surface as `Result`s rather than
    /// panics.  Infallible for the local backends.
    pub fn try_new(
        query: JoinQuery,
        strategy: ProbeStrategy,
        enumerate: bool,
        backend: ExecutionBackend,
    ) -> Result<Self, Error> {
        Self::try_with_skew(query, strategy, enumerate, backend, None)
    }

    /// Like [`JoinEngine::new`], with adaptive hot-key splitting armed when
    /// `skew` is `Some`: key classes crossing
    /// [`SkewConfig::split_share`] of a detection window switch to
    /// replicated-build / split-probe routing (and revert below
    /// [`SkewConfig::unsplit_share`]).  Detection windows are evaluated at
    /// [`JoinEngine::sync`] barriers only, so routing never changes while
    /// work is in flight and every backend takes identical decisions.
    ///
    /// The knob is ignored (no detector is armed) when the plan cannot
    /// split soundly — broadcast streams or a single shard; see
    /// [`Partitioner::supports_splitting`].
    pub fn with_skew(
        query: JoinQuery,
        strategy: ProbeStrategy,
        enumerate: bool,
        backend: ExecutionBackend,
        skew: Option<SkewConfig>,
    ) -> Self {
        Self::try_with_skew(query, strategy, enumerate, backend, skew)
            .expect("remote backend setup failed (use try_with_skew for a Result)")
    }

    /// Fallible form of [`JoinEngine::with_skew`].  The `Remote` backend
    /// validates its endpoint list, requires a wire-expressible join
    /// condition, and connects + handshakes with every shard server here —
    /// each failure comes back as [`Error::InvalidConfig`].  The local
    /// backends never fail.
    pub fn try_with_skew(
        query: JoinQuery,
        strategy: ProbeStrategy,
        enumerate: bool,
        backend: ExecutionBackend,
        skew: Option<SkewConfig>,
    ) -> Result<Self, Error> {
        Self::try_with_policies(query, strategy, enumerate, backend, skew, None)
    }

    /// Like [`JoinEngine::try_with_skew`], additionally arming runtime
    /// probe re-planning when `replan` is `Some`: at the same idle barriers
    /// the skew layer uses, the engine may re-select the star partition
    /// pair to the lowest observed-cardinality satellite (migrating window
    /// state), reorder the m-way probe chain by observed match rates, or
    /// demote the hash index to the nested-loop scan when the fallback
    /// share shows maintenance stopped paying.  Every revision lands in
    /// [`JoinEngine::plan_transitions`]; all decisions come from
    /// engine-global statistics, so they are identical on every backend.
    pub fn try_with_policies(
        query: JoinQuery,
        strategy: ProbeStrategy,
        enumerate: bool,
        backend: ExecutionBackend,
        skew: Option<SkewConfig>,
        replan: Option<ReplanConfig>,
    ) -> Result<Self, Error> {
        let equi = query.condition().equi_structure();
        let plan = ProbePlan::new(strategy, equi.as_ref());
        let partitioner = Partitioner::new(&plan, backend.requested_shards());
        let n = partitioner.shard_count();
        let (shards, pool, remote) = match &backend {
            ExecutionBackend::Pool { .. } => {
                let operators = (0..n)
                    .map(|_| MswjOperator::with_probe(query.clone(), strategy, enumerate))
                    .collect();
                (Vec::new(), Some(ShardPool::new(operators)), None)
            }
            ExecutionBackend::Remote { endpoints } => {
                if endpoints.is_empty() {
                    return Err(Error::InvalidConfig(
                        "the remote backend needs at least one endpoint".into(),
                    ));
                }
                let descriptor = query.condition().descriptor().ok_or_else(|| {
                    Error::InvalidConfig(format!(
                        "join condition `{}` cannot cross a process boundary \
                         (closure predicates have no wire form); use a declarative \
                         condition or a local backend",
                        query.condition().describe()
                    ))
                })?;
                // Unpartitionable plans collapse to one shard; connect only
                // to the endpoints that will actually carry work.
                let links = RemoteShards::connect(
                    &endpoints[..n.min(endpoints.len())],
                    &query,
                    &descriptor,
                    strategy,
                    enumerate,
                )?;
                (Vec::new(), None, Some(links))
            }
            _ => {
                let operators = (0..n)
                    .map(|_| MswjOperator::with_probe(query.clone(), strategy, enumerate))
                    .collect();
                (operators, None, None)
            }
        };
        let detector = skew
            .filter(|_| partitioner.supports_splitting())
            .map(SkewDetector::new);
        let m = query.arity();
        let replan = replan.map(|config| ReplanState::new(config, m));
        let star_partner = Partitioner::default_star_partner(&plan);
        Ok(JoinEngine {
            shards,
            pool,
            remote,
            partitioner,
            backend,
            plan,
            enumerate,
            on_t: Timestamp::ZERO,
            started: false,
            occupancy: Occupancy::new(m),
            stats: OperatorStats::default(),
            runtime: vec![ShardRuntimeStats::default(); n],
            table: RoutingTable::new(),
            detector,
            transitions: Vec::new(),
            replan,
            tally: vec![StreamTally::default(); m],
            star_partner,
            plan_transitions: Vec::new(),
            split_rr: 0,
            hh_base: vec![0; n],
            hh_warned: None,
            pending: Vec::new(),
            decisions: Vec::new(),
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            sub: (0..n).map(|_| Vec::new()).collect(),
            mat: (0..n).map(|_| Vec::new()).collect(),
            outstanding: None,
            next_epoch: 1,
            spare_decisions: Vec::new(),
            spare_mask: Vec::new(),
            spare_items: (0..n).map(|_| VecDeque::new()).collect(),
            telemetry: None,
            shard_scopes: Vec::new(),
            last_publish: None,
            last_busy: vec![0; n],
            query,
        })
    }

    /// Attaches a telemetry registry, pre-registering one instrument scope
    /// per shard.  Observe-only: the engine publishes runtime gauges into
    /// it at barriers and routes structured events (heavy-hitter warnings,
    /// skew and plan transitions) through its bounded ring instead of
    /// stderr.  Attaching telemetry never changes a produced byte.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.shard_scopes = (0..self.shard_count())
            .map(|s| telemetry.shard(s))
            .collect();
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Emits a structured event into the attached telemetry ring (no-op
    /// without one).  Runs at barriers only — it may lock and allocate.
    fn telemetry_event(&self, kind: EventKind, message: String) {
        if let Some(t) = &self.telemetry {
            t.emit(TelemetryEvent {
                at_ms: self.on_t.as_millis(),
                kind,
                message,
            });
        }
    }

    /// Publishes the per-shard runtime gauges (queue depth, busy share,
    /// window bytes/segments, transport counters) into the attached
    /// telemetry registry; a no-op without one.  Must be called with the
    /// engine idle (the pipeline does so right after its checkpoint
    /// barrier); on the `Remote` backend this runs one extra barrier
    /// round-trip per shard to sample the server-side window footprint.
    pub fn publish_telemetry(&mut self) {
        if self.telemetry.is_none() {
            return;
        }
        let stats = self.shard_stats();
        let now = std::time::Instant::now();
        let wall = self
            .last_publish
            .map(|at| now.duration_since(at).as_nanos() as u64);
        for (s, stat) in stats.iter().enumerate() {
            let Some(scope) = self.shard_scopes.get(s) else {
                continue;
            };
            let rt = &stat.runtime;
            scope.queue_depth.set(rt.max_queue_depth as f64);
            scope.window_bytes.set(rt.window_bytes as f64);
            scope.window_segments.set(rt.window_segments as f64);
            scope.routed.set(rt.routed as f64);
            scope.epochs_executed.set(rt.epochs_executed as f64);
            scope.frames_sent.set(rt.frames_sent as f64);
            scope.frames_received.set(rt.frames_received as f64);
            scope.bytes_sent.set(rt.bytes_sent as f64);
            scope.bytes_received.set(rt.bytes_received as f64);
            scope.rtt_nanos.set(rt.epoch_rtt_nanos as f64);
            let prev_busy = self.last_busy.get(s).copied().unwrap_or(0);
            let share = match wall {
                Some(wall) if wall > 0 => {
                    ((rt.busy_nanos.saturating_sub(prev_busy)) as f64 / wall as f64).min(1.0)
                }
                _ => 0.0,
            };
            scope.busy_share.set(share);
            if let Some(slot) = self.last_busy.get_mut(s) {
                *slot = rt.busy_nanos;
            }
        }
        self.last_publish = Some(now);
    }

    /// The backend this engine executes with.
    pub fn backend(&self) -> &ExecutionBackend {
        &self.backend
    }

    /// Number of shards actually instantiated (1 for unpartitionable
    /// plans, the backend's request otherwise).
    pub fn shard_count(&self) -> usize {
        if self.remote.is_some() {
            return self.runtime.len();
        }
        match &self.pool {
            Some(pool) => pool.shard_count(),
            None => self.shards.len(),
        }
    }

    /// The shard operator at `s` — windows, hash indexes and per-shard
    /// counters are all inspectable through it.  On the `Pool` backend this
    /// waits for the shard's submitted epochs to finish executing; call
    /// [`JoinEngine::sync`] first when you also need their *events*
    /// delivered.
    pub fn shard(&self, s: usize) -> ShardGuard<'_> {
        assert!(
            self.remote.is_none(),
            "shard operators live in another process on the remote backend; \
             use shard_stats() for their counters"
        );
        match &self.pool {
            Some(pool) => ShardGuard(GuardInner::Locked(pool.lock_shard(s))),
            None => ShardGuard(GuardInner::Direct(&self.shards[s])),
        }
    }

    /// Per-shard lifetime statistics: each shard operator's own
    /// [`OperatorStats`] (the probes, inserts and expirations that shard
    /// performed) paired with the executor's [`ShardRuntimeStats`] (routing
    /// volume, queue depth, epoch counts, worker busy time).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        (0..self.shard_count())
            .map(|s| {
                let (operator, window_bytes, window_segments) = match &self.remote {
                    // Remote window state lives in the server process; the
                    // barrier reply carries its footprint back to us.
                    Some(remote) => remote.barrier_stats(s),
                    None => {
                        let shard = self.shard(s);
                        (shard.stats(), shard.window_bytes(), shard.window_segments())
                    }
                };
                let mut runtime = self.runtime_stats(s);
                runtime.window_bytes = window_bytes;
                runtime.window_segments = window_segments;
                ShardStats { operator, runtime }
            })
            .collect()
    }

    /// The executor runtime counters of shard `s`, including the transport
    /// counters on the `Remote` backend.
    pub fn runtime_stats(&self, s: usize) -> ShardRuntimeStats {
        let mut rt = self.runtime[s];
        if let Some(remote) = &self.remote {
            remote.fold_runtime(s, &mut rt);
        }
        rt
    }

    /// Aggregate counters, kept **sequential-equivalent**: ordering, drop
    /// and expiry counts come from the engine's global decisions, result
    /// counts from the shards.  (Per-shard `indexed`/`fallback` tallies can
    /// legitimately differ from an unsharded run — an unindexable value
    /// only poisons the shard it lives in.)
    pub fn stats(&self) -> OperatorStats {
        self.stats
    }

    /// The routing rules in force.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// The probe access path shared by every shard.
    pub fn probe_plan(&self) -> &ProbePlan {
        &self.plan
    }

    /// The global high-water timestamp `onT` — the watermark of the merged
    /// result stream.
    pub fn on_t(&self) -> Timestamp {
        self.on_t
    }

    /// Whether the engine materializes results.
    pub fn is_enumerating(&self) -> bool {
        self.enumerate
    }

    /// The shard holding the majority of the routed events in the current
    /// *detection window*, if any — `Some(s)` once shard `s` has received
    /// more than half of the (at least 1 024, or the configured
    /// [`SkewConfig::min_routed`]) items routed since the last
    /// [`JoinEngine::sync`] barrier that closed a window.
    ///
    /// Windowed, not lifetime: a hot key that emerges after a long balanced
    /// phase still trips this, because earlier balanced traffic was retired
    /// with its window.  A warning is logged when a window closes on a
    /// heavy hitter and re-arms once a window comes back balanced, so a
    /// *new* hot shard is reported even late in a run.
    pub fn heavy_hitter(&self) -> Option<usize> {
        if self.shard_count() <= 1 {
            return None;
        }
        let windowed = |s: usize| self.runtime[s].routed - self.hh_base[s];
        let total: u64 = (0..self.runtime.len()).map(windowed).sum();
        if total < self.skew_min_routed() {
            return None;
        }
        let (s, max) = (0..self.runtime.len())
            .map(|s| (s, windowed(s)))
            .max_by_key(|&(_, routed)| routed)?;
        (max * 2 > total).then_some(s)
    }

    /// The evidence floor of the skew-detection window: the configured
    /// [`SkewConfig::min_routed`] when splitting is armed, the built-in
    /// default otherwise.
    fn skew_min_routed(&self) -> u64 {
        self.detector
            .as_ref()
            .map(|d| d.config().min_routed)
            .unwrap_or(Self::SKEW_MIN_ROUTED)
    }

    /// Whether adaptive hot-key splitting is armed on this engine (opted
    /// in *and* supported by the plan).
    pub fn skew_splitting_enabled(&self) -> bool {
        self.detector.is_some()
    }

    /// The key classes (by [`join_key_hash`]) currently routed as
    /// replicated-build / split-probe, sorted ascending.
    pub fn split_classes(&self) -> &[u64] {
        self.table.split_classes()
    }

    /// Every split/unsplit transition the skew detector has taken, in
    /// decision order.
    pub fn skew_transitions(&self) -> &[SkewTransition] {
        &self.transitions
    }

    /// Whether runtime probe re-planning is armed on this engine.
    pub fn replanning_enabled(&self) -> bool {
        self.replan.is_some()
    }

    /// The satellite stream currently key-routed with the star anchor —
    /// the planner's blind default until a pair switch re-selects it.
    /// `None` for non-star plans.
    pub fn star_partner(&self) -> Option<usize> {
        self.star_partner
    }

    /// Every plan revision the runtime re-planner has taken, in decision
    /// order.
    pub fn plan_transitions(&self) -> &[PlanTransition] {
        &self.plan_transitions
    }

    /// The routing-table version: bumped by every hot-key split/unsplit
    /// and by every partition-pair switch.
    pub fn routing_epoch(&self) -> u64 {
        self.table.epoch()
    }

    /// Stages one synchronized tuple for the next [`JoinEngine::flush`].
    pub fn stage(&mut self, tuple: Tuple) {
        self.pending.push(tuple);
    }

    /// Whether any staged tuples await execution.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Whether a pipelined epoch has been submitted to the resident pool
    /// and not yet collected ([`JoinEngine::sync`] drains it).
    pub fn has_outstanding(&self) -> bool {
        self.outstanding.is_some()
    }

    /// Stages a whole batch and flushes it — the amortized entry point for
    /// callers that do not need the pipeline front-end.  On the `Pool`
    /// backend the batch may execute asynchronously; finish with
    /// [`JoinEngine::sync`] to observe its events.
    pub fn push_batch<I>(&mut self, tuples: I, f: &mut dyn FnMut(EngineEvent<'_>))
    where
        I: IntoIterator<Item = Tuple>,
    {
        for t in tuples {
            self.stage(t);
        }
        self.flush(f);
    }

    /// Routes and executes every staged tuple, delivering the event stream
    /// to `f`: zero or more [`EngineEvent::Result`]s per tuple (enumerating
    /// engines), then exactly one [`EngineEvent::Done`] per staged tuple,
    /// in staging order.
    ///
    /// On the `Pool` backend, batches of at least
    /// [`Self::SMALL_BATCH_THRESHOLD`] routed items are *pipelined*: the
    /// call submits the batch as an epoch and returns while the resident
    /// workers execute it; the epoch's events are delivered at the next
    /// `flush` or [`JoinEngine::sync`], before any newer batch's events.
    /// Other backends (and sub-threshold batches) deliver everything before
    /// returning.
    pub fn flush(&mut self, f: &mut dyn FnMut(EngineEvent<'_>)) {
        self.flush_impl(f, false);
    }

    /// The barrier flavour of [`JoinEngine::flush`]: additionally collects
    /// any deferred epoch, so every staged tuple's events have been
    /// delivered — and every shard is idle — when this returns.
    pub fn sync(&mut self, f: &mut dyn FnMut(EngineEvent<'_>)) {
        self.flush_impl(f, true);
    }

    fn flush_impl(&mut self, f: &mut dyn FnMut(EngineEvent<'_>), barrier: bool) {
        self.execute_pending(f, barrier);
        if barrier {
            // Every shard is idle after a barrier flush: the only point
            // where routing may change and state may migrate.
            self.evaluate_skew();
            self.evaluate_replan();
        }
    }

    fn execute_pending(&mut self, f: &mut dyn FnMut(EngineEvent<'_>), barrier: bool) {
        if !self.pending.is_empty() {
            self.route_pending();
        }
        // The deferred epoch's events precede this batch's in staging
        // order, so it is always collected first.
        if self.outstanding.is_some() {
            self.collect_outstanding(f);
        }
        if self.decisions.is_empty() {
            return;
        }
        if self.remote.is_some() {
            // Remote shards have no inline fallback — the operators live
            // behind the transport, whatever the batch size — so every batch
            // takes the epoch pipeline.
            self.submit_epoch();
            if barrier {
                self.collect_outstanding(f);
            }
            return;
        }
        let items: usize = self.queues.iter().map(VecDeque::len).sum();
        let small = items < Self::SMALL_BATCH_THRESHOLD;
        if self.pool.is_some() {
            if small {
                // Sub-threshold fallback: run on the calling thread against
                // the (idle) pool shards — no enqueue round-trip, no
                // allocation in steady state.
                let JoinEngine {
                    pool,
                    queues,
                    decisions,
                    stats,
                    tally,
                    ..
                } = self;
                let pool = pool.as_mut().expect("checked above");
                exec::run_inline(pool.shards_mut(), queues, decisions, stats, tally, f);
                self.decisions.clear();
            } else {
                self.submit_epoch();
                if barrier {
                    self.collect_outstanding(f);
                }
            }
            return;
        }
        let threaded =
            matches!(self.backend, ExecutionBackend::Threads(_)) && self.shards.len() > 1 && !small;
        if threaded {
            exec::run_threaded(
                &mut self.shards,
                &mut self.queues,
                &mut self.sub,
                &mut self.mat,
                &mut self.runtime,
            );
            exec::merge_epoch(
                &self.decisions,
                &mut self.sub,
                &mut self.mat,
                &mut self.stats,
                &mut self.tally,
                f,
            );
        } else {
            exec::run_inline(
                self.shards.as_mut_slice(),
                &mut self.queues,
                &self.decisions,
                &mut self.stats,
                &mut self.tally,
                f,
            );
        }
        self.decisions.clear();
    }

    /// Ships the routed queues to the resident workers as one epoch and
    /// records it as outstanding.  Buffers travel with the tasks and come
    /// back at collection, so the steady-state round-trip allocates
    /// nothing.
    fn submit_epoch(&mut self) {
        let epoch = Epoch(self.next_epoch);
        self.next_epoch += 1;
        let mut mask = std::mem::take(&mut self.spare_mask);
        mask.clear();
        mask.resize(self.queues.len(), false);
        let routing_epoch = self.table.epoch();
        for (s, queue) in self.queues.iter_mut().enumerate() {
            if queue.is_empty() {
                continue;
            }
            mask[s] = true;
            self.runtime[s].epochs_enqueued += 1;
            if let Some(remote) = &mut self.remote {
                // The queue is drained in place (capacity retained); the
                // items are consumed by encoding, nothing travels back.
                remote.submit(s, epoch.0, routing_epoch, queue);
                continue;
            }
            let items = std::mem::replace(queue, std::mem::take(&mut self.spare_items[s]));
            let task = Task {
                epoch,
                items,
                sub: std::mem::take(&mut self.sub[s]),
                mat: std::mem::take(&mut self.mat[s]),
                routing_epoch,
            };
            self.pool
                .as_mut()
                .expect("submit_epoch requires a worker-backed backend")
                .submit(s, task);
        }
        let decisions = std::mem::replace(
            &mut self.decisions,
            std::mem::take(&mut self.spare_decisions),
        );
        self.outstanding = Some(PendingEpoch {
            epoch,
            decisions,
            mask,
            routing_epoch: self.table.epoch(),
        });
    }

    /// Collects the deferred epoch's outputs in shard order, re-raises any
    /// worker panic, merges the buffers into the deterministic event stream
    /// and recycles every buffer for the next epoch.
    fn collect_outstanding(&mut self, f: &mut dyn FnMut(EngineEvent<'_>)) {
        let Some(mut pend) = self.outstanding.take() else {
            return;
        };
        for s in 0..pend.mask.len() {
            if !pend.mask[s] {
                continue;
            }
            debug_assert_eq!(
                pend.routing_epoch,
                self.table.epoch(),
                "routing transitions must wait for the outstanding epoch"
            );
            if let Some(remote) = &mut self.remote {
                let info = remote.collect(s, pend.epoch.0, &mut self.sub[s], &mut self.mat[s]);
                debug_assert_eq!(
                    info.routing_epoch, pend.routing_epoch,
                    "routing changed while an epoch was in flight"
                );
                self.runtime[s].busy_nanos += info.busy_nanos;
                self.runtime[s].epochs_executed += 1;
                continue;
            }
            let out = self
                .pool
                .as_mut()
                .expect("an outstanding epoch implies a worker-backed backend")
                .collect(s, pend.epoch);
            debug_assert_eq!(
                out.routing_epoch, pend.routing_epoch,
                "routing changed while an epoch was in flight"
            );
            self.runtime[s].busy_nanos += out.busy_nanos;
            self.runtime[s].epochs_executed += 1;
            self.spare_items[s] = out.items;
            self.sub[s] = out.sub;
            self.mat[s] = out.mat;
            if let Some(payload) = out.panic {
                std::panic::resume_unwind(payload);
            }
        }
        exec::merge_epoch(
            &pend.decisions,
            &mut self.sub,
            &mut self.mat,
            &mut self.stats,
            &mut self.tally,
            f,
        );
        pend.decisions.clear();
        self.spare_decisions = pend.decisions;
        pend.mask.clear();
        self.spare_mask = pend.mask;
    }

    /// The sequential routing phase: classify every staged tuple against
    /// the global `onT`, replay the global expiry/occupancy accounting, and
    /// queue the shard work.
    fn route_pending(&mut self) {
        let mut pending = std::mem::take(&mut self.pending);
        for (idx, tuple) in pending.drain(..).enumerate() {
            let seq = idx as u32;
            let i = tuple.stream.as_usize();
            let in_order = !self.started || tuple.ts >= self.on_t;
            if in_order {
                self.on_t = tuple.ts;
                self.started = true;
                let mut expired = 0usize;
                let mut n_cross = 1u64;
                for j in 0..self.query.arity() {
                    if j != i {
                        let w_j = self.query.window(StreamIndex(j));
                        let bound = tuple.ts.saturating_sub_duration(w_j);
                        expired += self.occupancy.expire(j, bound);
                        n_cross = n_cross.saturating_mul(self.occupancy.len(j) as u64);
                    }
                }
                self.occupancy.insert(i, tuple.ts);
                let placement = self.enqueue(seq, true, tuple);
                self.decisions.push(Decision {
                    stream: i,
                    in_order: true,
                    inserted: true,
                    n_cross,
                    expired,
                    placement,
                });
            } else {
                // Global scope check (e.ts >= onT - W_i, Sec. III-A): a
                // shard's lagging view must not resurrect a tuple the
                // unsharded operator would drop.
                let w_i = self.query.window(StreamIndex(i));
                let keep = tuple.ts >= self.on_t.saturating_sub_duration(w_i);
                let placement = if keep {
                    self.occupancy.insert(i, tuple.ts);
                    self.enqueue(seq, false, tuple)
                } else {
                    Placement::None
                };
                self.decisions.push(Decision {
                    stream: i,
                    in_order: false,
                    inserted: keep,
                    n_cross: 0,
                    expired: 0,
                    placement,
                });
            }
        }
        self.pending = pending;
    }

    /// Queues one tuple's shard work according to its route, maintaining
    /// the per-shard routing-volume and queue-depth counters.  Key-routed
    /// tuples feed the skew detector and consult the [`RoutingTable`]: a
    /// split class fans its tuple out to every shard, but flags it as a
    /// *probe* on exactly one — chosen round-robin so the hot class's probe
    /// work spreads evenly — while the remaining shards only maintain their
    /// replica windows (insert, expire).  Every replica sees the same tuple
    /// sequence, so any shard answers a split probe with the full class.
    fn enqueue(&mut self, seq: u32, probe: bool, tuple: Tuple) -> Placement {
        let route = match self.partitioner.key_hash(&tuple) {
            Some(hash) => {
                if let Some(det) = &mut self.detector {
                    det.observe(hash);
                }
                if self.table.is_split(hash) {
                    Route::Split
                } else {
                    Route::One(self.partitioner.home_shard(hash))
                }
            }
            None => self.partitioner.route(&tuple),
        };
        match route {
            Route::One(s) => {
                self.queues[s].push_back(Item { seq, probe, tuple });
                self.note_routed(s);
                Placement::One(s as u32)
            }
            Route::All => {
                self.fan_out(seq, probe, self.queues.len(), tuple);
                Placement::All
            }
            Route::Split => {
                let n = self.queues.len();
                let p = (self.split_rr % n as u64) as usize;
                if probe {
                    // Late (probe-less) split tuples only maintain the
                    // replicas; they must not advance the probe cursor, or
                    // disorder would perturb the probe placement sequence.
                    self.split_rr = self.split_rr.wrapping_add(1);
                }
                self.fan_out(seq, probe, p, tuple);
                Placement::All
            }
        }
    }

    /// Pushes `tuple` to every shard queue, flagged as a probe only on
    /// shard `p` (`p >= shard count` means "probe everywhere", the
    /// broadcast case).
    fn fan_out(&mut self, seq: u32, probe: bool, p: usize, tuple: Tuple) {
        let last = self.queues.len() - 1;
        for s in 0..last {
            self.queues[s].push_back(Item {
                seq,
                probe: probe && (s == p || p > last),
                tuple: tuple.clone(),
            });
            self.note_routed(s);
        }
        self.queues[last].push_back(Item {
            seq,
            probe: probe && p >= last,
            tuple,
        });
        self.note_routed(last);
    }

    /// Folds one routed item into shard `s`'s runtime counters.
    fn note_routed(&mut self, s: usize) {
        let depth = self.queues[s].len();
        let rt = &mut self.runtime[s];
        rt.routed += 1;
        if depth > rt.max_queue_depth {
            rt.max_queue_depth = depth;
        }
    }

    /// Closes the current skew-detection window if it holds enough
    /// evidence: logs/re-arms the heavy-hitter warning and, when splitting
    /// is armed, applies the detector's split/unsplit transitions —
    /// migrating or purging the affected key classes' build state.
    ///
    /// Must only run at a barrier: every queue drained, no epoch
    /// outstanding.  That is what makes a routing change an epoch barrier —
    /// in-flight work always executes under the table it was routed with —
    /// and it is also what makes the decisions backend-invariant, because
    /// barriers sit at workload-determined points (checkpoints, buffer-size
    /// changes, end of stream).
    fn evaluate_skew(&mut self) {
        if self.shard_count() <= 1 {
            return;
        }
        debug_assert!(
            self.outstanding.is_none() && self.queues.iter().all(VecDeque::is_empty),
            "skew evaluation requires an idle engine"
        );
        let windowed: u64 = (0..self.runtime.len())
            .map(|s| self.runtime[s].routed - self.hh_base[s])
            .sum();
        if windowed < self.skew_min_routed() {
            return; // Too thin to judge: carry the window forward.
        }
        self.note_heavy_hitter();
        if self.detector.is_some() {
            self.apply_split_transitions();
        }
        // Start a fresh window.
        for s in 0..self.runtime.len() {
            self.hh_base[s] = self.runtime[s].routed;
        }
        if let Some(det) = &mut self.detector {
            det.reset();
        }
    }

    /// Reports the heavy-hitter warning when the closing window put a
    /// majority of its routed events on one shard; re-arms when a window
    /// comes back balanced, so a late-emerging hot key is reported even
    /// after an earlier warning.
    ///
    /// With telemetry attached the warning goes through the structured
    /// event ring (and its optional callback) — embedding applications are
    /// never written to on stderr.  Without telemetry the legacy stderr
    /// log remains, suppressible with `MSWJ_NO_SKEW_WARNING` (the signal
    /// stays available through [`JoinEngine::heavy_hitter`] and the
    /// per-shard `routed` counters either way).
    fn note_heavy_hitter(&mut self) {
        let Some(s) = self.heavy_hitter() else {
            self.hh_warned = None;
            return;
        };
        if self.hh_warned == Some(s) {
            return;
        }
        self.hh_warned = Some(s);
        let windowed = |s: usize| self.runtime[s].routed - self.hh_base[s];
        let total: u64 = (0..self.runtime.len()).map(windowed).sum();
        let held = windowed(s);
        let hint = if self.detector.is_some() {
            "hot-key splitting is armed and will redistribute it"
        } else {
            "consider arming skew_splitting() on the session builder"
        };
        let message = format!(
            "heavy hitter detected — shard {s} took {held} of {total} routed \
             events (> 50%) in the current detection window; the key distribution \
             pins this shard's bucket, {hint}"
        );
        if self.telemetry.is_some() {
            self.telemetry_event(EventKind::HeavyHitter, message);
        } else if std::env::var_os("MSWJ_NO_SKEW_WARNING").is_none() {
            eprintln!("mswj: {message}");
        }
    }

    /// Applies the detector's verdict on the closing window: reverts split
    /// classes that went cold (purging their replicas), then splits new hot
    /// classes (replicating their build state), recording every transition.
    fn apply_split_transitions(&mut self) {
        let det = self.detector.as_ref().expect("caller checked");
        let (to_split, to_unsplit) = det.evaluate(&self.table);
        for (hash, share) in to_unsplit {
            if self.table.unsplit(hash) {
                self.purge_replicas(hash);
                self.transitions.push(SkewTransition {
                    key_hash: hash,
                    split: false,
                    share,
                    at: self.on_t,
                });
                self.telemetry_event(
                    EventKind::SkewUnsplit,
                    format!("key class {hash:#018x} went cold (share {share:.3}); replicas purged"),
                );
            }
        }
        for (hash, share) in to_split {
            if self.table.split(hash) {
                self.replicate_build_state(hash);
                self.transitions.push(SkewTransition {
                    key_hash: hash,
                    split: true,
                    share,
                    at: self.on_t,
                });
                self.telemetry_event(
                    EventKind::SkewSplit,
                    format!(
                        "hot key class {hash:#018x} (share {share:.3}) switched to \
                         replicated-build / split-probe routing"
                    ),
                );
            }
        }
    }

    /// Copies the live build state of key class `hash` from its home shard
    /// into every other shard, so any shard can answer a split probe with
    /// the full class.  Runs at a barrier; copies are *adopted* (no
    /// operator statistics) and land in timestamp order, so replica windows
    /// enumerate the class exactly as the home shard does.
    fn replicate_build_state(&mut self, hash: u64) {
        let n = self.shard_count();
        let home = self.partitioner.home_shard(hash);
        for i in 0..self.query.arity() {
            let Some(col) = self.partitioner.column(i) else {
                // supports_splitting() guarantees key-routed streams.
                debug_assert!(false, "split routing requires key-routed streams");
                continue;
            };
            let class: Vec<Tuple> = match &mut self.remote {
                Some(remote) => remote.fetch_class(home, i as u64, col as u64, hash),
                None => self
                    .shard(home)
                    .window(StreamIndex(i))
                    .iter()
                    .filter(|t| join_key_hash(t.value(col)) == hash)
                    .cloned()
                    .collect(),
            };
            if class.is_empty() {
                continue;
            }
            for s in (0..n).filter(|&s| s != home) {
                if let Some(remote) = &mut self.remote {
                    remote.adopt(s, &class);
                    continue;
                }
                self.with_shard_mut(s, |op| {
                    for t in &class {
                        op.adopt(t.clone());
                    }
                });
            }
        }
    }

    /// Removes the replicated build state of key class `hash` from every
    /// non-home shard.  The home shard keeps the full class (it received
    /// every fan-out insert), so plain hash routing resumes losslessly —
    /// and a later re-split starts from replica-free shards, which is what
    /// keeps re-replication from duplicating state.
    fn purge_replicas(&mut self, hash: u64) {
        let n = self.shard_count();
        let home = self.partitioner.home_shard(hash);
        for s in (0..n).filter(|&s| s != home) {
            for i in 0..self.query.arity() {
                let Some(col) = self.partitioner.column(i) else {
                    continue;
                };
                if let Some(remote) = &mut self.remote {
                    remote.purge_class(s, i as u64, col as u64, hash);
                    continue;
                }
                self.with_shard_mut(s, |op| {
                    op.evict_where(StreamIndex(i), |t| join_key_hash(t.value(col)) != hash)
                });
            }
        }
    }

    /// Evaluates a plan revision for the closing window, when re-planning
    /// is armed and the window holds enough probes to judge.  Like skew
    /// evaluation, this must only run at a barrier (every queue drained, no
    /// epoch outstanding) and takes every decision from engine-global
    /// statistics — occupancy cardinalities, the sequential-equivalent
    /// stats and the per-stream tallies — so all backends revise the plan
    /// at the same points, identically.
    fn evaluate_replan(&mut self) {
        let Some(state) = &self.replan else {
            return;
        };
        let config = state.config;
        debug_assert!(
            self.outstanding.is_none() && self.queues.iter().all(VecDeque::is_empty),
            "plan revision requires an idle engine"
        );
        let probes: u64 = self.tally.iter().map(|t| t.probes).sum();
        if probes - state.probes_base < config.min_probes {
            return; // Too thin to judge: carry the window forward.
        }
        self.consider_pair_switch(&config);
        self.consider_reorder(&config);
        self.consider_demotion(&config);
        // Start a fresh evaluation window.
        let state = self.replan.as_mut().expect("checked above");
        state.probes_base = probes;
        state.indexed_base = self.stats.indexed_probes;
        state.fallback_base = self.stats.fallback_probes;
    }

    /// Re-selects the star partition pair when a satellite outside the
    /// pair carries [`ReplanConfig::switch_ratio`] times the live
    /// cardinality of the current partner — a broadcast stream pays for
    /// every tuple on every shard, so the heaviest satellite belongs in
    /// the key-routed slot and only light streams on the broadcast path.
    /// The affected window state migrates at this barrier and the
    /// routing-table epoch is bumped, exactly like a skew transition.
    fn consider_pair_switch(&mut self, config: &ReplanConfig) {
        let ProbePlan::Star { anchor, .. } = &self.plan else {
            return;
        };
        let anchor = *anchor;
        if self.shard_count() <= 1 {
            return;
        }
        // Star plans never split (broadcast satellites), so the routing
        // table only ever carries the partitioner epoch here.
        debug_assert!(self.table.split_classes().is_empty());
        let Some(current) = self.star_partner else {
            return;
        };
        let candidate = (0..self.query.arity())
            .filter(|&j| j != anchor)
            .max_by_key(|&j| (self.occupancy.len(j), std::cmp::Reverse(j)))
            .expect("a star plan has at least one satellite");
        if candidate == current {
            return;
        }
        let cur_n = (self.occupancy.len(current) + 1) as f64;
        let cand_n = (self.occupancy.len(candidate) + 1) as f64;
        if cand_n < config.switch_ratio * cur_n {
            return; // Inside the hysteresis band.
        }
        self.apply_pair_switch(current, candidate);
        self.plan_transitions.push(PlanTransition {
            action: PlanAction::PairSwitch {
                from: current,
                to: candidate,
            },
            at: self.on_t,
        });
        self.telemetry_event(
            EventKind::PlanRevision,
            format!(
                "star pair switched: satellite {current} -> {candidate} (window state migrated)"
            ),
        );
    }

    /// Migrates window state from the partitioning `(anchor, from)` to
    /// `(anchor, to)` and swaps in the re-paired partitioner.  Runs at an
    /// idle barrier; every window that moves is snapshotted *before* any
    /// shard is mutated, so reads never observe a half-migrated peer.
    ///
    /// Three streams change routing mode:
    /// * the old partner goes key-routed → broadcast: each shard's
    ///   disjoint slice is replicated into every other shard;
    /// * the new partner goes broadcast → key-routed: every shard already
    ///   holds the full window and just retains its home slice;
    /// * the anchor is re-keyed onto the new pair column (unless both
    ///   pairs share it): each shard retains the tuples that still belong
    ///   to it and the misplaced remainder is adopted by its new home.
    fn apply_pair_switch(&mut self, from: usize, to: usize) {
        let n = self.shard_count();
        let ProbePlan::Star { anchor, .. } = &self.plan else {
            unreachable!("caller matched a star plan");
        };
        let anchor = *anchor;
        let next =
            Partitioner::with_star_partner(&self.plan, self.backend.requested_shards(), Some(to));
        debug_assert_eq!(next.shard_count(), n, "a pair switch never re-shards");
        let from_slices: Vec<Vec<Tuple>> = (0..n).map(|s| self.fetch_window_of(s, from)).collect();
        let anchor_rekeyed = self.partitioner.column(anchor) != next.column(anchor);
        let anchor_snaps: Vec<Vec<Tuple>> = if anchor_rekeyed {
            (0..n).map(|s| self.fetch_window_of(s, anchor)).collect()
        } else {
            Vec::new()
        };
        // Old partner: replicate each shard's slice into every other shard.
        for (s, slice) in from_slices.iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            for t in (0..n).filter(|&t| t != s) {
                self.adopt_into(t, slice);
            }
        }
        // New partner: every shard retains its home slice of the full
        // (previously broadcast) window.
        let to_col = next
            .column(to)
            .expect("the partner satellite is key-routed");
        for s in 0..n {
            self.retain_home_slice(s, to, to_col, n);
        }
        // Anchor: retain by new home, then deliver each misplaced tuple to
        // the shard that now owns it.
        if anchor_rekeyed {
            let col = next.column(anchor).expect("the anchor is key-routed");
            for s in 0..n {
                self.retain_home_slice(s, anchor, col, n);
            }
            for (s, snap) in anchor_snaps.iter().enumerate() {
                for target in (0..n).filter(|&t| t != s) {
                    let moved: Vec<Tuple> = snap
                        .iter()
                        .filter(|t| next.home_shard(join_key_hash(t.value(col))) == target)
                        .cloned()
                        .collect();
                    if !moved.is_empty() {
                        self.adopt_into(target, &moved);
                    }
                }
            }
        }
        self.partitioner = next;
        self.star_partner = Some(to);
        // Out-of-table routing change: in-flight epochs must never straddle
        // it (they cannot — the engine is idle), and the pipeline's
        // routing-epoch sanity checks should see it.
        self.table.bump_epoch();
        for s in 0..n {
            self.runtime[s].plan_revisions += 1;
        }
    }

    /// Reorders the m-way probe chain ascending by observed match rate —
    /// the least productive stream's window is probed first, so empty
    /// probes exit as early as possible.  Adopted only when every inverted
    /// stream pair clears [`ReplanConfig::reorder_margin`]; a reorder is a
    /// pure access-path change, the result multiset cannot move.
    fn consider_reorder(&mut self, config: &ReplanConfig) {
        let candidate = reorder_candidate(&self.tally);
        let state = self.replan.as_ref().expect("caller checked");
        if candidate == state.order
            || !reorder_is_decisive(&state.order, &candidate, &self.tally, config.reorder_margin)
        {
            return;
        }
        self.apply_revision(&candidate, false);
        self.replan.as_mut().expect("caller checked").order = candidate.clone();
        self.telemetry_event(
            EventKind::PlanRevision,
            format!("probe chain reordered by observed match rates: {candidate:?}"),
        );
        self.plan_transitions.push(PlanTransition {
            action: PlanAction::Reorder { order: candidate },
            at: self.on_t,
        });
    }

    /// Demotes the hash index to the nested-loop scan once the closing
    /// window's fallback share reaches
    /// [`ReplanConfig::demote_fallback_share`] — probes were scanning
    /// anyway, so maintenance was pure overhead.  One-way: windows drop
    /// their indexes permanently, which is its own hysteresis.
    fn consider_demotion(&mut self, config: &ReplanConfig) {
        let state = self.replan.as_ref().expect("caller checked");
        if state.demoted || matches!(self.plan, ProbePlan::NestedLoop) {
            return;
        }
        let indexed = self.stats.indexed_probes - state.indexed_base;
        let fallback = self.stats.fallback_probes - state.fallback_base;
        if indexed + fallback == 0
            || (fallback as f64) < config.demote_fallback_share * (indexed + fallback) as f64
        {
            return;
        }
        self.apply_revision(&[], true);
        self.replan.as_mut().expect("caller checked").demoted = true;
        self.telemetry_event(
            EventKind::PlanRevision,
            format!(
                "hash index demoted to nested-loop scan (fallback share {:.3})",
                fallback as f64 / (indexed + fallback) as f64
            ),
        );
        self.plan_transitions.push(PlanTransition {
            action: PlanAction::DemoteIndex,
            at: self.on_t,
        });
    }

    /// Applies a probe reorder and/or index demotion to every shard
    /// operator, local or remote (an empty `order` leaves the order
    /// unchanged, matching the wire frame's contract).
    fn apply_revision(&mut self, order: &[usize], demote: bool) {
        let n = self.shard_count();
        for s in 0..n {
            if let Some(remote) = &mut self.remote {
                remote.revise(s, order, demote);
            } else {
                self.with_shard_mut(s, |op| {
                    if !order.is_empty() {
                        op.set_probe_order(order.to_vec());
                    }
                    if demote {
                        op.demote_index();
                    }
                });
            }
            self.runtime[s].plan_revisions += 1;
        }
    }

    /// Snapshots the full live window of `stream` on shard `s`.
    fn fetch_window_of(&mut self, s: usize, stream: usize) -> Vec<Tuple> {
        if let Some(remote) = &mut self.remote {
            return remote.fetch_window(s, stream as u64);
        }
        self.shard(s)
            .window(StreamIndex(stream))
            .iter()
            .cloned()
            .collect()
    }

    /// Adopts `tuples` into shard `s`'s windows (each tuple lands in its
    /// own stream's window), counting them as migrated.
    fn adopt_into(&mut self, s: usize, tuples: &[Tuple]) {
        self.runtime[s].migrated_tuples += tuples.len() as u64;
        if let Some(remote) = &mut self.remote {
            remote.adopt(s, tuples);
            return;
        }
        self.with_shard_mut(s, |op| {
            for t in tuples {
                op.adopt(t.clone());
            }
        });
    }

    /// Drops every tuple of `stream` on shard `s` whose join key (in
    /// `col`) no longer homes there — the local/remote-agnostic retain
    /// pass of a pair switch.
    fn retain_home_slice(&mut self, s: usize, stream: usize, col: usize, shards: usize) {
        if let Some(remote) = &mut self.remote {
            remote.retain(s, stream as u64, col as u64, shards as u64, s as u64);
            return;
        }
        self.with_shard_mut(s, |op| {
            op.evict_where(StreamIndex(stream), |t| {
                join_key_hash(t.value(col)) % shards as u64 == s as u64
            });
        });
    }

    /// Mutable access to one shard operator, wherever the backend keeps it.
    /// On the `Pool` backend this locks the worker's cell (the worker is
    /// idle at every call site: state surgery only happens at barriers).
    fn with_shard_mut<R>(&mut self, s: usize, f: impl FnOnce(&mut MswjOperator) -> R) -> R {
        match &mut self.pool {
            Some(pool) => f(&mut pool.lock_shard(s)),
            None => f(&mut self.shards[s]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_join::{CommonKeyEquiJoin, StarEquiJoin};
    use mswj_types::{FieldType, Schema, StreamSet, StreamSpec, Value};
    use std::sync::Arc;

    fn equi_query(m: usize, window: u64) -> JoinQuery {
        let streams =
            StreamSet::homogeneous(m, Schema::new(vec![("a1", FieldType::Int)]), window).unwrap();
        let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
        JoinQuery::new("engine-test", streams, cond).unwrap()
    }

    fn tup(stream: usize, seq: u64, ts: u64, key: i64) -> Tuple {
        Tuple::new(
            stream.into(),
            seq,
            Timestamp::from_millis(ts),
            vec![Value::Int(key)],
        )
    }

    /// Drives `tuples` through an engine (one batch per `chunk` tuples,
    /// final `sync`) and returns (sorted result strings, outcomes, stats).
    fn run_chunked(
        backend: ExecutionBackend,
        enumerate: bool,
        tuples: &[Tuple],
        chunk: usize,
    ) -> (Vec<String>, Vec<ProbeOutcome>, OperatorStats) {
        let mut engine = JoinEngine::new(
            equi_query(2, 1_000),
            ProbeStrategy::Auto,
            enumerate,
            backend,
        );
        let mut results = Vec::new();
        let mut outcomes = Vec::new();
        let mut handler = |ev: EngineEvent<'_>| match ev {
            EngineEvent::Result(r) => results.push(r.to_string()),
            EngineEvent::Done(o) => outcomes.push(o),
        };
        for batch in tuples.chunks(chunk.max(1)) {
            engine.push_batch(batch.iter().cloned(), &mut handler);
        }
        engine.sync(&mut handler);
        results.sort();
        (results, outcomes, engine.stats())
    }

    fn run(
        backend: ExecutionBackend,
        enumerate: bool,
        tuples: &[Tuple],
    ) -> (Vec<String>, Vec<ProbeOutcome>, OperatorStats) {
        run_chunked(backend, enumerate, tuples, usize::MAX)
    }

    #[test]
    fn sequential_engine_matches_the_unsharded_operator() {
        let tuples: Vec<Tuple> = (0..40u64)
            .map(|s| tup((s % 2) as usize, s, s * 10, (s % 3) as i64))
            .collect();
        let (_, outcomes, stats) = run(ExecutionBackend::Sequential, false, &tuples);
        let mut op = MswjOperator::new(equi_query(2, 1_000));
        for (t, engine_outcome) in tuples.iter().zip(&outcomes) {
            let direct = op.push(t.clone());
            assert_eq!(&direct, engine_outcome, "outcome mismatch at {t}");
        }
        assert_eq!(stats, op.stats());
    }

    #[test]
    fn parallel_backends_agree_with_sequential() {
        let tuples: Vec<Tuple> = (0..120u64)
            .map(|s| {
                let late = s % 7 == 0 && s > 0;
                let ts = if late { s * 10 - 60 } else { s * 10 };
                tup((s % 2) as usize, s, ts, (s % 5) as i64)
            })
            .collect();
        let (seq_res, seq_out, seq_stats) = run(ExecutionBackend::Sequential, true, &tuples);
        let backends = [
            ExecutionBackend::Threads(1),
            ExecutionBackend::Threads(3),
            ExecutionBackend::Threads(4),
            ExecutionBackend::Pool { workers: 1 },
            ExecutionBackend::Pool { workers: 4 },
            // Every epoch round-trips through the wire codec (in-process
            // shard servers), proving serialization on the same workload.
            ExecutionBackend::remote_inproc(1),
            ExecutionBackend::remote_inproc(4),
        ];
        for backend in backends {
            // Chunk of 48 exceeds the inline threshold (pipelined epochs on
            // Pool); chunk of 7 stays below it (inline fallback).
            for chunk in [48usize, 7] {
                let (res, out, stats) = run_chunked(backend.clone(), true, &tuples, chunk);
                let label = format!("{backend} chunk {chunk}");
                assert_eq!(seq_res, res, "result multiset diverged [{label}]");
                assert_eq!(seq_out.len(), out.len(), "[{label}]");
                for (a, b) in seq_out.iter().zip(&out) {
                    assert_eq!(a.in_order, b.in_order, "[{label}]");
                    assert_eq!(a.inserted, b.inserted, "[{label}]");
                    assert_eq!(a.n_join, b.n_join, "[{label}]");
                    assert_eq!(
                        a.n_cross, b.n_cross,
                        "global n_x(e) must not shard [{label}]"
                    );
                    assert_eq!(a.expired, b.expired, "[{label}]");
                }
                assert_eq!(seq_stats.results, stats.results, "[{label}]");
                assert_eq!(seq_stats.in_order, stats.in_order, "[{label}]");
                assert_eq!(seq_stats.out_of_order, stats.out_of_order, "[{label}]");
                assert_eq!(seq_stats.dropped, stats.dropped, "[{label}]");
                assert_eq!(seq_stats.expired, stats.expired, "[{label}]");
                assert_eq!(seq_stats.cross_results, stats.cross_results, "[{label}]");
            }
        }
    }

    #[test]
    fn sharded_windows_partition_the_global_state() {
        let tuples: Vec<Tuple> = (0..200u64)
            .map(|s| tup((s % 2) as usize, s, s * 5, (s % 16) as i64))
            .collect();
        let mut engine = JoinEngine::new(
            equi_query(2, 500),
            ProbeStrategy::Auto,
            false,
            ExecutionBackend::Threads(4),
        );
        assert_eq!(engine.shard_count(), 4);
        engine.push_batch(tuples, &mut |_| {});
        let per_shard = engine.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert!(
            per_shard.iter().filter(|s| s.operator.in_order > 0).count() >= 3,
            "16 keys must spread probes over the shards: {per_shard:?}"
        );
        // Every shard saw routed work, and the queue high-water mark is
        // consistent with it.
        for s in &per_shard {
            assert!(s.runtime.routed > 0);
            assert!(s.runtime.max_queue_depth > 0);
            assert!(s.runtime.max_queue_depth as u64 <= s.runtime.routed);
        }
        // The shard windows partition the global state (common-key plans
        // never broadcast).  Shards expire lazily — only a probe *in that
        // shard* drains it — so stale tuples may linger; restricted to the
        // in-scope suffix, the sharded and unsharded views must agree.
        let mut reference = MswjOperator::new(equi_query(2, 500));
        for s in 0..200u64 {
            reference.push(tup((s % 2) as usize, s, s * 5, (s % 16) as i64));
        }
        assert_eq!(engine.on_t(), reference.on_t());
        for stream in 0..2 {
            let bound = engine.on_t().saturating_sub_duration(500);
            let in_scope = |w: &mswj_join::Window| w.iter().filter(|t| t.ts >= bound).count();
            let sharded: usize = (0..4)
                .map(|s| in_scope(engine.shard(s).window(StreamIndex(stream))))
                .sum();
            assert_eq!(sharded, in_scope(reference.window(StreamIndex(stream))));
            let raw: usize = (0..4)
                .map(|s| engine.shard(s).window(StreamIndex(stream)).len())
                .sum();
            assert!(raw >= reference.window(StreamIndex(stream)).len());
        }
    }

    #[test]
    fn pool_defers_large_batches_and_sync_collects_them() {
        let mut engine = JoinEngine::new(
            equi_query(2, 1_000),
            ProbeStrategy::Auto,
            false,
            ExecutionBackend::Pool { workers: 2 },
        );
        assert_eq!(engine.shard_count(), 2);
        // A sub-threshold batch executes inline: events arrive immediately.
        let mut done = 0usize;
        engine.push_batch(
            (0..4u64).map(|s| tup((s % 2) as usize, s, s * 10, s as i64)),
            &mut |_| done += 1,
        );
        assert_eq!(done, 4);
        assert!(!engine.has_outstanding());
        // A large batch is submitted as an epoch and deferred…
        let big: Vec<Tuple> = (4..100u64)
            .map(|s| tup((s % 2) as usize, s, s * 10, (s % 8) as i64))
            .collect();
        engine.push_batch(big, &mut |_| done += 1);
        assert!(engine.has_outstanding(), "large batches pipeline");
        assert_eq!(done, 4, "deferred epochs emit nothing yet");
        // …and sync delivers exactly one Done per staged tuple.
        engine.sync(&mut |ev| {
            if matches!(ev, EngineEvent::Done(_)) {
                done += 1;
            }
        });
        assert!(!engine.has_outstanding());
        assert_eq!(done, 100);
        let epochs: u64 = engine
            .shard_stats()
            .iter()
            .map(|s| s.runtime.epochs_executed)
            .sum();
        assert!(epochs >= 1, "the deferred batch ran through the pool");
    }

    #[test]
    fn heavy_hitter_detection_fires_on_skew() {
        let mut engine = JoinEngine::new(
            equi_query(2, 10_000),
            ProbeStrategy::Auto,
            false,
            ExecutionBackend::Threads(4),
        );
        // Every tuple carries the same key: one shard takes 100% of the
        // routed events.
        let tuples: Vec<Tuple> = (0..1_200u64)
            .map(|s| tup((s % 2) as usize, s, s * 2, 7))
            .collect();
        assert_eq!(engine.heavy_hitter(), None, "too little evidence yet");
        engine.push_batch(tuples, &mut |_| {});
        let hot = engine.heavy_hitter().expect("constant key must trip");
        assert_eq!(engine.runtime_stats(hot).routed, 1_200);
    }

    #[test]
    fn unpartitionable_plans_collapse_to_one_shard() {
        for backend in [
            ExecutionBackend::Threads(8),
            ExecutionBackend::Pool { workers: 8 },
        ] {
            let engine = JoinEngine::new(
                equi_query(2, 1_000),
                ProbeStrategy::NestedLoop,
                false,
                backend.clone(),
            );
            assert_eq!(engine.shard_count(), 1, "{backend}");
            assert!(!engine.partitioner().is_partitioned(), "{backend}");
        }
    }

    #[test]
    fn remote_backend_rejects_an_empty_endpoint_list() {
        let err = JoinEngine::try_new(
            equi_query(2, 1_000),
            ProbeStrategy::Auto,
            false,
            ExecutionBackend::Remote {
                endpoints: Vec::new(),
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("at least one endpoint"), "{err}");
    }

    #[test]
    fn remote_backend_rejects_closure_conditions() {
        let streams =
            StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), 1_000).unwrap();
        let cond = Arc::new(mswj_join::PredicateFn::new(2, "opaque", |_| true));
        let query = JoinQuery::new("closure", streams, cond).unwrap();
        let err = JoinEngine::try_new(
            query,
            ProbeStrategy::Auto,
            false,
            ExecutionBackend::remote_inproc(2),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("cannot cross a process boundary"),
            "{err}"
        );
    }

    #[test]
    fn remote_runtime_stats_carry_transport_counters() {
        let mut engine = JoinEngine::new(
            equi_query(2, 1_000),
            ProbeStrategy::Auto,
            false,
            ExecutionBackend::remote_inproc(2),
        );
        assert_eq!(engine.shard_count(), 2);
        let tuples: Vec<Tuple> = (0..100u64)
            .map(|s| tup((s % 2) as usize, s, s * 10, (s % 8) as i64))
            .collect();
        let mut done = 0usize;
        engine.push_batch(tuples, &mut |ev| {
            if matches!(ev, EngineEvent::Done(_)) {
                done += 1;
            }
        });
        engine.sync(&mut |ev| {
            if matches!(ev, EngineEvent::Done(_)) {
                done += 1;
            }
        });
        assert_eq!(done, 100);
        for s in 0..engine.shard_count() {
            let rt = engine.runtime_stats(s);
            assert!(rt.frames_sent >= 3, "hello + setup + tasks: {rt:?}");
            assert_eq!(
                rt.frames_sent, rt.frames_received,
                "strict request/reply protocol: {rt:?}"
            );
            assert!(rt.bytes_sent > 0 && rt.bytes_received > 0, "{rt:?}");
            assert!(rt.epoch_rtt_nanos > 0, "epochs round-tripped: {rt:?}");
            assert_eq!(rt.epochs_enqueued, rt.epochs_executed, "{rt:?}");
        }
        // shard_stats() fetches operator counters over a barrier round-trip.
        let stats = engine.shard_stats();
        let results: u64 = stats.iter().map(|s| s.operator.results).sum();
        assert_eq!(results, engine.stats().results);
    }

    #[test]
    fn flush_without_pending_is_a_no_op() {
        let mut engine = JoinEngine::new(
            equi_query(2, 1_000),
            ProbeStrategy::Auto,
            false,
            ExecutionBackend::Sequential,
        );
        let mut events = 0u32;
        engine.flush(&mut |_| events += 1);
        engine.sync(&mut |_| events += 1);
        assert_eq!(events, 0);
        assert!(!engine.has_pending());
        assert!(!engine.has_outstanding());
        assert_eq!(engine.backend(), &ExecutionBackend::Sequential);
        assert!(!engine.is_enumerating());
        assert_eq!(engine.on_t(), Timestamp::ZERO);
    }

    /// Aggressive thresholds so small test workloads trigger transitions.
    fn test_skew() -> SkewConfig {
        SkewConfig {
            split_share: 0.4,
            unsplit_share: 0.2,
            min_routed: 64,
        }
    }

    /// Runs `tuples` in batches of `chunk` with a `sync` barrier after each
    /// batch (so skew windows are evaluated), returning sorted results,
    /// outcomes and stats.
    fn run_synced(
        engine: &mut JoinEngine,
        tuples: &[Tuple],
        chunk: usize,
    ) -> (Vec<String>, Vec<ProbeOutcome>, OperatorStats) {
        let mut results = Vec::new();
        let mut outcomes = Vec::new();
        let mut handler = |ev: EngineEvent<'_>| match ev {
            EngineEvent::Result(r) => results.push(r.to_string()),
            EngineEvent::Done(o) => outcomes.push(o),
        };
        for batch in tuples.chunks(chunk) {
            engine.push_batch(batch.iter().cloned(), &mut handler);
            engine.sync(&mut handler);
        }
        results.sort();
        (results, outcomes, engine.stats())
    }

    #[test]
    fn hot_key_splitting_replicates_state_and_preserves_results() {
        // 60% of the traffic on key 7, the rest spread over cold keys.
        let tuples: Vec<Tuple> = (0..600u64)
            .map(|s| {
                let key = if s % 10 < 6 { 7 } else { 100 + (s % 40) as i64 };
                tup((s % 2) as usize, s, s * 2, key)
            })
            .collect();
        let (want_res, want_out, want_stats) = run(ExecutionBackend::Sequential, true, &tuples);
        for backend in [
            ExecutionBackend::Threads(3),
            ExecutionBackend::Pool { workers: 3 },
        ] {
            let mut engine = JoinEngine::with_skew(
                equi_query(2, 1_000),
                ProbeStrategy::Auto,
                true,
                backend.clone(),
                Some(test_skew()),
            );
            assert!(engine.skew_splitting_enabled(), "{backend}");
            let (res, out, stats) = run_synced(&mut engine, &tuples, 100);
            let hot = join_key_hash(Some(&Value::Int(7)));
            assert_eq!(
                engine.split_classes(),
                &[hot],
                "the hot class must have split [{backend}]"
            );
            let first = engine.skew_transitions().first().expect("one transition");
            assert!(first.split && first.key_hash == hot && first.share > 0.4);
            // Replicated build: every shard holds the hot class's tuples.
            for s in 0..engine.shard_count() {
                for i in 0..2 {
                    assert!(
                        engine
                            .shard(s)
                            .window(StreamIndex(i))
                            .iter()
                            .any(|t| t.value(0) == Some(&Value::Int(7))),
                        "shard {s} stream {i} must hold hot-class replicas [{backend}]"
                    );
                }
            }
            // ... and the probe work spreads: no shard took a majority of
            // the post-split routed volume.
            assert_eq!(res, want_res, "result multiset diverged [{backend}]");
            assert_eq!(want_out.len(), out.len(), "{backend}");
            for (a, b) in want_out.iter().zip(&out) {
                assert_eq!(a.n_join, b.n_join, "{backend}");
                assert_eq!(a.n_cross, b.n_cross, "{backend}");
            }
            assert_eq!(want_stats.results, stats.results, "{backend}");
            assert_eq!(want_stats.in_order, stats.in_order, "{backend}");
            assert_eq!(want_stats.expired, stats.expired, "{backend}");
        }
    }

    #[test]
    fn cooled_hot_key_unsplits_and_purges_replicas() {
        let hot_phase: Vec<Tuple> = (0..300u64)
            .map(|s| {
                let key = if s % 10 < 6 { 7 } else { 100 + (s % 40) as i64 };
                tup((s % 2) as usize, s, s * 2, key)
            })
            .collect();
        // The cold phase spreads traffic evenly; timestamps advance past
        // the window so the hot tuples also expire.
        let cold_phase: Vec<Tuple> = (300..900u64)
            .map(|s| tup((s % 2) as usize, s, 20_000 + s * 2, 100 + (s % 40) as i64))
            .collect();
        let mut engine = JoinEngine::with_skew(
            equi_query(2, 2_000),
            ProbeStrategy::Auto,
            false,
            ExecutionBackend::Threads(3),
            Some(test_skew()),
        );
        let hot = join_key_hash(Some(&Value::Int(7)));
        run_synced(&mut engine, &hot_phase, 150);
        assert_eq!(engine.split_classes(), &[hot], "hot phase must split");
        run_synced(&mut engine, &cold_phase, 150);
        assert!(
            engine.split_classes().is_empty(),
            "cold traffic must revert the split"
        );
        let trans = engine.skew_transitions();
        assert!(trans.len() >= 2);
        assert!(trans.first().unwrap().split);
        assert!(!trans.last().unwrap().split);
        // Replicas purged: only the home shard may still hold hot-class
        // tuples (and here even those expired with the window).
        let home = engine.partitioner().home_shard(hot);
        for s in (0..engine.shard_count()).filter(|&s| s != home) {
            for i in 0..2 {
                assert!(
                    !engine
                        .shard(s)
                        .window(StreamIndex(i))
                        .iter()
                        .any(|t| t.value(0) == Some(&Value::Int(7))),
                    "shard {s} stream {i} must have purged its replicas"
                );
            }
        }
    }

    #[test]
    fn late_emerging_hot_key_still_trips_detection() {
        // Regression: the detector judges *windows*, not lifetime counters.
        // A long balanced phase must not dilute a later hot key below the
        // majority threshold (1_200 hot of 5_296 total is only ~23%
        // lifetime), and the warning must re-arm after a balanced window.
        let mut engine = JoinEngine::new(
            equi_query(2, 100_000),
            ProbeStrategy::Auto,
            false,
            ExecutionBackend::Threads(4),
        );
        let balanced: Vec<Tuple> = (0..4_096u64)
            .map(|s| tup((s % 2) as usize, s, s * 2, (s % 64) as i64))
            .collect();
        engine.push_batch(balanced, &mut |_| {});
        engine.sync(&mut |_| {});
        assert_eq!(engine.heavy_hitter(), None, "balanced window");
        let hot: Vec<Tuple> = (4_096..5_296u64)
            .map(|s| tup((s % 2) as usize, s, s * 2, 7))
            .collect();
        engine.push_batch(hot, &mut |_| {});
        let s = engine
            .heavy_hitter()
            .expect("a late hot key must trip windowed detection");
        let windowed = engine.runtime_stats(s).routed;
        assert!(windowed >= 1_200, "the hot window counts from its own base");
    }

    #[test]
    fn splitting_is_inert_when_the_plan_cannot_split() {
        // Nested-loop plans collapse to one broadcast shard: no detector.
        let engine = JoinEngine::with_skew(
            equi_query(2, 1_000),
            ProbeStrategy::NestedLoop,
            false,
            ExecutionBackend::Threads(4),
            Some(test_skew()),
        );
        assert!(!engine.skew_splitting_enabled());
        // Single-shard backends cannot redistribute anything either.
        let engine = JoinEngine::with_skew(
            equi_query(2, 1_000),
            ProbeStrategy::Auto,
            false,
            ExecutionBackend::Sequential,
            Some(test_skew()),
        );
        assert!(!engine.skew_splitting_enabled());
    }

    /// Aggressive re-planning thresholds so small test workloads revise.
    fn test_replan() -> ReplanConfig {
        ReplanConfig {
            min_probes: 64,
            switch_ratio: 1.5,
            demote_fallback_share: 0.5,
            reorder_margin: 1.2,
        }
    }

    /// 3-way star: anchor S1(a1, a2) joined with S2(a1) and S3(a2) — the
    /// blind default partitions the (S1, S2) pair, broadcasting S3.
    fn star_query(window: u64) -> JoinQuery {
        let streams = StreamSet::new(vec![
            StreamSpec::new(
                "S1",
                Schema::new(vec![("a1", FieldType::Int), ("a2", FieldType::Int)]),
                window,
            ),
            StreamSpec::new("S2", Schema::new(vec![("a1", FieldType::Int)]), window),
            StreamSpec::new("S3", Schema::new(vec![("a2", FieldType::Int)]), window),
        ])
        .unwrap();
        let cond =
            Arc::new(StarEquiJoin::new(&streams, 0, &[(1, "a1", "a1"), (2, "a2", "a2")]).unwrap());
        JoinQuery::new("engine-star", streams, cond).unwrap()
    }

    fn replanned(query: JoinQuery, enumerate: bool, backend: ExecutionBackend) -> JoinEngine {
        JoinEngine::try_with_policies(
            query,
            ProbeStrategy::Auto,
            enumerate,
            backend,
            None,
            Some(test_replan()),
        )
        .unwrap()
    }

    #[test]
    fn probe_reorder_fires_and_preserves_results() {
        // Asymmetric 3-way arrival rates: stream 1 floods (large window, so
        // probes *into* it are productive and probes *from* it are not),
        // stream 0 trickles.  Per-stream match rates then order ascending
        // as (1, 2, 0) — an inversion of the static (0, 1, 2) chain.
        let mut tuples = Vec::new();
        let mut seq = 0u64;
        for round in 0..120u64 {
            let ts = round * 4;
            let mut push = |stream: usize, key: i64| {
                tuples.push(tup(stream, seq, ts, key));
                seq += 1;
            };
            push(1, (round % 2) as i64);
            push(1, ((round + 1) % 2) as i64);
            push(1, (round % 2) as i64);
            push(2, (round % 2) as i64);
            if round % 4 == 0 {
                push(0, (round % 2) as i64);
            }
        }
        let mut reference = JoinEngine::new(
            equi_query(3, 400),
            ProbeStrategy::Auto,
            true,
            ExecutionBackend::Sequential,
        );
        let (want_res, _, want_stats) = run_synced(&mut reference, &tuples, 100);
        let mut engine = replanned(equi_query(3, 400), true, ExecutionBackend::Sequential);
        assert!(engine.replanning_enabled());
        let (res, _, stats) = run_synced(&mut engine, &tuples, 100);
        assert_eq!(res, want_res, "a reorder is a pure access-path change");
        assert_eq!(stats.results, want_stats.results);
        assert_eq!(stats.in_order, want_stats.in_order);
        let order = engine
            .plan_transitions()
            .iter()
            .find_map(|t| match &t.action {
                PlanAction::Reorder { order } => Some(order.clone()),
                _ => None,
            })
            .expect("the inverted match rates must trigger a reorder");
        assert_eq!(order[0], 1, "the flooded stream probes first: {order:?}");
        assert_eq!(engine.shard(0).probe_order(), &order[..]);
        assert!(engine.runtime_stats(0).plan_revisions >= 1);
    }

    #[test]
    fn index_demotion_fires_on_fallback_heavy_workloads() {
        // Float keys join numerically but defeat the hash index: every
        // probe takes the nested-loop fallback, so maintaining the index
        // is pure overhead and the re-planner drops it.
        let ftup = |stream: usize, seq: u64, ts: u64, key: i64| {
            Tuple::new(
                stream.into(),
                seq,
                Timestamp::from_millis(ts),
                vec![Value::Float(key as f64 + 0.5)],
            )
        };
        let tuples: Vec<Tuple> = (0..300u64)
            .map(|s| ftup((s % 2) as usize, s, s * 5, (s % 3) as i64))
            .collect();
        let (want_res, _, want_stats) = run(ExecutionBackend::Sequential, true, &tuples);
        let mut engine = replanned(equi_query(2, 1_000), true, ExecutionBackend::Threads(3));
        let (res, _, stats) = run_synced(&mut engine, &tuples, 100);
        assert_eq!(res, want_res, "a demotion never changes the multiset");
        assert_eq!(stats.results, want_stats.results);
        assert_eq!(stats.fallback_probes, want_stats.fallback_probes);
        assert!(
            engine
                .plan_transitions()
                .iter()
                .any(|t| t.action == PlanAction::DemoteIndex),
            "an all-fallback window must demote: {:?}",
            engine.plan_transitions()
        );
        for s in 0..engine.shard_count() {
            assert!(engine.runtime_stats(s).plan_revisions >= 1, "shard {s}");
        }
        // One-way: a single demotion, never a second.
        let demotions = engine
            .plan_transitions()
            .iter()
            .filter(|t| t.action == PlanAction::DemoteIndex)
            .count();
        assert_eq!(demotions, 1);
    }

    #[test]
    fn pair_switch_migrates_state_and_preserves_results() {
        // The blind default partitions (S1, S2), broadcasting S3 — but
        // stream 2 floods while stream 1 trickles, so every flood tuple is
        // replicated to all shards.  Key-routing the flood and
        // broadcasting the trickle is the right pairing; the switch
        // re-keys the anchor from a1 to a2, exercising the full
        // three-stream migration.
        let mut tuples = Vec::new();
        let mut seq = 0u64;
        for round in 0..100u64 {
            let ts = round * 4;
            tuples.push(tup_star(0, seq, ts, (round % 8) as i64, (round % 6) as i64));
            seq += 1;
            if round % 4 == 0 {
                tuples.push(tup(1, seq, ts, (round % 8) as i64));
                seq += 1;
            }
            for burst in 0..4u64 {
                tuples.push(tup(2, seq, ts, ((round + burst) % 6) as i64));
                seq += 1;
            }
        }
        fn tup_star(stream: usize, seq: u64, ts: u64, a1: i64, a2: i64) -> Tuple {
            Tuple::new(
                stream.into(),
                seq,
                Timestamp::from_millis(ts),
                vec![Value::Int(a1), Value::Int(a2)],
            )
        }
        let mut reference = JoinEngine::new(
            star_query(240),
            ProbeStrategy::Auto,
            true,
            ExecutionBackend::Sequential,
        );
        let (want_res, _, want_stats) = run_synced(&mut reference, &tuples, 100);
        for backend in [
            ExecutionBackend::Threads(4),
            ExecutionBackend::Pool { workers: 4 },
            ExecutionBackend::remote_inproc(4),
        ] {
            let mut engine = replanned(star_query(240), true, backend.clone());
            assert_eq!(engine.star_partner(), Some(1), "blind default [{backend}]");
            let epoch_before = engine.routing_epoch();
            let (res, _, stats) = run_synced(&mut engine, &tuples, 100);
            assert_eq!(
                res, want_res,
                "migrated state must keep the multiset [{backend}]"
            );
            assert_eq!(stats.results, want_stats.results, "{backend}");
            assert_eq!(stats.in_order, want_stats.in_order, "{backend}");
            assert_eq!(stats.expired, want_stats.expired, "{backend}");
            assert_eq!(
                engine.star_partner(),
                Some(2),
                "the pair must re-select the trickle satellite [{backend}]"
            );
            assert!(
                engine
                    .plan_transitions()
                    .iter()
                    .any(|t| matches!(t.action, PlanAction::PairSwitch { from: 1, to: 2 })),
                "{backend}: {:?}",
                engine.plan_transitions()
            );
            assert!(
                engine.routing_epoch() > epoch_before,
                "a pair switch must bump the routing epoch [{backend}]"
            );
            let migrated: u64 = (0..engine.shard_count())
                .map(|s| engine.runtime_stats(s).migrated_tuples)
                .sum();
            assert!(migrated > 0, "window state must move [{backend}]");
        }
    }
}

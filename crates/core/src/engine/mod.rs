//! The key-partitioned join engine: sharded windows behind the sequential
//! disorder-handling front-end.
//!
//! The paper's pipeline (Fig. 2) is inherently sequential *per stream* on
//! its control path — K-slack buffering, synchronization, statistics and
//! the PD/model-based adaptation of K are global decisions.  The expensive
//! stage is not: window insertion and the m-way probe only ever combine
//! tuples that agree on the equi-join key, so the join state can be
//! hash-partitioned by key across `n` independent **shards**, each owning a
//! full [`MswjOperator`] (windows + hash indexes) over its key slice.
//!
//! ```text
//!                         ┌──────────────── JoinEngine ────────────────┐
//!  front-end (sequential) │  route by key   ┌─ shard 0: MswjOperator ─┐│
//!  K-slack → Synchronizer ┼────────────────►├─ shard 1: MswjOperator ─┤├─► merged
//!  onT / expiry / n_x(e)  │  (broadcast for ├─ …                      ─┤│   events
//!  decided **globally**   │   star sats)    └─ shard n-1 ─────────────┘│
//!                         └────────────────────────────────────────────┘
//! ```
//!
//! ## Division of labour
//!
//! The engine front (this module) makes every decision that requires the
//! global picture, exactly as the unsharded operator would: the in-order /
//! out-of-order classification against the **global** high-water mark
//! `onT`, the out-of-order scope check, and the per-probe expiry counts and
//! cross-join sizes `n_x(e)` (via a global occupancy tracker, so adaptive
//! policies see identical statistics on every backend).  Shards only maintain
//! their windows and answer probes; a shard's own `onT` may lag the global
//! one, which is why late tuples reach it through
//! [`MswjOperator::insert_late`] instead of `push_with`.
//!
//! ## Determinism
//!
//! Events are emitted in staging order; a broadcast tuple's results are
//! merged in shard order.  The [`ExecutionBackend::Sequential`] backend is
//! byte-identical to the pre-engine pipeline; `Threads(n)` produces the
//! same result multiset (and, because `n_x(e)` is computed globally, the
//! same adaptation trajectory) for any `n` — pinned by
//! `tests/differential_backends.rs`.
//!
//! ## Fallback
//!
//! Conditions without a partitionable equi structure (cross joins, band
//! joins, UDFs, or an explicitly forced nested-loop probe) degrade to one
//! broadcast shard: same semantics, no parallelism.

mod exec;
mod occupancy;

use mswj_join::{
    JoinQuery, JoinResult, MswjOperator, OperatorStats, Partitioner, ProbeOutcome, ProbePlan,
    ProbeStrategy, Route,
};
use mswj_types::{StreamIndex, Timestamp, Tuple};
use occupancy::Occupancy;
use std::collections::VecDeque;

/// How the sharded join stage executes a routed batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionBackend {
    /// One shard on the calling thread — byte-identical to the pre-engine
    /// pipeline, and the default.
    #[default]
    Sequential,
    /// `n` shards executed by `n` scoped worker threads per batch
    /// (`std::thread::scope`), outputs merged in deterministic shard order.
    /// `Threads(1)` exercises the sharded machinery on a single shard and
    /// is equivalent to `Sequential`.
    Threads(usize),
}

impl ExecutionBackend {
    /// The number of shards this backend asks for (before the plan-driven
    /// fallback to one broadcast shard).
    pub fn requested_shards(self) -> usize {
        match self {
            ExecutionBackend::Sequential => 1,
            ExecutionBackend::Threads(n) => n.max(1),
        }
    }
}

impl std::fmt::Display for ExecutionBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionBackend::Sequential => write!(f, "sequential"),
            ExecutionBackend::Threads(n) => write!(f, "threads({n})"),
        }
    }
}

/// One event of the engine's output stream, delivered to the callback
/// passed to [`JoinEngine::flush`].
#[derive(Debug)]
pub enum EngineEvent<'a> {
    /// One materialized join result of the tuple currently finishing
    /// (enumerating engines only).
    Result(&'a JoinResult),
    /// A staged tuple finished processing: all of its results (if any) have
    /// been emitted, and this is its sequential-equivalent outcome.
    Done(ProbeOutcome),
}

/// One queued unit of shard work.
struct Item {
    /// Index of the staged tuple this item belongs to (its position in the
    /// current batch).
    seq: u32,
    /// `true` → in-order: expire, probe, insert (`push_with`);
    /// `false` → globally late: absorb without probing (`insert_late`).
    probe: bool,
    /// The tuple itself (a cheap clone per extra shard for broadcasts).
    tuple: Tuple,
}

/// Where a staged tuple's work was queued.
#[derive(Debug, Clone, Copy)]
enum Placement {
    /// Dropped by the global scope check: no shard work at all.
    None,
    /// Owned by one shard.
    One(u32),
    /// Broadcast to every shard.
    All,
}

/// The globally decided part of one staged tuple's outcome.
#[derive(Debug, Clone, Copy)]
struct Decision {
    in_order: bool,
    inserted: bool,
    n_cross: u64,
    expired: usize,
    placement: Placement,
}

/// A shard's contribution to one probing tuple's outcome.
#[derive(Debug, Clone, Copy)]
struct SubOutcome {
    seq: u32,
    n_join: u64,
    indexed: bool,
}

/// The sharded join stage: routing front plus `n` shard operators.
pub struct JoinEngine {
    shards: Vec<MswjOperator>,
    partitioner: Partitioner,
    backend: ExecutionBackend,
    query: JoinQuery,
    on_t: Timestamp,
    started: bool,
    occupancy: Occupancy,
    stats: OperatorStats,
    /// Staged tuples awaiting the next [`JoinEngine::flush`].
    pending: Vec<Tuple>,
    /// Reusable routing / execution buffers (capacity persists across
    /// batches, so a steady-state flush allocates nothing on the
    /// sequential path).
    decisions: Vec<Decision>,
    queues: Vec<VecDeque<Item>>,
    sub: Vec<Vec<SubOutcome>>,
    mat: Vec<Vec<(u32, JoinResult)>>,
}

impl std::fmt::Debug for JoinEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinEngine")
            .field("backend", &self.backend)
            .field("shards", &self.shards.len())
            .field("plan", &self.probe_plan().describe())
            .field("on_t", &self.on_t)
            .field("stats", &self.stats)
            .finish()
    }
}

impl JoinEngine {
    /// Builds the engine for a query: plans the probe path, derives the
    /// partitioning rules and instantiates one [`MswjOperator`] per shard.
    ///
    /// Unpartitionable plans (nested-loop probes) always get exactly one
    /// shard, whatever the backend requests.
    pub fn new(
        query: JoinQuery,
        strategy: ProbeStrategy,
        enumerate: bool,
        backend: ExecutionBackend,
    ) -> Self {
        let equi = query.condition().equi_structure();
        let plan = ProbePlan::new(strategy, equi.as_ref());
        let partitioner = Partitioner::new(&plan, backend.requested_shards());
        let n = partitioner.shard_count();
        let shards = (0..n)
            .map(|_| MswjOperator::with_probe(query.clone(), strategy, enumerate))
            .collect();
        let m = query.arity();
        JoinEngine {
            shards,
            partitioner,
            backend,
            on_t: Timestamp::ZERO,
            started: false,
            occupancy: Occupancy::new(m),
            stats: OperatorStats::default(),
            pending: Vec::new(),
            decisions: Vec::new(),
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            sub: (0..n).map(|_| Vec::new()).collect(),
            mat: (0..n).map(|_| Vec::new()).collect(),
            query,
        }
    }

    /// The backend this engine executes with.
    pub fn backend(&self) -> ExecutionBackend {
        self.backend
    }

    /// Number of shards actually instantiated (1 for unpartitionable
    /// plans, the backend's request otherwise).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard operator at `s` — windows, hash indexes and per-shard
    /// counters are all inspectable through it.
    pub fn shard(&self, s: usize) -> &MswjOperator {
        &self.shards[s]
    }

    /// Per-shard lifetime counters: each shard's own [`OperatorStats`],
    /// reflecting the probes, inserts and expirations that shard performed.
    pub fn shard_stats(&self) -> Vec<OperatorStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Aggregate counters, kept **sequential-equivalent**: ordering, drop
    /// and expiry counts come from the engine's global decisions, result
    /// counts from the shards.  (Per-shard `indexed`/`fallback` tallies can
    /// legitimately differ from an unsharded run — an unindexable value
    /// only poisons the shard it lives in.)
    pub fn stats(&self) -> OperatorStats {
        self.stats
    }

    /// The routing rules in force.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// The probe access path shared by every shard.
    pub fn probe_plan(&self) -> &ProbePlan {
        self.shards[0].probe_plan()
    }

    /// The global high-water timestamp `onT` — the watermark of the merged
    /// result stream.
    pub fn on_t(&self) -> Timestamp {
        self.on_t
    }

    /// Whether the engine materializes results.
    pub fn is_enumerating(&self) -> bool {
        self.shards[0].is_enumerating()
    }

    /// Stages one synchronized tuple for the next [`JoinEngine::flush`].
    pub fn stage(&mut self, tuple: Tuple) {
        self.pending.push(tuple);
    }

    /// Whether any staged tuples await execution.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Stages a whole batch and flushes it — the amortized entry point for
    /// callers that do not need the pipeline front-end.
    pub fn push_batch<I>(&mut self, tuples: I, f: &mut dyn FnMut(EngineEvent<'_>))
    where
        I: IntoIterator<Item = Tuple>,
    {
        for t in tuples {
            self.stage(t);
        }
        self.flush(f);
    }

    /// Routes and executes every staged tuple, delivering the event stream
    /// to `f`: zero or more [`EngineEvent::Result`]s per tuple (enumerating
    /// engines), then exactly one [`EngineEvent::Done`] per staged tuple,
    /// in staging order.
    pub fn flush(&mut self, f: &mut dyn FnMut(EngineEvent<'_>)) {
        if self.pending.is_empty() {
            return;
        }
        self.route_pending();
        let items: usize = self.queues.iter().map(VecDeque::len).sum();
        let threaded =
            matches!(self.backend, ExecutionBackend::Threads(_)) && self.shards.len() > 1;
        if threaded && items > 0 {
            exec::run_threaded(
                &mut self.shards,
                &mut self.queues,
                &mut self.sub,
                &mut self.mat,
            );
            exec::merge_threaded(
                &self.decisions,
                &mut self.sub,
                &mut self.mat,
                &mut self.stats,
                f,
            );
        } else {
            exec::run_inline(
                &mut self.shards,
                &mut self.queues,
                &self.decisions,
                &mut self.stats,
                f,
            );
        }
        self.decisions.clear();
    }

    /// The sequential routing phase: classify every staged tuple against
    /// the global `onT`, replay the global expiry/occupancy accounting, and
    /// queue the shard work.
    fn route_pending(&mut self) {
        let mut pending = std::mem::take(&mut self.pending);
        for (idx, tuple) in pending.drain(..).enumerate() {
            let seq = idx as u32;
            let i = tuple.stream.as_usize();
            let in_order = !self.started || tuple.ts >= self.on_t;
            if in_order {
                self.on_t = tuple.ts;
                self.started = true;
                let mut expired = 0usize;
                let mut n_cross = 1u64;
                for j in 0..self.query.arity() {
                    if j != i {
                        let w_j = self.query.window(StreamIndex(j));
                        let bound = tuple.ts.saturating_sub_duration(w_j);
                        expired += self.occupancy.expire(j, bound);
                        n_cross = n_cross.saturating_mul(self.occupancy.len(j) as u64);
                    }
                }
                self.occupancy.insert(i, tuple.ts);
                let placement = self.enqueue(seq, true, tuple);
                self.decisions.push(Decision {
                    in_order: true,
                    inserted: true,
                    n_cross,
                    expired,
                    placement,
                });
            } else {
                // Global scope check (e.ts >= onT - W_i, Sec. III-A): a
                // shard's lagging view must not resurrect a tuple the
                // unsharded operator would drop.
                let w_i = self.query.window(StreamIndex(i));
                let keep = tuple.ts >= self.on_t.saturating_sub_duration(w_i);
                let placement = if keep {
                    self.occupancy.insert(i, tuple.ts);
                    self.enqueue(seq, false, tuple)
                } else {
                    Placement::None
                };
                self.decisions.push(Decision {
                    in_order: false,
                    inserted: keep,
                    n_cross: 0,
                    expired: 0,
                    placement,
                });
            }
        }
        self.pending = pending;
    }

    /// Queues one tuple's shard work according to its route.
    fn enqueue(&mut self, seq: u32, probe: bool, tuple: Tuple) -> Placement {
        match self.partitioner.route(&tuple) {
            Route::One(s) => {
                self.queues[s].push_back(Item { seq, probe, tuple });
                Placement::One(s as u32)
            }
            Route::All => {
                let last = self.queues.len() - 1;
                for s in 0..last {
                    self.queues[s].push_back(Item {
                        seq,
                        probe,
                        tuple: tuple.clone(),
                    });
                }
                self.queues[last].push_back(Item { seq, probe, tuple });
                Placement::All
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_join::CommonKeyEquiJoin;
    use mswj_types::{FieldType, Schema, StreamSet, Value};
    use std::sync::Arc;

    fn equi_query(m: usize, window: u64) -> JoinQuery {
        let streams =
            StreamSet::homogeneous(m, Schema::new(vec![("a1", FieldType::Int)]), window).unwrap();
        let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
        JoinQuery::new("engine-test", streams, cond).unwrap()
    }

    fn tup(stream: usize, seq: u64, ts: u64, key: i64) -> Tuple {
        Tuple::new(
            stream.into(),
            seq,
            Timestamp::from_millis(ts),
            vec![Value::Int(key)],
        )
    }

    /// Drives `tuples` through an engine and returns (sorted result
    /// strings, outcomes).
    fn run(
        backend: ExecutionBackend,
        enumerate: bool,
        tuples: &[Tuple],
    ) -> (Vec<String>, Vec<ProbeOutcome>, OperatorStats) {
        let mut engine = JoinEngine::new(
            equi_query(2, 1_000),
            ProbeStrategy::Auto,
            enumerate,
            backend,
        );
        let mut results = Vec::new();
        let mut outcomes = Vec::new();
        engine.push_batch(tuples.iter().cloned(), &mut |ev| match ev {
            EngineEvent::Result(r) => results.push(r.to_string()),
            EngineEvent::Done(o) => outcomes.push(o),
        });
        results.sort();
        (results, outcomes, engine.stats())
    }

    #[test]
    fn sequential_engine_matches_the_unsharded_operator() {
        let tuples: Vec<Tuple> = (0..40u64)
            .map(|s| tup((s % 2) as usize, s, s * 10, (s % 3) as i64))
            .collect();
        let (_, outcomes, stats) = run(ExecutionBackend::Sequential, false, &tuples);
        let mut op = MswjOperator::new(equi_query(2, 1_000));
        for (t, engine_outcome) in tuples.iter().zip(&outcomes) {
            let direct = op.push(t.clone());
            assert_eq!(&direct, engine_outcome, "outcome mismatch at {t}");
        }
        assert_eq!(stats, op.stats());
    }

    #[test]
    fn threaded_backends_agree_with_sequential() {
        let tuples: Vec<Tuple> = (0..120u64)
            .map(|s| {
                let late = s % 7 == 0 && s > 0;
                let ts = if late { s * 10 - 60 } else { s * 10 };
                tup((s % 2) as usize, s, ts, (s % 5) as i64)
            })
            .collect();
        let (seq_res, seq_out, seq_stats) = run(ExecutionBackend::Sequential, true, &tuples);
        for n in [1usize, 3, 4] {
            let (res, out, stats) = run(ExecutionBackend::Threads(n), true, &tuples);
            assert_eq!(seq_res, res, "result multiset diverged at {n} shards");
            assert_eq!(seq_out.len(), out.len());
            for (a, b) in seq_out.iter().zip(&out) {
                assert_eq!(a.in_order, b.in_order);
                assert_eq!(a.inserted, b.inserted);
                assert_eq!(a.n_join, b.n_join);
                assert_eq!(a.n_cross, b.n_cross, "global n_x(e) must not shard");
                assert_eq!(a.expired, b.expired);
            }
            assert_eq!(seq_stats.results, stats.results);
            assert_eq!(seq_stats.in_order, stats.in_order);
            assert_eq!(seq_stats.out_of_order, stats.out_of_order);
            assert_eq!(seq_stats.dropped, stats.dropped);
            assert_eq!(seq_stats.expired, stats.expired);
            assert_eq!(seq_stats.cross_results, stats.cross_results);
        }
    }

    #[test]
    fn sharded_windows_partition_the_global_state() {
        let tuples: Vec<Tuple> = (0..200u64)
            .map(|s| tup((s % 2) as usize, s, s * 5, (s % 16) as i64))
            .collect();
        let mut engine = JoinEngine::new(
            equi_query(2, 500),
            ProbeStrategy::Auto,
            false,
            ExecutionBackend::Threads(4),
        );
        assert_eq!(engine.shard_count(), 4);
        engine.push_batch(tuples, &mut |_| {});
        let per_shard = engine.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert!(
            per_shard.iter().filter(|s| s.in_order > 0).count() >= 3,
            "16 keys must spread probes over the shards: {per_shard:?}"
        );
        // The shard windows partition the global state (common-key plans
        // never broadcast).  Shards expire lazily — only a probe *in that
        // shard* drains it — so stale tuples may linger; restricted to the
        // in-scope suffix, the sharded and unsharded views must agree.
        let mut reference = MswjOperator::new(equi_query(2, 500));
        for s in 0..200u64 {
            reference.push(tup((s % 2) as usize, s, s * 5, (s % 16) as i64));
        }
        assert_eq!(engine.on_t(), reference.on_t());
        for stream in 0..2 {
            let bound = engine.on_t().saturating_sub_duration(500);
            let in_scope = |w: &mswj_join::Window| w.iter().filter(|t| t.ts >= bound).count();
            let sharded: usize = (0..4)
                .map(|s| in_scope(engine.shard(s).window(StreamIndex(stream))))
                .sum();
            assert_eq!(sharded, in_scope(reference.window(StreamIndex(stream))));
            let raw: usize = (0..4)
                .map(|s| engine.shard(s).window(StreamIndex(stream)).len())
                .sum();
            assert!(raw >= reference.window(StreamIndex(stream)).len());
        }
    }

    #[test]
    fn unpartitionable_plans_collapse_to_one_shard() {
        let engine = JoinEngine::new(
            equi_query(2, 1_000),
            ProbeStrategy::NestedLoop,
            false,
            ExecutionBackend::Threads(8),
        );
        assert_eq!(engine.shard_count(), 1);
        assert!(!engine.partitioner().is_partitioned());
    }

    #[test]
    fn flush_without_pending_is_a_no_op() {
        let mut engine = JoinEngine::new(
            equi_query(2, 1_000),
            ProbeStrategy::Auto,
            false,
            ExecutionBackend::Sequential,
        );
        let mut events = 0u32;
        engine.flush(&mut |_| events += 1);
        assert_eq!(events, 0);
        assert!(!engine.has_pending());
        assert_eq!(engine.backend(), ExecutionBackend::Sequential);
        assert!(!engine.is_enumerating());
        assert_eq!(engine.on_t(), Timestamp::ZERO);
    }
}

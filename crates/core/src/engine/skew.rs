//! Runtime skew detection for the sharded join stage.
//!
//! Hash routing sends a key class's entire build state *and* probe work to
//! one shard, so a Zipf hot key degrades an `n`-shard engine to one shard.
//! The `SkewDetector` watches the key classes flowing through the
//! sequential routing front and decides — only at epoch barriers, where no
//! shard work is in flight — which classes to switch to *replicated-build /
//! split-probe* routing and which to revert.
//!
//! Detection is **windowed**: every evaluation looks at the traffic since
//! the previous evaluation, not at lifetime counters, so a hot key that
//! emerges late is still caught (lifetime shares would dilute it into
//! invisibility).  A window only counts once it holds at least
//! [`SkewConfig::min_routed`] observations; thinner windows are carried
//! forward so sparse traffic accumulates evidence instead of resetting it.
//!
//! Per-window key shares come from a deterministic *space-saving* sketch
//! over [`join_key_hash`](mswj_join::join_key_hash) classes: bounded
//! memory, at most `capacity` tracked classes, and an overestimate of at
//! most `window / capacity` per class — far below the split threshold, so
//! no splittable key is ever missed and only keys already near the
//! threshold could be overestimated into a split (which is safe, just
//! eager).  All tie-breaks are positional, so two engines fed the same
//! tuple sequence make byte-identical decisions — the backbone of the
//! cross-backend differential contract.
//!
//! Hysteresis keeps routing from flapping: a class splits above
//! [`SkewConfig::split_share`] and only reverts below the strictly smaller
//! [`SkewConfig::unsplit_share`].

use mswj_join::RoutingTable;
use mswj_types::Timestamp;
use std::collections::HashMap;

/// Thresholds of the adaptive hot-key splitting detector, set through
/// `SessionBuilder::skew_splitting` /
/// `SessionBuilder::skew_splitting_with`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewConfig {
    /// A key class whose share of the evaluation window's routed traffic
    /// exceeds this splits (replicated build / split probe).  Default 0.5:
    /// the windowed analogue of the heavy-hitter majority warning.
    pub split_share: f64,
    /// A split key class whose windowed share falls below this reverts to
    /// plain hash routing.  Must be strictly below
    /// [`split_share`](SkewConfig::split_share) — the gap is the hysteresis
    /// band that keeps borderline keys from flapping.  Default 0.25.
    pub unsplit_share: f64,
    /// Minimum routed observations before a window is judged at all;
    /// thinner windows carry forward to the next barrier.  Default 1024.
    pub min_routed: u64,
}

impl Default for SkewConfig {
    fn default() -> Self {
        SkewConfig {
            split_share: 0.5,
            unsplit_share: 0.25,
            min_routed: 1_024,
        }
    }
}

impl SkewConfig {
    /// Validates the thresholds: shares must satisfy
    /// `0 < unsplit_share < split_share <= 1` and `min_routed` must be
    /// positive.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.split_share > 0.0 && self.split_share <= 1.0) {
            return Err(format!(
                "skew split_share must be in (0, 1], got {}",
                self.split_share
            ));
        }
        if !(self.unsplit_share > 0.0 && self.unsplit_share < self.split_share) {
            return Err(format!(
                "skew unsplit_share must be in (0, split_share): got {} against {}",
                self.unsplit_share, self.split_share
            ));
        }
        if self.min_routed == 0 {
            return Err("skew min_routed must be at least 1".into());
        }
        Ok(())
    }
}

/// One routing transition taken by the skew detector, in decision order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewTransition {
    /// The [`join_key_hash`](mswj_join::join_key_hash) class that changed
    /// routing.
    pub key_hash: u64,
    /// `true` → the class switched to replicated-build / split-probe;
    /// `false` → it reverted to plain hash routing.
    pub split: bool,
    /// The class's share of the evaluation window that triggered the
    /// transition.
    pub share: f64,
    /// The engine's global high-water mark `onT` at the decision barrier.
    pub at: Timestamp,
}

/// Key classes with the windowed share that triggered their transition.
type ClassShares = Vec<(u64, f64)>;

/// Tracked classes of the space-saving sketch: enough room that a class
/// at any realistic split threshold cannot be evicted, tiny enough that
/// the eviction scan is cheap.
const SKETCH_CAPACITY: usize = 64;

/// Windowed top-key detector: a space-saving sketch per evaluation window
/// plus the hysteresis rules of [`SkewConfig`].
#[derive(Debug)]
pub(super) struct SkewDetector {
    config: SkewConfig,
    /// `(key class, windowed count)`, positionally stable so eviction
    /// tie-breaks are deterministic.
    entries: Vec<(u64, u64)>,
    /// Key class → index into `entries`.
    index: HashMap<u64, usize>,
    /// Observations in the current window (tracked or not).
    window: u64,
}

impl SkewDetector {
    pub(super) fn new(config: SkewConfig) -> Self {
        debug_assert!(config.validate().is_ok(), "unvalidated skew config");
        SkewDetector {
            config,
            entries: Vec::with_capacity(SKETCH_CAPACITY),
            index: HashMap::with_capacity(SKETCH_CAPACITY),
            window: 0,
        }
    }

    pub(super) fn config(&self) -> SkewConfig {
        self.config
    }

    /// Records one routed key-class observation (space-saving update).
    pub(super) fn observe(&mut self, hash: u64) {
        self.window += 1;
        if let Some(&at) = self.index.get(&hash) {
            self.entries[at].1 += 1;
            return;
        }
        if self.entries.len() < SKETCH_CAPACITY {
            self.index.insert(hash, self.entries.len());
            self.entries.push((hash, 1));
            return;
        }
        // Replace the first minimal entry, inheriting its count — the
        // classic space-saving overestimate, bounded by window / capacity.
        let (at, _) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, count))| *count)
            .expect("sketch is non-empty at capacity");
        let (old, count) = self.entries[at];
        self.index.remove(&old);
        self.index.insert(hash, at);
        self.entries[at] = (hash, count + 1);
    }

    /// Observations accumulated in the current window.
    #[cfg(test)]
    pub(super) fn window_total(&self) -> u64 {
        self.window
    }

    /// Judges the current window against `table`: returns the classes to
    /// split and to unsplit, each with the windowed share that triggered
    /// it.  The caller applies the transitions and then calls
    /// [`SkewDetector::reset`]; the decision order is deterministic
    /// (sketch insertion order for splits, sorted class order for
    /// unsplits).
    pub(super) fn evaluate(&self, table: &RoutingTable) -> (ClassShares, ClassShares) {
        let total = self.window as f64;
        let share_of = |hash: u64| -> f64 {
            self.index
                .get(&hash)
                .map(|&at| self.entries[at].1 as f64 / total)
                .unwrap_or(0.0)
        };
        let to_split = self
            .entries
            .iter()
            .filter(|(hash, count)| {
                !table.is_split(*hash) && *count as f64 / total > self.config.split_share
            })
            .map(|&(hash, count)| (hash, count as f64 / total))
            .collect();
        let to_unsplit = table
            .split_classes()
            .iter()
            .filter(|&&hash| share_of(hash) < self.config.unsplit_share)
            .map(|&hash| (hash, share_of(hash)))
            .collect();
        (to_split, to_unsplit)
    }

    /// Starts a fresh evaluation window.
    pub(super) fn reset(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.window = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates_and_bad_ones_do_not() {
        assert!(SkewConfig::default().validate().is_ok());
        let c = SkewConfig {
            split_share: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SkewConfig {
            unsplit_share: SkewConfig::default().split_share,
            ..Default::default()
        };
        assert!(c.validate().is_err(), "hysteresis band must be non-empty");
        let c = SkewConfig {
            min_routed: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn hot_keys_split_and_revert_with_hysteresis() {
        let mut det = SkewDetector::new(SkewConfig {
            split_share: 0.5,
            unsplit_share: 0.25,
            min_routed: 16,
        });
        let mut table = RoutingTable::new();
        // 60% of the window on one class: split.
        for i in 0..100u64 {
            det.observe(if i % 10 < 6 { 7 } else { 1_000 + i });
        }
        let (split, unsplit) = det.evaluate(&table);
        assert_eq!(split.len(), 1);
        assert_eq!(split[0].0, 7);
        assert!(split[0].1 > 0.5);
        assert!(unsplit.is_empty());
        table.split(7);
        det.reset();
        // 40% next window: inside the hysteresis band, no transition.
        for i in 0..100u64 {
            det.observe(if i % 10 < 4 { 7 } else { 1_000 + i });
        }
        let (split, unsplit) = det.evaluate(&table);
        assert!(split.is_empty() && unsplit.is_empty(), "hysteresis holds");
        det.reset();
        // 10% next window: revert.
        for i in 0..100u64 {
            det.observe(if i % 10 < 1 { 7 } else { 1_000 + i });
        }
        let (split, unsplit) = det.evaluate(&table);
        assert!(split.is_empty());
        assert_eq!(unsplit, vec![(7, 0.1)]);
    }

    #[test]
    fn sketch_eviction_keeps_heavy_classes() {
        let mut det = SkewDetector::new(SkewConfig::default());
        // A flood of distinct cold classes around one hot class: the hot
        // class must survive eviction with a near-exact count.
        for i in 0..10_000u64 {
            det.observe(if i % 2 == 0 { 42 } else { 1_000 + i });
        }
        let table = RoutingTable::new();
        let (split, _) = det.evaluate(&table);
        assert_eq!(det.window_total(), 10_000);
        assert!(
            split.is_empty(),
            "a 50% class must not exceed the 0.5 split threshold: {split:?}"
        );
        let mut det = SkewDetector::new(SkewConfig {
            split_share: 0.4,
            unsplit_share: 0.2,
            min_routed: 16,
        });
        for i in 0..10_000u64 {
            det.observe(if i % 2 == 0 { 42 } else { 1_000 + i });
        }
        let (split, _) = det.evaluate(&table);
        assert_eq!(split.len(), 1, "the hot class must survive the sketch");
        assert_eq!(split[0].0, 42);
    }
}

//! User-facing configuration of the quality-driven disorder handling.
//!
//! The paper exposes two *user requirements* — the recall requirement `Γ`
//! and the result-quality measurement period `P` — and three *system
//! parameters*: the adaptation interval `L`, the basic-window size `b` and
//! the K-search granularity `g` (Table I and Sec. VI, *Default Parameter
//! Configuration*).
//!
//! Orthogonally to the disorder parameters, a session chooses a
//! [`ProbeStrategy`] for the join operator's window probes (re-exported
//! here from `mswj-join`): [`ProbeStrategy::Auto`] plans hash-indexed
//! bucket lookups from the condition's equi structure, while
//! [`ProbeStrategy::NestedLoop`] forces the exhaustive reference scan —
//! the knob the differential test harness uses to prove both paths
//! equivalent.  See [`SessionBuilder::probe`](crate::SessionBuilder::probe).

use mswj_types::{Duration, Error, Result};
use serde::{Deserialize, Serialize};

pub use mswj_join::{ProbePlan, ProbeStrategy};

/// How the ratio `sel_on(K) / sel_on` of Eq. 5 is modelled (Sec. IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SelectivityStrategy {
    /// Assume the join selectivity is unaffected by incomplete disorder
    /// handling (`sel_on(K) = sel_on`); equivalent to modelling recall on
    /// cross-join result sizes only.
    EqSel,
    /// Learn the delay↔productivity correlation from the join output and
    /// estimate `sel_on(K)` per candidate K via Eq. 6.  The paper finds this
    /// strategy more robust and uses it by default.
    #[default]
    NonEqSel,
}

impl std::fmt::Display for SelectivityStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectivityStrategy::EqSel => write!(f, "EqSel"),
            SelectivityStrategy::NonEqSel => write!(f, "NonEqSel"),
        }
    }
}

/// Configuration of the quality-driven Buffer-Size Manager.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisorderConfig {
    /// User-specified minimum recall requirement `Γ` in `(0, 1]`.
    pub gamma: f64,
    /// User-specified result-quality measurement period `P` (ms).
    pub period_p: Duration,
    /// Adaptation interval `L` (ms); must satisfy `L ≤ P`.
    pub interval_l: Duration,
    /// Basic-window size `b` (ms) used by the completeness model (Eq. 3).
    pub basic_window_b: Duration,
    /// K-search granularity `g` (ms) used by Alg. 3 and by the coarse delay
    /// histograms.
    pub granularity_g: Duration,
    /// Selectivity modelling strategy (EqSel vs NonEqSel).
    pub selectivity: SelectivityStrategy,
}

impl Default for DisorderConfig {
    /// The paper's default parameter configuration:
    /// `P` = 1 min, `b` = 10 ms, `g` = 10 ms, `L` = 1 s, NonEqSel.
    fn default() -> Self {
        DisorderConfig {
            gamma: 0.99,
            period_p: 60_000,
            interval_l: 1_000,
            basic_window_b: 10,
            granularity_g: 10,
            selectivity: SelectivityStrategy::NonEqSel,
        }
    }
}

impl DisorderConfig {
    /// Creates the paper-default configuration with the given `Γ`.
    pub fn with_gamma(gamma: f64) -> Self {
        DisorderConfig {
            gamma,
            ..Default::default()
        }
    }

    /// Validates all invariants the paper states:
    /// `0 < Γ ≤ 1`, `0 < L ≤ P`, `b > 0`, `g > 0`.
    pub fn validate(&self) -> Result<()> {
        if !(self.gamma > 0.0 && self.gamma <= 1.0) {
            return Err(Error::InvalidConfig(format!(
                "recall requirement Γ must be in (0, 1], got {}",
                self.gamma
            )));
        }
        if self.interval_l == 0 {
            return Err(Error::InvalidConfig(
                "adaptation interval L must be positive".into(),
            ));
        }
        if self.interval_l > self.period_p {
            return Err(Error::InvalidConfig(format!(
                "adaptation interval L ({} ms) must not exceed the measurement period P ({} ms)",
                self.interval_l, self.period_p
            )));
        }
        if self.basic_window_b == 0 {
            return Err(Error::InvalidConfig(
                "basic window size b must be positive".into(),
            ));
        }
        if self.granularity_g == 0 {
            return Err(Error::InvalidConfig(
                "K-search granularity g must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Builder-style setter for the measurement period `P`.
    pub fn period(mut self, p: Duration) -> Self {
        self.period_p = p;
        self
    }

    /// Builder-style setter for the adaptation interval `L`.
    pub fn interval(mut self, l: Duration) -> Self {
        self.interval_l = l;
        self
    }

    /// Builder-style setter for the basic-window size `b`.
    pub fn basic_window(mut self, b: Duration) -> Self {
        self.basic_window_b = b;
        self
    }

    /// Builder-style setter for the K-search granularity `g`.
    pub fn granularity(mut self, g: Duration) -> Self {
        self.granularity_g = g;
        self
    }

    /// Builder-style setter for the selectivity strategy.
    pub fn selectivity_strategy(mut self, s: SelectivityStrategy) -> Self {
        self.selectivity = s;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_defaults() {
        let c = DisorderConfig::default();
        assert_eq!(c.period_p, 60_000);
        assert_eq!(c.interval_l, 1_000);
        assert_eq!(c.basic_window_b, 10);
        assert_eq!(c.granularity_g, 10);
        assert_eq!(c.selectivity, SelectivityStrategy::NonEqSel);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let c = DisorderConfig::with_gamma(0.95)
            .period(30_000)
            .interval(500)
            .basic_window(20)
            .granularity(100)
            .selectivity_strategy(SelectivityStrategy::EqSel);
        assert_eq!(c.gamma, 0.95);
        assert_eq!(c.period_p, 30_000);
        assert_eq!(c.interval_l, 500);
        assert_eq!(c.basic_window_b, 20);
        assert_eq!(c.granularity_g, 100);
        assert_eq!(c.selectivity, SelectivityStrategy::EqSel);
        assert!(c.validate().is_ok());
    }

    #[track_caller]
    fn assert_invalid(result: Result<()>, needle: &str) {
        match result {
            Err(Error::InvalidConfig(msg)) => {
                assert!(msg.contains(needle), "message `{msg}` misses `{needle}`")
            }
            other => panic!("expected InvalidConfig({needle}), got {other:?}"),
        }
    }

    #[test]
    fn validation_rejects_bad_parameters_with_specific_errors() {
        assert_invalid(DisorderConfig::with_gamma(0.0).validate(), "Γ");
        assert_invalid(DisorderConfig::with_gamma(-0.1).validate(), "Γ");
        assert_invalid(DisorderConfig::with_gamma(1.5).validate(), "got 1.5");
        assert_invalid(DisorderConfig::with_gamma(f64::NAN).validate(), "Γ");
        assert_invalid(
            DisorderConfig::default().interval(0).validate(),
            "adaptation interval L must be positive",
        );
        assert_invalid(
            DisorderConfig::default()
                .period(500)
                .interval(1_000)
                .validate(),
            "must not exceed the measurement period",
        );
        assert_invalid(
            DisorderConfig::default().basic_window(0).validate(),
            "basic window size b must be positive",
        );
        assert_invalid(
            DisorderConfig::default().granularity(0).validate(),
            "granularity g must be positive",
        );
        // Boundary values are accepted: Γ = 1 and L = P are legal.
        assert!(DisorderConfig::with_gamma(1.0).validate().is_ok());
        assert!(DisorderConfig::default()
            .period(1_000)
            .interval(1_000)
            .validate()
            .is_ok());
    }

    #[test]
    fn strategy_display() {
        assert_eq!(SelectivityStrategy::EqSel.to_string(), "EqSel");
        assert_eq!(SelectivityStrategy::NonEqSel.to_string(), "NonEqSel");
        assert_eq!(
            SelectivityStrategy::default(),
            SelectivityStrategy::NonEqSel
        );
    }
}

//! The Buffer-Size Manager: model-based K adaptation (Alg. 3, Sec. IV).
//!
//! At the end of every adaptation interval of `L` milliseconds the manager
//! derives the *instant* recall requirement `Γ'` for the next interval
//! (Eq. 7), then searches for the smallest buffer size `k*` — in steps of
//! the K-search granularity `g`, bounded by the maximum observed delay
//! `MaxDH` — whose model-predicted recall `γ(L, k*)` meets `Γ'` (Alg. 3).
//! The Same-K policy (Theorem 1) lets the same `k*` be applied to every
//! K-slack component.

use crate::config::{DisorderConfig, SelectivityStrategy};
use crate::model::{ModelInputs, RecallModel};
use crate::profiler::ProductivityProfiler;
use crate::result_monitor::ResultSizeMonitor;
use crate::statistics::StatisticsManager;
use mswj_types::{Duration, StreamIndex, Timestamp};
use std::time::Instant;

/// The decision produced by one adaptation step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptationOutcome {
    /// Buffer size `k*` to apply to every K-slack component for the next
    /// adaptation interval (ms).
    pub k: Duration,
    /// The instant recall requirement `Γ'` used in the search.
    pub gamma_prime: f64,
    /// The model-estimated recall at the chosen `k*`.
    pub estimated_recall: f64,
    /// Number of candidate K values examined by Alg. 3.
    pub steps: u32,
    /// Wall-clock time the adaptation step took (Fig. 11's metric), in
    /// nanoseconds.
    pub elapsed_nanos: u64,
    /// The `MaxDH` bound used for the search (ms).
    pub max_delay: Duration,
}

/// Model-based Buffer-Size Manager.
#[derive(Debug, Clone)]
pub struct BufferSizeManager {
    config: DisorderConfig,
    windows: Vec<Duration>,
}

impl BufferSizeManager {
    /// Creates a manager for a query with the given per-stream window sizes.
    pub fn new(config: DisorderConfig, windows: Vec<Duration>) -> Self {
        BufferSizeManager { config, windows }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DisorderConfig {
        &self.config
    }

    /// Derives the instant recall requirement `Γ'` from Eq. 7:
    ///
    /// ```text
    ///   N_prod(P−L) + N_true(L)·Γ'
    ///   ─────────────────────────── >= Γ
    ///   N_true(P−L) + N_true(L)
    /// ```
    ///
    /// solved for `Γ'` and clamped into `[0, 1]` (the paper's `max{Γ', 1}`
    /// is read as the obvious cap at 1 — a recall requirement above 1 is
    /// unsatisfiable).
    pub fn instant_requirement(
        &self,
        n_prod_history: u64,
        n_true_history: u64,
        n_true_next: u64,
    ) -> f64 {
        if n_true_next == 0 {
            return self.config.gamma;
        }
        let gamma = self.config.gamma;
        let needed = gamma * (n_true_history as f64 + n_true_next as f64) - n_prod_history as f64;
        (needed / n_true_next as f64).clamp(0.0, 1.0)
    }

    /// Runs one model-based adaptation step (Alg. 3).
    pub fn adapt(
        &self,
        stats: &StatisticsManager,
        profiler: &ProductivityProfiler,
        monitor: &mut ResultSizeMonitor,
        now: Timestamp,
    ) -> AdaptationOutcome {
        let start = Instant::now();
        let g = self.config.granularity_g.max(1);
        let max_delay = stats.max_delay();

        // Instant recall requirement Γ' (Eq. 7).
        let n_true_next = profiler.n_true_estimate();
        let n_prod_hist = monitor.produced_within(now);
        let n_true_hist = monitor.true_within(now);
        let gamma_prime = self.instant_requirement(n_prod_hist, n_true_hist, n_true_next);

        // Build the recall model from the current statistics.
        let m = stats.arity();
        let inputs = ModelInputs {
            windows: self.windows.clone(),
            histograms: (0..m)
                .map(|i| stats.delay_histogram(StreamIndex(i)))
                .collect(),
            k_sync: stats.k_sync_estimates(),
            basic_window: self.config.basic_window_b,
            granularity: g,
        };
        let model = RecallModel::new(inputs);

        // Alg. 3: trial-and-error search in steps of g.
        let selectivity = profiler.selectivity_table();
        let mut k: Duration = 0;
        let mut steps: u32 = 0;
        let estimated = loop {
            steps += 1;
            let ratio = match self.config.selectivity {
                SelectivityStrategy::EqSel => 1.0,
                SelectivityStrategy::NonEqSel => selectivity.ratio(k),
            };
            let estimated = model.estimate_recall(k, ratio);
            if estimated >= gamma_prime || k > max_delay {
                break estimated;
            }
            k += g;
        };

        AdaptationOutcome {
            k,
            gamma_prime,
            estimated_recall: estimated,
            steps,
            elapsed_nanos: start.elapsed().as_nanos() as u64,
            max_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_types::Timestamp;

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn manager(gamma: f64) -> BufferSizeManager {
        BufferSizeManager::new(DisorderConfig::with_gamma(gamma), vec![5_000, 5_000])
    }

    /// Statistics with two streams whose delays are uniform over
    /// {0, 100, 200, ..., 900} ms.
    fn uniform_delay_stats() -> StatisticsManager {
        let mut sm = StatisticsManager::new(2, 10);
        for stream in 0..2 {
            let mut t = 0u64;
            for i in 0..2_000u64 {
                t += 10;
                let delay = (i % 10) * 100;
                let tuple_ts = t.saturating_sub(delay);
                sm.observe(StreamIndex(stream), ts(tuple_ts));
            }
        }
        sm
    }

    #[test]
    fn instant_requirement_matches_eq7_algebra() {
        let m = manager(0.9);
        // Past recall exactly Γ -> Γ' = Γ.
        assert!((m.instant_requirement(900, 1_000, 500) - 0.9).abs() < 1e-9);
        // Past recall above Γ -> Γ' below Γ.
        assert!(m.instant_requirement(1_000, 1_000, 500) < 0.9);
        // Past recall below Γ -> Γ' above Γ (clamped at 1).
        assert!(m.instant_requirement(500, 1_000, 500) > 0.9);
        assert_eq!(m.instant_requirement(0, 1_000, 100), 1.0);
        // No estimate of the next interval's size -> fall back to Γ.
        assert_eq!(m.instant_requirement(10, 10, 0), 0.9);
        // Massive past over-achievement clamps at 0.
        assert_eq!(m.instant_requirement(10_000, 1_000, 100), 0.0);
    }

    #[test]
    fn higher_gamma_requires_larger_k() {
        let stats = uniform_delay_stats();
        let profiler = ProductivityProfiler::new(10);
        let mut monitor_low = ResultSizeMonitor::new(59_000);
        let mut monitor_high = ResultSizeMonitor::new(59_000);
        let low = manager(0.7).adapt(&stats, &profiler, &mut monitor_low, ts(20_000));
        let high = manager(0.99).adapt(&stats, &profiler, &mut monitor_high, ts(20_000));
        assert!(high.k >= low.k, "0.99 needs at least as much buffer as 0.7");
        assert!(high.k > 0);
        assert!(high.estimated_recall >= high.gamma_prime || high.k > high.max_delay);
        assert!(low.steps >= 1 && high.steps >= low.steps);
    }

    #[test]
    fn ordered_streams_need_no_buffer() {
        let mut sm = StatisticsManager::new(2, 10);
        for stream in 0..2 {
            for i in 0..1_000u64 {
                sm.observe(StreamIndex(stream), ts(i * 10));
            }
        }
        let profiler = ProductivityProfiler::new(10);
        let mut monitor = ResultSizeMonitor::new(59_000);
        let out = manager(0.999).adapt(&sm, &profiler, &mut monitor, ts(10_000));
        assert_eq!(out.k, 0);
        assert!(out.estimated_recall >= 0.999);
        assert_eq!(out.steps, 1);
    }

    #[test]
    fn search_is_bounded_by_max_observed_delay() {
        let stats = uniform_delay_stats();
        let profiler = ProductivityProfiler::new(10);
        let mut monitor = ResultSizeMonitor::new(59_000);
        let out = manager(1.0).adapt(&stats, &profiler, &mut monitor, ts(20_000));
        // Γ = 1 can force the search all the way past MaxDH, but never
        // beyond MaxDH + g.
        assert!(out.k <= out.max_delay + 10);
        // The workload delays tuples by up to 900 ms relative to the
        // generation clock; the observed delays (relative to iT) reach at
        // least ~800 ms.
        assert!(out.max_delay >= 800, "max delay {}", out.max_delay);
    }

    #[test]
    fn surplus_in_history_lowers_the_applied_k() {
        let stats = uniform_delay_stats();
        let mut profiler = ProductivityProfiler::new(10);
        // Give the profiler some evidence so N_true(L) > 0.
        profiler.record_processed(0, 100, 10);
        profiler.roll_interval();

        // Case A: history already over-achieved the requirement.
        let mut monitor_surplus = ResultSizeMonitor::new(59_000);
        monitor_surplus.record_true_estimate(ts(19_000), 1_000);
        monitor_surplus.record_produced(ts(19_000), 1_000);
        let with_surplus = manager(0.95).adapt(&stats, &profiler, &mut monitor_surplus, ts(20_000));

        // Case B: history under-achieved.
        let mut monitor_deficit = ResultSizeMonitor::new(59_000);
        monitor_deficit.record_true_estimate(ts(19_000), 1_000);
        monitor_deficit.record_produced(ts(19_000), 500);
        let with_deficit = manager(0.95).adapt(&stats, &profiler, &mut monitor_deficit, ts(20_000));

        assert!(with_surplus.gamma_prime < with_deficit.gamma_prime);
        assert!(with_surplus.k <= with_deficit.k);
    }

    #[test]
    fn adaptation_reports_timing() {
        let stats = uniform_delay_stats();
        let profiler = ProductivityProfiler::new(10);
        let mut monitor = ResultSizeMonitor::new(59_000);
        let out = manager(0.95).adapt(&stats, &profiler, &mut monitor, ts(20_000));
        // Some nonzero amount of work was measured (nanosecond clock).
        assert!(out.elapsed_nanos > 0);
    }
}
